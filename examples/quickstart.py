#!/usr/bin/env python
"""Quickstart: the paper's headline result in ~40 lines.

Builds the AMD Opteron / Mellanox InfiniHost cluster, runs the IMB
SendRecv microbenchmark with and without hugepage buffer placement in
both registration-cache modes, and prints the four Fig 5 curves.

Run:  python examples/quickstart.py
"""

from repro.analysis.report import Table
from repro.systems import presets
from repro.workloads.imb import SendRecvBenchmark

KB = 1024
MB = 1024 * 1024


def main() -> None:
    sizes = [4 * KB, 16 * KB, 64 * KB, 256 * KB, 1 * MB, 4 * MB]
    bench = SendRecvBenchmark(presets.opteron_infinihost_pcie)

    curves = {
        "small pages": bench.run(sizes, hugepages=False, lazy_dereg=True),
        "hugepages": bench.run(sizes, hugepages=True, lazy_dereg=True),
        "small pages, no cache": bench.run(sizes, hugepages=False,
                                           lazy_dereg=False),
        "hugepages, no cache": bench.run(sizes, hugepages=True,
                                         lazy_dereg=False),
    }

    table = Table(["size [KB]"] + list(curves),
                  title="IMB SendRecv bandwidth [MB/s] — AMD Opteron, 2 nodes")
    for size in sizes:
        table.add_row([size // KB] + [c.bandwidth_at(size) for c in curves.values()])
    print(table.render())

    no_cache_small = curves["small pages, no cache"].bandwidth_at(4 * MB)
    no_cache_huge = curves["hugepages, no cache"].bandwidth_at(4 * MB)
    print(
        f"\nWithout lazy deregistration, hugepage placement recovers "
        f"{no_cache_huge - no_cache_small:.0f} MB/s at 4 MB messages "
        f"({(no_cache_huge / no_cache_small - 1) * 100:.0f}% more bandwidth) "
        f"by cutting per-message registration from 1024 pages to 2."
    )


if __name__ == "__main__":
    main()
