#!/usr/bin/env python
"""Allocator study: replay an Abinit-like trace under all four allocators.

Reproduces the §2/§3.2 allocator comparison: the libc baseline, the
paper's three-layer hugepage library, and the two prior hugepage
libraries (libhugetlbfs, libhugepagealloc), replaying the same
allocation trace and reporting simulated allocator time, placement and
hugepage-pool pressure.

Run:  python examples/allocation_trace_study.py
"""

from repro.alloc import (
    HugepageLibraryAllocator,
    LibcAllocator,
    LibhugepageallocAllocator,
    LibhugetlbfsAllocator,
    abinit_like_trace,
    replay,
)
from repro.analysis.report import Table
from repro.mem import AddressSpace, HugeTLBfs, PhysicalMemory
from repro.systems import presets
from repro.workloads.abinit import compare_allocators

MB = 1024 * 1024


def fresh_aspace():
    pm = PhysicalMemory(2048 * MB, hugepages=720)
    return AddressSpace(pm, HugeTLBfs(pm))


def main() -> None:
    trace = abinit_like_trace(iterations=15)
    print(f"Trace: {sum(1 for op in trace if op.op == 'malloc')} allocations, "
          f"{sum(op.size for op in trace if op.op == 'malloc') / MB:.0f} MB requested\n")

    table = Table(
        ["allocator", "cold pass [ms]", "warm pass [ms]", "hugepages used"],
        title="Abinit-like trace: allocator time (simulated)",
    )
    for factory in (LibcAllocator, HugepageLibraryAllocator,
                    LibhugetlbfsAllocator, LibhugepageallocAllocator):
        aspace = fresh_aspace()
        alloc = factory(aspace)
        cold = replay(trace, alloc)
        warm = replay(trace, alloc)
        pages_used = aspace.hugetlbfs.total_pages - aspace.hugetlbfs.free_pages
        table.add_row([alloc.name, cold.total_ns / 1e6, warm.total_ns / 1e6,
                       pages_used])
    print(table.render())

    print("\nIn application context (allocation + streaming compute over "
          "the arrays):")
    app = compare_allocators(presets.opteron_infinihost_pcie, iterations=15)
    app_table = Table(["allocator", "runtime [ms]", "alloc share %"])
    for name, r in app.items():
        app_table.add_row([name, r.total_ns / 1e6, r.alloc_fraction * 100])
    print(app_table.render())
    libc, lib = app["libc"], app["hugepage_lib"]
    saving = (libc.alloc_ns - lib.alloc_ns) / libc.total_ns * 100
    print(f"\nAllocator-time saving alone buys {saving:.1f}% of runtime "
          f"(the paper reports 1.5% for Abinit); placement effects on "
          f"compute add another "
          f"{(1 - lib.total_ns / libc.total_ns) * 100 - saving:.1f}%.")


if __name__ == "__main__":
    main()
