#!/usr/bin/env python
"""Fork-reserve study: why the mapping layer keeps hugepages back.

§3.1 layer 2: the library "must leave a reserve of hugepages that are
needed when forking processes for Copy-on-Write reasons".  This example
makes the hazard concrete: a process fills the hugepage pool, forks, and
the child writes to inherited hugepages — each first write needs a fresh
hugepage for the private copy.  Without the reserve, the child dies on
its first write; with it, the fork survives.

Run:  python examples/fork_reserve_study.py
"""

from repro.alloc import HugepageLibraryConfig
from repro.core import preload_hugepage_library
from repro.engine import SimKernel
from repro.mem import HugePagePoolExhausted, PAGE_2M
from repro.systems import Machine, presets

MB = 1024 * 1024


def scenario(reserve_pages: int) -> str:
    machine = Machine(SimKernel(),
                      presets.opteron_infinihost_pcie(hugepages=16))
    proc = machine.new_process("parent")
    preload_hugepage_library(
        proc, HugepageLibraryConfig(fork_reserve_pages=reserve_pages)
    )
    # the application grabs as much hugepage memory as the library allows
    buf = proc.malloc(16 * PAGE_2M)
    placement = ("hugepages" if proc.allocator.is_hugepage_backed(buf)
                 else "base pages (fallback)")
    pool_free = machine.hugetlbfs.free_pages
    print(f"  reserve={reserve_pages}: 32 MB buffer placed in {placement}; "
          f"{pool_free} hugepages left in the pool")

    if placement != "hugepages":
        # grab what fits instead, to set up the fork hazard
        proc.free(buf)
        buf = proc.malloc((16 - reserve_pages) * PAGE_2M)
        pool_free = machine.hugetlbfs.free_pages
        print(f"            retried with {(16 - reserve_pages) * 2} MB -> "
              f"hugepages; {pool_free} left")

    child = proc.fork()
    print(f"  fork: child shares {child.aspace.page_table.n_huge} hugepage "
          f"mappings Copy-on-Write")
    try:
        child.aspace.write_fault(buf)           # first write: needs a copy
        child.aspace.write_fault(buf + PAGE_2M)
        return "child wrote safely (CoW copies came from the reserve)"
    except HugePagePoolExhausted:
        return "CHILD KILLED: no hugepage left for the CoW copy"


def main() -> None:
    print("Without a fork reserve:")
    print(" ", scenario(reserve_pages=0))
    print("\nWith the paper's reserve:")
    print(" ", scenario(reserve_pages=2))
    print(
        "\nThis is the §3.1 design point: the mapping layer withholds a "
        "few\nhugepages so that a fork()'s Copy-on-Write faults can be "
        "served.\n(Fork with *registered* buffers is refused outright — "
        "the classic\nInfiniBand fork hazard — try registering `buf` "
        "first and the\nsimulator raises before any corruption can "
        "happen.)"
    )


if __name__ == "__main__":
    main()
