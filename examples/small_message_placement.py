#!/usr/bin/env python
"""Small-buffer placement study: offsets and scatter/gather (§4).

Uses the verbs-level microbenchmark on the IBM System p preset to answer
the two small-message questions the paper raises:

1. Where in a page should a latency-critical buffer start?
   (sweeps offsets; Fig 4)
2. How should a batch of small buffers be sent — separate work requests,
   one SGE list, or a CPU pack?  (compares strategies and shows the
   planner's verdict; Fig 3 / §7)

Run:  python examples/small_message_placement.py
"""

from repro.analysis.report import Table
from repro.core.sge import plan_aggregation
from repro.workloads.verbs_micro import measure_send


def offset_study() -> None:
    print("1. In-page offset sweep (64-byte sends, 1 SGE, System p)")
    table = Table(["offset", "post [ticks]", "poll [ticks]", "total"])
    results = {}
    for off in (0, 1, 8, 32, 64, 96, 127, 128):
        t = measure_send(sges=1, sge_size=64, offset=off)
        results[off] = t.total_ticks
        table.add_row([off, t.post_ticks, t.poll_ticks, t.total_ticks])
    print(table.render())
    best = min(results, key=results.get)
    worst = max(results, key=results.get)
    swing = (results[worst] - results[best]) / results[worst] * 100
    print(f"   best offset: {best}; worst: {worst}; swing {swing:.1f}%\n")


def aggregation_study() -> None:
    print("2. Moving 8 x 128-byte buffers to a peer")
    one = measure_send(sges=1, sge_size=128)
    sge8 = measure_send(sges=8, sge_size=128)
    packed = measure_send(sges=1, sge_size=1024)
    table = Table(["strategy", "total [TBR ticks]"])
    table.add_row(["8 separate sends", 8 * one.total_ticks])
    table.add_row(["1 WR with 8 SGEs", sge8.total_ticks])
    table.add_row(["CPU pack + 1 send (copy not incl.)", packed.total_ticks])
    print(table.render())

    plan = plan_aggregation([128] * 8)
    print(f"   planner verdict: {plan.strategy.value}")
    print(f"   estimates [ns]: {plan.estimated_ns}")
    print(
        "\n   The per-work-request costs (doorbell, WQE fetch, CQE, poll)\n"
        "   dominate small sends; an SGE list pays them once.  This is\n"
        "   the §7 proposal: map MPI_Pack directly onto the adapter's\n"
        "   gather engine."
    )


if __name__ == "__main__":
    offset_study()
    aggregation_study()
