#!/usr/bin/env python
"""Bottleneck analysis: where does one message's time actually go?

§6 of the paper ends with "we believe that with a further analysis,
remaining bottlenecks can be made visible".  This example uses the
analytic breakdown tool to decompose a 4 MB RDMA-rendezvous message into
its pipeline components for each placement/caching configuration, making
it obvious which knob matters where.

Run:  python examples/bottleneck_analysis.py [size_mb]
"""

import sys

from repro.analysis.breakdown import breakdown_rdma_message
from repro.analysis.report import Table
from repro.mem.physical import PAGE_2M, PAGE_4K
from repro.systems import presets

MB = 1024 * 1024

CONFIGS = [
    ("4K pages, cold", PAGE_4K, False, False),
    ("2M pages, cold", PAGE_2M, False, False),
    ("4K pages, regcache hit", PAGE_4K, True, False),
    ("2M pages, regcache hit", PAGE_2M, True, False),
    ("2M pages, regcache + warm ATT", PAGE_2M, True, True),
]

COMPONENTS = ["post_ns", "registration_ns", "wqe_fetch_ns", "gather_ns",
              "wire_ns", "scatter_ns", "completion_ns"]


def main() -> None:
    size = int(float(sys.argv[1]) * MB) if len(sys.argv) > 1 else 4 * MB
    for machine, factory in (("opteron", presets.opteron_infinihost_pcie),
                             ("xeon", presets.xeon_infinihost_pcix)):
        spec = factory()
        table = Table(
            ["configuration"] + [c.replace("_ns", "") + " [us]"
                                 for c in COMPONENTS] + ["pipeline [us]"],
            title=f"{machine}: one {size // MB} MB RDMA message, by component",
        )
        for label, page_size, cached, warm in CONFIGS:
            b = breakdown_rdma_message(spec, size, page_size,
                                       registration_cached=cached,
                                       att_warm=warm)
            table.add_row([label]
                          + [getattr(b, c) / 1000 for c in COMPONENTS]
                          + [b.critical_path_ns / 1000])
        # and the full §5.1 recipe: hugepages + patched driver
        patched = factory(hugepage_aware_driver=True)
        b = breakdown_rdma_message(patched, size, PAGE_2M,
                                   registration_cached=True, att_warm=True)
        table.add_row(["2M, patched driver, all caches"]
                      + [getattr(b, c) / 1000 for c in COMPONENTS]
                      + [b.critical_path_ns / 1000])
        print(table.render())
        cold4k = breakdown_rdma_message(spec, size, PAGE_4K)
        print(f"  dominant cold-4K component on {machine}: "
              f"{cold4k.dominant().replace('_ns', '')}\n")

    print(
        "Reading guide: on cold 4K pages, registration rivals the wire\n"
        "time itself — that is Fig 5's no-lazy-dereg penalty.  2M pages\n"
        "erase it.  The gather/scatter columns carry the ATT stalls:\n"
        "on the Xeon they exceed the wire time (the bus is the\n"
        "bottleneck), which is why only that machine rewards the\n"
        "driver patch."
    )


if __name__ == "__main__":
    main()
