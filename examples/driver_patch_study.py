#!/usr/bin/env python
"""Driver-patch study: why the same patch helps one machine and not another.

The paper patched the OpenIB driver to report hugepages to the adapter
(the patch went to the OpenIB list in August 2006) and saw +6 % bandwidth
— but only on the Xeon/PCI-X system, not the Opteron/PCIe one.  This
example shows the mechanism: the adapter's translation-cache (ATT) misses
stall the I/O bus, and whether that matters depends on which resource is
the bottleneck.

Run:  python examples/driver_patch_study.py
"""

from repro.analysis.report import Table
from repro.systems import Cluster, presets
from repro.workloads.imb import SendRecvBenchmark

MB = 1024 * 1024
SIZES = [256 * 1024, 1 * MB, 4 * MB]


def sweep(machine_name, factory):
    bench = SendRecvBenchmark(factory)
    stock = bench.run(SIZES, hugepages=True, lazy_dereg=True,
                      driver_hugepage_aware=False)
    patched = bench.run(SIZES, hugepages=True, lazy_dereg=True,
                        driver_hugepage_aware=True)
    return stock, patched


def main() -> None:
    table = Table(
        ["machine", "bus", "size [KB]", "stock [MB/s]", "patched [MB/s]",
         "gain %"],
        title="Hugepage buffers + lazy dereg: stock vs patched OpenIB driver",
    )
    for name, factory in (
        ("xeon", presets.xeon_infinihost_pcix),
        ("opteron", presets.opteron_infinihost_pcie),
    ):
        spec = factory()
        stock, patched = sweep(name, factory)
        for size in SIZES:
            a, b = stock.bandwidth_at(size), patched.bandwidth_at(size)
            table.add_row([name, spec.bus.name, size // 1024, a, b,
                           (b - a) / a * 100])
    print(table.render())

    # show the ATT traffic behind the numbers
    print("\nATT pressure for one 4 MB transfer:")
    for aware in (False, True):
        cluster = Cluster(presets.xeon_infinihost_pcix(
            hugepage_aware_driver=aware), 2)
        node = cluster.nodes[0]
        proc = node.new_process()
        from repro.ib.verbs import ProtectionDomain
        from repro.mem.physical import PAGE_2M

        vma = proc.aspace.mmap(4 * MB, page_size=PAGE_2M)
        mr, _ = node.reg_engine.register(proc.aspace, ProtectionDomain.fresh(),
                                         vma.start, 4 * MB)
        print(f"  driver patched={aware}: {mr.n_entries} translation entries "
              f"({mr.entry_page_size // 1024} KB each) -> the 64-entry ATT "
              f"cache {'holds them all' if mr.n_entries <= 64 else 'thrashes'}")

    print(
        "\nOn PCI-X (half-duplex, ~900 MB/s) the bus is the transfer\n"
        "bottleneck, so every ATT-miss stall lengthens it: the patch's\n"
        "512x entry reduction shows up as bandwidth.  On PCIe x8 the bus\n"
        "has ~2x slack over the 940 MB/s link, the stalls hide inside\n"
        "it, and the patch changes nothing — which is exactly what the\n"
        "paper measured on the two systems."
    )


if __name__ == "__main__":
    main()
