#!/usr/bin/env python
"""NAS hugepage study: reproduce the Fig 6 decomposition interactively.

Preloads the paper's hugepage library onto every MPI rank (the simulated
LD_PRELOAD) and runs the mini NAS kernels on 2 nodes x 4 processes,
printing communication / computation / overall improvements and the
PAPI-style TLB miss counts — the full §5.2 story.

Run:  python examples/nas_hugepage_study.py [kernel ...]
      (default: all of CG EP IS LU MG at class W; pass e.g. "CG B"
       for a bigger class)
"""

import sys

from repro.analysis.report import Table
from repro.systems import presets
from repro.workloads.nas import KERNELS
from repro.workloads.nas.common import compare_hugepages


def main() -> None:
    args = [a.upper() for a in sys.argv[1:]]
    klass = next((a for a in args if a in ("W", "B", "C")), "W")
    names = [a for a in args if a in KERNELS] or list(KERNELS)

    table = Table(
        ["kernel", "comm impr. %", "other impr. %", "overall %", "TLB miss x",
         "verified"],
        title=f"NAS class {klass}, AMD Opteron, 2 nodes x 4 ranks: "
              "preloaded hugepage library vs small pages",
    )
    for name in names:
        c = compare_hugepages(KERNELS[name], presets.opteron_infinihost_pcie(),
                              klass=klass, nas_hugepage_pool=720)
        table.add_row([
            name, c.comm_improvement_pct, c.other_improvement_pct,
            c.overall_improvement_pct, c.tlb_miss_ratio,
            c.small.verified and c.huge.verified,
        ])
        print(f"  {name}: done")
    print()
    print(table.render())
    print(
        "\nReading guide: communication gains come from cheaper memory\n"
        "registration (the library never unmaps on free, so the MPI\n"
        "pin-down cache stays warm); 'other' gains come from the\n"
        "prefetcher streaming across physically contiguous hugepages;\n"
        "TLB miss *counts* rise wherever more regions rotate than the\n"
        "8-entry hugepage TLB holds (except LU's few long streams) —\n"
        "but each hugepage walk is cheap, so the counts do not hurt."
    )


if __name__ == "__main__":
    main()
