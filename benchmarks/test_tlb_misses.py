"""TLB8 — the §5.2 PAPI measurement.

"To look for these improvements, we instrumented an AMD Opteron system
with PAPI to read the processor performance counters.  We measured that
TLB misses increased dramatically with hugepages (up to eight times with
EP) except for LU."

Regenerated from the class-B NAS runs on the Opteron preset, using the
simulated TLB's counters as the PAPI equivalent.
"""

import pytest

from conftest import emit
from repro.analysis.report import Table
from repro.systems import presets
from repro.workloads.nas import KERNELS
from repro.workloads.nas.common import compare_hugepages


def run_tlb():
    return {
        name: compare_hugepages(prog, presets.opteron_infinihost_pcie(),
                                klass="B", nas_hugepage_pool=720)
        for name, prog in KERNELS.items()
    }


def test_tlb_miss_counts(benchmark):
    results = benchmark.pedantic(run_tlb, rounds=1, iterations=1)

    table = Table(
        ["kernel", "misses (4K run)", "misses (hugepage run)", "ratio",
         "other impr. %"],
        title="TLB8: data-TLB misses, small pages vs preloaded library (Opteron)",
    )
    for name, c in results.items():
        table.add_row([
            name, c.small.tlb_misses_total, c.huge.tlb_misses_total,
            c.tlb_miss_ratio, c.other_improvement_pct,
        ])
    emit("\n" + table.render())

    # misses increase with hugepages for every kernel except LU
    for name in ("CG", "EP", "IS", "MG"):
        assert results[name].tlb_miss_ratio > 1.0, name
    assert results["LU"].tlb_miss_ratio <= 1.0

    # "up to eight times with EP": EP is the extreme and stays <= ~8x
    ep_ratio = results["EP"].tlb_miss_ratio
    assert 4.0 < ep_ratio < 9.0

    # yet EP's computation still improves: "This shows that TLB misses
    # are not responsible for less application time here"
    assert results["EP"].other_improvement_pct > 0.0

    benchmark.extra_info["ratios"] = {
        k: round(c.tlb_miss_ratio, 2) for k, c in results.items()
    }
