"""ABLATION — SGE aggregation vs separate sends vs CPU pack (§4, §7).

The paper proposes mapping MPI_Pack-style aggregation onto the
InfiniBand scatter-gather interface.  This bench measures, at the verbs
level, the three ways to move a batch of k small buffers and checks the
planner (:func:`repro.core.sge.plan_aggregation`) agrees with the
simulation.
"""

import pytest

from conftest import emit
from repro.analysis.report import Table
from repro.core.sge import AggregationStrategy, plan_aggregation
from repro.workloads.verbs_micro import measure_send

BATCHES = [2, 4, 8, 16, 64]
ELEMENT = 128  # bytes, the paper's aggregation sweet spot


def run_sge_ablation():
    one = measure_send(sges=1, sge_size=ELEMENT)
    out = {}
    for k in BATCHES:
        sge = measure_send(sges=k, sge_size=ELEMENT)
        out[k] = {
            "separate": k * one.total_ticks,
            "sge": sge.total_ticks,
            # CPU pack: one send of k*ELEMENT plus the copy (charged at
            # the planner's small-copy rate: 80 ns/block + 0.8 ns/B,
            # in System p ticks)
            "pack": measure_send(sges=1, sge_size=k * ELEMENT).total_ticks
            + int((k * 80 + k * ELEMENT * 0.8) * 0.20625),
        }
    return one, out


def test_sge_aggregation_ablation(benchmark):
    one, out = benchmark.pedantic(run_sge_ablation, rounds=1, iterations=1)

    table = Table(
        ["batch", "separate sends", "one WR + SGE list", "CPU pack"],
        title=f"ABLATION SGE: {ELEMENT} B elements, total ticks per batch",
    )
    for k in BATCHES:
        table.add_row([k, out[k]["separate"], out[k]["sge"], out[k]["pack"]])
    emit("\n" + table.render())

    for k in BATCHES:
        # the §4 pitch: aggregation amortises the per-WR overheads
        assert out[k]["sge"] < out[k]["separate"], k
        # and the advantage grows with batch size
    gain4 = out[4]["separate"] / out[4]["sge"]
    gain64 = out[64]["separate"] / out[64]["sge"]
    assert gain64 > gain4 > 1.5

    # the cost-model planner picks SGE for these batches too
    for k in (4, 8, 16):
        plan = plan_aggregation([ELEMENT] * k)
        assert plan.strategy is AggregationStrategy.SGE_LIST, k

    benchmark.extra_info["gain_at_4"] = round(gain4, 2)
    benchmark.extra_info["gain_at_64"] = round(gain64, 2)
