"""REG100 — registration time, base pages vs hugepages.

Regenerates the §5.1 claim: "memory registration time decreased
extremely (down to 1 % of the time as with small pages as our performed
measurements show)" — a sweep of registration cost over buffer size for
both page sizes and both driver states.
"""

import pytest

from conftest import emit
from repro.analysis.report import Table
from repro.engine import SimKernel
from repro.ib.verbs import ProtectionDomain
from repro.mem.physical import PAGE_2M, PAGE_4K
from repro.systems import Machine, presets

KB = 1024
MB = 1024 * 1024
SIZES = [64 * KB, 256 * KB, 1 * MB, 4 * MB, 16 * MB, 64 * MB]


def run_registration():
    out = {}
    for aware in (True, False):
        machine = Machine(
            SimKernel(),
            presets.opteron_infinihost_pcie(hugepages=256,
                                            hugepage_aware_driver=aware),
        )
        proc = machine.new_process()
        pd = ProtectionDomain.fresh()
        for size in SIZES:
            for page_size, label in ((PAGE_4K, "4k"), (PAGE_2M, "2m")):
                vma = proc.aspace.mmap(size, page_size=page_size)
                mr, ns = machine.reg_engine.register(proc.aspace, pd, vma.start, size)
                out[(aware, label, size)] = ns
                machine.reg_engine.deregister(proc.aspace, mr)
                proc.aspace.munmap(vma.start)
    return out


def test_registration_cost_ratio(benchmark):
    costs = benchmark.pedantic(run_registration, rounds=1, iterations=1)

    table = Table(
        ["size [KB]", "4K pages [us]", "2M pages [us]", "2M/4K %",
         "2M stock driver [us]"],
        title="REG100: memory registration cost (patched driver unless noted)",
    )
    for size in SIZES:
        ns4k = costs[(True, "4k", size)]
        ns2m = costs[(True, "2m", size)]
        ns2m_stock = costs[(False, "2m", size)]
        table.add_row([
            size // KB, ns4k / 1000, ns2m / 1000, ns2m / ns4k * 100,
            ns2m_stock / 1000,
        ])
    emit("\n" + table.render())

    # "down to 1 %" for large buffers with the patched driver
    ratio_64mb = costs[(True, "2m", 64 * MB)] / costs[(True, "4k", 64 * MB)]
    assert ratio_64mb < 0.02
    ratio_16mb = costs[(True, "2m", 16 * MB)] / costs[(True, "4k", 16 * MB)]
    assert ratio_16mb < 0.03

    # the ratio improves with size (fixed base cost amortises)
    ratios = [costs[(True, "2m", s)] / costs[(True, "4k", s)] for s in SIZES]
    assert ratios == sorted(ratios, reverse=True)

    # without the paper's driver patch the upload stays per-4K-entry:
    # registration of hugepage buffers is cheaper (pinning) but far from 1 %
    assert costs[(False, "2m", 16 * MB)] > 5 * costs[(True, "2m", 16 * MB)]

    benchmark.extra_info["ratio_2m_over_4k_64MB_pct"] = round(ratio_64mb * 100, 2)
