"""ABLATION — the library's 32 KB hugepage cutoff (§3.2 item 1).

"Requests with less than 32 kb are not mapped into hugepages due to our
empirical memory registration measurements which showed better
performance characteristics with small pages in this area."

Sweeps the cutoff on two axes: registration cost per buffer size (the
paper's stated reason) and hugepage-pool consumption of a realistic
allocation mix (the indiscriminate-placement downside).
"""

import pytest

from conftest import emit
from repro.alloc import HugepageLibraryAllocator, HugepageLibraryConfig
from repro.alloc.traces import abinit_like_trace, replay
from repro.analysis.report import Table
from repro.engine import SimKernel
from repro.ib.verbs import ProtectionDomain
from repro.mem import AddressSpace, HugeTLBfs, PhysicalMemory
from repro.mem.physical import PAGE_2M, PAGE_4K
from repro.systems import Machine, presets

KB = 1024
MB = 1024 * 1024
CUTOFFS = [4 * KB, 8 * KB, 32 * KB, 128 * KB, 1 * MB]


def run_cutoff_ablation():
    # axis 1: registration cost by placement for buffers around the cutoff
    machine = Machine(SimKernel(), presets.opteron_infinihost_pcie())
    proc = machine.new_process()
    pd = ProtectionDomain.fresh()
    reg = {}
    for size in (4 * KB, 16 * KB, 32 * KB, 128 * KB, 1 * MB):
        for page_size, label in ((PAGE_4K, "4k"), (PAGE_2M, "2m")):
            vma = proc.aspace.mmap(size, page_size=page_size)
            mr, ns = machine.reg_engine.register(proc.aspace, pd, vma.start, size)
            reg[(size, label)] = ns
            machine.reg_engine.deregister(proc.aspace, mr)
            proc.aspace.munmap(vma.start)

    # axis 2: pool usage + allocator time over the trace per cutoff
    trace = abinit_like_trace(iterations=8)
    sweep = {}
    for cutoff in CUTOFFS:
        pm = PhysicalMemory(2048 * MB, hugepages=720)
        aspace = AddressSpace(pm, HugeTLBfs(pm))
        lib = HugepageLibraryAllocator(
            aspace, config=HugepageLibraryConfig(cutoff_bytes=cutoff)
        )
        result = replay(trace, lib)
        sweep[cutoff] = (result.total_ns, lib.hugepages_mapped)
    return reg, sweep


def test_cutoff_ablation(benchmark):
    reg, sweep = benchmark.pedantic(run_cutoff_ablation, rounds=1, iterations=1)

    table = Table(["buffer", "reg 4K [us]", "reg 2M [us]"],
                  title="ABLATION cutoff: registration cost by placement")
    for size in (4 * KB, 16 * KB, 32 * KB, 128 * KB, 1 * MB):
        table.add_row([f"{size // KB} KB", reg[(size, '4k')] / 1000,
                       reg[(size, '2m')] / 1000])
    emit("\n" + table.render())

    sweep_table = Table(["cutoff", "alloc time [ms]", "hugepages used"],
                        title="ABLATION cutoff: trace behaviour per cutoff")
    for cutoff, (ns, pages) in sweep.items():
        sweep_table.add_row([f"{cutoff // KB} KB", ns / 1e6, pages])
    emit(sweep_table.render())

    # below ~32 KB the hugepage registration advantage vanishes: the
    # fixed base cost dominates both placements
    assert reg[(4 * KB, "2m")] > 0.85 * reg[(4 * KB, "4k")]
    # above it, hugepages win clearly
    assert reg[(1 * MB, "2m")] < 0.5 * reg[(1 * MB, "4k")]

    # tiny cutoffs burn hugepages on small objects
    assert sweep[4 * KB][1] >= sweep[32 * KB][1]
    # huge cutoffs forfeit the fast path for the large arrays
    benchmark.extra_info["pages_at_4k_cutoff"] = sweep[4 * KB][1]
    benchmark.extra_info["pages_at_32k_cutoff"] = sweep[32 * KB][1]
