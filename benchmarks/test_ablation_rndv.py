"""ABLATION — write-based vs read-based RDMA rendezvous.

The paper's MVAPICH2 uses RTS/CTS/write/FIN; the scheme the MVAPICH
lineage moved to shortly after announces the sender's buffer in the RTS
and lets the receiver *pull* it with one RDMA read (one less control
message, no sender-side blocking on the CTS).  This bench quantifies the
trade on the simulated stack: latency advantage for medium messages,
parity at streaming sizes, identical registration behaviour.
"""

import pytest

from conftest import emit
from repro.analysis.report import Table
from repro.mpi import MPIConfig, MPIWorld
from repro.systems import Cluster, presets

KB = 1024
MB = 1024 * 1024
SIZES = [32 * KB, 128 * KB, 512 * KB, 2 * MB, 8 * MB]


def run_protocol(proto):
    timings = {}
    for size in SIZES:
        cluster = Cluster(presets.opteron_infinihost_pcie(), 2)
        world = MPIWorld(cluster, ppn=1,
                         config=MPIConfig(rndv_protocol=proto))
        out = {}

        def program(comm, size=size):
            other = 1 - comm.rank
            buf = comm.proc.malloc(2 * size + 8192)
            # warm-up, then measure ping-pong latency
            for i in range(4):
                if i == 1:
                    t0 = comm.kernel.now
                if comm.rank == 0:
                    yield from comm.send(other, 1, size, addr=buf)
                    yield from comm.recv(other, 2, addr=buf + size + 4096)
                else:
                    yield from comm.recv(0, 1, addr=buf)
                    yield from comm.send(other, 2, size, addr=buf + size + 4096)
            if comm.rank == 0:
                out["ticks"] = (comm.kernel.now - t0) / 3
            return None

        world.run(program)
        timings[size] = out["ticks"]
    return timings


def run_rndv_ablation():
    return {proto: run_protocol(proto) for proto in ("write", "read")}


def test_rendezvous_protocol_ablation(benchmark):
    results = benchmark.pedantic(run_rndv_ablation, rounds=1, iterations=1)

    table = Table(
        ["size [KB]", "write rndv [ticks]", "read rndv [ticks]",
         "read saves %"],
        title="ABLATION rendezvous: write (paper-era MVAPICH2) vs read",
    )
    for size in SIZES:
        w, r = results["write"][size], results["read"][size]
        table.add_row([size // KB, w, r, (w - r) / w * 100])
    emit("\n" + table.render())

    # medium messages: the saved CTS round is visible
    w, r = results["write"][32 * KB], results["read"][32 * KB]
    assert r < w, "read rendezvous should win at handshake-bound sizes"

    # streaming sizes: the wire dominates, protocols converge
    w8, r8 = results["write"][8 * MB], results["read"][8 * MB]
    assert abs(w8 - r8) / w8 < 0.05

    benchmark.extra_info["saving_at_32KB_pct"] = round(
        (w - r) / w * 100, 1
    )
