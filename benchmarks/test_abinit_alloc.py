"""ABINIT — the allocator comparison on an Abinit-like trace.

Regenerates the two §2/§3.2 numbers:

- "allocation benefits of up to 10 times with our library (e.g. for
  Abinit)" — total allocator time, libc vs the hugepage library;
- "it improved application runtime by 1.5 %" — the allocator-time saving
  expressed against total application runtime.

All four §2/§3 allocators are replayed on the same trace for the library
comparison table.
"""

import pytest

from conftest import emit
from repro.alloc import (
    HugepageLibraryAllocator,
    LibcAllocator,
    LibhugepageallocAllocator,
    LibhugetlbfsAllocator,
    abinit_like_trace,
    replay,
)
from repro.analysis.report import Table
from repro.mem import AddressSpace, HugeTLBfs, PhysicalMemory
from repro.systems import presets
from repro.workloads.abinit import compare_allocators

MB = 1024 * 1024


def fresh_aspace():
    pm = PhysicalMemory(2048 * MB, hugepages=720)
    return AddressSpace(pm, HugeTLBfs(pm))


def run_abinit_suite():
    trace = abinit_like_trace(iterations=20)
    cold, warm = {}, {}
    for factory in (LibcAllocator, HugepageLibraryAllocator,
                    LibhugetlbfsAllocator, LibhugepageallocAllocator):
        alloc = factory(fresh_aspace())
        cold[alloc.name] = replay(trace, alloc)
        warm[alloc.name] = replay(trace, alloc)
    app = compare_allocators(presets.opteron_infinihost_pcie, iterations=20)
    return cold, warm, app


def test_abinit_allocator_comparison(benchmark):
    cold, warm, app = benchmark.pedantic(run_abinit_suite, rounds=1,
                                         iterations=1)

    table = Table(
        ["allocator", "cold [ms]", "vs libc", "warm [ms]", "vs libc (warm)"],
        title="ABINIT: allocator time on the Abinit-like trace",
    )
    libc_cold = cold["libc"].total_ns
    libc_warm = warm["libc"].total_ns
    for name in cold:
        table.add_row([
            name, cold[name].total_ns / 1e6, libc_cold / cold[name].total_ns,
            warm[name].total_ns / 1e6, libc_warm / warm[name].total_ns,
        ])
    emit("\n" + table.render())

    app_table = Table(
        ["allocator", "runtime [ms]", "alloc share %", "runtime impr. %"],
        title="ABINIT: application context (allocation + compute)",
    )
    libc_app = app["libc"]
    for name, r in app.items():
        app_table.add_row([
            name, r.total_ns / 1e6, r.alloc_fraction * 100,
            (1 - r.total_ns / libc_app.total_ns) * 100,
        ])
    emit(app_table.render())

    # "up to 10 times": order-of-magnitude allocator-time advantage.
    # The cold run (including one-time hugepage mapping) lands near the
    # paper's number; warm steady state exceeds it.
    speedup_cold = libc_cold / cold["hugepage_lib"].total_ns
    speedup = libc_warm / warm["hugepage_lib"].total_ns
    assert 5.0 < speedup_cold < 25.0
    assert speedup > 8.0

    # the §3.2 runtime claim: allocator-time saving alone is a small but
    # real share of application runtime (the paper reports 1.5 %)
    alloc_saving_pct = (
        (libc_app.alloc_ns - app["hugepage_lib"].alloc_ns)
        / libc_app.total_ns * 100
    )
    assert 0.5 < alloc_saving_pct < 6.0

    # total runtime also gains from placement (prefetch): strictly more
    assert app["hugepage_lib"].total_ns < libc_app.total_ns

    benchmark.extra_info["allocator_speedup"] = round(speedup, 1)
    benchmark.extra_info["alloc_saving_runtime_pct"] = round(alloc_saving_pct, 2)
