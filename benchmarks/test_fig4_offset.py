"""FIG4 — work-request duration vs in-page buffer offset.

Regenerates Fig 4 ("different offsets work request execution time",
buffer sizes 8/16/32/64 B, offsets 0-128): duration varies up to ~8 %
with the start offset, and the adapter/bus path "is optimized for
certain offsets, e.g. at offset 64".
"""

import pytest

from conftest import emit
from repro.analysis.report import Table, format_series
from repro.workloads.verbs_micro import measure_send

BUFFER_SIZES = [8, 16, 32, 64]
OFFSETS = list(range(0, 129, 8)) + [1, 63, 127]


def run_fig4():
    return {
        (size, off): measure_send(sges=1, sge_size=size, offset=off)
        for size in BUFFER_SIZES
        for off in sorted(set(OFFSETS))
    }


def test_fig4_offset_sensitivity(benchmark):
    results = benchmark.pedantic(run_fig4, rounds=1, iterations=1)
    offsets = sorted(set(OFFSETS))

    table = Table(["offset"] + [f"{s} B" for s in BUFFER_SIZES],
                  title="FIG4: work request duration vs offset [TBR ticks]")
    for off in offsets:
        table.add_row([off] + [results[(s, off)].total_ticks for s in BUFFER_SIZES])
    emit("\n" + table.render())
    for size in BUFFER_SIZES:
        emit(format_series(
            f"size-{size}", offsets,
            [results[(size, off)].total_ticks for off in offsets],
            x_label="offset[B]", y_label="ticks",
        ))

    for size in BUFFER_SIZES:
        ticks = {off: results[(size, off)].total_ticks for off in offsets}
        best = min(ticks, key=ticks.get)
        swing = (max(ticks.values()) - min(ticks.values())) / max(ticks.values())
        # §4: "the time consumption ... differs up to 8 percent" and the
        # path is "optimized for certain offsets, e.g. at offset 64"
        assert best == 64, f"size {size}: best offset {best}"
        assert 0.02 < swing <= 0.10, f"size {size}: swing {swing:.3f}"
        if size == 64:
            benchmark.extra_info["swing_pct_64B"] = round(swing * 100, 1)
            benchmark.extra_info["best_offset"] = best
