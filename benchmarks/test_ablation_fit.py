"""ABLATION — address-ordered first fit vs best fit (§3.2 item 2).

"The library uses an address-ordered first fit allocator, which shows
best performance values due to a good locality (see [12])."

Compares allocation time and locality (spread of returned addresses)
over a mixed-size workload for both fit policies.
"""

import pytest

from conftest import emit
import numpy as np

from repro.alloc import HugepageLibraryAllocator, HugepageLibraryConfig
from repro.analysis.report import Table
from repro.mem import AddressSpace, HugeTLBfs, PhysicalMemory

KB = 1024
MB = 1024 * 1024


def run_fit_ablation():
    rng = np.random.default_rng(99)
    sizes = [int(rng.integers(32 * KB, 2 * MB)) for _ in range(300)]
    out = {}
    for policy in ("first", "best"):
        pm = PhysicalMemory(2048 * MB, hugepages=512)
        aspace = AddressSpace(pm, HugeTLBfs(pm))
        lib = HugepageLibraryAllocator(
            aspace, config=HugepageLibraryConfig(fit_policy=policy)
        )
        live = []
        addresses = []
        for i, size in enumerate(sizes):
            p = lib.malloc(size)
            addresses.append(p)
            live.append(p)
            if i % 3 == 2:  # free every third allocation (fragmentation)
                lib.free(live.pop(int(rng.integers(0, len(live)))))
        spread = max(addresses) - min(addresses)
        out[policy] = (lib.stats.total_ns, spread, lib.hugepages_mapped)
    return out


def test_fit_policy_ablation(benchmark):
    out = benchmark.pedantic(run_fit_ablation, rounds=1, iterations=1)

    table = Table(
        ["policy", "alloc time [us]", "address spread [MB]", "hugepages"],
        title="ABLATION fit policy: address-ordered first fit vs best fit",
    )
    for policy, (ns, spread, pages) in out.items():
        table.add_row([policy, ns / 1000, spread / MB, pages])
    emit("\n" + table.render())

    first_ns, first_spread, _ = out["first"]
    best_ns, best_spread, _ = out["best"]

    # first fit's scans stop early; even when fragmentation patterns
    # differ between the policies it stays in the same ballpark
    assert first_ns <= 1.3 * best_ns
    # address-ordered first fit packs low addresses: locality no worse
    assert first_spread <= 1.2 * best_spread

    benchmark.extra_info["first_fit_time_advantage_pct"] = round(
        (1 - first_ns / best_ns) * 100, 1
    )
