"""ABLATION — the MPI protocol thresholds (eager 8 KB / RDMA 16 KB).

The paper takes MVAPICH2's thresholds as given ("The MPI library uses
eager send up to a buffer size of 8 KB and the rendezvous protocol for
greater buffers.  For buffers larger than 16 KB, it uses the RDMA
feature").  This bench sweeps both thresholds to show they sit where the
protocol costs actually cross over on the simulated stack — i.e. the
library's defaults are justified, not arbitrary.
"""

import pytest

from conftest import emit
from repro.analysis.report import Table
from repro.mpi import MPIConfig, MPIWorld
from repro.systems import Cluster, presets

KB = 1024
MB = 1024 * 1024


def pingpong_ticks(size, eager_threshold, rdma_threshold, lazy=True):
    """Steady-state half-RTT for one message size and threshold setting."""
    cluster = Cluster(presets.opteron_infinihost_pcie(), 2)
    world = MPIWorld(cluster, ppn=1, config=MPIConfig(
        eager_threshold=eager_threshold,
        rdma_threshold=rdma_threshold,
        eager_buf_bytes=max(16 * KB, eager_threshold),
        lazy_dereg=lazy,
    ))
    out = {}

    def program(comm):
        other = 1 - comm.rank
        buf = comm.proc.malloc(2 * MB)
        for i in range(4):
            if i == 1 and comm.rank == 0:
                t0 = comm.kernel.now
            if comm.rank == 0:
                yield from comm.send(other, 1, size, addr=buf)
                yield from comm.recv(other, 2, addr=buf + MB)
            else:
                yield from comm.recv(0, 1, addr=buf)
                yield from comm.send(other, 2, size, addr=buf + MB)
        if comm.rank == 0:
            out["ticks"] = (comm.kernel.now - t0) / 3 / 2
        return None

    world.run(program)
    return out["ticks"]


def run_threshold_ablation():
    sizes = [2 * KB, 8 * KB, 16 * KB, 32 * KB, 128 * KB]
    # force each protocol across the size range by moving the thresholds
    out = {}
    for size in sizes:
        out[(size, "eager")] = pingpong_ticks(size, 14 * KB, 15 * KB) \
            if size <= 14 * KB else None
        out[(size, "copy-rndv")] = pingpong_ticks(size, 1 * KB, 256 * KB) \
            if size > 1 * KB else None
        out[(size, "rdma-rndv")] = pingpong_ticks(size, 1 * KB, 2 * KB) \
            if size > 2 * KB else None
    return sizes, out


def test_protocol_threshold_ablation(benchmark):
    sizes, out = benchmark.pedantic(run_threshold_ablation, rounds=1,
                                    iterations=1)

    table = Table(
        ["size [KB]", "forced eager", "forced copy-rndv", "forced RDMA-rndv"],
        title="ABLATION thresholds: half-RTT [ticks] per protocol per size",
    )
    for size in sizes:
        table.add_row([
            size / KB,
            out[(size, "eager")],
            out[(size, "copy-rndv")],
            out[(size, "rdma-rndv")],
        ])
    emit("\n" + table.render())

    # small messages: eager must beat both rendezvous flavours (the
    # handshake costs more than the copy)
    assert out[(2 * KB, "eager")] < out[(2 * KB, "copy-rndv")]
    assert out[(8 * KB, "eager")] < out[(8 * KB, "rdma-rndv")]
    # large messages: RDMA must beat the copy rendezvous (zero-copy wins
    # once the payload dwarfs the handshake)
    assert out[(128 * KB, "rdma-rndv")] < out[(128 * KB, "copy-rndv")]
    # the crossover between copy and RDMA rendezvous sits in the
    # 8-32 KB band — consistent with MVAPICH2's 16 KB choice
    crossed = [
        s for s in sizes
        if out[(s, "rdma-rndv")] is not None
        and out[(s, "copy-rndv")] is not None
        and out[(s, "rdma-rndv")] < out[(s, "copy-rndv")]
    ]
    assert crossed and min(crossed) <= 32 * KB

    benchmark.extra_info["rdma_beats_copy_from_kb"] = min(crossed) // KB
