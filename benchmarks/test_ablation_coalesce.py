"""ABLATION — no-coalesce-on-free vs eager coalescing (§3.2 item 5).

"The allocator does not coalesce free memory areas on free() calls.
This avoids useless coalescing/splitting patterns, when applications
allocate and deallocate buffers with the same size in a short time
frame."

Two workloads: the same-size churn the design targets (where deferred
coalescing wins) and a worst-case fragmentation pattern (where the
on-demand coalesce pass must still recover the space).
"""

import pytest

from conftest import emit
from repro.alloc import HugepageLibraryAllocator, HugepageLibraryConfig
from repro.analysis.report import Table
from repro.mem import AddressSpace, HugeTLBfs, PhysicalMemory

KB = 1024
MB = 1024 * 1024


def fresh_lib(coalesce_on_free):
    pm = PhysicalMemory(2048 * MB, hugepages=512)
    aspace = AddressSpace(pm, HugeTLBfs(pm))
    return HugepageLibraryAllocator(
        aspace, config=HugepageLibraryConfig(coalesce_on_free=coalesce_on_free)
    )


def same_size_churn(lib, cycles=400, size=8 * MB, holes=150):
    """The §3.2 item 5 pattern, in a realistically aged heap: many live
    small allocations have left scattered free extents, and the inner
    loop allocates/frees one large buffer per cycle.  Eager coalescing
    sweeps the whole freelist on *every* free; the paper's deferred
    policy only inserts."""
    pins = []
    for _ in range(holes):
        pins.append(lib.malloc(64 * KB))
        lib.malloc(64 * KB)  # survivor separating the future holes
    for p in pins:
        lib.free(p)  # leaves `holes` scattered free extents
    before = lib.stats.total_ns
    for _ in range(cycles):
        p = lib.malloc(size)
        lib.free(p)
    return lib.stats.total_ns - before


def fragmentation_recovery(lib, rounds=40):
    """Allocate many small pieces, free them, then demand a large run."""
    for _ in range(rounds):
        pieces = [lib.malloc(256 * KB) for _ in range(8)]
        for p in pieces:
            lib.free(p)
        big = lib.malloc(2 * MB - 4096)
        lib.free(big)
    return lib.stats.total_ns, lib.hugepages_mapped


def run_coalesce_ablation():
    out = {}
    for mode, flag in (("deferred (paper)", False), ("eager", True)):
        lib = fresh_lib(flag)
        out[(mode, "churn_ns")] = same_size_churn(lib)
        lib2 = fresh_lib(flag)
        frag_ns, pages = fragmentation_recovery(lib2)
        out[(mode, "frag_ns")] = frag_ns
        out[(mode, "frag_pages")] = pages
    return out


def test_coalesce_ablation(benchmark):
    out = benchmark.pedantic(run_coalesce_ablation, rounds=1, iterations=1)

    table = Table(
        ["policy", "same-size churn [us]", "fragmentation run [us]",
         "hugepages used"],
        title="ABLATION coalescing: deferred (paper) vs eager-on-free",
    )
    for mode in ("deferred (paper)", "eager"):
        table.add_row([
            mode, out[(mode, "churn_ns")] / 1000, out[(mode, "frag_ns")] / 1000,
            out[(mode, "frag_pages")],
        ])
    emit("\n" + table.render())

    # the paper's case: same-size churn is cheaper without eager merging
    assert out[("deferred (paper)", "churn_ns")] <= out[("eager", "churn_ns")]

    # and deferral does not leak memory: the on-demand coalesce recovers
    # the fragmented space, so both policies use the same pool
    assert out[("deferred (paper)", "frag_pages")] == out[("eager", "frag_pages")]

    benchmark.extra_info["churn_advantage_pct"] = round(
        (1 - out[("deferred (paper)", "churn_ns")] / out[("eager", "churn_ns")])
        * 100, 1
    )
