"""ABLATION — registration-cache capacity sensitivity.

§1 names the lazy-deregistration drawback: "memory remains allocated to
the application during their whole runtime".  A bounded cache trades
that residency for re-registration; this bench sweeps the capacity on a
working set larger than the cache to expose the cliff, and shows the
hugepage library pushes the cliff out by shrinking per-registration cost.
"""

import pytest

from conftest import emit
from repro.analysis.report import Table
from repro.core.placement import BufferPlacer, PlacementPolicy
from repro.mpi import MPIConfig, MPIWorld
from repro.systems import Cluster, presets

KB = 1024
MB = 1024 * 1024
CAPACITIES = [None, 16 * MB, 4 * MB, 1 * MB]
N_BUFFERS = 8
MSG = 1 * MB


def run_once(capacity, hugepages):
    cluster = Cluster(presets.opteron_infinihost_pcie(), 2)
    world = MPIWorld(cluster, ppn=1,
                     config=MPIConfig(lazy_dereg=True,
                                      regcache_capacity=capacity))
    out = {}

    def program(comm):
        placer = BufferPlacer(comm.proc)
        policy = (PlacementPolicy.HUGE_PAGES if hugepages
                  else PlacementPolicy.SMALL_PAGES)
        bufs = [placer.place(MSG, policy, offset=0) for _ in range(N_BUFFERS)]
        other = 1 - comm.rank
        t0 = comm.kernel.now
        for round_ in range(3):
            for buf in bufs:  # cycle the working set through the cache
                yield from comm.sendrecv(other, 8, MSG, source=other,
                                         recvtag=8, send_addr=buf.addr,
                                         recv_addr=buf.addr)
        if comm.rank == 0:
            out["ticks"] = comm.kernel.now - t0
            out["misses"] = comm.endpoint.regcache.misses
            out["cached"] = comm.endpoint.regcache.cached_bytes
        return None

    world.run(program)
    return out


def run_regcache_ablation():
    return {
        (cap, hp): run_once(cap, hp)
        for cap in CAPACITIES
        for hp in (False, True)
    }


def test_regcache_capacity_ablation(benchmark):
    results = benchmark.pedantic(run_regcache_ablation, rounds=1, iterations=1)

    table = Table(
        ["capacity", "pages", "ticks", "reg misses", "pinned bytes [MB]"],
        title="ABLATION regcache: capacity sweep, 8 x 1 MB working set",
    )
    for cap in CAPACITIES:
        for hp in (False, True):
            r = results[(cap, hp)]
            table.add_row([
                "unbounded" if cap is None else f"{cap // MB} MB",
                "2M" if hp else "4K", r["ticks"], r["misses"],
                r["cached"] / MB,
            ])
    emit("\n" + table.render())

    # unbounded cache: one registration per buffer, then pure hits
    assert results[(None, False)]["misses"] <= 2 * N_BUFFERS
    # the §1 drawback: the unbounded cache pins the whole working set
    assert results[(None, False)]["cached"] >= N_BUFFERS * MSG

    # a cache smaller than the working set thrashes
    assert results[(4 * MB, False)]["misses"] > 2 * results[(None, False)]["misses"]
    assert results[(4 * MB, False)]["ticks"] > results[(None, False)]["ticks"]

    # hugepages shrink each re-registration, so the cliff is gentler
    small_cliff = (results[(4 * MB, False)]["ticks"]
                   / results[(None, False)]["ticks"])
    huge_cliff = (results[(4 * MB, True)]["ticks"]
                  / results[(None, True)]["ticks"])
    assert huge_cliff < small_cliff

    benchmark.extra_info["small_page_cliff"] = round(small_cliff, 3)
    benchmark.extra_info["hugepage_cliff"] = round(huge_cliff, 3)
