"""FIG5 — IMB SendRecv bandwidth on the Opteron/InfiniHost/PCIe system.

Regenerates Fig 5's four curves: {small pages, hugepages} x {lazy
deregistration on, off}, message sizes up to 16 MB.  Shape claims from
§5.1:

- with lazy deregistration the two page sizes coincide (ATT stalls hide
  inside PCIe slack on this system);
- without it, small pages lose heavily above the 16 KB RDMA threshold;
- hugepage buffers > 4 MB "almost reach the maximum bandwidth of
  approximately 1750 MB/s" even without the cache;
- below the RDMA threshold, registration does not appear at all.
"""

import pytest

from conftest import emit
from repro.analysis.report import Table
from repro.systems import presets
from repro.workloads.imb import SendRecvBenchmark

KB = 1024
MB = 1024 * 1024
SIZES = [1 * KB, 4 * KB, 8 * KB, 16 * KB, 64 * KB, 256 * KB, 1 * MB, 4 * MB, 16 * MB]

CURVES = [
    ("small pages", False, True),
    ("hugepages", True, True),
    ("small pages, no lazy dereg", False, False),
    ("hugepages, no lazy dereg", True, False),
]


def run_fig5():
    bench = SendRecvBenchmark(presets.opteron_infinihost_pcie)
    return {
        label: bench.run(SIZES, hugepages=hp, lazy_dereg=lazy)
        for label, hp, lazy in CURVES
    }


def test_fig5_imb_sendrecv(benchmark):
    sweeps = benchmark.pedantic(run_fig5, rounds=1, iterations=1)

    table = Table(["size [KB]"] + [label for label, *_ in CURVES],
                  title="FIG5: IMB SendRecv bandwidth [MB/s] (AMD Opteron)")
    for size in SIZES:
        table.add_row(
            [size // KB] + [sweeps[label].bandwidth_at(size) for label, *_ in CURVES]
        )
    emit("\n" + table.render())

    lazy_small = sweeps["small pages"]
    lazy_huge = sweeps["hugepages"]
    reg_small = sweeps["small pages, no lazy dereg"]
    reg_huge = sweeps["hugepages, no lazy dereg"]

    # peak approaches ~1750 MB/s (IMB counts both directions)
    peak = lazy_huge.bandwidth_at(16 * MB)
    assert 1600 < peak < 1950

    # lazy-dereg parity between page sizes on this system
    for size in (256 * KB, 4 * MB, 16 * MB):
        a, b = lazy_small.bandwidth_at(size), lazy_huge.bandwidth_at(size)
        assert abs(a - b) / a < 0.02, f"parity broken at {size}"

    # registration costs hit small pages hard above the RDMA threshold
    assert reg_small.bandwidth_at(4 * MB) < 0.92 * lazy_small.bandwidth_at(4 * MB)
    assert reg_small.bandwidth_at(64 * KB) < 0.80 * lazy_small.bandwidth_at(64 * KB)

    # hugepages nearly erase the no-cache penalty for large buffers
    assert reg_huge.bandwidth_at(4 * MB) > 0.95 * lazy_huge.bandwidth_at(4 * MB)
    assert reg_huge.bandwidth_at(16 * MB) > 0.97 * lazy_huge.bandwidth_at(16 * MB)

    # no registration effect below the RDMA threshold
    assert reg_small.bandwidth_at(8 * KB) == pytest.approx(
        lazy_small.bandwidth_at(8 * KB), rel=0.01
    )

    benchmark.extra_info["peak_mb_s"] = round(peak)
    benchmark.extra_info["no_cache_penalty_small_4MB_pct"] = round(
        (1 - reg_small.bandwidth_at(4 * MB) / lazy_small.bandwidth_at(4 * MB)) * 100, 1
    )
