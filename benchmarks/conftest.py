"""Shared benchmark configuration.

Every benchmark regenerates one of the paper's tables or figures: it runs
the relevant simulation once (``benchmark.pedantic(..., rounds=1)`` — the
interesting time is *simulated* time, not harness wall time), prints the
same rows/series the paper reports, asserts the paper's shape claims, and
attaches the headline numbers to ``benchmark.extra_info``.

The emitted tables go to two places: the live stdout (visible with
``pytest -s``) and ``bench_results.txt`` at the repository root, which is
truncated at session start — so a plain ``pytest benchmarks/
--benchmark-only`` always leaves the full set of regenerated tables on
disk even though pytest captures stdout.
"""

import pathlib
import sys

RESULTS_PATH = pathlib.Path(__file__).resolve().parent.parent / "bench_results.txt"
_truncated = False


def emit(text: str) -> None:
    """Record a regenerated table/series (stdout + bench_results.txt)."""
    global _truncated
    mode = "a" if _truncated else "w"
    _truncated = True
    with open(RESULTS_PATH, mode) as fh:
        fh.write(text + "\n")
    sys.__stdout__.write(text + "\n")
    sys.__stdout__.flush()
