"""FIG3 — work-request duration vs SGE size for 1/2/4/8 SGEs.

Regenerates Fig 3 ("send operations with different number of scatter
gather elements", System p / eHCA, TBR ticks) plus the §4 text claims:
post constant over 1 B–64 KB, 128 SGEs ≈ 3× one SGE (post), 4 SGEs at
≤128 B ≤ 14 % more costly end to end.
"""

import pytest

from conftest import emit
from repro.analysis.report import Table, format_series
from repro.workloads.verbs_micro import measure_send

SGE_COUNTS = [1, 2, 4, 8]
SGE_SIZES = [1, 8, 32, 64, 128, 256, 512, 1024, 2048]


def run_fig3():
    results = {}
    for n in SGE_COUNTS:
        for size in SGE_SIZES:
            results[(n, size)] = measure_send(sges=n, sge_size=size)
    results[(128, 64)] = measure_send(sges=128, sge_size=64)
    results[(1, 65536)] = measure_send(sges=1, sge_size=65536)
    return results


def test_fig3_sge_duration(benchmark):
    results = benchmark.pedantic(run_fig3, rounds=1, iterations=1)

    table = Table(["SGE size"] + [f"{n} SGEs" for n in SGE_COUNTS],
                  title="FIG3: work request duration [TBR ticks] (System p)")
    for size in SGE_SIZES:
        table.add_row([size] + [results[(n, size)].total_ticks for n in SGE_COUNTS])
    emit("\n" + table.render())
    for n in SGE_COUNTS:
        emit(format_series(
            f"{n}-sge", SGE_SIZES,
            [results[(n, s)].total_ticks for s in SGE_SIZES],
            x_label="sge_size[B]", y_label="ticks",
        ))

    base = results[(1, 64)]
    post_1 = base.post_ticks
    post_128 = results[(128, 64)].post_ticks

    # §4: post cost approximately constant 1 B - 64 KB
    posts = [results[(1, s)].post_ticks for s in SGE_SIZES] + [
        results[(1, 65536)].post_ticks
    ]
    assert max(posts) == min(posts), "post cost must be size-independent"
    assert 150 <= post_1 <= 950  # "varies between 230-950 TBR ticks"

    # §4: 128 SGEs only ~3x one SGE
    assert 2.0 < post_128 / post_1 < 4.0

    # §4: 4 SGEs of <=128 B cost <= ~14 % more than 1 SGE
    for size in (8, 32, 64, 128):
        ratio = results[(4, size)].total_ticks / results[(1, size)].total_ticks
        assert ratio < 1.16, f"4 SGEs at {size} B: {ratio:.3f}"

    # §4: 1-SGE curve constant to 512 B, then linear
    assert results[(1, 512)].total_ticks < 1.3 * results[(1, 1)].total_ticks
    assert results[(1, 2048)].total_ticks > 1.15 * results[(1, 512)].total_ticks

    benchmark.extra_info["post_1sge_ticks"] = post_1
    benchmark.extra_info["post_128sge_over_1sge"] = round(post_128 / post_1, 2)
    benchmark.extra_info["4sge_64B_overhead_pct"] = round(
        (results[(4, 64)].total_ticks / base.total_ticks - 1) * 100, 1
    )
