"""FIG6 — NAS benchmarks with the preloaded hugepage library.

Regenerates Fig 6: CG/EP/IS/LU/MG on 2 nodes x 4 processes, on the AMD
Opteron and IBM System p presets, decomposed mpiP-style into
communication / other / overall improvement.  As in the paper, the runs
are class C except MG on the Opteron (class B: the 2 GB nodes).

Shape claims asserted (§5.2): communication improvement > 8 % for all
kernels except MG and IS; every kernel improves overall except IS; the
best case clears 10 %.
"""

import pytest

from conftest import emit
from repro.analysis.report import Table
from repro.systems import presets
from repro.workloads.nas import KERNELS
from repro.workloads.nas.common import compare_hugepages

MACHINES = [
    ("opteron", presets.opteron_infinihost_pcie, 720),
    ("systemp", presets.systemp_ehca, 2048),
]


def run_fig6():
    out = {}
    for mname, factory, pool in MACHINES:
        for kname, prog in KERNELS.items():
            klass = "B" if (kname == "MG" and mname == "opteron") else "C"
            out[(mname, kname)] = compare_hugepages(
                prog, factory(), klass=klass, nas_hugepage_pool=pool
            )
    return out


def test_fig6_nas_improvements(benchmark):
    results = benchmark.pedantic(run_fig6, rounds=1, iterations=1)

    for mname, _, _ in MACHINES:
        table = Table(
            ["kernel", "class", "comm %", "other %", "overall %", "TLB x"],
            title=f"FIG6: hugepage improvement, {mname} (2 nodes x 4 procs)",
        )
        for kname in KERNELS:
            c = results[(mname, kname)]
            table.add_row([
                kname, c.small.klass, c.comm_improvement_pct,
                c.other_improvement_pct, c.overall_improvement_pct,
                c.tlb_miss_ratio,
            ])
        emit("\n" + table.render())

    opteron = {k: results[("opteron", k)] for k in KERNELS}

    # "Except for MG and IS, all benchmarks show communication
    # performance benefits of more than 8 %"
    for name in ("CG", "EP", "LU"):
        assert opteron[name].comm_improvement_pct > 8.0, name
    for name in ("MG", "IS"):
        assert opteron[name].comm_improvement_pct < 8.0, name

    # "Overall, all benchmarks benefited from using hugepages - except
    # for IS."
    for name in ("CG", "EP", "LU", "MG"):
        assert opteron[name].overall_improvement_pct > 0.0, name
    assert opteron["IS"].overall_improvement_pct < 0.0

    # "The results show time improvements of more than 10 %"
    assert max(c.overall_improvement_pct for c in opteron.values()) > 10.0

    # every run is numerically verified (the runner raises otherwise);
    # record the headline numbers
    benchmark.extra_info["opteron_overall_pct"] = {
        k: round(c.overall_improvement_pct, 1) for k, c in opteron.items()
    }
    benchmark.extra_info["systemp_overall_pct"] = {
        k: round(results[("systemp", k)].overall_improvement_pct, 1)
        for k in KERNELS
    }
