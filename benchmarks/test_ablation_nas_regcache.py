"""ABLATION — NAS with lazy deregistration disabled.

Fig 6 runs under MVAPICH2 defaults (registration cache on).  This
ablation disables the cache and measures both placements again —
answering "where does the paper's NAS communication gain actually come
from?".  The result is instructive: the gain is *larger with* the cache
than without it.  With the cache on, libc's workspace churn keeps
invalidating entries (1100 misses) while the hugepage library's
never-unmapped pool keeps them warm (44 misses) — an asymmetry worth
more than the raw per-message registration savings that remain when
both sides pay registration every time.  The paper's mechanism is the
cache interaction, not just cheap registration.
"""

import pytest

from conftest import emit
from repro.analysis.report import Table
from repro.systems import presets
from repro.workloads.nas import KERNELS
from repro.workloads.nas.common import run_nas

KERNEL = "CG"  # the most registration-bound kernel


def run_nas_regcache_ablation():
    out = {}
    for lazy in (True, False):
        for hugepages in (False, True):
            out[(lazy, hugepages)] = run_nas(
                KERNELS[KERNEL], presets.opteron_infinihost_pcie(),
                hugepages=hugepages, klass="B", lazy_dereg=lazy,
                nas_hugepage_pool=720,
            )
    return out


def test_nas_lazy_dereg_ablation(benchmark):
    out = benchmark.pedantic(run_nas_regcache_ablation, rounds=1, iterations=1)

    table = Table(
        ["regcache", "pages", "comm ticks", "total ticks", "reg misses"],
        title=f"ABLATION NAS regcache: {KERNEL} class B, Opteron",
    )
    for lazy in (True, False):
        for hugepages in (False, True):
            r = out[(lazy, hugepages)]
            table.add_row([
                "on" if lazy else "off",
                "2M" if hugepages else "4K",
                round(r.comm_ticks), r.total_ticks, r.regcache_misses,
            ])
    emit("\n" + table.render())

    def comm_improvement(lazy):
        small = out[(lazy, False)].comm_ticks
        huge = out[(lazy, True)].comm_ticks
        return (1 - huge / small) * 100

    gain_cached = comm_improvement(True)
    gain_uncached = comm_improvement(False)

    assert all(r.verified for r in out.values())

    # the cache helps both placements in absolute terms...
    for hugepages in (False, True):
        assert out[(True, hugepages)].comm_ticks <= \
            out[(False, hugepages)].comm_ticks

    # ...but the *hugepage advantage* is larger with the cache on: the
    # library keeps it warm (few misses) while libc churn thrashes it —
    # the cache-interaction mechanism behind Fig 6
    assert out[(True, True)].regcache_misses < \
        out[(True, False)].regcache_misses / 5
    assert gain_cached > gain_uncached > 0.0
    assert 5.0 < gain_cached < 30.0

    benchmark.extra_info["comm_gain_cached_pct"] = round(gain_cached, 1)
    benchmark.extra_info["comm_gain_uncached_pct"] = round(gain_uncached, 1)
