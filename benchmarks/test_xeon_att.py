"""XEON6 — the §5.1 Xeon driver-patch experiment.

"We repeated our measurements on an Intel Xeon with lazy deregistration
enabled and hugepage mapped buffers: One time, we used the unmodified
OpenIB driver, so the adapter saw 4 KB pages, another time the modified
OpenIB driver was used and 2 MB pages were sent.  The bandwidth with
2 MB pages increased up to 6 %, what could be due to less ATT misses on
the InfiniHost adapter in this system."

Regenerated as two hugepage-buffer IMB sweeps on the Xeon preset with
the driver patch off/on, plus the Opteron control where PCIe slack hides
the stalls entirely.
"""

import pytest

from conftest import emit
from repro.analysis.report import Table
from repro.systems import presets
from repro.workloads.imb import SendRecvBenchmark

KB = 1024
MB = 1024 * 1024
SIZES = [64 * KB, 256 * KB, 1 * MB, 4 * MB, 16 * MB]


def run_xeon():
    xeon = SendRecvBenchmark(presets.xeon_infinihost_pcix)
    opteron = SendRecvBenchmark(presets.opteron_infinihost_pcie)
    return {
        "xeon stock": xeon.run(SIZES, hugepages=True, lazy_dereg=True,
                               driver_hugepage_aware=False),
        "xeon patched": xeon.run(SIZES, hugepages=True, lazy_dereg=True,
                                 driver_hugepage_aware=True),
        "opteron stock": opteron.run(SIZES, hugepages=True, lazy_dereg=True,
                                     driver_hugepage_aware=False),
        "opteron patched": opteron.run(SIZES, hugepages=True, lazy_dereg=True,
                                       driver_hugepage_aware=True),
    }


def test_xeon_driver_patch_gain(benchmark):
    sweeps = benchmark.pedantic(run_xeon, rounds=1, iterations=1)

    table = Table(
        ["size [KB]", "Xeon 4K->HCA", "Xeon 2M->HCA", "gain %",
         "Opteron 4K->HCA", "Opteron 2M->HCA"],
        title="XEON6: hugepage buffers, stock vs patched driver [MB/s]",
    )
    for size in SIZES:
        stock = sweeps["xeon stock"].bandwidth_at(size)
        patched = sweeps["xeon patched"].bandwidth_at(size)
        table.add_row([
            size // KB, stock, patched, (patched - stock) / stock * 100,
            sweeps["opteron stock"].bandwidth_at(size),
            sweeps["opteron patched"].bandwidth_at(size),
        ])
    emit("\n" + table.render())

    gains = [
        (sweeps["xeon patched"].bandwidth_at(s) - sweeps["xeon stock"].bandwidth_at(s))
        / sweeps["xeon stock"].bandwidth_at(s) * 100
        for s in SIZES
        if s >= 256 * KB
    ]
    # "increased up to 6 %": visible, single-digit gain on the PCI-X box
    assert 2.0 < max(gains) < 8.0

    # the Opteron control: PCIe slack hides the ATT stalls completely
    for s in (1 * MB, 4 * MB):
        a = sweeps["opteron stock"].bandwidth_at(s)
        b = sweeps["opteron patched"].bandwidth_at(s)
        assert abs(a - b) / a < 0.02

    benchmark.extra_info["xeon_max_gain_pct"] = round(max(gains), 1)
