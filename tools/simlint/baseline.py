"""Whole-program findings and the committed baseline/allowlist ledger.

Per-line rules keep their inline ``# detlint: ignore[...]`` escape
hatch; the whole-program passes use a *ledger* instead
(``tools/simlint/baseline.json``), because their findings attach to
symbols (a class attribute, a function) rather than single lines, and
because a reviewed, committed list of justified exceptions is the
auditable artifact a lint gate needs.

Every entry must carry a non-empty ``reason`` — the justification lives
inline in the ledger, next to the suppression it excuses.  An entry
matches a finding by ``(pass, symbol)``.  Entries that match nothing
are reported as *stale* so the ledger can only shrink as defects are
fixed; staleness is a warning, not a gate failure, so a fix and its
ledger cleanup need not land in the same commit.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, List, Optional, Tuple


@dataclass(frozen=True)
class PassFinding:
    """One whole-program finding, attached to a project symbol."""

    pass_id: str    #: e.g. ``checkpoint-coverage``
    path: str
    line: int
    symbol: str     #: e.g. ``repro.ib.verbs.QueuePair.max_send_wr``
    message: str

    def render(self) -> str:
        return (f"{self.path}:{self.line}: {self.pass_id} "
                f"[{self.symbol}] {self.message}")

    def to_json(self) -> Dict[str, object]:
        return {
            "pass": self.pass_id,
            "path": self.path,
            "line": self.line,
            "symbol": self.symbol,
            "message": self.message,
        }


class BaselineError(Exception):
    """The ledger itself is malformed (a config error, exit code 2)."""


@dataclass(frozen=True)
class BaselineEntry:
    pass_id: str
    symbol: str
    reason: str


class Baseline:
    """The parsed ledger plus match bookkeeping."""

    def __init__(self, entries: List[BaselineEntry], path: Optional[str] = None):
        self.entries = entries
        self.path = path
        self._used: Dict[Tuple[str, str], bool] = {
            (e.pass_id, e.symbol): False for e in entries
        }

    @classmethod
    def load(cls, path: Path) -> "Baseline":
        try:
            payload = json.loads(Path(path).read_text(encoding="utf-8"))
        except (OSError, json.JSONDecodeError) as exc:
            raise BaselineError(f"cannot read baseline {path}: {exc}") from exc
        raw = payload.get("entries")
        if not isinstance(raw, list):
            raise BaselineError(f"{path}: expected a top-level 'entries' list")
        entries: List[BaselineEntry] = []
        for i, item in enumerate(raw):
            if not isinstance(item, dict):
                raise BaselineError(f"{path}: entry {i} is not an object")
            pass_id = item.get("pass")
            symbol = item.get("symbol")
            reason = item.get("reason")
            if not pass_id or not symbol:
                raise BaselineError(
                    f"{path}: entry {i} needs both 'pass' and 'symbol'")
            if not isinstance(reason, str) or not reason.strip():
                raise BaselineError(
                    f"{path}: entry {i} ({pass_id} {symbol}) has no "
                    f"justification; every ledger entry must carry a "
                    f"non-empty 'reason'")
            entries.append(BaselineEntry(pass_id=str(pass_id),
                                         symbol=str(symbol),
                                         reason=reason.strip()))
        return cls(entries, path=str(path))

    @classmethod
    def empty(cls) -> "Baseline":
        return cls([])

    def suppresses(self, finding: PassFinding) -> bool:
        key = (finding.pass_id, finding.symbol)
        if key in self._used:
            self._used[key] = True
            return True
        return False

    def stale_entries(self) -> List[BaselineEntry]:
        """Entries that matched no finding in this run."""
        return [e for e in self.entries
                if not self._used[(e.pass_id, e.symbol)]]


def apply_baseline(findings: List[PassFinding],
                   baseline: Baseline) -> List[PassFinding]:
    """Findings that survive the ledger, in stable order."""
    return [f for f in findings if not baseline.suppresses(f)]
