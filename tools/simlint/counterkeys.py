"""Pass ``counter-keys``: every counter name must be in the registry.

:class:`repro.analysis.counters.CounterSet` is a stringly-typed API: a
typo'd key (``hca.tx_mesages``) silently creates a fresh counter, the
report shows a zero where data should be, and nothing ever fails.  This
pass collects every key the tree can emit into a generated registry
(``tools/simlint/counter_registry.json``) and then holds call sites to
it: an unregistered literal key is a finding, and an unregistered key
at edit distance 1 from a registered one is called out as a probable
typo of that key.

Key collection understands the three shapes the tree actually uses:

- literal keys — ``counters.add("att.hit")`` and the tuple literals of
  ``add_many((("prefetch.lines", n), ...))``;
- f-string keys — ``f"alloc.{self.name}.malloc"`` becomes the pattern
  ``alloc.*.malloc`` (matched with :func:`fnmatch.fnmatchcase`);
- table keys — ``counters.add(SplitTLB._MISS_NAMES[sz])`` resolves the
  class-level dict/mapping literal and registers its string values.

Near-miss checking applies only to *unregistered* keys: the registry
legitimately contains distance-1 pairs (``hca.tx_bytes`` /
``hca.rx_bytes``), and flagging those would be pure noise.

Regenerate the registry with ``python tools/simlint --update-counter-registry``
after adding a counter; the diff of the committed registry is then the
review surface for new keys.
"""

from __future__ import annotations

import ast
import json
import re
from fnmatch import fnmatchcase
from pathlib import Path
from typing import Dict, List, Optional, Set, Tuple

from simlint.baseline import PassFinding
from simlint.model import Project, dotted

PASS_ID = "counter-keys"

REGISTRY_FILE = "counter_registry.json"

_COUNTER_RECV = re.compile(r"(^|\.)counters$")


def _counter_call(node: ast.Call) -> Optional[str]:
    """``"add"``/``"add_many"`` when *node* targets a CounterSet."""
    if not isinstance(node.func, ast.Attribute):
        return None
    if node.func.attr not in ("add", "add_many"):
        return None
    recv = dotted(node.func.value)
    if recv is None or not _COUNTER_RECV.search(recv):
        return None
    return node.func.attr


def _joinedstr_pattern(node: ast.JoinedStr) -> str:
    parts: List[str] = []
    for value in node.values:
        if isinstance(value, ast.Constant) and isinstance(value.value, str):
            parts.append(value.value)
        else:
            parts.append("*")
    return "".join(parts)


def _key_args(node: ast.Call, method: str) -> List[ast.expr]:
    """The expressions used as counter names in this call."""
    if method == "add":
        return list(node.args[:1])
    # add_many(pairs): a tuple/list literal of (name, amount) pairs
    out: List[ast.expr] = []
    for arg in node.args[:1]:
        if isinstance(arg, (ast.Tuple, ast.List)):
            for elt in arg.elts:
                if isinstance(elt, (ast.Tuple, ast.List)) and elt.elts:
                    out.append(elt.elts[0])
    return out


def _table_values(project: Project, module: str,
                  expr: ast.Subscript) -> Optional[Set[str]]:
    """String values of a class-level mapping literal indexed here,
    e.g. ``SplitTLB._MISS_NAMES[sz]`` or ``self._HIT_NAMES[sz]``."""
    base = dotted(expr.value)
    if base is None or "." not in base:
        return None
    attr = base.rsplit(".", 1)[-1]
    tree = project.modules.get(module)
    if tree is None:
        return None
    for node in ast.walk(tree):
        if not isinstance(node, ast.Assign):
            continue
        for target in node.targets:
            name = target.id if isinstance(target, ast.Name) else (
                target.attr if isinstance(target, ast.Attribute) else None)
            if name != attr:
                continue
            values: Set[str] = set()
            for sub in ast.walk(node.value):
                if isinstance(sub, ast.Constant) and isinstance(
                        sub.value, str):
                    values.add(sub.value)
            if values:
                return values
    return None


def collect_keys(project: Project) -> Tuple[Set[str], Set[str]]:
    """(exact keys, f-string patterns) emitted anywhere in the tree."""
    keys: Set[str] = set()
    patterns: Set[str] = set()
    for module, tree in project.modules.items():
        for node in ast.walk(tree):
            if not isinstance(node, ast.Call):
                continue
            method = _counter_call(node)
            if method is None:
                continue
            for arg in _key_args(node, method):
                if isinstance(arg, ast.Constant) and isinstance(
                        arg.value, str):
                    keys.add(arg.value)
                elif isinstance(arg, ast.JoinedStr):
                    patterns.add(_joinedstr_pattern(arg))
                elif isinstance(arg, ast.Subscript):
                    table = _table_values(project, module, arg)
                    if table:
                        keys.update(table)
    return keys, patterns


def write_registry(project: Project, path: Path) -> Dict[str, List[str]]:
    keys, patterns = collect_keys(project)
    payload = {"keys": sorted(keys), "patterns": sorted(patterns)}
    path.write_text(json.dumps(payload, indent=2) + "\n", encoding="utf-8")
    return payload


def load_registry(path: Path) -> Optional[Dict[str, List[str]]]:
    try:
        payload = json.loads(path.read_text(encoding="utf-8"))
    except (OSError, json.JSONDecodeError):
        return None
    if not isinstance(payload, dict):
        return None
    return {
        "keys": [str(k) for k in payload.get("keys", [])],
        "patterns": [str(p) for p in payload.get("patterns", [])],
    }


def _edit_distance_1(a: str, b: str) -> bool:
    """True when a single insert/delete/substitute turns *a* into *b*."""
    if a == b:
        return False
    la, lb = len(a), len(b)
    if abs(la - lb) > 1:
        return False
    if la > lb:
        a, b, la, lb = b, a, lb, la
    # now la <= lb
    i = 0
    while i < la and a[i] == b[i]:
        i += 1
    if la == lb:
        return a[i + 1:] == b[i + 1:]
    return a[i:] == b[i + 1:]


def _registered(key: str, keys: Set[str], patterns: List[str]) -> bool:
    if key in keys:
        return True
    return any(fnmatchcase(key, p) for p in patterns)


def run(project: Project,
        registry: Optional[Dict[str, List[str]]]) -> List[PassFinding]:
    if registry is None:
        return [PassFinding(
            pass_id=PASS_ID, path=f"tools/simlint/{REGISTRY_FILE}", line=0,
            symbol="counter-registry",
            message=("counter registry is missing or unreadable; "
                     "regenerate it with --update-counter-registry"))]
    keys = set(registry["keys"])
    patterns = list(registry["patterns"])
    findings: List[PassFinding] = []
    for module, tree in project.modules.items():
        path = project.module_paths[module]
        for node in ast.walk(tree):
            if not isinstance(node, ast.Call):
                continue
            method = _counter_call(node)
            if method is None:
                continue
            for arg in _key_args(node, method):
                key: Optional[str] = None
                if isinstance(arg, ast.Constant) and isinstance(
                        arg.value, str):
                    key = arg.value
                elif isinstance(arg, ast.JoinedStr):
                    pat = _joinedstr_pattern(arg)
                    if pat not in patterns:
                        findings.append(PassFinding(
                            pass_id=PASS_ID, path=path, line=arg.lineno,
                            symbol=pat,
                            message=(f"f-string counter key pattern "
                                     f"{pat!r} is not in the registry; "
                                     f"run --update-counter-registry")))
                    continue
                else:
                    continue  # dynamic key: not statically checkable
                if _registered(key, keys, patterns):
                    continue
                near = sorted(k for k in keys if _edit_distance_1(key, k))
                if near:
                    findings.append(PassFinding(
                        pass_id=PASS_ID, path=path, line=arg.lineno,
                        symbol=key,
                        message=(f"counter key {key!r} is unregistered and "
                                 f"one edit away from registered "
                                 f"{near[0]!r} — probable typo")))
                else:
                    findings.append(PassFinding(
                        pass_id=PASS_ID, path=path, line=arg.lineno,
                        symbol=key,
                        message=(f"counter key {key!r} is not in the "
                                 f"registry; add the counter deliberately "
                                 f"with --update-counter-registry")))
    findings.sort(key=lambda f: (f.path, f.line, f.symbol))
    return findings
