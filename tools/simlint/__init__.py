"""simlint: determinism lint for the repro tree.

Grown out of ``tools/detlint.py``.  Two layers:

- :mod:`simlint.perline` — the original per-line rules (wall-clock
  reads, unseeded randomness, iteration-order hazards, ...) with the
  same ``# detlint: ignore[...]`` inline suppression syntax;
- four whole-program passes over a project model
  (:mod:`simlint.model`): :mod:`simlint.taint` (host values reaching
  sim context), :mod:`simlint.checkpoint_cov` (checkpoint field
  coverage), :mod:`simlint.ownership` (hold/release and pin/unpin
  balance) and :mod:`simlint.counterkeys` (counter-name registry).

Run it as ``python tools/simlint`` (see :mod:`simlint.cli`), through
``repro lint``, or keep using ``python tools/detlint.py`` for the
per-line subset.  Pure stdlib by design — it must run anywhere the
tests run, including CI images before any pip install.
"""

from __future__ import annotations

from simlint.cli import main

__all__ = ["main"]
