"""Command line front end: per-line rules + whole-program passes.

``python tools/simlint [paths...]`` runs everything detlint ran (the
per-line determinism rules, same suppression syntax) *plus* the four
whole-program passes, against ``src/repro`` by default.

Exit codes — same contract as detlint and ``repro lint``:

- ``0`` — clean (after inline suppressions and the baseline ledger),
- ``1`` — findings,
- ``2`` — bad invocation (unknown path, malformed baseline/spec).

``--format json`` emits one machine-readable object (findings, stale
ledger entries, counts) for the CI artifact; text format prints one
finding per line.  ``--update-counter-registry`` regenerates
``counter_registry.json`` from the tree and then lints against it.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import Dict, List, Optional

from simlint import checkpoint_cov, counterkeys, ownership, perline, taint
from simlint.baseline import (Baseline, BaselineError, PassFinding,
                              apply_baseline)
from simlint.model import Project

_HERE = Path(__file__).resolve().parent

#: analysis ids accepted by ``--only`` (``perline`` = the detlint rules)
ANALYSES = ("perline", taint.PASS_ID, checkpoint_cov.PASS_ID,
            ownership.PASS_ID, counterkeys.PASS_ID)


def _build_parser() -> argparse.ArgumentParser:
    p = argparse.ArgumentParser(
        prog="simlint",
        description="determinism lint: per-line rules + whole-program passes")
    p.add_argument("paths", nargs="*", default=["src/repro"],
                   help="files or package directories (default: src/repro)")
    p.add_argument("--format", choices=("text", "json"), default="text",
                   dest="fmt", help="output format (default: text)")
    p.add_argument("--list-rules", action="store_true",
                   help="list per-line rules and whole-program passes")
    p.add_argument("--only", default=None, metavar="IDS",
                   help="comma-separated analysis ids to run "
                        f"(of: {', '.join(ANALYSES)})")
    p.add_argument("--baseline", default=None, metavar="PATH",
                   help="baseline ledger (default: tools/simlint/"
                        "baseline.json when present)")
    p.add_argument("--no-baseline", action="store_true",
                   help="ignore the baseline ledger")
    p.add_argument("--registry", default=None, metavar="PATH",
                   help="counter-key registry (default: tools/simlint/"
                        "counter_registry.json)")
    p.add_argument("--update-counter-registry", action="store_true",
                   help="regenerate the counter-key registry from the "
                        "tree before linting")
    p.add_argument("--checkpoint-spec", default=None, metavar="PATH",
                   help="JSON checkpoint-coverage spec (default: the "
                        "built-in repro spec)")
    return p


def _list_rules() -> str:
    lines = ["per-line rules:"]
    for rule_id in sorted(perline.RULES):
        lines.append(f"  {rule_id}: {perline.RULES[rule_id]}")
    lines.append("whole-program passes:")
    for mod in (taint, checkpoint_cov, ownership, counterkeys):
        doc = (mod.__doc__ or "").strip().splitlines()[0]
        lines.append(f"  {mod.PASS_ID}: {doc}")
    return "\n".join(lines)


def _load_spec(path: str) -> Optional[List[Dict[str, object]]]:
    try:
        payload = json.loads(Path(path).read_text(encoding="utf-8"))
    except (OSError, json.JSONDecodeError):
        return None
    if isinstance(payload, dict):
        payload = payload.get("entries")
    if not isinstance(payload, list):
        return None
    return payload


def run_passes(project: Project, only: List[str],
               spec: Optional[List[Dict[str, object]]],
               registry_path: Path,
               update_registry: bool) -> List[PassFinding]:
    findings: List[PassFinding] = []
    if taint.PASS_ID in only:
        findings += taint.run(project)
    if checkpoint_cov.PASS_ID in only:
        if spec is not None:
            findings += checkpoint_cov.run(project, spec)
        elif project.package == "repro":
            findings += checkpoint_cov.run(project)
    if ownership.PASS_ID in only:
        findings += ownership.run(project)
    if counterkeys.PASS_ID in only:
        if update_registry:
            registry: Optional[Dict[str, List[str]]] = \
                counterkeys.write_registry(project, registry_path)
        else:
            registry = counterkeys.load_registry(registry_path)
        findings += counterkeys.run(project, registry)
    return findings


def main(argv: Optional[List[str]] = None) -> int:
    parser = _build_parser()
    try:
        args = parser.parse_args(argv)
    except SystemExit as exc:  # argparse reports its own message
        code = exc.code
        return code if isinstance(code, int) else 2

    if args.list_rules:
        print(_list_rules())
        return 0

    only = list(ANALYSES)
    if args.only:
        only = [s.strip() for s in args.only.split(",") if s.strip()]
        unknown = [s for s in only if s not in ANALYSES]
        if unknown:
            print(f"simlint: unknown analysis id(s): {', '.join(unknown)}",
                  file=sys.stderr)
            return 2

    baseline = Baseline.empty()
    if not args.no_baseline:
        baseline_path = Path(args.baseline) if args.baseline \
            else _HERE / "baseline.json"
        if args.baseline or baseline_path.exists():
            try:
                baseline = Baseline.load(baseline_path)
            except BaselineError as exc:
                print(f"simlint: {exc}", file=sys.stderr)
                return 2

    spec: Optional[List[Dict[str, object]]] = None
    if args.checkpoint_spec:
        spec = _load_spec(args.checkpoint_spec)
        if spec is None:
            print(f"simlint: cannot read checkpoint spec "
                  f"{args.checkpoint_spec}", file=sys.stderr)
            return 2

    registry_path = Path(args.registry) if args.registry \
        else _HERE / counterkeys.REGISTRY_FILE

    perline_findings: List[perline.Finding] = []
    pass_findings: List[PassFinding] = []
    for raw in args.paths:
        path = Path(raw)
        if not path.exists():
            print(f"simlint: no such path: {raw}", file=sys.stderr)
            return 2
        try:
            if "perline" in only:
                for f in perline.iter_python_files([str(path)]):
                    perline_findings.extend(perline.lint_file(f))
            if (path.is_dir() and (path / "__init__.py").exists()
                    and only != ["perline"]):
                pass_findings.extend(run_passes(
                    Project(path), only, spec, registry_path,
                    args.update_counter_registry))
        except SyntaxError as exc:
            print(f"simlint: {raw}: syntax error: {exc}", file=sys.stderr)
            return 2

    pass_findings = apply_baseline(pass_findings, baseline)
    stale = baseline.stale_entries()

    if args.fmt == "json":
        payload = {
            "findings": (
                [{"check": f.rule, "path": f.path, "line": f.line,
                  "col": f.col, "message": f.message}
                 for f in perline_findings]
                + [dict(f.to_json(), check=f.pass_id)
                   for f in pass_findings]),
            "stale_baseline_entries": [
                {"pass": e.pass_id, "symbol": e.symbol, "reason": e.reason}
                for e in stale],
            "counts": {
                "perline": len(perline_findings),
                "passes": len(pass_findings),
            },
        }
        print(json.dumps(payload, indent=2))
    else:
        for f in perline_findings:
            print(f.render())
        for pf in pass_findings:
            print(pf.render())
        for e in stale:
            print(f"simlint: warning: stale baseline entry "
                  f"({e.pass_id} {e.symbol}) matched nothing — remove it",
                  file=sys.stderr)

    return 1 if (perline_findings or pass_findings) else 0
