"""Pass ``host-taint``: host-only values must not reach sim-context calls.

The determinism contract allows host code (the batch supervisor, the
serve HTTP layer, the perf harness, the CLI) to read wall clocks,
sockets and the environment — for supervision, deadlines and logging —
but none of those values may ever *parameterise the simulation*: a
simulated cluster seeded from ``time.monotonic()`` replays differently
on resume, which is exactly the class of bug no per-line rule can see
once the value travels through a couple of assignments and helpers.

Mechanics:

- **Sim-context functions** are found by call-graph reachability onto
  the kernel primitives: a function that (transitively through resolved
  project calls) invokes ``SimKernel.event/timeout/process/run/schedule``
  — or any call spelled ``*.kernel.<primitive>(...)`` — drives the
  simulated timeline and is sim-context.
- **Host sources** taint a value: host-clock reads (including the
  ``perf_counter``/``monotonic`` family the per-line rules deliberately
  allow for measurement), socket/stream receives, and ``os.environ`` /
  ``os.getenv`` reads of anything beyond the sanctioned determinism
  toggles (:data:`SANCTIONED_ENV`).
- Taint propagates through assignments, arbitrary expressions, returns
  (a function returning taint taints its call sites) and arguments (a
  tainted argument taints the callee's parameter), iterated to a
  fixpoint over the whole call graph.
- A finding fires where a tainted expression is passed as an argument
  to a sim-context function — the boundary crossing, not every hop of
  the chain.
"""

from __future__ import annotations

import ast
import re
from typing import Dict, List, Optional, Set, Tuple

from simlint.baseline import PassFinding
from simlint.model import FunctionInfo, Project, dotted

PASS_ID = "host-taint"

#: environment toggles that select *which deterministic machinery* runs
#: (never a simulated quantity), so reading them is not a host leak
SANCTIONED_ENV = {
    "REPRO_NO_FASTPATH",
    "REPRO_SCHEDULER",
    "REPRO_SANITIZE",
    "REPRO_NO_FOLD",
}

#: host clock reads — includes the monotonic/perf family that the
#: per-line ``wallclock`` rule allows for *measurement*: measuring is
#: fine, feeding the measurement into simulated state is not
_CLOCK_SOURCES = {
    "time.time", "time.time_ns", "time.monotonic", "time.monotonic_ns",
    "time.perf_counter", "time.perf_counter_ns", "time.process_time",
    "time.process_time_ns",
    "datetime.now", "datetime.utcnow", "datetime.today",
    "datetime.datetime.now", "datetime.datetime.utcnow", "date.today",
    "datetime.date.today",
}

#: method names whose call result is data read off a socket
_SOCKET_READS = {"recv", "recvfrom", "recv_into", "recvmsg"}
#: stream reads count only on receivers that look like network streams
_STREAM_READS = {"read", "readline", "readexactly", "readuntil"}
_STREAM_RECV_NAMES = re.compile(r"(reader|sock|conn)", re.IGNORECASE)

#: calls spelled ``<...>.kernel.<prim>()`` (or on a bare name ending in
#: ``kernel``) mark a function as driving the simulated timeline even
#: when the receiver's type cannot be resolved
_KERNEL_PRIM_CALL = re.compile(
    r"(^|\.)kernel\.(event|timeout|process|run|schedule|_schedule)$")
_KERNEL_METHODS = {"event", "timeout", "process", "run", "schedule",
                   "_schedule"}


def _is_env_source(call: ast.Call) -> Optional[str]:
    """The env var name when this call/subscript reads the environment
    beyond the sanctioned toggles ('<dynamic>' for non-literal keys)."""
    d = dotted(call.func)
    if d in ("os.getenv", "os.environ.get", "environ.get"):
        if call.args and isinstance(call.args[0], ast.Constant):
            key = call.args[0].value
            return None if key in SANCTIONED_ENV else str(key)
        return "<dynamic>"
    return None


def _env_subscript(node: ast.Subscript) -> Optional[str]:
    d = dotted(node.value)
    if d in ("os.environ", "environ"):
        if isinstance(node.slice, ast.Constant):
            key = node.slice.value
            return None if key in SANCTIONED_ENV else str(key)
        return "<dynamic>"
    return None


def _source_of_call(call: ast.Call) -> Optional[str]:
    """A human-readable source description when *call* reads host state."""
    d = dotted(call.func)
    if d in _CLOCK_SOURCES:
        return f"host clock ({d})"
    if isinstance(call.func, ast.Attribute):
        attr = call.func.attr
        recv = dotted(call.func.value) or ""
        if attr in _SOCKET_READS:
            return f"socket receive ({recv}.{attr})"
        if attr in _STREAM_READS and _STREAM_RECV_NAMES.search(recv):
            return f"stream read ({recv}.{attr})"
    env = _is_env_source(call)
    if env is not None:
        return f"unsanctioned environment read ({env})"
    return None


def _calls_kernel_prim(project: Project, qual: str) -> bool:
    for callee, node in project.calls.get(qual, []):
        if callee and ".SimKernel." in callee and \
                callee.rsplit(".", 1)[-1] in _KERNEL_METHODS:
            return True
        d = dotted(node.func)
        if d and _KERNEL_PRIM_CALL.search(d):
            return True
    return False


def sim_context_functions(project: Project) -> Set[str]:
    """Functions from which a kernel primitive is reachable."""
    sim: Set[str] = {q for q in project.functions
                     if _calls_kernel_prim(project, q)}
    # reverse closure: callers of sim-context functions are sim-context
    changed = True
    while changed:
        changed = False
        for qual in project.functions:
            if qual in sim:
                continue
            if project.callees(qual) & sim:
                sim.add(qual)
                changed = True
    return sim


class _TaintState:
    """Fixpoint state: per-function tainted params and return taint."""

    def __init__(self) -> None:
        self.tainted_params: Dict[str, Dict[str, str]] = {}  # fn -> param -> why
        self.returns: Dict[str, Optional[str]] = {}          # fn -> why | None


def _expr_taint(expr: ast.AST, env: Dict[str, str], project: Project,
                fn: FunctionInfo, state: _TaintState) -> Optional[str]:
    """Why this expression is tainted, or None."""
    for node in ast.walk(expr):
        if isinstance(node, ast.Name) and node.id in env:
            return env[node.id]
        if isinstance(node, ast.Attribute):
            d = dotted(node)
            if d and d in env:
                return env[d]
        if isinstance(node, ast.Subscript):
            env_key = _env_subscript(node)
            if env_key is not None:
                return f"unsanctioned environment read ({env_key})"
        if isinstance(node, ast.Call):
            src = _source_of_call(node)
            if src:
                return src
            callee = project.resolve_call(fn, node)
            if callee:
                why = state.returns.get(callee)
                if why:
                    return f"{why} via {callee}()"
    return None


def _walk_function(project: Project, fn: FunctionInfo, state: _TaintState,
                   sim: Set[str],
                   findings: List[Tuple[str, int, str, str]]) -> bool:
    """One propagation round over *fn*.  Returns True when the global
    state changed (another fixpoint round is needed)."""
    env: Dict[str, str] = dict(state.tainted_params.get(fn.qualname, {}))
    changed = False

    body = getattr(fn.node, "body", [])
    for stmt in _linearise(body):
        # assignments propagate taint to their targets
        if isinstance(stmt, (ast.Assign, ast.AnnAssign, ast.AugAssign)):
            value = stmt.value
            if value is not None:
                why = _expr_taint(value, env, project, fn, state)
                if why:
                    targets = (stmt.targets
                               if isinstance(stmt, ast.Assign)
                               else [stmt.target])
                    for t in targets:
                        for leaf in ast.walk(t):
                            if isinstance(leaf, ast.Name):
                                env[leaf.id] = why
                            elif isinstance(leaf, ast.Attribute):
                                d = dotted(leaf)
                                if d:
                                    env[d] = why
        elif isinstance(stmt, ast.For):
            why = _expr_taint(stmt.iter, env, project, fn, state)
            if why:
                for leaf in ast.walk(stmt.target):
                    if isinstance(leaf, ast.Name):
                        env[leaf.id] = why
        elif isinstance(stmt, ast.Return) and stmt.value is not None:
            why = _expr_taint(stmt.value, env, project, fn, state)
            if why and not state.returns.get(fn.qualname):
                state.returns[fn.qualname] = why
                changed = True

        # every call in the statement: boundary check + param propagation
        for node in ast.walk(stmt):
            if not isinstance(node, ast.Call):
                continue
            callee = project.resolve_call(fn, node)
            args = list(node.args) + [kw.value for kw in node.keywords]
            for i, arg in enumerate(args):
                why = _expr_taint(arg, env, project, fn, state)
                if why is None:
                    continue
                if callee and callee in sim:
                    findings.append((fn.path, node.lineno, fn.qualname,
                                     f"{why} flows into sim-context "
                                     f"{callee}()"))
                elif callee and callee in project.functions:
                    target = project.functions[callee]
                    params = [p for p in target.params if p != "self"]
                    if i < len(node.args) and i < len(params):
                        per_fn = state.tainted_params.setdefault(callee, {})
                        if params[i] not in per_fn:
                            per_fn[params[i]] = why
                            changed = True
    return changed


def _linearise(body: List[ast.stmt]) -> List[ast.stmt]:
    """All statements in source order, branches flattened (the analysis
    is a may-taint over-approximation, so path order is irrelevant but
    source order makes the single pass converge quickly)."""
    out: List[ast.stmt] = []
    for stmt in body:
        out.append(stmt)
        for field in ("body", "orelse", "finalbody"):
            out.extend(_linearise(getattr(stmt, field, []) or []))
        for handler in getattr(stmt, "handlers", []) or []:
            out.extend(_linearise(handler.body))
    return out


def run(project: Project) -> List[PassFinding]:
    sim = sim_context_functions(project)
    state = _TaintState()
    findings: List[Tuple[str, int, str, str]] = []
    for _round in range(12):
        findings = []
        changed = False
        for fn in project.functions.values():
            if _walk_function(project, fn, state, sim, findings):
                changed = True
        if not changed:
            break
    seen: Set[Tuple[str, int, str]] = set()
    out: List[PassFinding] = []
    for path, line, symbol, message in findings:
        key = (path, line, message)
        if key in seen:
            continue
        seen.add(key)
        out.append(PassFinding(pass_id=PASS_ID, path=path, line=line,
                               symbol=symbol, message=message))
    out.sort(key=lambda f: (f.path, f.line, f.message))
    return out
