"""Pass ``ownership-pairing``: hold/release and pin/unpin must balance.

Event ownership (:meth:`repro.engine.core.Event.hold` / ``release``)
and MR pinning (:meth:`repro.mpi.regcache.RegistrationCache._pin` /
``_unpin``) are manual protocols: the type system does not enforce
them, the sanitizer only sees the paths a given run takes, and an
unbalanced error path surfaces as a leak (or a premature recycle)
thousands of events later.  This pass checks them statically, per
function, with enough path sensitivity to catch the classic bug shape:
*acquired on one path, forgotten on another*.

Mechanics — a small abstract interpreter over each function body:

- ``x.hold()`` / ``x.release()`` adjust a per-receiver counter; helper
  style ``self._pin(mr)`` / ``self._unpin(mr)`` adjusts the counter of
  the *argument*;
- branches fork the abstract state (``if``/``try``-handlers), and
  ``finally`` blocks apply to every path through the ``try``;
- ownership *transfers* end the obligation: returning the receiver,
  storing it into an attribute/container, or yielding it;
- a receiver whose balance changes inside a loop is skipped (bulk
  ownership of collections — e.g. ``AllOf`` holding all its children —
  is a different protocol, checked at runtime by the kernel itself);
- effects of **direct callees** are inlined one level deep: a project
  function whose every normal path applies the same ±1 to one of its
  parameters acts as that delta at each call site.

A finding fires when the normal exits (fall-through and ``return``) of
a function disagree on a receiver's balance, or when a locally-created
receiver ends every path with a positive balance and was never
transferred anywhere.
"""

from __future__ import annotations

import ast
from typing import Dict, List, Optional, Set, Tuple

from simlint.baseline import PassFinding
from simlint.model import FunctionInfo, Project, dotted

PASS_ID = "ownership-pairing"

#: method name -> (pair kind, delta).  ``hold``-kind methods take no
#: arguments (Event.hold/release, Resource.request/release) and act on
#: their receiver; ``pin``-kind helpers act on their first argument
#: (``self._pin(mr)``) or, argless, on their receiver (``mr.pin()``).
_ACQUIRE = {"hold": ("hold", +1), "request": ("hold", +1),
            "_pin": ("pin", +1), "pin": ("pin", +1)}
_RELEASE = {"release": ("hold", -1), "_unpin": ("pin", -1),
            "unpin": ("pin", -1)}

#: a conditional acquire whose outcome is a runtime boolean — the
#: receiver's balance is path-correlated with data we do not model, so
#: any receiver it touches becomes unanalyzable in that function
_CONDITIONAL_ACQUIRE = {"try_acquire"}

_MAX_STATES = 64

_State = Dict[Tuple[str, str], int]          # (kind, receiver) -> balance
_Summary = Dict[str, Tuple[str, int]]        # param -> (kind, delta)


class _Tracker:
    def __init__(self, project: Project, fn: FunctionInfo,
                 summaries: Dict[str, _Summary]):
        self.project = project
        self.fn = fn
        self.summaries = summaries
        self.skip: Set[Tuple[str, str]] = set()   # loop-scaled receivers
        self.transferred: Set[Tuple[str, str]] = set()
        self.exits: List[_State] = []             # normal exits

    # -- effects ------------------------------------------------------------
    def _call_effects(self, call: ast.Call) -> List[Tuple[str, str, int]]:
        """(kind, receiver, delta) effects of one call."""
        if isinstance(call.func, ast.Attribute):
            name = call.func.attr
            if name in _CONDITIONAL_ACQUIRE:
                recv = dotted(call.func.value)
                if recv:
                    self.skip.add(("hold", recv))
                return []
            spec = _ACQUIRE.get(name) or _RELEASE.get(name)
            if spec is not None:
                kind, delta = spec
                if kind == "hold":
                    # hold-kind methods are argless; a same-named call
                    # with arguments (pool.release(frames)) is a
                    # different protocol
                    if call.args or call.keywords:
                        return []
                    recv = dotted(call.func.value)
                elif call.args:
                    recv = dotted(call.args[0])
                else:
                    recv = dotted(call.func.value)
                return [(kind, recv, delta)] if recv else []
        callee = self.project.resolve_call(self.fn, call)
        summary = self.summaries.get(callee or "")
        if not summary:
            return []
        target = self.project.functions[callee]  # type: ignore[index]
        params = target.params[1:] if target.cls else target.params
        out: List[Tuple[str, str, int]] = []
        for i, arg in enumerate(call.args):
            if i < len(params) and params[i] in summary:
                kind, delta = summary[params[i]]
                recv = dotted(arg)
                if recv:
                    out.append((kind, recv, delta))
        return out

    def _apply_stmt_effects(self, stmt: ast.stmt,
                            states: List[_State]) -> None:
        for node in _walk_same_scope(stmt):
            if isinstance(node, ast.Call):
                for kind, recv, delta in self._call_effects(node):
                    for st in states:
                        st[(kind, recv)] = st.get((kind, recv), 0) + delta
            # transfers into containers: x.append(recv), d[k] = recv
            if isinstance(node, ast.Call) and isinstance(
                    node.func, ast.Attribute) and node.func.attr in (
                    "append", "add", "appendleft", "put", "put_nowait"):
                for arg in node.args:
                    self._transfer(dotted(arg), states)

    def _transfer(self, recv: Optional[str],
                  states: List[_State]) -> None:
        if recv is None:
            return
        for st in states:
            for key in list(st):
                if key[1] == recv and st[key] > 0:
                    st[key] = 0
                    self.transferred.add(key)

    # -- statement walk -----------------------------------------------------
    def run_block(self, body: List[ast.stmt],
                  states: List[_State]) -> List[_State]:
        """Returns the live (fall-through) states after *body*."""
        for stmt in body:
            if not states:
                return []
            states = self._run_stmt(stmt, states)
            if len(states) > _MAX_STATES:
                # fold together — lose path sensitivity, keep soundness
                # of the "skip" set by marking disagreeing receivers
                merged = self._merge(states)
                states = merged
        return states

    def _merge(self, states: List[_State]) -> List[_State]:
        keys = {k for st in states for k in st}
        merged: _State = {}
        for k in keys:
            vals = {st.get(k, 0) for st in states}
            if len(vals) > 1:
                self.skip.add(k)
            merged[k] = vals.pop()
        return [merged]

    def _run_stmt(self, stmt: ast.stmt,
                  states: List[_State]) -> List[_State]:
        if isinstance(stmt, ast.Return):
            self._apply_stmt_effects(stmt, states)
            if stmt.value is not None:
                self._transfer(dotted(stmt.value), states)
            self.exits.extend(dict(st) for st in states)
            return []
        if isinstance(stmt, ast.Raise):
            # abnormal exit: excluded from balance comparison
            self._apply_stmt_effects(stmt, states)
            return []
        if isinstance(stmt, ast.If):
            self._apply_effects_of_expr(stmt.test, states)
            then = self.run_block(stmt.body, [dict(s) for s in states])
            other = self.run_block(stmt.orelse, [dict(s) for s in states])
            return then + other
        if isinstance(stmt, (ast.For, ast.AsyncFor, ast.While)):
            if isinstance(stmt, ast.While):
                self._apply_effects_of_expr(stmt.test, states)
            else:
                self._apply_effects_of_expr(stmt.iter, states)
            entry = [dict(s) for s in states]
            body_states = self.run_block(stmt.body, [dict(s) for s in states])
            # balance changing across one iteration => loop-scaled
            for st_in, st_out in zip(entry, body_states):
                for k in set(st_in) | set(st_out):
                    if st_in.get(k, 0) != st_out.get(k, 0):
                        self.skip.add(k)
            states = self.run_block(stmt.orelse, states)
            return states
        if isinstance(stmt, ast.Try):
            exits_before = len(self.exits)
            body_states = self.run_block(stmt.body, [dict(s) for s in states])
            branch_states = list(body_states)
            for handler in stmt.handlers:
                branch_states += self.run_block(
                    handler.body, [dict(s) for s in states])
            if stmt.orelse:
                branch_states = self.run_block(stmt.orelse, branch_states)
            if stmt.finalbody:
                # finally applies to fall-through paths and to returns
                # taken from inside the try
                exits_inside = len(self.exits)
                branch_states = self.run_block(stmt.finalbody, branch_states)
                for i in range(exits_before, exits_inside):
                    ex = [self.exits[i]]
                    self.run_block_effects_only(stmt.finalbody, ex)
            return branch_states
        if isinstance(stmt, (ast.With, ast.AsyncWith)):
            for item in stmt.items:
                self._apply_effects_of_expr(item.context_expr, states)
            return self.run_block(stmt.body, states)
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef,
                             ast.ClassDef)):
            return states  # nested scopes are analysed on their own
        # plain statement: apply effects and transfers
        self._apply_stmt_effects(stmt, states)
        if isinstance(stmt, ast.Assign):
            if any(isinstance(t, (ast.Attribute, ast.Subscript))
                   for t in stmt.targets):
                self._transfer(dotted(stmt.value), states)
        elif isinstance(stmt, ast.Expr) and isinstance(
                stmt.value, (ast.Yield, ast.YieldFrom)):
            val = stmt.value.value
            if val is not None:
                self._transfer(dotted(val), states)
        return states

    def run_block_effects_only(self, body: List[ast.stmt],
                               states: List[_State]) -> None:
        for stmt in body:
            self._apply_stmt_effects(stmt, states)

    def _apply_effects_of_expr(self, expr: Optional[ast.expr],
                               states: List[_State]) -> None:
        if expr is None:
            return
        for node in _walk_same_scope(expr):
            if isinstance(node, ast.Call):
                for kind, recv, delta in self._call_effects(node):
                    for st in states:
                        st[(kind, recv)] = st.get((kind, recv), 0) + delta


def _walk_same_scope(node: ast.AST) -> List[ast.AST]:
    """Like :func:`ast.walk`, but does not descend into nested scopes —
    a lambda or inner ``def`` runs later (usually as a callback), so its
    calls are not effects of the enclosing statement."""
    out: List[ast.AST] = []
    stack: List[ast.AST] = [node]
    while stack:
        cur = stack.pop()
        out.append(cur)
        for child in ast.iter_child_nodes(cur):
            if isinstance(child, (ast.Lambda, ast.FunctionDef,
                                  ast.AsyncFunctionDef)):
                continue
            stack.append(child)
    return out


def _analyze(project: Project, fn: FunctionInfo,
             summaries: Dict[str, _Summary]) -> Tuple[List[_State],
                                                      Set[Tuple[str, str]],
                                                      Set[Tuple[str, str]]]:
    tracker = _Tracker(project, fn, summaries)
    body = list(getattr(fn.node, "body", []))
    fall = tracker.run_block(body, [{}])
    exits = tracker.exits + fall
    return exits, tracker.skip, tracker.transferred


def _summarise(exits: List[_State], skip: Set[Tuple[str, str]],
               fn: FunctionInfo) -> _Summary:
    """A (param -> delta) summary when every normal exit agrees."""
    if not exits:
        return {}
    params = set(fn.params[1:] if fn.cls else fn.params)
    keys = {k for st in exits for k in st}
    summary: _Summary = {}
    for kind, recv in keys:
        if (kind, recv) in skip or recv not in params:
            continue
        vals = {st.get((kind, recv), 0) for st in exits}
        if len(vals) == 1:
            delta = vals.pop()
            if delta:
                summary[recv] = (kind, delta)
    return summary


def run(project: Project) -> List[PassFinding]:
    # round 1: per-function summaries (no callee inlining)
    summaries: Dict[str, _Summary] = {}
    for qual, fn in project.functions.items():
        try:
            exits, skip, _transfers = _analyze(project, fn, {})
        except RecursionError:  # pragma: no cover - pathological nesting
            continue
        s = _summarise(exits, skip, fn)
        if s:
            summaries[qual] = s

    findings: List[PassFinding] = []
    for qual, fn in project.functions.items():
        try:
            exits, skip, transferred = _analyze(project, fn, summaries)
        except RecursionError:  # pragma: no cover - pathological nesting
            continue
        if not exits:
            continue
        keys = sorted({k for st in exits for k in st})
        params = set(fn.params)
        for key in keys:
            kind, recv = key
            if key in skip:
                continue
            vals = sorted({st.get(key, 0) for st in exits})
            line = getattr(fn.node, "lineno", 0)
            if len(vals) > 1:
                findings.append(PassFinding(
                    pass_id=PASS_ID, path=fn.path, line=line, symbol=qual,
                    message=(f"{kind} balance of {recv!r} differs across "
                             f"normal paths ({', '.join(map(str, vals))}): "
                             f"one path acquires (or releases) what "
                             f"another does not")))
            elif (vals[0] > 0 and recv.split(".")[0] not in params
                    and not recv.startswith("self.")
                    and key not in transferred):
                findings.append(PassFinding(
                    pass_id=PASS_ID, path=fn.path, line=line, symbol=qual,
                    message=(f"{kind} of local {recv!r} acquired on every "
                             f"path but never released or transferred")))
    findings.sort(key=lambda f: (f.path, f.line, f.symbol, f.message))
    return findings
