"""Entry point for ``python tools/simlint``.

Running a directory puts the directory itself on ``sys.path[0]``; the
package imports itself absolutely (``import simlint.x``), so the
*parent* directory (``tools/``) must be importable first.
"""

import sys
from pathlib import Path

_TOOLS = str(Path(__file__).resolve().parent.parent)
if _TOOLS not in sys.path:
    sys.path.insert(0, _TOOLS)

from simlint.cli import main  # noqa: E402

if __name__ == "__main__":
    sys.exit(main())
