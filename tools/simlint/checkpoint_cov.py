"""Pass ``checkpoint-coverage``: every field of a checkpointed class
must be captured, and every captured field must be restored.

``repro.checkpoint`` snapshots the cluster field by field — there is no
``__dict__`` sweep, by design (each field is normalised into a stable,
picklable shape).  The cost of that design is silent drift: add a
``self.x`` to a captured class and forget the capture/restore side, and
resume diverges with no error anywhere.  This pass pins the two sides
together statically.

For every entry of the spec (class ↔ its capture/restore functions):

- **capture check** — every instance attribute of the class (from
  ``self.x`` assignments, ``__slots__`` and plain class-level state)
  must be *read* somewhere in the capture functions;
- **restore check** — every attribute the capture functions read must
  be *written back* by the restore functions (an attribute store
  through it, or its captured value forwarded as a ``state["attr"]``
  constructor/factory argument).

Both checks are over-approximate in the safe direction for a gate
(attribute names are matched textually within the capture/restore
bodies), so a finding means "no code in the capture path even mentions
this field" — the exact failure mode of the historical
``max_send_wr`` restore gap.  Derived caches and fields reconstructed
by other machinery are excused through the baseline ledger, one
justified entry per field.

Spec entries are ``{"class": qualname, "capture": [fn quals],
"restore": [fn quals]}``; the built-in spec covers the repro tree and
``--checkpoint-spec`` swaps in a JSON spec for other trees (the test
fixtures use this).
"""

from __future__ import annotations

import ast
from typing import Dict, Iterable, List, Optional, Set

from simlint.baseline import PassFinding
from simlint.model import Project

PASS_ID = "checkpoint-coverage"

#: class -> capture/restore map for the repro tree.  dump_state/
#: load_state pairs are self-capturing classes; the rest are walked by
#: repro.checkpoint itself.
DEFAULT_SPEC: List[Dict[str, object]] = [
    {
        "class": "repro.engine.core.SimKernel",
        "capture": ["repro.checkpoint.capture_cluster"],
        "restore": ["repro.checkpoint.restore_cluster"],
    },
    {
        "class": "repro.ib.verbs.QueuePair",
        "capture": ["repro.checkpoint._capture_machine"],
        "restore": ["repro.checkpoint.restore_cluster"],
    },
    {
        "class": "repro.ib.verbs.CompletionQueue",
        "capture": ["repro.checkpoint._capture_machine"],
        "restore": ["repro.checkpoint.restore_cluster"],
    },
    {
        "class": "repro.ib.hca.HCA",
        "capture": ["repro.checkpoint._capture_machine"],
        "restore": ["repro.checkpoint._restore_machine",
                    "repro.checkpoint.restore_cluster"],
    },
    {
        "class": "repro.alloc.libc.LibcAllocator",
        "capture": ["repro.checkpoint._capture_libc"],
        "restore": ["repro.checkpoint._restore_libc"],
    },
    {
        "class": "repro.mem.address_space.AddressSpace",
        "capture": ["repro.checkpoint._capture_process"],
        "restore": ["repro.checkpoint._restore_aspace"],
    },
    {
        "class": "repro.mem.tlb.SplitTLB",
        "capture": ["repro.mem.tlb.SplitTLB.dump_state"],
        "restore": ["repro.mem.tlb.SplitTLB.load_state"],
    },
    {
        "class": "repro.mem.cache.DataCache",
        "capture": ["repro.mem.cache.DataCache.dump_state"],
        "restore": ["repro.mem.cache.DataCache.load_state"],
    },
    {
        "class": "repro.mem.physical.PhysicalMemory",
        "capture": ["repro.mem.physical.PhysicalMemory.dump_state"],
        "restore": ["repro.mem.physical.PhysicalMemory.load_state"],
    },
    {
        "class": "repro.ib.att.ATTCache",
        "capture": ["repro.ib.att.ATTCache.dump_state"],
        "restore": ["repro.ib.att.ATTCache.load_state"],
    },
    {
        "class": "repro.alloc.freelist.ChunkFreeList",
        "capture": ["repro.alloc.freelist.ChunkFreeList.dump_state"],
        "restore": ["repro.alloc.freelist.ChunkFreeList.load_state"],
    },
]


def _attr_mentions(project: Project, quals: Iterable[str],
                   store_only: bool = False) -> Set[str]:
    """Attribute names touched inside the given functions.

    With ``store_only=False``: every attribute read or written, plus
    every string constant used as a subscript key inside a call
    argument (``create_qp(state["pd"], ...)`` restores ``pd`` through
    the constructor).
    """
    out: Set[str] = set()
    for qual in quals:
        fn = project.functions.get(qual)
        if fn is None:
            continue
        for node in ast.walk(fn.node):
            if isinstance(node, ast.Attribute):
                out.add(node.attr)
            elif not store_only and isinstance(node, ast.Subscript):
                if isinstance(node.slice, ast.Constant) and isinstance(
                        node.slice.value, str):
                    out.add(node.slice.value)
    return out


def _missing_fns(project: Project,
                 quals: Iterable[str]) -> List[str]:
    return [q for q in quals if q not in project.functions]


def run(project: Project,
        spec: Optional[List[Dict[str, object]]] = None) -> List[PassFinding]:
    if spec is None:
        spec = DEFAULT_SPEC
    findings: List[PassFinding] = []
    for entry in spec:
        cls_qual = str(entry["class"])
        capture = [str(q) for q in entry.get("capture", [])]  # type: ignore[union-attr]
        restore = [str(q) for q in entry.get("restore", [])]  # type: ignore[union-attr]
        info = project.classes.get(cls_qual)
        if info is None:
            findings.append(PassFinding(
                pass_id=PASS_ID, path="<spec>", line=0, symbol=cls_qual,
                message=f"spec names unknown class {cls_qual}"))
            continue
        for qual in _missing_fns(project, capture + restore):
            findings.append(PassFinding(
                pass_id=PASS_ID, path="<spec>", line=0, symbol=cls_qual,
                message=f"spec names unknown function {qual}"))

        captured = _attr_mentions(project, capture)
        restored = _attr_mentions(project, restore)

        own_methods = set(info.methods)
        for attr in sorted(info.attrs):
            if attr in own_methods or attr.startswith("__"):
                continue
            line = info.attrs[attr]
            symbol = f"{cls_qual}.{attr}"
            if attr not in captured:
                findings.append(PassFinding(
                    pass_id=PASS_ID, path=info.path, line=line,
                    symbol=symbol,
                    message=(f"field {attr!r} of checkpointed class "
                             f"{info.name} is never read by its capture "
                             f"function(s) "
                             f"({', '.join(capture) or 'none'})")))
            elif restore and attr not in restored:
                findings.append(PassFinding(
                    pass_id=PASS_ID, path=info.path, line=line,
                    symbol=symbol,
                    message=(f"field {attr!r} of {info.name} is captured "
                             f"but never written back by its restore "
                             f"function(s) ({', '.join(restore)})")))
    findings.sort(key=lambda f: (f.path, f.line, f.symbol))
    return findings
