"""Per-line determinism rules (the original ``detlint`` rule set).

The whole repository rests on one property: a run is a pure function of
its inputs and seeds.  Checkpoint/resume (``repro resume``), the fast
path equivalence harness (``repro perf``), byte-identical traces and the
sanitizer's byte-identity guarantee all break silently the moment
wall-clock time, an unseeded RNG or unordered iteration leaks into
simulation state.  These rules flag the patterns that have historically
caused exactly that:

``wallclock``
    Calls that read the host clock or calendar (``time.time``,
    ``time.strftime``, ``datetime.now`` ...).  ``time.perf_counter`` /
    ``time.monotonic`` are allowed: they may *measure* a run but never
    feed simulated state (the whole-program taint pass in
    :mod:`simlint.taint` checks that they actually don't).
``wallclock-sleep``
    Wall-clock waits and process signalling (``time.sleep``,
    ``os.kill``, ``signal.alarm``) — real-time delays and signals have
    no place in a simulated timeline.  The legitimate homes are
    process supervision (``repro.batch``) and the experiment service
    (``repro.serve``), which mark each site with
    ``# detlint: ignore[wallclock-sleep]``.
``socket-io``
    Network socket construction (``asyncio.start_server``,
    ``socket.socket``, ...) — the simulator models its own wire; real
    sockets in simulation code mean external state is leaking in.
    The one module whose *job* is sockets is the ``repro serve`` HTTP
    layer (``repro.serve``), which suppresses each site.
``unseeded-random``
    The module-level ``random.*`` functions (global, unseeded RNG),
    ``random.Random()`` constructed without a seed, and ``numpy.random``
    use.  Seeded ``random.Random(seed)`` instances are fine.
``set-iteration``
    Iterating directly over a set display or ``set()``/``frozenset()``
    call — iteration order is hash-dependent, so anything derived from
    it (output, counters, schedules) can differ between processes.
    Wrap in ``sorted(...)`` instead.
``float-counter``
    A float expression used as the *amount* of a ``CounterSet.add`` /
    ``add_many`` — counters are exact integer event counts; floats
    accumulate rounding that diverges between the fast and reference
    paths (the runtime twin is ``repro.sanitize``'s
    ``counter.float-amount``).
``mutable-class-attr``
    A mutable literal (``[]``, ``{}``, ``set()`` ...) assigned at class
    level: shared across instances, so state leaks between runs and
    checkpoint restores.  ALL_CAPS constants and ``@dataclass`` bodies
    (where ``x = field(...)`` and class-level defaults are idiomatic)
    are exempt.
``intern-str``
    ``sys.intern`` on an argument that is not provably ``str`` —
    it raises ``TypeError`` on ``str`` subclasses, which routinely
    arrive from deserialisers.  Normalise with ``str(...)`` first.
``refcount-probe``
    Any use of ``sys.getrefcount`` (call or import).  Refcounts are an
    interpreter implementation detail — they shift with closure cells,
    debugger frames, C extensions and CPython version, so logic keyed
    on them is nondeterministic by construction.  The event kernel once
    recycled pooled events when ``getrefcount(ev) == 2`` and corrupted
    any event a callback had stashed; ownership must be explicit
    (``Event.hold``/``release``), never inferred from the interpreter.

Any finding can be suppressed on its line with ``# detlint: ignore``
(all rules) or ``# detlint: ignore[rule,...]`` (listed rules only) —
the escape hatch doubles as documentation of *why* the pattern is safe
there.  Pure stdlib, so it runs in CI and in the tests without any
third-party dependency.
"""

from __future__ import annotations

import argparse
import ast
import re
import sys
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, List, Optional

RULES: Dict[str, str] = {
    "wallclock": "host clock/calendar read (time.time, datetime.now, ...)",
    "wallclock-sleep": "wall-clock wait or process signal (time.sleep, "
                       "os.kill, signal.alarm)",
    "unseeded-random": "global random.* / unseeded random.Random() / "
                       "numpy.random use",
    "set-iteration": "iteration over an unordered set literal or "
                     "set()/frozenset() call",
    "float-counter": "float amount passed to CounterSet.add/add_many",
    "socket-io": "real network socket construction (asyncio.start_server, "
                 "socket.socket, ...)",
    "mutable-class-attr": "mutable literal shared as a class attribute",
    "intern-str": "sys.intern on an argument not provably str",
    "refcount-probe": "sys.getrefcount use; refcounts are interpreter "
                      "details, never simulation state",
}

#: calls that read the host clock or calendar
_WALLCLOCK = {
    "time.time", "time.time_ns", "time.strftime", "time.localtime",
    "time.ctime", "time.gmtime", "time.asctime",
    "datetime.now", "datetime.utcnow", "datetime.today",
    "datetime.datetime.now", "datetime.datetime.utcnow",
    "datetime.datetime.today", "date.today", "datetime.date.today",
}

#: wall-clock waits and process signalling — real time leaking into a run
_WALLCLOCK_SLEEP = {"time.sleep", "os.kill", "signal.alarm"}

#: real network socket construction — external state leaking into a run
_SOCKET_IO = {
    "asyncio.start_server", "asyncio.open_connection",
    "asyncio.start_unix_server", "asyncio.open_unix_connection",
    "socket.socket", "socket.create_connection", "socket.create_server",
    "socket.socketpair",
}

#: module-level random functions backed by the global (unseeded) RNG
_GLOBAL_RANDOM = {
    "random.random", "random.randint", "random.randrange", "random.choice",
    "random.choices", "random.sample", "random.shuffle", "random.uniform",
    "random.gauss", "random.normalvariate", "random.expovariate",
    "random.getrandbits", "random.triangular", "random.betavariate",
    "random.paretovariate", "random.vonmisesvariate", "random.weibullvariate",
}

_CONSTANT_NAME = re.compile(r"^_?[A-Z][A-Z0-9_]*$")
_IGNORE = re.compile(r"#\s*detlint:\s*ignore(?:\[([a-zA-Z0-9_,\- ]+)\])?")


@dataclass(frozen=True)
class Finding:
    """One lint hit: ``path:line:col: RULE message``."""

    path: str
    line: int
    col: int
    rule: str
    message: str

    def render(self) -> str:
        return f"{self.path}:{self.line}:{self.col}: {self.rule} {self.message}"


def _dotted(node: ast.AST) -> Optional[str]:
    """``a.b.c`` for an Attribute/Name chain, else None."""
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


def _is_float_expr(node: ast.AST) -> bool:
    """Conservatively: does this expression produce a float?"""
    if isinstance(node, ast.Constant):
        return isinstance(node.value, float)
    if isinstance(node, ast.Call):
        return _dotted(node.func) == "float"
    if isinstance(node, ast.BinOp):
        if isinstance(node.op, ast.Div):
            return True  # true division is float-valued
        return _is_float_expr(node.left) or _is_float_expr(node.right)
    if isinstance(node, ast.UnaryOp):
        return _is_float_expr(node.operand)
    return False


def _is_set_expr(node: ast.AST) -> bool:
    if isinstance(node, ast.Set):
        return True
    if isinstance(node, ast.Call):
        return _dotted(node.func) in ("set", "frozenset")
    return False


def _is_str_expr(node: ast.AST) -> bool:
    """Provably-str expressions: literals, f-strings, str(...) calls."""
    if isinstance(node, ast.Constant):
        return isinstance(node.value, str)
    if isinstance(node, ast.JoinedStr):
        return True
    if isinstance(node, ast.Call):
        return _dotted(node.func) == "str"
    return False


class _Linter(ast.NodeVisitor):
    def __init__(self, path: str):
        self.path = path
        self.findings: List[Finding] = []
        self._dataclass_depth = 0

    def _flag(self, node: ast.AST, rule: str, message: str) -> None:
        self.findings.append(Finding(self.path, node.lineno, node.col_offset,
                                     rule, message))

    # -- calls: wallclock / random / counters / intern ----------------------
    def visit_Call(self, node: ast.Call) -> None:
        dotted = _dotted(node.func)
        if dotted:
            if dotted in _WALLCLOCK:
                self._flag(node, "wallclock",
                           f"{dotted}() reads the host clock; simulation "
                           f"state must come from the tick clock or args")
            elif dotted in _WALLCLOCK_SLEEP:
                self._flag(node, "wallclock-sleep",
                           f"{dotted}() waits on (or signals) the host in "
                           f"real time; simulated delays belong on the tick "
                           f"clock — only process supervision (repro.batch) "
                           f"and the serve layer (repro.serve) may "
                           f"suppress this")
            elif dotted in _SOCKET_IO:
                self._flag(node, "socket-io",
                           f"{dotted}() opens a real network socket; the "
                           f"simulator models its own wire — only the "
                           f"serve HTTP layer (repro.serve) may suppress "
                           f"this")
            elif dotted in _GLOBAL_RANDOM:
                self._flag(node, "unseeded-random",
                           f"{dotted}() uses the global unseeded RNG; use "
                           f"a seeded random.Random(seed) instance")
            elif dotted == "random.Random" and not node.args \
                    and not node.keywords:
                self._flag(node, "unseeded-random",
                           "random.Random() without a seed is "
                           "nondeterministic across runs")
            elif dotted.startswith(("numpy.random.", "np.random.")):
                # seeded default_rng(seed)/Generator construction is the
                # blessed pattern; everything else (the legacy global-RNG
                # functions, unseeded default_rng()) is flagged
                seeded_ctor = dotted.endswith((".default_rng", ".Generator",
                                               ".SeedSequence"))
                if not seeded_ctor or not (node.args or node.keywords):
                    self._flag(node, "unseeded-random",
                               f"{dotted}() draws from numpy's global RNG "
                               f"(or is unseeded); use a seeded "
                               f"default_rng(seed)")
            elif dotted in ("sys.getrefcount", "getrefcount"):
                self._flag(node, "refcount-probe",
                           "refcounts shift with closure cells, debuggers "
                           "and C extensions; own objects explicitly "
                           "(Event.hold/release), never by counting "
                           "references")
            elif dotted in ("sys.intern", "intern") and node.args:
                if not _is_str_expr(node.args[0]):
                    self._flag(node, "intern-str",
                               "sys.intern raises TypeError on str "
                               "subclasses; normalise with str(...) first")
            elif dotted.endswith((".add", ".add_many")):
                # set.add(x) takes one positional arg and never matches
                # the two-arg (name, amount) shape checked here
                self._check_counter_call(node, dotted)
        self.generic_visit(node)

    def _check_counter_call(self, node: ast.Call, dotted: str) -> None:
        """Flag float amounts flowing into CounterSet.add/add_many."""
        if dotted.endswith(".add"):
            amount = None
            if len(node.args) >= 2:
                amount = node.args[1]
            for kw in node.keywords:
                if kw.arg == "amount":
                    amount = kw.value
            if amount is not None and _is_float_expr(amount):
                self._flag(node, "float-counter",
                           "float amount in counter add; counters are "
                           "exact integer event counts — round explicitly")
        else:  # .add_many — inspect literal (name, amount) pairs
            for arg in node.args:
                if isinstance(arg, (ast.List, ast.Tuple)):
                    for elt in arg.elts:
                        if isinstance(elt, ast.Tuple) and len(elt.elts) == 2 \
                                and _is_float_expr(elt.elts[1]):
                            self._flag(elt, "float-counter",
                                       "float amount in add_many pair")

    # -- refcount probes smuggled in via import -----------------------------
    def visit_ImportFrom(self, node: ast.ImportFrom) -> None:
        if node.module == "sys":
            for alias in node.names:
                if alias.name == "getrefcount":
                    self._flag(node, "refcount-probe",
                               "importing sys.getrefcount; refcounts are "
                               "interpreter details, never simulation state")
        self.generic_visit(node)

    # -- iteration over unordered sets --------------------------------------
    def visit_For(self, node: ast.For) -> None:
        if _is_set_expr(node.iter):
            self._flag(node, "set-iteration",
                       "iterating a set: order is hash-dependent; wrap in "
                       "sorted(...)")
        self.generic_visit(node)

    def visit_comprehension_iter(self, node: ast.expr) -> None:
        if _is_set_expr(node):
            self._flag(node, "set-iteration",
                       "comprehension over a set: order is hash-dependent; "
                       "wrap in sorted(...)")

    def _visit_comp(self, node) -> None:
        for gen in node.generators:
            self.visit_comprehension_iter(gen.iter)
        self.generic_visit(node)

    visit_ListComp = visit_SetComp = visit_DictComp = _visit_comp
    visit_GeneratorExp = _visit_comp

    # -- class-level mutable attributes -------------------------------------
    def visit_ClassDef(self, node: ast.ClassDef) -> None:
        is_dataclass = any(
            (_dotted(d) or "").split(".")[-1] in ("dataclass",)
            or (isinstance(d, ast.Call)
                and (_dotted(d.func) or "").split(".")[-1] == "dataclass")
            for d in node.decorator_list
        )
        if not is_dataclass:
            for stmt in node.body:
                self._check_class_attr(stmt)
        # nested defs still get normal call/loop checks
        self.generic_visit(node)

    def _check_class_attr(self, stmt: ast.stmt) -> None:
        if isinstance(stmt, ast.Assign):
            targets, value = stmt.targets, stmt.value
        elif isinstance(stmt, ast.AnnAssign) and stmt.value is not None:
            targets, value = [stmt.target], stmt.value
        else:
            return
        names = [t.id for t in targets if isinstance(t, ast.Name)]
        if not names or all(_CONSTANT_NAME.match(n) for n in names):
            return
        mutable = isinstance(value, (ast.List, ast.Dict, ast.Set)) or (
            isinstance(value, ast.Call)
            and _dotted(value.func) in ("list", "dict", "set",
                                        "defaultdict", "OrderedDict",
                                        "collections.defaultdict",
                                        "collections.OrderedDict")
        )
        if mutable:
            self._flag(stmt, "mutable-class-attr",
                       f"class attribute {names[0]!r} is a shared mutable "
                       f"default; assign it in __init__ (or mark the class "
                       f"@dataclass and use field(...))")


def _suppressed(finding: Finding, lines: List[str]) -> bool:
    """Is *finding* silenced by a same-line ``# detlint: ignore`` comment?"""
    if not 1 <= finding.line <= len(lines):
        return False
    m = _IGNORE.search(lines[finding.line - 1])
    if m is None:
        return False
    listed = m.group(1)
    if listed is None:
        return True
    rules = {r.strip() for r in listed.split(",")}
    return finding.rule in rules


def lint_source(code: str, path: str = "<string>") -> List[Finding]:
    """Lint one source string; returns unsuppressed findings in line order."""
    tree = ast.parse(code, filename=path)
    linter = _Linter(path)
    linter.visit(tree)
    lines = code.splitlines()
    return sorted(
        (f for f in linter.findings if not _suppressed(f, lines)),
        key=lambda f: (f.line, f.col, f.rule),
    )


def lint_file(path: Path) -> List[Finding]:
    """Lint one file on disk."""
    return lint_source(path.read_text(encoding="utf-8"), str(path))


def iter_python_files(paths: List[str]) -> List[Path]:
    """Expand files/directories into a sorted list of ``.py`` files."""
    out: List[Path] = []
    for spec in paths:
        p = Path(spec)
        if p.is_dir():
            out.extend(sorted(p.rglob("*.py")))
        else:
            out.append(p)
    return out


def main(argv: Optional[List[str]] = None) -> int:
    """The historical ``detlint`` command line (per-line rules only)."""
    parser = argparse.ArgumentParser(
        prog="detlint",
        description="determinism lint for the repro sources",
    )
    parser.add_argument("paths", nargs="*", default=["src/repro"],
                        help="files or directories to lint "
                             "(default: src/repro)")
    parser.add_argument("--list-rules", action="store_true",
                        help="print the rule catalogue and exit")
    args = parser.parse_args(argv)
    if args.list_rules:
        for rule, desc in RULES.items():
            print(f"  {rule:<20} {desc}")
        return 0
    findings: List[Finding] = []
    for path in iter_python_files(args.paths or ["src/repro"]):
        try:
            findings.extend(lint_file(path))
        except SyntaxError as exc:
            print(f"{path}: syntax error: {exc}", file=sys.stderr)
            return 2
    for finding in findings:
        print(finding.render())
    if findings:
        print(f"detlint: {len(findings)} finding(s)", file=sys.stderr)
        return 1
    return 0
