"""Whole-program model: modules, classes, attributes and a call graph.

The four analysis passes (:mod:`simlint.taint`,
:mod:`simlint.checkpoint_cov`, :mod:`simlint.ownership`,
:mod:`simlint.counterkeys`) all need the same substrate — every module
of one package parsed, every class's instance-attribute inventory, every
function under a stable qualified name, and a best-effort resolution of
call sites to project functions.  :class:`Project` builds all of it in
one pass over the tree, pure stdlib.

Resolution is deliberately *best effort*: Python's dynamism makes a
sound call graph impossible without running the program, so the model
resolves the shapes that actually occur in this codebase —

- ``module_alias.func(...)`` / ``from m import func; func(...)`` via the
  per-module import table,
- ``self.method(...)`` via the enclosing class (and project-local bases),
- ``self.attr.method(...)`` via attribute types inferred from
  ``__init__`` (``self.x = param`` with an annotated param, or
  ``self.x = ClassName(...)``),
- ``param.method(...)`` via parameter annotations.

Anything else resolves to nothing, and passes treat an unresolved call
as having no project effect.  That trades false negatives for a near-
zero false-positive rate, which is what keeps a lint gate tolerable.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Set, Tuple

from simlint.perline import _dotted as dotted  # noqa: F401  (re-exported)


@dataclass
class FunctionInfo:
    """One function or method, under its project-qualified name."""

    qualname: str               #: e.g. ``repro.ib.hca.HCA.post_send``
    module: str                 #: defining module, e.g. ``repro.ib.hca``
    cls: Optional[str]          #: class qualname for methods, else None
    name: str                   #: bare name
    node: ast.AST               #: the FunctionDef / AsyncFunctionDef
    path: str                   #: source file
    params: List[str] = field(default_factory=list)
    annotations: Dict[str, str] = field(default_factory=dict)


@dataclass
class ClassInfo:
    """One class: attribute inventory and method table."""

    qualname: str
    module: str
    name: str
    node: ast.ClassDef
    path: str
    bases: List[str] = field(default_factory=list)
    #: attribute name -> line of first sighting (``self.x = ...``,
    #: ``__slots__`` entry, or plain class-level assignment)
    attrs: Dict[str, int] = field(default_factory=dict)
    #: attribute name -> class qualname, where inferable from __init__
    attr_types: Dict[str, str] = field(default_factory=dict)
    #: method name -> function qualname
    methods: Dict[str, str] = field(default_factory=dict)


def _ann_to_dotted(node: Optional[ast.AST]) -> Optional[str]:
    """A dotted type name out of an annotation expression, if simple.

    Handles ``C``, ``m.C``, string annotations, and unwraps one level of
    ``Optional[...]``/``typing.Optional[...]``.
    """
    if node is None:
        return None
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        return node.value.strip().split("[")[0] or None
    if isinstance(node, (ast.Name, ast.Attribute)):
        return dotted(node)
    if isinstance(node, ast.Subscript):
        base = dotted(node.value)
        if base and base.split(".")[-1] == "Optional":
            return _ann_to_dotted(node.slice)
    return None


class Project:
    """Parsed model of one package tree (``root`` is the package dir)."""

    def __init__(self, root: Path, package: Optional[str] = None):
        self.root = Path(root)
        self.package = package if package is not None else self.root.name
        self.modules: Dict[str, ast.Module] = {}
        self.module_paths: Dict[str, str] = {}
        #: module -> local name -> fully qualified target
        self.imports: Dict[str, Dict[str, str]] = {}
        self.functions: Dict[str, FunctionInfo] = {}
        self.classes: Dict[str, ClassInfo] = {}
        #: caller qualname -> [(callee qualname | None, Call node)]
        self.calls: Dict[str, List[Tuple[Optional[str], ast.Call]]] = {}
        self._load()
        self._collect()
        self._resolve_all_calls()

    # -- loading ------------------------------------------------------------
    def _module_name(self, path: Path) -> str:
        rel = path.relative_to(self.root)
        parts = list(rel.parts)
        parts[-1] = parts[-1][:-3]  # strip .py
        if parts[-1] == "__init__":
            parts.pop()
        return ".".join([self.package] + parts)

    def _load(self) -> None:
        for path in sorted(self.root.rglob("*.py")):
            name = self._module_name(path)
            tree = ast.parse(path.read_text(encoding="utf-8"),
                             filename=str(path))
            self.modules[name] = tree
            self.module_paths[name] = str(path)

    # -- symbol collection --------------------------------------------------
    def _collect_imports(self, module: str, tree: ast.Module) -> None:
        table: Dict[str, str] = {}
        for node in ast.walk(tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    if alias.asname:
                        table[alias.asname] = alias.name
                    else:
                        head = alias.name.split(".")[0]
                        table.setdefault(head, head)
            elif isinstance(node, ast.ImportFrom):
                if node.level:
                    parts = module.split(".")
                    # modules are files, so one level strips the module
                    # name itself; packages (__init__) are one shorter,
                    # an approximation that is right for this tree
                    base_parts = parts[: max(0, len(parts) - node.level)]
                    if node.module:
                        base_parts = base_parts + node.module.split(".")
                    base = ".".join(base_parts)
                else:
                    base = node.module or ""
                for alias in node.names:
                    if alias.name == "*":
                        continue
                    local = alias.asname or alias.name
                    table[local] = f"{base}.{alias.name}" if base else alias.name
        self.imports[module] = table

    def _collect_class(self, module: str, path: str, node: ast.ClassDef) -> None:
        qual = f"{module}.{node.name}"
        info = ClassInfo(qualname=qual, module=module, name=node.name,
                         node=node, path=path,
                         bases=[d for d in (dotted(b) for b in node.bases) if d])
        for stmt in node.body:
            # __slots__ and plain class-level state (ALL_CAPS constants
            # and annotations without value are not instance state)
            if isinstance(stmt, ast.Assign):
                names = [t.id for t in stmt.targets if isinstance(t, ast.Name)]
                if names == ["__slots__"] and isinstance(
                        stmt.value, (ast.Tuple, ast.List)):
                    for elt in stmt.value.elts:
                        if isinstance(elt, ast.Constant) and isinstance(
                                elt.value, str):
                            info.attrs.setdefault(elt.value, stmt.lineno)
                else:
                    for n in names:
                        if not n.isupper() and not n.startswith("__"):
                            info.attrs.setdefault(n, stmt.lineno)
            elif isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                fq = f"{qual}.{stmt.name}"
                info.methods[stmt.name] = fq
                self._collect_function(module, path, stmt, cls=qual)
                is_prop = any((dotted(d) or "").split(".")[-1] == "property"
                              for d in stmt.decorator_list)
                if not is_prop:
                    self._collect_self_attrs(info, stmt)
        self.classes[qual] = info

    def _collect_self_attrs(self, info: ClassInfo,
                            fn: ast.AST) -> None:
        for node in ast.walk(fn):
            if isinstance(node, ast.Assign):
                for t in node.targets:
                    self._record_self_attr(info, t, node)
            elif isinstance(node, (ast.AnnAssign, ast.AugAssign)):
                self._record_self_attr(info, node.target, node)

    def _record_self_attr(self, info: ClassInfo, target: ast.expr,
                          stmt: ast.AST) -> None:
        if not (isinstance(target, ast.Attribute)
                and isinstance(target.value, ast.Name)
                and target.value.id == "self"):
            return
        info.attrs.setdefault(target.attr, getattr(stmt, "lineno", 0))
        # best-effort attribute typing out of __init__-style assignments
        value = getattr(stmt, "value", None)
        if isinstance(value, ast.Call):
            ctor = dotted(value.func)
            if ctor:
                info.attr_types.setdefault(target.attr, ctor)
        elif isinstance(value, ast.Name):
            # self.x = param — typed when the param carries an annotation
            fn_qual = info.methods.get("__init__")
            fn = self.functions.get(fn_qual) if fn_qual else None
            if fn is not None:
                ann = fn.annotations.get(value.id)
                if ann:
                    info.attr_types.setdefault(target.attr, ann)

    def _collect_function(self, module: str, path: str, node: ast.AST,
                          cls: Optional[str] = None) -> None:
        name = node.name  # type: ignore[attr-defined]
        qual = f"{cls}.{name}" if cls else f"{module}.{name}"
        args = node.args  # type: ignore[attr-defined]
        params = [a.arg for a in args.posonlyargs + args.args]
        annotations = {
            a.arg: d
            for a in args.posonlyargs + args.args + args.kwonlyargs
            for d in (_ann_to_dotted(a.annotation),)
            if d
        }
        self.functions[qual] = FunctionInfo(
            qualname=qual, module=module, cls=cls, name=name, node=node,
            path=path, params=params, annotations=annotations)

    def _collect(self) -> None:
        for module, tree in self.modules.items():
            self._collect_imports(module, tree)
            path = self.module_paths[module]
            for node in tree.body:
                if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    self._collect_function(module, path, node)
                elif isinstance(node, ast.ClassDef):
                    self._collect_class(module, path, node)

    # -- call resolution ----------------------------------------------------
    def resolve_type(self, module: str, type_name: Optional[str]) -> Optional[str]:
        """Resolve a dotted type name (as written in *module*) to a
        project class qualname, or None."""
        if not type_name:
            return None
        parts = type_name.split(".")
        table = self.imports.get(module, {})
        # name defined or imported in this module
        candidates = [f"{module}.{type_name}"]
        head_target = table.get(parts[0])
        if head_target:
            candidates.append(".".join([head_target] + parts[1:]))
        candidates.append(type_name)
        for cand in candidates:
            if cand in self.classes:
                return cand
        return None

    def lookup_method(self, cls_qual: Optional[str],
                      method: str) -> Optional[str]:
        """Find *method* on the class or its project-local bases."""
        seen: Set[str] = set()
        while cls_qual and cls_qual in self.classes and cls_qual not in seen:
            seen.add(cls_qual)
            info = self.classes[cls_qual]
            if method in info.methods:
                return info.methods[method]
            next_qual = None
            for base in info.bases:
                resolved = self.resolve_type(info.module, base)
                if resolved:
                    next_qual = resolved
                    break
            cls_qual = next_qual
        return None

    def _attr_chain_type(self, module: str, cls_qual: Optional[str],
                         parts: List[str]) -> Optional[str]:
        for part in parts:
            if not cls_qual or cls_qual not in self.classes:
                return None
            ann = self.classes[cls_qual].attr_types.get(part)
            cls_qual = self.resolve_type(self.classes[cls_qual].module, ann)
        return cls_qual

    def resolve_call(self, fn: FunctionInfo,
                     call: ast.Call) -> Optional[str]:
        """The project function this call lands in, or None."""
        d = dotted(call.func)
        if d is None:
            return None
        parts = d.split(".")
        table = self.imports.get(fn.module, {})

        def as_callable(qual: str) -> Optional[str]:
            if qual in self.functions:
                return qual
            if qual in self.classes:
                return self.lookup_method(qual, "__init__")
            return None

        if parts[0] == "self" and fn.cls:
            if len(parts) == 2:
                return self.lookup_method(fn.cls, parts[1])
            recv = self._attr_chain_type(fn.module, fn.cls, parts[1:-1])
            return self.lookup_method(recv, parts[-1]) if recv else None

        if len(parts) == 1:
            hit = as_callable(f"{fn.module}.{parts[0]}")
            if hit:
                return hit
            target = table.get(parts[0])
            return as_callable(target) if target else None

        target = table.get(parts[0])
        if target:
            hit = as_callable(".".join([target] + parts[1:]))
            if hit:
                return hit
            # module.Class.method / imported-class classmethod
            owner = ".".join([target] + parts[1:-1])
            if owner in self.classes:
                return self.lookup_method(owner, parts[-1])
            return None

        # annotated parameter (or annotated local attr chain on it)
        ann = fn.annotations.get(parts[0])
        recv = self.resolve_type(fn.module, ann)
        if recv and len(parts) > 2:
            recv = self._attr_chain_type(fn.module, recv, parts[1:-1])
        return self.lookup_method(recv, parts[-1]) if recv else None

    def _resolve_all_calls(self) -> None:
        for qual, fn in self.functions.items():
            sites: List[Tuple[Optional[str], ast.Call]] = []
            for node in ast.walk(fn.node):
                if isinstance(node, ast.Call):
                    sites.append((self.resolve_call(fn, node), node))
            self.calls[qual] = sites

    # -- conveniences -------------------------------------------------------
    def callees(self, qual: str) -> Set[str]:
        return {c for c, _node in self.calls.get(qual, []) if c}

    def function_symbol(self, fn: FunctionInfo) -> str:
        return fn.qualname
