#!/usr/bin/env python3
"""detlint — the per-line determinism rules (compatibility front end).

The linter grew into the ``tools/simlint`` package: the per-line rules
now live in :mod:`simlint.perline` (verbatim — same rule ids, same
``# detlint: ignore[...]`` suppression syntax, same exit codes), and
four whole-program passes live beside them (``python tools/simlint``).

This module keeps the historical surface working unchanged:

- ``python tools/detlint.py [paths]`` runs the per-line rules only;
- ``import detlint`` re-exports the public names (``RULES``,
  ``Finding``, ``lint_source``, ``lint_file``, ``iter_python_files``,
  ``main``) and the internals the tests poke at.
"""

from __future__ import annotations

import sys
from pathlib import Path

_TOOLS = str(Path(__file__).resolve().parent)
if _TOOLS not in sys.path:
    sys.path.insert(0, _TOOLS)

from simlint.perline import (  # noqa: E402,F401
    RULES,
    Finding,
    _CONSTANT_NAME,
    _GLOBAL_RANDOM,
    _IGNORE,
    _Linter,
    _SOCKET_IO,
    _WALLCLOCK,
    _WALLCLOCK_SLEEP,
    _dotted,
    _is_float_expr,
    _is_set_expr,
    _is_str_expr,
    _suppressed,
    ast,
    iter_python_files,
    lint_file,
    lint_source,
    main,
)

if __name__ == "__main__":
    sys.exit(main())
