#!/usr/bin/env python3
"""A tiny stdlib client for ``repro serve`` (CI smoke + ops).

Talks plain HTTP/1.1 over a socket — no dependencies, so it runs in
the same bare CI environment as the server.

Usage::

    python tools/serve_client.py submit <addr|addr-file> specs.json
    python tools/serve_client.py wait   <addr|addr-file> [--timeout S]
    python tools/serve_client.py get    <addr|addr-file> /stats

``addr`` is ``host:port`` or a path to the ``serve.addr`` file the
server writes.  ``submit`` POSTs the specfile's jobs (exit 0 on 200);
``wait`` polls ``/jobs`` until every job is terminal (exit 0 only if
all are done); ``get`` prints a response body.
"""

from __future__ import annotations

import argparse
import json
import os
import socket
import sys
import time
from typing import Optional, Tuple


def resolve_addr(spec: str) -> Tuple[str, int]:
    if os.path.exists(spec):
        spec = open(spec, encoding="utf-8").read().strip()
    host, _, port = spec.rpartition(":")
    return host, int(port)


def request(addr: Tuple[str, int], method: str, path: str,
            body: Optional[bytes] = None,
            timeout: float = 30.0) -> Tuple[int, bytes]:
    with socket.create_connection(addr, timeout=timeout) as sock:
        payload = body or b""
        head = (f"{method} {path} HTTP/1.1\r\nHost: serve\r\n"
                f"Content-Length: {len(payload)}\r\n"
                f"Content-Type: application/json\r\n\r\n")
        sock.sendall(head.encode("ascii") + payload)
        raw = b""
        while True:
            chunk = sock.recv(65536)
            if not chunk:
                break
            raw += chunk
    head_b, _, body_b = raw.partition(b"\r\n\r\n")
    return int(head_b.split(b" ", 2)[1]), body_b


def cmd_submit(args: argparse.Namespace) -> int:
    addr = resolve_addr(args.addr)
    body = open(args.specfile, "rb").read()
    status, raw = request(addr, "POST", "/jobs", body)
    print(f"submit: {status}")
    sys.stdout.write(raw.decode("utf-8", "replace"))
    return 0 if status == 200 else 1


def cmd_wait(args: argparse.Namespace) -> int:
    addr = resolve_addr(args.addr)
    deadline = time.monotonic() + args.timeout
    while True:
        status, raw = request(addr, "GET", "/jobs")
        if status != 200:
            print(f"wait: GET /jobs -> {status}", file=sys.stderr)
            return 1
        jobs = json.loads(raw)["jobs"]
        pending = [j for j in jobs
                   if j["status"] not in ("done", "failed", "rejected")]
        if not pending:
            bad = [j for j in jobs if j["status"] != "done"]
            for job in bad:
                print(f"wait: {job['id']} -> {job['status']} "
                      f"({job.get('detail', '')})", file=sys.stderr)
            print(f"wait: {len(jobs)} job(s), "
                  f"{len(jobs) - len(bad)} done, {len(bad)} not")
            return 1 if bad else 0
        if time.monotonic() >= deadline:
            print(f"wait: timed out with {len(pending)} job(s) pending: "
                  f"{[j['id'] for j in pending]}", file=sys.stderr)
            return 1
        time.sleep(0.2)


def cmd_get(args: argparse.Namespace) -> int:
    addr = resolve_addr(args.addr)
    status, raw = request(addr, "GET", args.path)
    sys.stdout.write(raw.decode("utf-8", "replace"))
    return 0 if status == 200 else 1


def main(argv: Optional[list] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    sub = parser.add_subparsers(dest="cmd", required=True)
    p_submit = sub.add_parser("submit", help="POST a specfile to /jobs")
    p_submit.add_argument("addr")
    p_submit.add_argument("specfile")
    p_wait = sub.add_parser("wait", help="poll until every job is terminal")
    p_wait.add_argument("addr")
    p_wait.add_argument("--timeout", type=float, default=300.0)
    p_get = sub.add_parser("get", help="GET a path and print the body")
    p_get.add_argument("addr")
    p_get.add_argument("path")
    args = parser.parse_args(argv)
    return {"submit": cmd_submit, "wait": cmd_wait, "get": cmd_get}[
        args.cmd](args)


if __name__ == "__main__":
    sys.exit(main())
