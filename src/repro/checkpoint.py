"""Versioned snapshot/restore of the whole simulator, plus run harnessing.

Three cooperating pieces:

**Snapshot files** — :func:`write_snapshot` / :func:`read_snapshot` give
every checkpoint the same on-disk shape: a one-line JSON manifest
(schema tag, SHA-256 of the body, free-form metadata) followed by a
pickle body.  Files are written atomically (temp file + ``fsync`` +
``os.replace``), so a crash mid-write never leaves a truncated snapshot
behind, and the checksum catches bit rot or hand-editing on read.

**Cluster state capture** — :func:`capture_cluster` walks every layer of
a :class:`~repro.systems.machine.Cluster` — engine clock and event heap,
physical frames / page tables / VMAs / the HugeTLB pool, TLB / data
cache / ATT LRU order, both allocator heaps, MR/QP/CQ bookkeeping,
counters and the fault injector's RNG stream — into one picklable
payload, and :func:`restore_cluster` rebuilds a live cluster from it
that continues **bit-identically**: same tick arithmetic, same LRU
evictions, same fault-RNG draws, same allocator placement.

The simulator's processes are Python generators, which cannot be
pickled, so full restores work at *quiescent boundaries*: the event heap
drained, no DMA in flight, no un-acked wire messages (the state every
driver is in between ``world.run()`` calls — in-flight MPI protocol
state never exists there).  The HCA's per-QP send engines are the one
kind of live process a quiescent cluster still owns; restore recreates
them through :meth:`~repro.ib.hca.HCA.create_qp` and then forces the
captured identity (QP numbers, verbs state, peer wiring) back onto
them.  Non-quiescent captures are still allowed for *forensics* (the
hang watchdog's post-mortem) — they summarise pending events instead of
pickling them and are refused by :func:`restore_cluster`.

**Run harnessing** — :class:`RunCheckpointer` is the driver-facing unit
ledger: a CLI run decomposes into named units (one benchmark curve, one
NAS kernel, ...), each unit's picklable result is recorded, and
``repro resume <snapshot>`` replays completed units from the ledger so
the remainder of the run produces byte-identical output without
re-simulating.  :class:`HangWatchdog` watches the active kernel's
``(seq, now)`` progress from a daemon thread; a stall (e.g. a livelocked
retry storm wedging the event loop) dumps a post-mortem report plus a
best-effort snapshot of every live cluster and exits non-zero.
"""

from __future__ import annotations

import hashlib
import itertools
import json
import os
import pickle
import sys
import threading
import time
import weakref
from dataclasses import asdict
from typing import Any, Callable, Dict, List, Optional

from repro.engine import core as engine_core
from repro.engine import sched as sched_mod
from repro.util import atomic_write

#: snapshot schema tag; bump on any incompatible payload change
SCHEMA = "repro-checkpoint/1"


class CheckpointError(Exception):
    """Raised for unreadable, corrupt or non-restorable snapshots."""


# ---------------------------------------------------------------------------
# live-cluster registry (for the watchdog's post-mortem)
# ---------------------------------------------------------------------------

_live_clusters: "weakref.WeakSet" = weakref.WeakSet()


def note_cluster(cluster) -> None:
    """Weakly register *cluster* (called by ``Cluster.__init__``)."""
    _live_clusters.add(cluster)


def live_clusters() -> List[Any]:
    """All clusters still alive in this process (unordered)."""
    return list(_live_clusters)


# ---------------------------------------------------------------------------
# snapshot files: manifest line + pickle body, atomic replace
# ---------------------------------------------------------------------------

def write_snapshot(path: str, payload: Any, meta: Optional[dict] = None) -> dict:
    """Atomically write *payload* to *path*; returns the manifest.

    Layout: one JSON line ``{"schema", "sha256", "payload_bytes",
    "meta"}`` followed by the raw pickle of *payload*.  The write goes
    through a temp file in the same directory, is fsynced, then renamed
    over *path* — readers only ever see a complete snapshot.
    """
    body = pickle.dumps(payload, protocol=pickle.HIGHEST_PROTOCOL)
    manifest = {
        "schema": SCHEMA,
        "sha256": hashlib.sha256(body).hexdigest(),
        "payload_bytes": len(body),
        "meta": meta or {},
    }
    line = json.dumps(manifest, sort_keys=True).encode("utf-8") + b"\n"
    atomic_write(path, line + body, prefix=".snap-")
    return manifest


def read_snapshot(path: str):
    """Read and verify a snapshot; returns ``(manifest, payload)``.

    Raises :class:`CheckpointError` on a missing/garbled manifest, a
    schema mismatch or a checksum failure.
    """
    try:
        with open(path, "rb") as fh:
            line = fh.readline()
            body = fh.read()
    except OSError as exc:
        raise CheckpointError(f"cannot read snapshot {path!r}: {exc}")
    try:
        manifest = json.loads(line)
    except ValueError:
        raise CheckpointError(f"{path!r} has no snapshot manifest (not a repro snapshot?)")
    if not isinstance(manifest, dict) or manifest.get("schema") != SCHEMA:
        raise CheckpointError(
            f"{path!r}: unsupported snapshot schema "
            f"{manifest.get('schema') if isinstance(manifest, dict) else manifest!r} "
            f"(this build reads {SCHEMA})"
        )
    digest = hashlib.sha256(body).hexdigest()
    if digest != manifest.get("sha256"):
        raise CheckpointError(
            f"{path!r}: integrity check failed — truncated or corrupt "
            f"snapshot (manifest {manifest.get('sha256')}, body {digest})"
        )
    try:
        payload = pickle.loads(body)
    except Exception as exc:
        # a checksum-valid body can still fail to unpickle (e.g. it was
        # written by a build whose classes have since moved); surface it
        # as a snapshot problem, not a traceback
        raise CheckpointError(f"{path!r}: cannot unpickle snapshot body: {exc}")
    return manifest, payload


# ---------------------------------------------------------------------------
# cluster capture
# ---------------------------------------------------------------------------

def _count_next(counter) -> int:
    """The next value an ``itertools.count`` will yield, without
    consuming it (``count(n)`` reduces to ``(count, (n,))``)."""
    return counter.__reduce__()[1][0]


def pending_work(cluster) -> List[str]:
    """Human-readable reasons *cluster* is not at a quiescent boundary
    (empty list means it is)."""
    issues = []
    if len(cluster.kernel._sched):
        issues.append(
            f"{len(cluster.kernel._sched)} events pending in the scheduler"
        )
    for i, node in enumerate(cluster.nodes):
        if node.hca._rx_inflight:
            issues.append(f"node {i}: {len(node.hca._rx_inflight)} inbound messages in flight")
        if node.hca._outstanding:
            issues.append(f"node {i}: {len(node.hca._outstanding)} un-acked sends outstanding")
        for qp in node.hca._qps.values():
            if qp.send_q.items:
                issues.append(
                    f"node {i}: QP {qp.qp_num} has {len(qp.send_q.items)} queued WRs"
                )
    return issues


def is_quiescent(cluster) -> bool:
    """True when *cluster* can be captured for a full restore."""
    return not pending_work(cluster)


def _describe_event(entry) -> dict:
    """Forensic summary of one heap entry (never pickles the event)."""
    when, priority, seq, ev = entry
    wakes = []
    for cb in getattr(ev, "callbacks", ()) or ():
        owner = getattr(cb, "__self__", None)
        name = getattr(owner, "name", None)
        if name:
            wakes.append(str(name))
    return {
        "when": when,
        "priority": priority,
        "seq": seq,
        "type": type(ev).__name__,
        "wakes": wakes,
    }


def _capture_libc(libc) -> dict:
    blocks = sorted(libc._blocks.values(), key=lambda b: b.addr)
    return {
        "blocks": [(b.addr, b.size, b.free, b.in_fastbin, b.prev, b.next)
                   for b in blocks],
        "fastbins": {size: list(addrs) for size, addrs in libc._fastbins.items()},
        "sorted_bin": [tuple(t) for t in libc._sorted_bin],
        "mmapped": dict(libc._mmapped),
        "heap_end": libc._heap_end,
        "sizes": dict(libc._sizes),
        "stats": asdict(libc.stats),
    }


def _capture_process(proc) -> dict:
    aspace = proc.aspace
    pt = aspace.page_table
    state = {
        "name": proc.name,
        "counters": proc.counters.snapshot(),
        "aspace": {
            "vmas": [(v.start, v.length, v.page_size, v.kind, v.name)
                     for v in aspace.vmas],
            "brk": aspace._brk,
            "mmap_cursor": aspace._mmap_cursor,
            "huge_cursor": aspace._huge_cursor,
            "pt_small": [(e.vaddr, e.paddr, e.pin_count, e.cow)
                         for e in sorted(pt._small.values(), key=lambda e: e.vaddr)],
            "pt_huge": [(e.vaddr, e.paddr, e.pin_count, e.cow)
                        for e in sorted(pt._huge.values(), key=lambda e: e.vaddr)],
        },
        "tlb": proc.engine.tlb.dump_state(),
        "cache": proc.engine.cache.dump_state(),
        "libc": _capture_libc(proc.libc),
        "hugepage_lib": None,
    }
    alloc = proc.allocator
    if alloc is not proc.libc:  # the preloaded hugepage-library facade
        state["hugepage_lib"] = {
            "config": alloc.config,
            "pages_mapped": alloc.mapping.pages_mapped,
            "freelist": alloc.management.freelist.dump_state(),
            "live": dict(alloc.management._live),
            "sizes": dict(alloc._sizes),
            "stats": asdict(alloc.stats),
        }
    return state


def _capture_machine(cluster, index: int) -> dict:
    node = cluster.nodes[index]
    hca = node.hca
    cqs: Dict[int, dict] = {}
    qps = []
    for qp in hca._qps.values():
        for cq in (qp.send_cq, qp.recv_cq):
            if cq is not None and cq.cq_id not in cqs:
                cqs[cq.cq_id] = {
                    "cq_id": cq.cq_id,
                    "completions": list(cq.store.items),
                }
        peer_node = None
        if qp.peer_hca is not None:
            for j, other in enumerate(cluster.nodes):
                if other.hca is qp.peer_hca:
                    peer_node = j
                    break
        qps.append({
            "qp_num": qp.qp_num,
            "state": qp.state,
            "pd": qp.pd,
            "send_cq_id": qp.send_cq.cq_id if qp.send_cq is not None else None,
            "recv_cq_id": qp.recv_cq.cq_id if qp.recv_cq is not None else None,
            "peer_node": peer_node,
            "peer_qp_num": qp.peer_qp_num,
            "retry_cnt": qp.retry_cnt,
            "rnr_retry": qp.rnr_retry,
            "ack_timeout_ns": qp.ack_timeout_ns,
            "max_sge": qp.max_sge,
            "max_send_wr": qp.max_send_wr,
            "wr_in_use": qp.wr_slots.in_use,
            "recv_queue": list(qp.recv_q.items),
            "send_queue_len": len(qp.send_q.items),  # forensic; 0 when quiescent
        })
    return {
        "name": node.name,
        "counters": node.counters.snapshot(),
        "physical": node.physical.dump_state(),
        "hugetlbfs_acquired": node.hugetlbfs._acquired,
        "att": node.att.dump_state(),
        "hca": {
            "rx_seen": dict(hca._rx_seen),
            "rdma_landed": dict(hca.rdma_landed),
            "rdma_exposed": dict(hca.rdma_exposed),
            # two lists over the same MR objects: pickle keeps the
            # sharing, so restore rebuilds both maps faithfully even
            # after partial deregistration
            "mrs_by_lkey": list(hca._mrs_by_lkey.values()),
            "mrs_by_rkey": list(hca._mrs_by_rkey.values()),
            "cqs": sorted(cqs.values(), key=lambda c: c["cq_id"]),
            "qps": sorted(qps, key=lambda q: q["qp_num"]),
        },
        "procs": [_capture_process(p) for p in node.processes],
    }


def capture_cluster(cluster, require_quiescent: bool = True) -> dict:
    """Snapshot every layer of *cluster* into one picklable payload.

    With ``require_quiescent=True`` (the default) the cluster must be at
    a quiescent boundary — otherwise :class:`CheckpointError` lists what
    is still in flight.  ``require_quiescent=False`` produces a forensic
    capture (pending events summarised, not pickled) that
    :func:`restore_cluster` will refuse.
    """
    from repro.ib import hca as hca_mod
    from repro.ib import registration, verbs

    issues = pending_work(cluster)
    if require_quiescent and issues:
        raise CheckpointError(
            "cluster is not at a quiescent boundary: " + "; ".join(issues)
        )
    kernel = cluster.kernel
    faults = None
    if cluster.faults is not None:
        faults = {
            "rng_state": cluster.faults.rng.getstate(),
            "hugepage_acquires": cluster.faults._hugepage_acquires,
            "counters": cluster.faults.counters.snapshot(),
        }
    return {
        "kind": "cluster",
        "quiescent": not issues,
        "spec": cluster.spec,
        "n_nodes": len(cluster.nodes),
        "fault_plan": cluster.faults.plan if cluster.faults is not None else None,
        "kernel": {
            "now": kernel._now,
            "seq": kernel._seq,
            "scheduler": kernel._sched.kind,
            "queue_length": len(kernel._sched),
            "pending": [_describe_event(e) for e in kernel._sched.entries()[:256]],
        },
        "module_ids": {
            "verbs": _count_next(verbs._ids),
            "hca": _count_next(hca_mod._seq),
            "registration": _count_next(registration._keys),
        },
        "faults": faults,
        "nodes": [_capture_machine(cluster, i) for i in range(len(cluster.nodes))],
    }


# ---------------------------------------------------------------------------
# cluster restore
# ---------------------------------------------------------------------------

def _restore_stats(stats, mapping: dict) -> None:
    for key, value in mapping.items():
        setattr(stats, key, value)


def _restore_libc(libc, state: dict) -> None:
    from repro.alloc.libc import _Block

    libc._blocks = {}
    for addr, size, free, in_fastbin, prev, nxt in state["blocks"]:
        block = _Block(addr, size)
        block.free = free
        block.in_fastbin = in_fastbin
        block.prev = prev
        block.next = nxt
        libc._blocks[addr] = block
    libc._fastbins = {size: list(addrs) for size, addrs in state["fastbins"].items()}
    libc._sorted_bin = [tuple(t) for t in state["sorted_bin"]]
    libc._mmapped = dict(state["mmapped"])
    libc._heap_end = state["heap_end"]
    libc._sizes = dict(state["sizes"])
    _restore_stats(libc.stats, state["stats"])


def _restore_aspace(aspace, state: dict) -> None:
    from repro.mem.address_space import VMA
    from repro.mem.paging import PAGE_2M, PAGE_4K, PageTableEntry

    # surgical rebuild: frames are accounted for by the restored
    # PhysicalMemory state, so nothing here may allocate
    aspace._vmas = {
        start: VMA(start=start, length=length, page_size=page_size,
                   kind=kind, name=name)
        for start, length, page_size, kind, name in state["vmas"]
    }
    aspace._brk = state["brk"]
    aspace._mmap_cursor = state["mmap_cursor"]
    aspace._huge_cursor = state["huge_cursor"]
    aspace._xlate_cache.clear()  # host-side cache; rebuilt on demand
    aspace._vma_starts = []
    aspace._vma_index_dirty = True
    pt = aspace.page_table
    pt._small.clear()
    pt._huge.clear()
    for vaddr, paddr, pin_count, cow in state["pt_small"]:
        pt._small[vaddr] = PageTableEntry(
            vaddr=vaddr, paddr=paddr, page_size=PAGE_4K,
            pin_count=pin_count, cow=cow,
        )
    for vaddr, paddr, pin_count, cow in state["pt_huge"]:
        pt._huge[vaddr] = PageTableEntry(
            vaddr=vaddr, paddr=paddr, page_size=PAGE_2M,
            pin_count=pin_count, cow=cow,
        )


def _restore_machine(cluster, index: int, state: dict) -> None:
    node = cluster.nodes[index]
    node.counters.restore(state["counters"])
    node.physical.load_state(state["physical"])
    node.hugetlbfs._acquired = state["hugetlbfs_acquired"]
    node.att.load_state(state["att"])
    for pstate in state["procs"]:
        proc = node.new_process(name=pstate["name"])
        proc.counters.restore(pstate["counters"])
        _restore_aspace(proc.aspace, pstate["aspace"])
        proc.engine.tlb.load_state(pstate["tlb"])
        proc.engine.cache.load_state(pstate["cache"])
        _restore_libc(proc.libc, pstate["libc"])
        hp = pstate["hugepage_lib"]
        if hp is not None:
            from repro.alloc.hugepage_lib import HugepageLibraryAllocator

            lib = HugepageLibraryAllocator(
                proc.aspace,
                libc=proc.libc,
                config=hp["config"],
                cost_model=node.spec.alloc_costs,
                counters=proc.counters,
            )
            lib.mapping.pages_mapped = hp["pages_mapped"]
            lib.management.freelist.load_state(hp["freelist"])
            lib.management._live = dict(hp["live"])
            lib._sizes = dict(hp["sizes"])
            _restore_stats(lib.stats, hp["stats"])
            proc.allocator = lib
    hca = node.hca
    hstate = state["hca"]
    hca._rx_seen = dict(hstate["rx_seen"])
    hca.rdma_landed = dict(hstate["rdma_landed"])
    hca.rdma_exposed = dict(hstate["rdma_exposed"])
    hca._mrs_by_lkey = {mr.lkey: mr for mr in hstate["mrs_by_lkey"]}
    hca._mrs_by_rkey = {mr.rkey: mr for mr in hstate["mrs_by_rkey"]}


def restore_cluster(payload: dict):
    """Rebuild a live cluster from a :func:`capture_cluster` payload.

    The restored cluster continues bit-identically to the captured one:
    same clock/seq, same LRU orders, same allocator layout, same fault
    RNG stream, and the global verbs/HCA/registration id counters are
    rewound to the captured values so newly created objects get the
    same ids an uninterrupted run would have handed out.
    """
    from repro.ib import hca as hca_mod
    from repro.ib import registration, verbs
    from repro.systems.machine import Cluster

    if payload.get("kind") != "cluster":
        raise CheckpointError(f"not a cluster snapshot (kind={payload.get('kind')!r})")
    if not payload.get("quiescent", False):
        raise CheckpointError(
            "snapshot is a non-quiescent post-mortem capture; it is "
            "forensic only and cannot be restored into a live cluster"
        )
    cluster = Cluster(
        payload["spec"], n_nodes=payload["n_nodes"],
        fault_plan=payload["fault_plan"],
    )
    for index, state in enumerate(payload["nodes"]):
        _restore_machine(cluster, index, state)

    # QPs are recreated through create_qp so each gets a live send-engine
    # process; identity and connection state are forced afterwards.
    qp_by_key: Dict[tuple, Any] = {}
    for index, state in enumerate(payload["nodes"]):
        node = cluster.nodes[index]
        cq_map: Dict[int, Any] = {}
        for cstate in state["hca"]["cqs"]:
            cq = verbs.CompletionQueue(cluster.kernel)
            cq.cq_id = cstate["cq_id"]
            cq.store._items.extend(cstate["completions"])
            cq_map[cstate["cq_id"]] = cq
        for qstate in state["hca"]["qps"]:
            qp = node.hca.create_qp(
                qstate["pd"],
                cq_map.get(qstate["send_cq_id"]),
                cq_map.get(qstate["recv_cq_id"]),
                max_sge=qstate["max_sge"],
                max_send_wr=qstate["max_send_wr"],
            )
            node.hca._qps.pop(qp.qp_num, None)
            qp.qp_num = qstate["qp_num"]
            node.hca._qps[qp.qp_num] = qp
            qp_by_key[(index, qp.qp_num)] = qp
    # park every send engine on its (empty) send queue
    cluster.kernel.run()
    for index, state in enumerate(payload["nodes"]):
        for qstate in state["hca"]["qps"]:
            qp = qp_by_key[(index, qstate["qp_num"])]
            qp.state = qstate["state"]
            qp.retry_cnt = qstate["retry_cnt"]
            qp.rnr_retry = qstate["rnr_retry"]
            qp.ack_timeout_ns = qstate["ack_timeout_ns"]
            qp.wr_slots._in_use = qstate["wr_in_use"]
            qp.peer_qp_num = qstate["peer_qp_num"]
            if qstate["peer_node"] is not None:
                qp.peer_hca = cluster.nodes[qstate["peer_node"]].hca
            qp.recv_q._items.extend(qstate["recv_queue"])

    kernel_state = payload["kernel"]
    cluster.kernel._now = kernel_state["now"]
    cluster.kernel._seq = kernel_state["seq"]
    # honour the snapshot's scheduler kind (the queue is empty at a
    # quiescent boundary, so swapping the implementation is free; event
    # ordering is pinned identical across kinds regardless)
    recorded = kernel_state.get("scheduler")
    if recorded and recorded != cluster.kernel._sched.kind:
        cluster.kernel._sched = sched_mod.make_scheduler(recorded)
    fstate = payload["faults"]
    if fstate is not None and cluster.faults is not None:
        cluster.faults.rng.setstate(fstate["rng_state"])
        cluster.faults._hugepage_acquires = fstate["hugepage_acquires"]
        cluster.faults.counters.restore(fstate["counters"])
    ids = payload["module_ids"]
    verbs._ids = itertools.count(ids["verbs"])
    hca_mod._seq = itertools.count(ids["hca"])
    registration._keys = itertools.count(ids["registration"])
    return cluster


# ---------------------------------------------------------------------------
# run-level checkpointing: the unit ledger behind --checkpoint-every
# ---------------------------------------------------------------------------

#: process-wide snapshot observer, or None.  :mod:`repro.batch` workers
#: install one so the supervisor-facing side effects (chaos injection,
#: progress markers) run exactly at snapshot boundaries.
_snapshot_hook: Optional[Callable[[str], None]] = None


def set_snapshot_hook(hook: Optional[Callable[[str], None]]) -> None:
    """Install *hook* to be called with the path of every run-ledger
    snapshot :class:`RunCheckpointer` writes (None disables).  The hook
    runs after the snapshot is durably on disk, so a hook that kills
    the process (the batch runner's chaos mode does exactly that)
    leaves a resumable snapshot behind."""
    global _snapshot_hook
    _snapshot_hook = hook


class RunCheckpointer:
    """Unit ledger for resumable CLI runs.

    A driver decomposes into named, hermetic units (each builds its own
    cluster); :meth:`run_unit` executes a unit, records its picklable
    result and, once enough simulated ticks have accumulated, writes a
    snapshot.  A resumed run is seeded with the snapshot's unit ledger
    and replays completed units from it — skipping the simulation but
    reproducing byte-identical driver output.
    """

    def __init__(
        self,
        command: str,
        argv: List[str],
        directory: Optional[str] = None,
        every_ticks: Optional[int] = None,
        audit: bool = False,
        preloaded_units: Optional[Dict[str, dict]] = None,
        stream=None,
    ):
        self.command = command
        self.argv = list(argv)
        self.directory = directory
        self.every_ticks = every_ticks
        self.audit = audit
        self.enabled = every_ticks is not None or directory is not None
        self.units: Dict[str, dict] = dict(preloaded_units or {})
        self.resumed_units = sorted(self.units)
        self.stream = stream if stream is not None else sys.stderr
        self.last_snapshot_path: Optional[str] = None
        self._since_snapshot = 0
        self._n_snapshots = 0

    def _log(self, message: str) -> None:
        print(message, file=self.stream)

    def run_unit(self, name: str, fn):
        """Run unit *name* via *fn* (or replay it from the ledger).

        *fn* returns ``(result, ticks, cluster)``: the unit's picklable
        result, how many simulated ticks it consumed, and its finished
        cluster (a single cluster, a list of them, or None) for
        auditing — clusters never enter the ledger.
        """
        from repro import trace

        tracer = trace.active()
        if name in self.units:
            self._log(f"checkpoint: unit {name!r} restored from snapshot, skipping")
            if tracer is not None:
                # replay the unit's trace slice from the ledger so a
                # resumed run's trace is byte-identical to an
                # uninterrupted one
                tracer.replay_unit(self.units[name].get("trace"))
            return self.units[name]["result"]
        marker = tracer.begin_unit(name) if tracer is not None else None
        result, ticks, cluster = fn()
        clusters = list(cluster) if isinstance(cluster, (list, tuple)) else (
            [cluster] if cluster is not None else [])
        if (self.audit or self.enabled) and clusters:
            from repro.audit import assert_clean

            for i, c in enumerate(clusters):
                assert_clean(c, label=name if len(clusters) == 1 else f"{name}[{i}]")
            if self.audit:
                self._log(f"audit: {name}: clean")
        self.units[name] = {"result": result, "ticks": int(ticks)}
        if tracer is not None:
            self.units[name]["trace"] = tracer.end_unit(marker)
        if self.enabled:
            self._since_snapshot += int(ticks)
            if self._since_snapshot >= (self.every_ticks or 0):
                self.save()
                self._since_snapshot = 0
        return result

    def save(self) -> str:
        """Write the ledger snapshot (numbered file + ``latest.snap``)."""
        directory = self.directory or "checkpoints"
        self._n_snapshots += 1
        payload = {
            "kind": "run-ledger",
            "command": self.command,
            "argv": self.argv,
            "units": self.units,
        }
        meta = {
            "kind": "run-ledger",
            "command": self.command,
            "argv": self.argv,
            "units": sorted(self.units),
        }
        path = os.path.join(directory, f"ckpt-{self._n_snapshots:04d}.snap")
        write_snapshot(path, payload, meta=meta)
        write_snapshot(os.path.join(directory, "latest.snap"), payload, meta=meta)
        self.last_snapshot_path = path
        self._log(f"checkpoint: wrote {path} ({len(self.units)} units)")
        if _snapshot_hook is not None:
            _snapshot_hook(path)
        return path


# ---------------------------------------------------------------------------
# hang watchdog
# ---------------------------------------------------------------------------

def post_mortem_report(kernel=None, clusters=None) -> str:
    """Render the stalled simulation's state for a post-mortem."""
    lines = ["=== repro hang post-mortem ==="]
    if kernel is not None:
        lines.append(
            f"kernel: now={kernel._now} seq={kernel._seq} "
            f"scheduler={kernel._sched.kind} "
            f"pending_events={len(kernel._sched)}"
        )
        for summary in [_describe_event(e) for e in kernel._sched.entries()[:32]]:
            wakes = ",".join(summary["wakes"]) or "-"
            lines.append(
                f"  event t={summary['when']} prio={summary['priority']} "
                f"seq={summary['seq']} {summary['type']} wakes={wakes}"
            )
    else:
        lines.append("kernel: none active (stall outside the event loop)")
    for cluster in clusters or []:
        lines.append(f"cluster: {cluster.spec.name} x{len(cluster.nodes)}")
        for i, node in enumerate(cluster.nodes):
            hca = node.hca
            lines.append(
                f"  node {i} ({node.name}): rx_inflight={len(hca._rx_inflight)} "
                f"outstanding={len(hca._outstanding)}"
            )
            for qp in sorted(hca._qps.values(), key=lambda q: q.qp_num):
                lines.append(
                    f"    QP {qp.qp_num}: state={qp.state} "
                    f"wr_in_use={qp.wr_slots.in_use} "
                    f"queued={len(qp.send_q.items)} "
                    f"retry_cnt={qp.retry_cnt} rnr_retry={qp.rnr_retry}"
                )
        counters = cluster.aggregate_counters()
        faulty = {k: v for k, v in counters.items() if k.startswith("faults.")}
        lines.append(f"  counters: {len(counters)} keys")
        for key, value in faulty.items():
            lines.append(f"    {key} = {value}")
    return "\n".join(lines) + "\n"


def _default_on_hang(report: str) -> None:  # pragma: no cover - exits
    os._exit(2)


class HangWatchdog:
    """Detects a wall-clock-stalled event loop from a daemon thread.

    Progress is the active kernel's ``(id, seq, now)`` tuple; while a
    kernel is inside ``run()`` and that tuple stops changing for
    *timeout_s* wall seconds (a livelocked retry storm, a stuck
    callback), the watchdog dumps a post-mortem report plus a
    best-effort snapshot of every live cluster, then calls *on_hang*
    (default: exit status 2).  Host-side work between ``run()`` calls
    never counts as a hang — there is no active kernel then.
    """

    def __init__(
        self,
        timeout_s: float,
        snapshot_dir: str = ".",
        on_hang=None,
        poll_s: Optional[float] = None,
        stream=None,
    ):
        if timeout_s <= 0:
            raise ValueError("watchdog timeout must be positive")
        self.timeout_s = float(timeout_s)
        self.poll_s = poll_s if poll_s is not None else min(1.0, self.timeout_s / 4.0)
        self.snapshot_dir = snapshot_dir
        self.on_hang = on_hang if on_hang is not None else _default_on_hang
        self.stream = stream if stream is not None else sys.stderr
        self.fired = False
        self.report_path: Optional[str] = None
        self.snapshot_paths: List[str] = []
        self._stop = threading.Event()
        self._thread: Optional[threading.Thread] = None

    def start(self) -> "HangWatchdog":
        self._thread = threading.Thread(
            target=self._watch, daemon=True, name="repro-hang-watchdog"
        )
        self._thread.start()
        return self

    def stop(self) -> None:
        self._stop.set()
        if self._thread is not None:
            self._thread.join(timeout=self.poll_s * 4 + 1.0)

    def __enter__(self) -> "HangWatchdog":
        return self.start()

    def __exit__(self, *exc) -> None:
        self.stop()

    def _watch(self) -> None:
        last_progress = None
        last_change = time.monotonic()
        while not self._stop.wait(self.poll_s):
            kernel = engine_core.active_kernel()
            if kernel is None:
                last_progress = None
                last_change = time.monotonic()
                continue
            progress = (id(kernel), kernel._seq, kernel._now)
            if progress != last_progress:
                last_progress = progress
                last_change = time.monotonic()
                continue
            if time.monotonic() - last_change >= self.timeout_s:
                self._fire(kernel)
                return

    def _fire(self, kernel) -> None:
        self.fired = True
        clusters = [c for c in live_clusters() if c.kernel is kernel] or live_clusters()
        try:
            report = post_mortem_report(kernel, clusters)
        except Exception as exc:  # racing the wedged loop: degrade, never die
            report = f"=== repro hang post-mortem ===\n(report failed: {exc!r})\n"
        os.makedirs(self.snapshot_dir, exist_ok=True)
        self.report_path = os.path.join(self.snapshot_dir, "postmortem-report.txt")
        try:
            with open(self.report_path, "w") as fh:
                fh.write(report)
        except OSError:
            self.report_path = None
        for i, cluster in enumerate(clusters):
            path = os.path.join(self.snapshot_dir, f"postmortem-cluster{i}.snap")
            try:
                snap = capture_cluster(cluster, require_quiescent=False)
                write_snapshot(path, snap, meta={"kind": "post-mortem"})
                self.snapshot_paths.append(path)
            except Exception as exc:
                report += f"(snapshot of cluster {i} failed: {exc!r})\n"
        print(report, file=self.stream, end="")
        print(
            f"hang watchdog: no simulator progress for {self.timeout_s:.1f}s; "
            f"post-mortem in {self.snapshot_dir}",
            file=self.stream,
        )
        self.on_hang(report)
