"""Cross-layer structured tracing and metrics timeline.

The paper's whole argument is an *attribution* argument — time belongs
to registration, to ATT misses, to TLB misses, or to the wire — so the
simulator needs more than end-of-run counter totals: it needs to say
*when* and *where* inside a run each cost landed.  This module is that
tool: a :class:`Tracer` with a span API (``with tracer.span("ib.tx",
bytes=n):``), instant events, and counter-delta sampling at span
boundaries, threaded through the engine run loop, the memory system,
the IB stack and the MPI layer (see ``docs/observability.md`` for the
span taxonomy).

Three properties drive the design:

**Zero cost when disabled.**  Instrumentation sites call
:func:`active` (or :func:`span`) and do nothing beyond a ``None`` check
when no tracer is installed — the pattern :mod:`repro.fastpath` set.
The engine's inner event loop is never instrumented; spans live at
phase-level call sites only.

**Simulated time, deterministic bytes.**  Timestamps are the attached
cluster kernel's integer tick counter (``kernel.now``), never wall
time, and span attributes are restricted to values that are identical
on the fast and slow costing paths (sizes, opcodes, ranks, tick
counts — never floats from path-specific arithmetic).  Because the
fast paths are bit-identical to the reference loops and span sites sit
above both, a trace is **byte-identical** with and without
``--no-fastpath`` and across checkpoint→resume (the run ledger stores
each unit's events and replays them verbatim — see
:meth:`Tracer.begin_unit` / :meth:`Tracer.replay_unit` and
:class:`repro.checkpoint.RunCheckpointer`).

**Exact counter attribution.**  At every span boundary the tracer
samples the attached cluster's ``aggregate_counters()`` and attributes
the delta since the previous boundary to the most-recently-opened
still-open span (or to a standalone ``trace.counters`` event when no
span is open).  Every increment is attributed exactly once, so the
per-span deltas — plus the unattributed bucket — sum **exactly** to
the run's final :class:`~repro.analysis.counters.CounterSet` totals;
:meth:`Tracer.counter_totals` is that sum and
:meth:`Tracer.phase_table` is the per-phase table that
:func:`repro.analysis.breakdown.phase_delta_table` consumes.

Export is Chrome/Perfetto ``trace_event`` JSON
(:meth:`Tracer.to_chrome` / :meth:`Tracer.dumps`): load the file at
https://ui.perfetto.dev or ``chrome://tracing``.  One *process* per
run unit (``pid``), one *thread* per track (``tid`` — a rank, an HCA,
or the kernel), ``ts``/``dur`` in simulated ticks.
"""

from __future__ import annotations

import json
from contextlib import contextmanager
from typing import Any, Callable, ContextManager, Dict, Iterator, List, Optional, Sequence, Tuple

from repro.util import atomic_write

#: the installed tracer, or None (tracing disabled).  Module-level so
#: instrumentation sites pay one attribute read + None check when
#: tracing is off.
_tracer: Optional["Tracer"] = None


def active() -> Optional["Tracer"]:
    """The installed :class:`Tracer`, or None when tracing is disabled."""
    return _tracer


def install(tracer: "Tracer") -> None:
    """Install *tracer* as the process-wide tracer."""
    global _tracer
    _tracer = tracer


def uninstall() -> None:
    """Disable tracing."""
    global _tracer
    _tracer = None


@contextmanager
def capturing(tracer: "Tracer") -> Iterator["Tracer"]:
    """Install *tracer* for the duration of a ``with`` block."""
    global _tracer
    prior = _tracer
    _tracer = tracer
    try:
        yield tracer
    finally:
        _tracer = prior


class _NullSpan:
    """The disabled-tracing span: a no-op context manager singleton."""

    __slots__ = ()

    def __enter__(self) -> None:
        return None

    def __exit__(self, *exc: object) -> bool:
        return False


NULL_SPAN = _NullSpan()


def span(name: str, track: Optional[str] = None, **attrs: Any) -> ContextManager[Any]:
    """A span on the installed tracer, or a no-op when disabled.

    Convenience for sites where the one-call overhead is acceptable;
    the hottest sites check :func:`active` themselves and skip even
    the keyword packing.
    """
    t = _tracer
    if t is None:
        return NULL_SPAN
    return t.span(name, track=track, **attrs)


def instant(name: str, track: Optional[str] = None, **attrs: Any) -> None:
    """An instant event on the installed tracer (no-op when disabled)."""
    t = _tracer
    if t is not None:
        t.instant(name, track=track, **attrs)


def attach_cluster(cluster: Any) -> None:
    """Bind the installed tracer's clock and counter source to
    *cluster* (called by ``Cluster.__init__``; no-op when disabled)."""
    t = _tracer
    if t is not None:
        t.attach_cluster(cluster)


class Tracer:
    """Collects spans, instants and counter deltas on simulated time.

    Events are plain dicts (picklable, JSON-able) in a flat list; a
    span is recorded once, at close, as a Chrome ``"X"`` (complete)
    event.  The tracer is single-run state: install one per traced run
    with :func:`capturing`.
    """

    def __init__(self) -> None:
        #: closed events, in close order (deterministic: simulation
        #: order is deterministic and spans append on exit)
        self.events: List[Dict[str, Any]] = []
        self._kernel: Optional[Any] = None
        self._counter_fn: Optional[Callable[[], Dict[str, int]]] = None
        self._last_sample: Dict[str, int] = {}
        #: open spans, oldest first; counter deltas attribute to the
        #: most recently opened entry
        self._open: List[Dict[str, Any]] = []
        self._unit = "(main)"

    # -- time & counter sources ---------------------------------------------

    def _now(self) -> int:
        kernel = self._kernel
        return kernel.now if kernel is not None else 0

    def attach_cluster(self, cluster: Any) -> None:
        """Re-key the tracer to *cluster*'s kernel and counters.

        Flushes the outgoing source's residual counter delta first, so
        a run that builds several clusters (fig5 builds one per curve)
        still attributes every increment exactly once.  The baseline
        restarts empty so counters bumped during cluster construction
        are captured by the first boundary.
        """
        self._boundary()
        self._kernel = cluster.kernel
        self._counter_fn = cluster.aggregate_counters
        self._last_sample = {}

    def _boundary(self) -> None:
        """Sample the counter source; attribute the delta since the
        previous boundary to the innermost open span (or a standalone
        ``trace.counters`` event when none is open)."""
        fn = self._counter_fn
        if fn is None:
            return
        current = fn()
        last = self._last_sample
        delta: Dict[str, int] = {}
        for key, value in current.items():
            d = value - last.get(key, 0)
            if d:
                delta[key] = d
        if delta:
            if self._open:
                into = self._open[-1].setdefault("deltas", {})
                for key, d in delta.items():
                    into[key] = into.get(key, 0) + d
            else:
                self.events.append({
                    "ph": "i", "name": "trace.counters", "ts": self._now(),
                    "unit": self._unit, "track": "(counters)", "args": {},
                    "deltas": delta,
                })
        self._last_sample = current

    def flush(self) -> None:
        """Force a counter-sampling boundary (e.g. at end of run)."""
        self._boundary()

    # -- recording ----------------------------------------------------------

    @contextmanager
    def span(self, name: str, track: Optional[str] = None,
             **attrs: Any) -> Iterator[Dict[str, Any]]:
        """Record a span; yields the record so callers may add
        attributes discovered mid-span (``rec["args"]["hit"] = True``).

        Attributes must be deterministic across the fast and slow
        costing paths — sizes, opcodes, names, tick counts; never
        path-derived floats or global id-counter values.
        """
        self._boundary()
        rec = {
            "ph": "X", "name": name, "ts": self._now(),
            "unit": self._unit, "track": track or "main", "args": attrs,
        }
        self._open.append(rec)
        try:
            yield rec
        finally:
            self._boundary()
            try:
                self._open.remove(rec)
            except ValueError:  # pragma: no cover - defensive
                pass
            rec["dur"] = self._now() - rec["ts"]
            self.events.append(rec)

    def instant(self, name: str, track: Optional[str] = None,
                **attrs: Any) -> None:
        """Record a point event at the current simulated tick."""
        self.events.append({
            "ph": "i", "name": name, "ts": self._now(),
            "unit": self._unit, "track": track or "main", "args": attrs,
        })

    # -- run-unit capture (checkpoint integration) --------------------------

    def begin_unit(self, name: str) -> int:
        """Mark the start of a run-ledger unit; returns a marker for
        :meth:`end_unit`.  Events recorded until then carry *name* as
        their ``unit`` (the Chrome export's process)."""
        self._boundary()
        self._unit = name
        return len(self.events)

    def end_unit(self, marker: int) -> Dict[str, Any]:
        """Close the current unit; returns its picklable event blob
        (stored in the run ledger, replayed verbatim on resume)."""
        self._boundary()
        self._unit = "(main)"
        return {"events": self.events[marker:]}

    def replay_unit(self, blob: Optional[Dict[str, Any]]) -> None:
        """Re-emit a ledger unit's events (checkpoint resume path).

        *blob* may be None — a snapshot written by an untraced run has
        no trace slice, and the resumed trace then simply omits the
        restored units.
        """
        if blob is not None:
            self.events.extend(blob["events"])

    # -- analysis & export --------------------------------------------------

    def phase_table(self) -> Dict[str, Dict[str, int]]:
        """Per-span-name counter-delta table (plus ``(unattributed)``).

        The table's row sums equal :meth:`counter_totals` exactly.
        """
        table: Dict[str, Dict[str, int]] = {}
        for ev in self.events:
            deltas = ev.get("deltas")
            if not deltas:
                continue
            key = ev["name"] if ev["ph"] == "X" else "(unattributed)"
            row = table.setdefault(key, {})
            for counter, d in deltas.items():
                row[counter] = row.get(counter, 0) + d
        return {name: dict(sorted(row.items()))
                for name, row in sorted(table.items())}

    def counter_totals(self) -> Dict[str, int]:
        """Sum of every attributed counter delta — exactly the run's
        final aggregate counter totals (after :meth:`flush`)."""
        total: Dict[str, int] = {}
        for ev in self.events:
            for counter, d in (ev.get("deltas") or {}).items():
                total[counter] = total.get(counter, 0) + d
        return dict(sorted(total.items()))

    def to_chrome(self) -> Dict[str, Any]:
        """The trace as a Chrome/Perfetto ``trace_event`` object."""
        out: List[Dict[str, Any]] = []
        pids: Dict[str, int] = {}
        tids: Dict[Tuple[int, str], int] = {}

        def pid_for(unit: str) -> int:
            pid = pids.get(unit)
            if pid is None:
                pid = pids[unit] = len(pids) + 1
                out.append({"ph": "M", "name": "process_name", "pid": pid,
                            "tid": 0, "ts": 0, "args": {"name": unit}})
            return pid

        def tid_for(pid: int, track: str) -> int:
            tid = tids.get((pid, track))
            if tid is None:
                tid = sum(1 for key in tids if key[0] == pid) + 1
                tids[(pid, track)] = tid
                out.append({"ph": "M", "name": "thread_name", "pid": pid,
                            "tid": tid, "ts": 0, "args": {"name": track}})
            return tid

        for ev in self.events:
            pid = pid_for(ev["unit"])
            rec = {
                "ph": ev["ph"], "name": ev["name"],
                "cat": ev["name"].split(".", 1)[0],
                "ts": ev["ts"], "pid": pid,
                "tid": tid_for(pid, ev["track"]),
                "args": dict(ev["args"]),
            }
            if ev["ph"] == "X":
                rec["dur"] = ev["dur"]
            elif ev["ph"] == "i":
                rec["s"] = "t"
            deltas = ev.get("deltas")
            if deltas:
                rec["args"]["counters"] = dict(sorted(deltas.items()))
            out.append(rec)
        return {
            "traceEvents": out,
            "displayTimeUnit": "ns",
            "otherData": {
                "clock": "simulated ticks",
                "phase_table": self.phase_table(),
                "counter_totals": self.counter_totals(),
            },
        }

    def dumps(self) -> str:
        """Deterministic JSON serialization of :meth:`to_chrome` —
        byte-identical for byte-identical runs."""
        return json.dumps(self.to_chrome(), sort_keys=True,
                          separators=(",", ":"))

    def write(self, path: str) -> None:
        """Atomically write the Chrome trace JSON to *path*."""
        atomic_write(path, self.dumps() + "\n", prefix=".trace-")


def merge_chrome_traces(
    traces: Sequence[Tuple[str, Dict[str, Any]]],
) -> Dict[str, Any]:
    """Merge per-job Chrome trace documents into one batch timeline.

    *traces* is a sequence of ``(label, document)`` pairs, where each
    document is a :meth:`Tracer.to_chrome`-shaped object (e.g. a
    per-job ``trace.json`` the batch runner's workers wrote).  Each
    job's processes are re-numbered into one shared pid space and
    prefixed with the job label (``jobid/fig5:curve``), so the merged
    file loads as one timeline with one process group per job unit.
    ``otherData`` is recombined: counter totals sum across jobs and
    the phase tables merge row-wise — the merged deltas still sum
    exactly to the merged totals.

    Merging is deterministic in the order of *traces*: byte-identical
    inputs in the same order produce a byte-identical merged document
    (serialize with ``json.dumps(..., sort_keys=True)`` as
    :meth:`Tracer.dumps` does).
    """
    events: List[Dict[str, Any]] = []
    totals: Dict[str, int] = {}
    phases: Dict[str, Dict[str, int]] = {}
    next_pid = 1
    for label, doc in traces:
        pid_map: Dict[int, int] = {}
        for ev in doc.get("traceEvents", []):
            rec = dict(ev)
            old_pid = rec.get("pid", 0)
            pid = pid_map.get(old_pid)
            if pid is None:
                pid = pid_map[old_pid] = next_pid
                next_pid += 1
            rec["pid"] = pid
            if rec.get("ph") == "M" and rec.get("name") == "process_name":
                rec["args"] = dict(rec.get("args", {}))
                rec["args"]["name"] = f"{label}/{rec['args'].get('name', '')}"
            events.append(rec)
        other = doc.get("otherData", {})
        for key, value in other.get("counter_totals", {}).items():
            totals[key] = totals.get(key, 0) + value
        for phase, row in other.get("phase_table", {}).items():
            into = phases.setdefault(phase, {})
            for key, value in row.items():
                into[key] = into.get(key, 0) + value
    return {
        "traceEvents": events,
        "displayTimeUnit": "ns",
        "otherData": {
            "clock": "simulated ticks",
            "merged_jobs": [label for label, _doc in traces],
            "phase_table": {name: dict(sorted(row.items()))
                            for name, row in sorted(phases.items())},
            "counter_totals": dict(sorted(totals.items())),
        },
    }


def wall_clock_doc(
    events: Sequence[Dict[str, Any]],
    other: Optional[Dict[str, Any]] = None,
) -> Dict[str, Any]:
    """Wrap pre-built ``trace_event`` records in a Chrome document
    whose clock is *wall time*, not simulated ticks.

    Everything else in this module runs on the simulator's virtual
    clock; the one producer of real-time spans is the ``repro serve``
    request timeline (admission → terminal, one ``X`` span per
    request), and its documents must be distinguishable from simulated
    ones — ``otherData.clock`` says which clock the timestamps mean.
    The caller supplies complete event records (``ts``/``dur`` in
    microseconds of elapsed wall time since service start); this
    helper only normalizes the envelope so the file loads in the same
    Perfetto workflow as the simulated traces.
    """
    doc: Dict[str, Any] = {
        "traceEvents": list(events),
        "displayTimeUnit": "ms",
        "otherData": {"clock": "wall"},
    }
    if other:
        doc["otherData"].update(other)
    return doc
