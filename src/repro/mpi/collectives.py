"""Collective operations over the point-to-point layer.

Classic MPICH-era algorithms: dissemination barrier, binomial-tree
broadcast/reduce, recursive-doubling allreduce (power-of-two worlds,
reduce+bcast otherwise), ring allgather and pairwise-exchange alltoallv.
The NAS kernels run entirely on these plus point-to-point.

Every collective uses its own tag space with a per-communicator epoch so
back-to-back collectives cannot cross-match.
"""

from __future__ import annotations

import itertools
from typing import (TYPE_CHECKING, Any, Callable, Generator, List,
                    Optional)

if TYPE_CHECKING:
    from repro.mpi.api import Communicator

# tag bases, far above user tags
_BARRIER = 1 << 20
_BCAST = 2 << 20
_REDUCE = 3 << 20
_ALLRED = 4 << 20
_GATHER = 5 << 20
_A2A = 6 << 20
_GATHERV = 7 << 20
_SCATTER = 8 << 20
_SCAN = 9 << 20
_EPOCH_STRIDE = 64  # rounds per epoch


def _epoch(comm: Communicator, counter_name: str) -> int:
    counters = comm.__dict__.setdefault("_coll_epochs", {})
    seq = counters.setdefault(counter_name, itertools.count())
    return next(seq)


def _default_op(a: Any, b: Any) -> Any:
    if a is None:
        return b
    if b is None:
        return a
    return a + b


def barrier(comm: Communicator) -> Generator:
    """Dissemination barrier: ceil(log2(n)) rounds of 1-byte exchanges."""
    size, rank = comm.size, comm.rank
    if size == 1:
        return
        yield  # pragma: no cover
    base = _BARRIER + _epoch(comm, "barrier") % 4096 * _EPOCH_STRIDE
    ep = comm.endpoint
    k = 0
    dist = 1
    while dist < size:
        dest = (rank + dist) % size
        src = (rank - dist) % size
        tag = base + k
        sp = comm.kernel.process(ep.send(dest, tag, 1), name=f"bar-s{rank}")
        rp = comm.kernel.process(ep.recv(src, tag), name=f"bar-r{rank}")
        yield comm.kernel.all_of([sp, rp])
        dist <<= 1
        k += 1


def bcast(comm: Communicator, root: int, size: int, payload: Any = None,
          addr: Optional[int] = None) -> Generator:
    """Binomial-tree broadcast; returns the payload at every rank."""
    n, rank = comm.size, comm.rank
    if n == 1:
        return payload
    tag = _BCAST + _epoch(comm, "bcast") % 4096 * _EPOCH_STRIDE
    ep = comm.endpoint
    vrank = (rank - root) % n
    mask = 1
    value = payload if rank == root else None
    while mask < n:
        if vrank & mask:
            src = (vrank - mask + root) % n
            value, _, _, _ = yield from ep.recv(src, tag, addr)
            break
        mask <<= 1
    mask >>= 1
    while mask > 0:
        if vrank & mask:
            break
        dest_v = vrank + mask
        if dest_v < n:
            dest = (dest_v + root) % n
            yield from ep.send(dest, tag, size, addr, value)
        mask >>= 1
    return value


def reduce(comm: Communicator, root: int, size: int, value: Any = None,
           op: Optional[Callable[[Any, Any], Any]] = None,
           addr: Optional[int] = None) -> Generator:
    """Binomial-tree reduction; returns the result at *root*."""
    n, rank = comm.size, comm.rank
    if op is None:
        op = _default_op
    if n == 1:
        return value
    tag = _REDUCE + _epoch(comm, "reduce") % 4096 * _EPOCH_STRIDE
    ep = comm.endpoint
    vrank = (rank - root) % n
    acc = value
    mask = 1
    while mask < n:
        if vrank & mask == 0:
            src_v = vrank | mask
            if src_v < n:
                src = (src_v + root) % n
                other, _, _, _ = yield from ep.recv(src, tag, addr)
                acc = op(acc, other)
        else:
            dest = (vrank - mask + root) % n
            yield from ep.send(dest, tag, size, addr, acc)
            return None
        mask <<= 1
    return acc if rank == root else None


def allreduce(comm: Communicator, size: int, value: Any = None,
              op: Optional[Callable[[Any, Any], Any]] = None,
              addr: Optional[int] = None) -> Generator:
    """Recursive-doubling allreduce (reduce+bcast for odd world sizes)."""
    n, rank = comm.size, comm.rank
    if op is None:
        op = _default_op
    if n == 1:
        return value
    if n & (n - 1):
        acc = yield from reduce(comm, 0, size, value, op, addr)
        return (yield from bcast(comm, 0, size, acc, addr))
    tag = _ALLRED + _epoch(comm, "allreduce") % 4096 * _EPOCH_STRIDE
    ep = comm.endpoint
    acc = value
    mask = 1
    k = 0
    while mask < n:
        partner = rank ^ mask
        sp = comm.kernel.process(
            ep.send(partner, tag + k, size, addr, acc), name=f"ar-s{rank}"
        )
        rp = comm.kernel.process(ep.recv(partner, tag + k, addr), name=f"ar-r{rank}")
        results = yield comm.kernel.all_of([sp, rp])
        other = results[1][0]
        acc = op(acc, other)
        mask <<= 1
        k += 1
    return acc


def allgather(comm: Communicator, size: int, value: Any = None,
              addr: Optional[int] = None) -> Generator:
    """Ring allgather; returns the list of per-rank values in rank order.

    *addr* is the output buffer used as the send/receive target when
    *size* exceeds the RDMA threshold (rendezvous needs real buffers).
    Like a real ring allgather, each step receives into that segment of
    the output array which belongs to the segment's owner rank — the
    buffer should therefore hold ``comm.size`` segments of *size* bytes.
    """
    n, rank = comm.size, comm.rank
    values: List[Any] = [None] * n
    values[rank] = value
    if n == 1:
        return values
    tag = _GATHER + _epoch(comm, "allgather") % 4096 * _EPOCH_STRIDE
    ep = comm.endpoint
    right = (rank + 1) % n
    left = (rank - 1) % n
    carry_idx = rank
    for step in range(n - 1):
        incoming_idx = (rank - step - 1) % n
        send_addr = addr + carry_idx * size if addr is not None else None
        recv_addr = addr + incoming_idx * size if addr is not None else None
        sp = comm.kernel.process(
            ep.send(right, tag + step, size, send_addr, (carry_idx, values[carry_idx])),
            name=f"ag-s{rank}",
        )
        rp = comm.kernel.process(
            ep.recv(left, tag + step, recv_addr), name=f"ag-r{rank}"
        )
        results = yield comm.kernel.all_of([sp, rp])
        idx, val = results[1][0]
        values[idx] = val
        carry_idx = idx
    return values


def alltoallv(comm: Communicator, sizes: List[int], payloads: Optional[List[Any]] = None,
              addrs: Optional[List[Optional[int]]] = None,
              recv_addrs: Optional[List[Optional[int]]] = None) -> Generator:
    """Pairwise-exchange alltoallv.

    *sizes[d]* is the byte count this rank sends to rank *d*;
    *payloads[d]* / *addrs[d]* optionally give the data / source buffer;
    *recv_addrs[s]* the receive buffer for data from rank *s* (required
    when the inbound message exceeds the RDMA threshold).
    Returns the list of received payloads indexed by source rank.
    """
    n, rank = comm.size, comm.rank
    if len(sizes) != n:
        raise ValueError(f"sizes has {len(sizes)} entries for {n} ranks")
    payloads = payloads if payloads is not None else [None] * n
    addrs = addrs if addrs is not None else [None] * n
    recv_addrs = recv_addrs if recv_addrs is not None else [None] * n
    received: List[Any] = [None] * n
    received[rank] = payloads[rank]
    if n == 1:
        return received
    tag = _A2A + _epoch(comm, "alltoallv") % 4096 * _EPOCH_STRIDE
    ep = comm.endpoint
    for step in range(1, n):
        dest = (rank + step) % n
        src = (rank - step) % n
        sp = comm.kernel.process(
            ep.send(dest, tag + step, sizes[dest], addrs[dest], payloads[dest]),
            name=f"a2a-s{rank}",
        )
        rp = comm.kernel.process(
            ep.recv(src, tag + step, recv_addrs[src]), name=f"a2a-r{rank}"
        )
        results = yield comm.kernel.all_of([sp, rp])
        received[src] = results[1][0]
    return received


def gather(comm: Communicator, root: int, size: int, value: Any = None) -> Generator:
    """Binomial-tree gather; the root returns the rank-ordered list of
    values, everyone else None."""
    n, rank = comm.size, comm.rank
    if n == 1:
        return [value]
    tag = _GATHERV + _epoch(comm, "gather") % 4096 * _EPOCH_STRIDE
    ep = comm.endpoint
    vrank = (rank - root) % n
    bundle = {vrank: value}
    mask = 1
    while mask < n:
        if vrank & mask == 0:
            src_v = vrank | mask
            if src_v < n:
                src = (src_v + root) % n
                other, _, _, _ = yield from ep.recv(src, tag)
                bundle.update(other)
        else:
            dest = (vrank - mask + root) % n
            # subtree payload size grows with the bundle
            yield from ep.send(dest, tag, size * len(bundle), None, bundle)
            return None
        mask <<= 1
    if rank != root:
        return None
    return [bundle[(r - root) % n] for r in range(n)]


def scatter(comm: Communicator, root: int, size: int,
            values: Optional[List[Any]] = None) -> Generator:
    """Binomial-tree scatter; every rank returns its element of the
    root's *values* list."""
    n, rank = comm.size, comm.rank
    if n == 1:
        return values[0] if values else None
    if rank == root:
        if values is None or len(values) != n:
            raise ValueError(f"scatter root needs {n} values")
        bundle = {(r - root) % n: values[r] for r in range(n)}
    else:
        bundle = None
    tag = _SCATTER + _epoch(comm, "scatter") % 4096 * _EPOCH_STRIDE
    ep = comm.endpoint
    vrank = (rank - root) % n
    mask = 1
    while mask < n:
        if vrank & mask:
            src = (vrank - mask + root) % n
            bundle, _, _, _ = yield from ep.recv(src, tag)
            break
        mask <<= 1
    mask >>= 1
    while mask > 0:
        if vrank & mask:
            break
        dest_v = vrank + mask
        if dest_v < n:
            dest = (dest_v + root) % n
            subtree = {k: v for k, v in bundle.items() if k >= dest_v}
            bundle = {k: v for k, v in bundle.items() if k < dest_v}
            yield from ep.send(dest, tag, size * max(1, len(subtree)), None,
                               subtree)
        mask >>= 1
    return bundle[vrank]


def scan(comm: Communicator, size: int, value: Any = None,
         op: Optional[Callable[[Any, Any], Any]] = None) -> Generator:
    """Inclusive prefix scan (MPI_Scan): rank r returns
    op(value_0, ..., value_r)."""
    n, rank = comm.size, comm.rank
    if op is None:
        op = _default_op
    if n == 1:
        return value
    tag = _SCAN + _epoch(comm, "scan") % 4096 * _EPOCH_STRIDE
    ep = comm.endpoint
    result = value        # inclusive prefix so far
    carry = value         # contribution this rank forwards upward
    mask = 1
    k = 0
    while mask < n:
        partner_up = rank + mask
        partner_down = rank - mask
        ops = []
        if partner_up < n:
            ops.append(comm.kernel.process(
                ep.send(partner_up, tag + k, size, None, carry)))
        recv_proc = None
        if partner_down >= 0:
            recv_proc = comm.kernel.process(ep.recv(partner_down, tag + k))
            ops.append(recv_proc)
        if ops:
            results = yield comm.kernel.all_of(ops)
        if recv_proc is not None:
            other = results[-1][0]
            result = op(other, result)
            carry = op(other, carry)
        mask <<= 1
        k += 1
    return result
