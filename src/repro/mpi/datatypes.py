"""Non-contiguous datatypes and their mapping onto scatter/gather lists.

§4 of the paper argues that MPI implementations should map
``MPI_Pack()``/``MPI_Unpack()`` (and non-contiguous datatypes generally)
directly onto the InfiniBand scatter-gather interface instead of packing
through the CPU; §7 lists implementing this in MPICH2-CH3-IB as future
work.  This module provides both strategies so the benchmark suite can
quantify the difference:

- **CPU pack**: copy every block into a contiguous staging buffer, send
  one SGE (what all 2006 MPI libraries did).
- **SGE gather**: post a single work request whose SGE list *is* the
  block list — zero CPU copies, one doorbell, one CQE.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Tuple

from repro.ib.verbs import SGE


@dataclass(frozen=True)
class PackedVector:
    """A non-contiguous layout: ``count`` blocks of ``block_bytes`` every
    ``stride_bytes``, starting at ``base`` (an MPI vector type)."""

    base: int
    count: int
    block_bytes: int
    stride_bytes: int

    def __post_init__(self) -> None:
        if self.count <= 0 or self.block_bytes <= 0:
            raise ValueError("vector needs positive count and block size")
        if self.stride_bytes < self.block_bytes:
            raise ValueError("stride smaller than block: blocks overlap")

    @property
    def total_bytes(self) -> int:
        """Payload bytes (sum of blocks)."""
        return self.count * self.block_bytes

    @property
    def span_bytes(self) -> int:
        """Bytes from the first block's start to the last block's end."""
        return (self.count - 1) * self.stride_bytes + self.block_bytes

    def blocks(self) -> List[Tuple[int, int]]:
        """The ``(addr, length)`` block list."""
        return [
            (self.base + i * self.stride_bytes, self.block_bytes)
            for i in range(self.count)
        ]


def pack_sges(blocks: Sequence[Tuple[int, int]], lkey: int) -> List[SGE]:
    """Turn an ``(addr, length)`` block list into an SGE list under one
    lkey (all blocks must lie inside that MR; the HCA validates)."""
    if not blocks:
        raise ValueError("need at least one block")
    return [SGE(addr=a, length=n, lkey=lkey) for a, n in blocks]
