"""MPI world, endpoints and the communicator API.

:class:`MPIWorld` launches rank programs (generator functions taking a
:class:`Communicator`) over a :class:`~repro.systems.machine.Cluster`
with block rank placement (the paper's "2 nodes with 4 processes each"
is ``ppn=4`` over a 2-node cluster: ranks 0-3 on node 0, 4-7 on node 1).

Transport selection per message:

========================  ==========================================
peer on the same node     shared-memory two-copy transport
size ≤ 8 KB               eager  (:mod:`repro.mpi.eager`)
8 KB < size ≤ 16 KB       copy rendezvous (:mod:`repro.mpi.eager`)
size > 16 KB              RDMA rendezvous (:mod:`repro.mpi.rendezvous`)
========================  ==========================================

Every communicator call is timed into the rank's mpiP-style profiler, so
Fig 6's communication/computation split is measured, not assumed.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import (TYPE_CHECKING, Any, Callable, Dict, Generator, List,
                    Optional, Sequence, Tuple)

from repro.engine.core import Event, Process, SimKernel
from repro.engine.resources import Channel, Store
from repro.faults import MPITransportError
from repro.ib.verbs import (
    SGE,
    CompletionQueue,
    MemoryRegion,
    ProtectionDomain,
    QueuePair,
    RecvWR,
    SendWR,
)
from repro.mpi import eager as eager_mod
from repro.mpi import rendezvous as rndv_mod
from repro.mpi.datatypes import pack_sges
from repro.mpi.profiler import MPIProfiler
from repro.mpi.regcache import RegistrationCache
from repro.systems.machine import Cluster, OSProcess

if TYPE_CHECKING:
    from repro.mem.access import AccessCost


@dataclass(frozen=True)
class MPIConfig:
    """Message-layer tunables (MVAPICH2-era defaults)."""

    eager_threshold: int = 8 * 1024
    rdma_threshold: int = 16 * 1024
    lazy_dereg: bool = True
    regcache_capacity: Optional[int] = None
    eager_buf_bytes: int = 16 * 1024
    prepost_depth: int = 8
    bounce_buffers: int = 16
    intra_copy_ns_per_byte: float = 0.25
    intra_latency_ns: float = 600.0
    #: §7 future-work feature: map non-contiguous sends onto SGE lists
    #: instead of CPU packing
    use_sge_pack: bool = False
    #: rendezvous data movement: "write" (the era's MVAPICH2 scheme) or
    #: "read" (receiver-pulls; one less control message)
    rndv_protocol: str = "write"

    def __post_init__(self) -> None:
        if self.eager_threshold > self.eager_buf_bytes:
            raise ValueError("eager threshold exceeds bounce buffer size")
        if self.rdma_threshold < self.eager_threshold:
            raise ValueError("RDMA threshold below eager threshold")
        if self.rndv_protocol not in ("write", "read"):
            raise ValueError(f"unknown rendezvous protocol "
                             f"{self.rndv_protocol!r}")


@dataclass
class Envelope:
    """Protocol header riding on every wire/intra message."""

    kind: str  # eager | rts | cts | fin | rdat
    src: int
    dst: int
    tag: int
    size: int
    payload: Any = None
    rndv: int = 0
    remote_addr: int = 0
    rkey: int = 0


class Endpoint:
    """One rank's transport state (see module docstring)."""

    CTRL_BYTES = 64

    def __init__(self, world: "MPIWorld", rank: int, proc: OSProcess,
                 config: MPIConfig):
        self.world = world
        self.rank = rank
        self.proc = proc
        self.config = config
        self.machine = proc.machine
        self.hca = self.machine.hca
        self.kernel: SimKernel = world.kernel
        self.pd = ProtectionDomain.fresh()
        self.send_cq = CompletionQueue(self.kernel)
        self.recv_cq = CompletionQueue(self.kernel)
        self.qps: Dict[int, QueuePair] = {}  # peer rank -> QP
        self.match_channel = Channel(self.kernel)
        self.cts_channel = Channel(self.kernel)
        self.fin_channel = Channel(self.kernel)
        self.bounce_pool = Store(self.kernel)
        self.regcache = RegistrationCache(
            self.hca,
            proc.aspace,
            self.pd,
            enabled=config.lazy_dereg,
            capacity_bytes=config.regcache_capacity,
            counters=proc.counters,
            owner=f"rank{rank}",
        )
        proc.aspace.unmap_hooks.append(self.regcache.invalidate_range)
        self._wr_ids = itertools.count(1)
        self._rndv_ids = itertools.count(1)
        self._send_events: Dict[int, Event] = {}
        self._recv_slots: Dict[int, Tuple[int, int, object]] = {}
        self._ready = False

    # -- identity helpers ------------------------------------------------------
    def node_of(self, rank: int) -> int:
        """Node index hosting *rank*."""
        return self.world.node_of(rank)

    def is_local(self, rank: int) -> bool:
        """True when *rank* lives on this endpoint's node."""
        return self.node_of(rank) == self.node_of(self.rank)

    def qp_for(self, dest: int) -> QueuePair:
        """The QP towards remote rank *dest*."""
        qp = self.qps.get(dest)
        if qp is None:
            raise ValueError(f"rank {self.rank} has no QP to rank {dest}")
        return qp

    def make_envelope(self, kind: str, dest: int, tag: int, size: int,
                      payload: Any = None, rndv: int = 0,
                      remote_addr: int = 0, rkey: int = 0) -> Envelope:
        """Build a protocol header originating at this rank."""
        return Envelope(kind=kind, src=self.rank, dst=dest, tag=tag, size=size,
                        payload=payload, rndv=rndv, remote_addr=remote_addr,
                        rkey=rkey)

    def next_wr_id(self) -> int:
        return next(self._wr_ids)

    def next_rndv_id(self) -> int:
        # namespaced per rank so concurrent rendezvous cannot collide
        return (self.rank << 32) | next(self._rndv_ids)

    def expect_send_completion(self, wr_id: int) -> Event:
        """Event that fires when the send WR *wr_id* completes locally."""
        ev = self.kernel.event()
        self._send_events[wr_id] = ev
        return ev

    # -- setup -------------------------------------------------------------------
    def setup(self) -> Generator:
        """Allocate and register bounce buffers, pre-post receives, start
        progress engines.  Timed (runs before the profiled window)."""
        from repro import trace

        tracer = trace.active()
        if tracer is None:
            yield from self._setup_impl()
            return
        with tracer.span("mpi.setup", track=f"rank{self.rank}.tx",
                         rank=self.rank):
            yield from self._setup_impl()

    def _setup_impl(self) -> Generator:
        cfg = self.config
        n_qps = max(1, len(self.qps))
        n_recv_bufs = cfg.prepost_depth * n_qps
        total = (cfg.bounce_buffers + n_recv_bufs) * cfg.eager_buf_bytes
        slab = self.proc.malloc(total)
        # registered through the regcache's retry policy so a transient
        # driver failure during setup is retried, not fatal
        mr = yield from self.regcache.register_with_retry(slab, total)
        cursor = slab
        for _ in range(cfg.bounce_buffers):
            self.bounce_pool.put((cursor, mr))
            cursor += cfg.eager_buf_bytes
        for peer, qp in self.qps.items():
            for _ in range(cfg.prepost_depth):
                yield from self._post_eager_recv(qp, cursor, mr)
                cursor += cfg.eager_buf_bytes
        self.kernel.process(self._recv_progress(), name=f"r{self.rank}-rxprog")
        self.kernel.process(self._send_progress(), name=f"r{self.rank}-txprog")
        self._ready = True

    def _post_eager_recv(self, qp: QueuePair, buf: int,
                         mr: MemoryRegion) -> Generator:
        wr_id = self.next_wr_id()
        self._recv_slots[wr_id] = (buf, qp.qp_num, (qp, mr))
        wr = RecvWR(wr_id=wr_id, sges=[SGE(buf, self.config.eager_buf_bytes, mr.lkey)])
        yield from self.hca.post_recv(qp, wr)

    # -- progress engines -------------------------------------------------------------
    def _recv_progress(self) -> Generator:
        while True:
            wc = yield from self.hca.wait_completion(self.recv_cq)
            buf, _qp_num, (qp, mr) = self._recv_slots.pop(wc.wr_id)
            env = wc.payload
            self._dispatch(env)
            yield from self._post_eager_recv(qp, buf, mr)

    def _send_progress(self) -> Generator:
        while True:
            wc = yield from self.hca.wait_completion(self.send_cq)
            ev = self._send_events.pop(wc.wr_id, None)
            if ev is None:
                raise RuntimeError(f"completion for unknown WR {wc.wr_id}")
            if wc.ok:
                ev.succeed(wc)
            else:
                ev.fail(MPITransportError(
                    f"rank {self.rank}: send WR {wc.wr_id} "
                    f"({wc.byte_len} B, {wc.opcode}) failed: {wc.status}"
                ))

    def _dispatch(self, env: Envelope) -> None:
        if env.kind in ("eager", "rts", "rdat"):
            self.match_channel.send(env)
        elif env.kind == "cts":
            self.cts_channel.send(env)
        elif env.kind == "fin":
            self.fin_channel.send(env)
        else:  # pragma: no cover - defensive
            raise RuntimeError(f"unknown envelope kind {env.kind!r}")

    # -- point-to-point: send ------------------------------------------------------------
    def send(self, dest: int, tag: int, size: int,
             addr: Optional[int] = None, payload: Any = None) -> Generator:
        """Blocking standard-mode send."""
        if size < 0:
            raise ValueError(f"negative message size {size}")
        if dest == self.rank:
            raise ValueError("send to self is not supported")
        if self.is_local(dest):
            yield from self._send_intra(dest, tag, size, payload)
        elif size <= self.config.eager_threshold:
            yield from eager_mod.eager_send(self, dest, tag, size, addr, payload)
        elif size <= self.config.rdma_threshold:
            yield from eager_mod.copy_rendezvous_send(
                self, dest, tag, size, addr, payload
            )
        elif self.config.rndv_protocol == "read":
            yield from rndv_mod.rdma_read_rendezvous_send(
                self, dest, tag, size, addr, payload
            )
        else:
            yield from rndv_mod.rdma_rendezvous_send(
                self, dest, tag, size, addr, payload
            )

    def send_packed(self, dest: int, tag: int, blocks: List[Tuple[int, int]],
                    lkey_mr: MemoryRegion, payload: Any = None) -> Generator:
        """Send a non-contiguous block list.

        With :attr:`MPIConfig.use_sge_pack` the blocks become one work
        request's SGE list (the §7 feature); otherwise they are CPU-packed
        into a bounce buffer and sent as one contiguous eager message.
        *lkey_mr* is the MR covering the blocks (SGE mode only).
        """
        total = sum(n for _, n in blocks)
        if self.is_local(dest):
            yield from self._send_intra(dest, tag, total, payload)
            return
        if total > self.config.eager_threshold:
            raise ValueError("packed sends are for small-message aggregation")
        if self.config.use_sge_pack:
            env = self.make_envelope("eager", dest, tag, total, payload=payload)
            qp = self.qp_for(dest)
            wr_id = self.next_wr_id()
            done = self.expect_send_completion(wr_id)
            wr = SendWR(wr_id=wr_id, sges=pack_sges(blocks, lkey_mr.lkey), payload=env)
            yield from self.hca.post_send(qp, wr)
            yield done
        else:
            # CPU pack: copy each block into a held pack buffer, release
            # it, then eager-send the contiguous result
            buf_addr, mr = yield self.bounce_pool.get()
            try:
                cursor = 0
                for addr, nbytes in blocks:
                    cost = self.proc.engine.copy(addr, buf_addr + cursor, nbytes)
                    yield self.kernel.timeout(cost.ticks)
                    cursor += nbytes
            finally:
                self.bounce_pool.put((buf_addr, mr))
            yield from eager_mod.eager_send(self, dest, tag, total, None, payload)

    def _send_intra(self, dest: int, tag: int, size: int, payload: Any) -> Generator:
        cfg = self.config
        ns = cfg.intra_latency_ns + size * cfg.intra_copy_ns_per_byte
        yield self.kernel.timeout(self.machine.clock.ns_to_ticks(ns))
        env = self.make_envelope("eager", dest, tag, size, payload=payload)
        self.world.endpoint(dest).match_channel.send(env)

    # -- point-to-point: recv -------------------------------------------------------------
    def recv(self, source: Optional[int] = None, tag: Optional[int] = None,
             addr: Optional[int] = None) -> Generator:
        """Blocking receive; returns ``(payload, size, src, tag)``.

        *addr* is the user receive buffer — required for messages above
        the RDMA threshold (the adapter must have a target).
        """
        def matches(env: Envelope) -> bool:
            if env.kind not in ("eager", "rts"):
                return False
            if source is not None and env.src != source:
                return False
            if tag is not None and env.tag != tag:
                return False
            return True

        env = yield self.match_channel.receive(matches)
        if env.kind == "eager":
            if self.is_local(env.src):
                cfg = self.config
                ns = env.size * cfg.intra_copy_ns_per_byte
                yield self.kernel.timeout(self.machine.clock.ns_to_ticks(ns))
                payload = env.payload
            else:
                payload = yield from eager_mod.eager_recv_copy_out(self, env, addr)
        elif env.size <= self.config.rdma_threshold:
            payload = yield from eager_mod.copy_rendezvous_recv(self, env, addr)
        elif self.config.rndv_protocol == "read":
            payload = yield from rndv_mod.rdma_read_rendezvous_recv(
                self, env, addr
            )
        else:
            payload = yield from rndv_mod.rdma_rendezvous_recv(self, env, addr)
        return payload, env.size, env.src, env.tag


@dataclass
class RankResult:
    """Outcome of one rank's program."""

    rank: int
    value: Any
    profiler: MPIProfiler
    app_ticks: int


class Communicator:
    """The per-rank MPI handle handed to rank programs."""

    def __init__(self, world: "MPIWorld", endpoint: Endpoint):
        self.world = world
        self.endpoint = endpoint
        self.kernel = world.kernel
        self.profiler = MPIProfiler(endpoint.rank)

    # -- identity -----------------------------------------------------------
    @property
    def rank(self) -> int:
        """This rank's index."""
        return self.endpoint.rank

    @property
    def size(self) -> int:
        """Number of ranks in the world."""
        return self.world.size

    @property
    def proc(self) -> OSProcess:
        """The rank's OS process (allocator, address space, engine)."""
        return self.endpoint.proc

    # -- timed wrappers ----------------------------------------------------------
    def _timed(self, name: str, gen: Generator, nbytes: int = 0) -> Generator:
        t0 = self.kernel.now
        result = yield from gen
        self.profiler.record(name, self.kernel.now - t0, nbytes)
        return result

    def send(self, dest: int, tag: int, size: int,
             addr: Optional[int] = None, payload: Any = None) -> Generator:
        """MPI_Send."""
        return self._timed(
            "MPI_Send", self.endpoint.send(dest, tag, size, addr, payload), size
        )

    def recv(self, source: Optional[int] = None, tag: Optional[int] = None,
             addr: Optional[int] = None) -> Generator:
        """MPI_Recv; returns ``(payload, size, src, tag)``."""
        return self._timed("MPI_Recv", self.endpoint.recv(source, tag, addr))

    def sendrecv(self, dest: int, sendtag: int, size: int,
                 source: Optional[int] = None, recvtag: Optional[int] = None,
                 send_addr: Optional[int] = None, recv_addr: Optional[int] = None,
                 payload: Any = None) -> Generator:
        """MPI_Sendrecv: send and receive concurrently."""
        t0 = self.kernel.now
        sp = self.kernel.process(
            self.endpoint.send(dest, sendtag, size, send_addr, payload),
            name=f"r{self.rank}-sr-send",
        )
        rp = self.kernel.process(
            self.endpoint.recv(source, recvtag, recv_addr),
            name=f"r{self.rank}-sr-recv",
        )
        results = yield self.kernel.all_of([sp, rp])
        self.profiler.record("MPI_Sendrecv", self.kernel.now - t0, size)
        return results[1]

    def isend(self, dest: int, tag: int, size: int,
              addr: Optional[int] = None, payload: Any = None) -> Process:
        """Nonblocking send: returns a request (a DES process event);
        complete it with :meth:`wait`."""
        return self.kernel.process(
            self.endpoint.send(dest, tag, size, addr, payload),
            name=f"r{self.rank}-isend",
        )

    def irecv(self, source: Optional[int] = None, tag: Optional[int] = None,
              addr: Optional[int] = None) -> Process:
        """Nonblocking receive: returns a request; :meth:`wait` yields
        ``(payload, size, src, tag)``."""
        return self.kernel.process(
            self.endpoint.recv(source, tag, addr),
            name=f"r{self.rank}-irecv",
        )

    def wait(self, request: Process) -> Generator:
        """Complete one nonblocking request (MPI_Wait)."""
        t0 = self.kernel.now
        result = yield request
        self.profiler.record("MPI_Wait", self.kernel.now - t0)
        return result

    def waitall(self, requests: Sequence[Process]) -> Generator:
        """Complete several requests (MPI_Waitall); returns their
        results in order."""
        t0 = self.kernel.now
        results = yield self.kernel.all_of(list(requests))
        self.profiler.record("MPI_Waitall", self.kernel.now - t0)
        return results

    def send_packed(self, dest: int, tag: int,
                    blocks: List[Tuple[int, int]], mr: MemoryRegion,
                    payload: Any = None) -> Generator:
        """Send a non-contiguous block list (SGE or CPU pack per config)."""
        total = sum(n for _, n in blocks)
        return self._timed(
            "MPI_Send(packed)",
            self.endpoint.send_packed(dest, tag, blocks, mr, payload),
            total,
        )

    # -- computation -----------------------------------------------------------------
    def compute_ticks(self, ticks: int) -> Generator:
        """Spend *ticks* of pure computation time."""
        if ticks < 0:
            raise ValueError(f"negative compute time {ticks}")
        yield self.kernel.timeout(ticks)

    def compute(self, cost: AccessCost) -> Generator:
        """Spend an :class:`~repro.mem.access.AccessCost` of computation."""
        yield self.kernel.timeout(cost.ticks)

    # -- collectives (implemented in repro.mpi.collectives) -----------------------------
    def barrier(self) -> Generator:
        """MPI_Barrier."""
        from repro.mpi.collectives import barrier

        return self._timed("MPI_Barrier", barrier(self))

    def bcast(self, root: int, size: int, payload: Any = None,
              addr: Optional[int] = None) -> Generator:
        """MPI_Bcast; returns the payload at every rank."""
        from repro.mpi.collectives import bcast

        return self._timed("MPI_Bcast", bcast(self, root, size, payload, addr), size)

    def allreduce(self, size: int, value: Any = None,
                  op: Callable[[Any, Any], Any] = None,
                  addr: Optional[int] = None) -> Generator:
        """MPI_Allreduce; returns the combined value at every rank."""
        from repro.mpi.collectives import allreduce

        return self._timed(
            "MPI_Allreduce", allreduce(self, size, value, op, addr), size
        )

    def reduce(self, root: int, size: int, value: Any = None,
               op: Callable[[Any, Any], Any] = None) -> Generator:
        """MPI_Reduce; returns the combined value at the root, None elsewhere."""
        from repro.mpi.collectives import reduce as reduce_

        return self._timed("MPI_Reduce", reduce_(self, root, size, value, op), size)

    def alltoallv(self, sizes: List[int], payloads: Optional[List[Any]] = None,
                  addrs: Optional[List[Optional[int]]] = None,
                  recv_addrs: Optional[List[Optional[int]]] = None) -> Generator:
        """MPI_Alltoallv; returns the list of received payloads by rank."""
        from repro.mpi.collectives import alltoallv

        return self._timed(
            "MPI_Alltoallv",
            alltoallv(self, sizes, payloads, addrs, recv_addrs),
            sum(sizes),
        )

    def gather(self, root: int, size: int, value: Any = None) -> Generator:
        """MPI_Gather; the root returns the rank-ordered values list."""
        from repro.mpi.collectives import gather

        return self._timed("MPI_Gather", gather(self, root, size, value), size)

    def scatter(self, root: int, size: int,
                values: Optional[List[Any]] = None) -> Generator:
        """MPI_Scatter; every rank returns its element."""
        from repro.mpi.collectives import scatter

        return self._timed("MPI_Scatter", scatter(self, root, size, values),
                           size)

    def scan(self, size: int, value: Any = None,
             op: Callable[[Any, Any], Any] = None) -> Generator:
        """MPI_Scan (inclusive prefix)."""
        from repro.mpi.collectives import scan

        return self._timed("MPI_Scan", scan(self, size, value, op), size)

    def allgather(self, size: int, value: Any = None,
                  addr: Optional[int] = None) -> Generator:
        """MPI_Allgather; returns the list of every rank's value."""
        from repro.mpi.collectives import allgather

        return self._timed("MPI_Allgather", allgather(self, size, value, addr), size)


class MPIWorld:
    """Rank placement, endpoint wiring and program execution."""

    def __init__(self, cluster: Cluster, ppn: int,
                 config: Optional[MPIConfig] = None):
        if ppn < 1:
            raise ValueError("need at least one process per node")
        self.cluster = cluster
        self.kernel = cluster.kernel
        self.ppn = ppn
        self.size = ppn * len(cluster.nodes)
        self.config = config if config is not None else MPIConfig()
        self._endpoints: List[Endpoint] = []
        for rank in range(self.size):
            node = cluster.nodes[self.node_of(rank)]
            proc = node.new_process(name=f"rank{rank}")
            self._endpoints.append(Endpoint(self, rank, proc, self.config))
        self._wire_qps()
        self._comms = [Communicator(self, ep) for ep in self._endpoints]

    # -- placement -------------------------------------------------------------
    def node_of(self, rank: int) -> int:
        """Block placement: ranks 0..ppn-1 on node 0, etc."""
        if not 0 <= rank < self.size:
            raise ValueError(f"rank {rank} out of range")
        return rank // self.ppn

    def endpoint(self, rank: int) -> Endpoint:
        """The endpoint of *rank*."""
        return self._endpoints[rank]

    def communicator(self, rank: int) -> Communicator:
        """The communicator of *rank*."""
        return self._comms[rank]

    def _wire_qps(self) -> None:
        from repro.ib.hca import HCA

        for a in range(self.size):
            for b in range(a + 1, self.size):
                if self.node_of(a) == self.node_of(b):
                    continue
                ep_a, ep_b = self._endpoints[a], self._endpoints[b]
                qp_a = ep_a.machine.hca.create_qp(ep_a.pd, ep_a.send_cq, ep_a.recv_cq)
                qp_b = ep_b.machine.hca.create_qp(ep_b.pd, ep_b.send_cq, ep_b.recv_cq)
                HCA.connect_pair(qp_a, ep_a.machine.hca, qp_b, ep_b.machine.hca)
                ep_a.qps[b] = qp_a
                ep_b.qps[a] = qp_b

    # -- execution -----------------------------------------------------------------
    def run(self, program: Callable[[Communicator], Generator],
            until: Optional[int] = None) -> List[RankResult]:
        """Run *program* on every rank; returns per-rank results.

        The profiled window excludes endpoint setup (bounce registration)
        and is closed by a final barrier, like an mpiP report.
        """
        procs = []
        for comm in self._comms:
            procs.append(self.kernel.process(self._rank_main(comm, program),
                                             name=f"rank{comm.rank}"))
        self.kernel.run(until=until)
        results = []
        for comm, proc in zip(self._comms, procs):
            if proc.is_alive:
                raise RuntimeError(
                    f"rank {comm.rank} did not finish (deadlock or until= hit)"
                )
            results.append(
                RankResult(
                    rank=comm.rank,
                    value=proc.value,
                    profiler=comm.profiler,
                    app_ticks=comm.profiler.app_ticks,
                )
            )
        return results

    def _rank_main(self, comm: Communicator,
                   program: Callable[[Communicator], Generator]) -> Generator:
        from repro.mpi.collectives import barrier

        yield from comm.endpoint.setup()
        yield from barrier(comm)
        comm.profiler.app_started(self.kernel.now)
        value = yield from program(comm)
        yield from barrier(comm)
        comm.profiler.app_ended(self.kernel.now)
        return value
