"""mpiP-like profiling: per-call-site timing and the comm/compute split.

The paper obtains Fig 6's decomposition "by utilizing the mpiP library,
which is able to instrument MPI functions ... Thus, we are able to
distinguish between communication and computation time" (§5.2).  The
:class:`MPIProfiler` does the same for simulated ranks: every
communicator call records its elapsed ticks under its MPI function name;
application time is the rank's total wall ticks; computation time is the
difference.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional


@dataclass
class CallRecord:
    """Aggregate stats of one MPI call site."""

    name: str
    calls: int = 0
    ticks: int = 0
    bytes_moved: int = 0

    def note(self, ticks: int, nbytes: int = 0) -> None:
        """Record one completed call."""
        self.calls += 1
        self.ticks += ticks
        self.bytes_moved += nbytes


class MPIProfiler:
    """Per-rank communication profiler."""

    def __init__(self, rank: int):
        self.rank = rank
        self.records: Dict[str, CallRecord] = {}
        self._app_start: Optional[int] = None
        self._app_end: Optional[int] = None

    # -- lifecycle ----------------------------------------------------------
    def app_started(self, now: int) -> None:
        """Mark application start (after MPI_Init-equivalent setup)."""
        self._app_start = now

    def app_ended(self, now: int) -> None:
        """Mark application end."""
        self._app_end = now

    # -- recording ---------------------------------------------------------------
    def record(self, name: str, ticks: int, nbytes: int = 0) -> None:
        """Record one MPI call's elapsed ticks."""
        if ticks < 0:
            raise ValueError(f"negative call duration {ticks}")
        rec = self.records.get(name)
        if rec is None:
            rec = self.records[name] = CallRecord(name)
        rec.note(ticks, nbytes)

    # -- results ---------------------------------------------------------------------
    @property
    def comm_ticks(self) -> int:
        """Total ticks inside MPI calls."""
        return sum(r.ticks for r in self.records.values())

    @property
    def app_ticks(self) -> int:
        """Wall ticks between app_started and app_ended."""
        if self._app_start is None or self._app_end is None:
            raise ValueError("profiler window was not closed")
        return self._app_end - self._app_start

    @property
    def compute_ticks(self) -> int:
        """Everything that is not MPI time."""
        return max(0, self.app_ticks - self.comm_ticks)

    @property
    def comm_fraction(self) -> float:
        """MPI share of the application time."""
        app = self.app_ticks
        return self.comm_ticks / app if app else 0.0

    def summary(self) -> Dict[str, CallRecord]:
        """Call records keyed by MPI function name."""
        return dict(self.records)
