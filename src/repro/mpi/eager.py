"""The eager protocol and the copy-based (non-RDMA) rendezvous.

Eager (messages ≤ 8 KB): the sender copies into a pre-registered bounce
buffer and fires one send WR; the receiver's pre-posted bounce catches
it, the payload is copied out on match.  No user-buffer registration —
which is why Fig 5 shows no hugepage effect below the RDMA threshold.

Copy rendezvous (8 KB < size ≤ 16 KB): an RTS/CTS handshake followed by
the payload chunked through bounce buffers.  Still no registration
("For buffers larger than 16 KB, it uses the RDMA feature of InfiniBand
so we only see memory registration effects for those buffers", §5.1).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Generator, Optional

from repro import trace
from repro.faults import MPITransportError
from repro.ib.verbs import SGE, SendWR

if TYPE_CHECKING:
    from repro.mpi.api import Endpoint, Envelope


def eager_send(endpoint: Endpoint, dest: int, tag: int, size: int, addr: Optional[int],
               payload: Any) -> Generator:
    """Send one eager message (size must fit a bounce buffer)."""
    tracer = trace.active()
    if tracer is None:
        yield from _eager_send_impl(endpoint, dest, tag, size, addr, payload)
        return
    with tracer.span("mpi.eager.send", track=f"rank{endpoint.rank}.tx",
                     dest=dest, bytes=size):
        yield from _eager_send_impl(endpoint, dest, tag, size, addr, payload)


def _eager_send_impl(endpoint: Endpoint, dest: int, tag: int, size: int,
                     addr: Optional[int], payload: Any) -> Generator:
    env = endpoint.make_envelope("eager", dest, tag, size, payload=payload)
    yield from send_through_bounce(endpoint, dest, env, size, addr)


def send_through_bounce(endpoint: Endpoint, dest: int, env: Envelope, wire_bytes: int,
                        addr: Optional[int]) -> Generator:
    """Copy (if a source address is known) into a free bounce buffer and
    post one send WR carrying *env*; returns after local completion."""
    buf = endpoint.bounce_pool.try_get()
    if buf is None:
        buf = yield endpoint.bounce_pool.get()
    buf_addr, mr = buf
    try:
        if addr is not None and wire_bytes > 0:
            cost = endpoint.proc.engine.copy(addr, buf_addr, wire_bytes)
            yield endpoint.kernel.timeout(cost.ticks)
        qp = endpoint.qp_for(dest)
        wr_id = endpoint.next_wr_id()
        done = endpoint.expect_send_completion(wr_id)
        # zero-byte messages ride a zero-length SGE: the wire then costs
        # exactly one header-only packet (serialization_ns(0)), not the
        # one-byte cost max(1, wire_bytes) used to smuggle in here
        wr = SendWR(
            wr_id=wr_id,
            sges=[SGE(buf_addr, wire_bytes, mr.lkey)],
            payload=env,
        )
        yield from endpoint.hca.post_send(qp, wr)
        try:
            yield done
        except MPITransportError as exc:
            raise MPITransportError(
                f"rank {endpoint.rank}: {env.kind!r} message to rank "
                f"{dest} ({wire_bytes} B) aborted: {exc}"
            ) from exc
    finally:
        endpoint.bounce_pool.put_nowait((buf_addr, mr))


def send_ctrl(endpoint: Endpoint, dest: int, env: Envelope) -> Generator:
    """Send a small protocol control message (RTS/CTS/FIN)."""
    yield from send_through_bounce(endpoint, dest, env, endpoint.CTRL_BYTES, None)


def copy_rendezvous_send(endpoint: Endpoint, dest: int, tag: int, size: int,
                         addr: Optional[int], payload: Any) -> Generator:
    """RTS/CTS handshake, then the payload chunked through bounce bufs."""
    tracer = trace.active()
    if tracer is None:
        yield from _copy_rendezvous_send_impl(
            endpoint, dest, tag, size, addr, payload
        )
        return
    with tracer.span("mpi.rndv.copy.send", track=f"rank{endpoint.rank}.tx",
                     dest=dest, bytes=size):
        yield from _copy_rendezvous_send_impl(
            endpoint, dest, tag, size, addr, payload
        )


def _copy_rendezvous_send_impl(endpoint: Endpoint, dest: int, tag: int, size: int,
                               addr: Optional[int], payload: Any) -> Generator:
    rndv = endpoint.next_rndv_id()
    rts = endpoint.make_envelope("rts", dest, tag, size, rndv=rndv)
    yield from send_ctrl(endpoint, dest, rts)
    yield endpoint.cts_channel.receive(lambda e: e.rndv == rndv)
    chunk = endpoint.config.eager_buf_bytes
    offset = 0
    n_chunks = (size + chunk - 1) // chunk
    for i in range(n_chunks):
        this = min(chunk, size - offset)
        env = endpoint.make_envelope(
            "rdat", dest, tag, this, rndv=rndv,
            payload=payload if i == n_chunks - 1 else None,
        )
        src = addr + offset if addr is not None else None
        yield from send_through_bounce(endpoint, dest, env, this, src)
        offset += this


def copy_rendezvous_recv(endpoint: Endpoint, env: Envelope, addr: Optional[int]) -> Generator:
    """Receiver half of the copy rendezvous; returns the payload."""
    tracer = trace.active()
    if tracer is None:
        return (yield from _copy_rendezvous_recv_impl(endpoint, env, addr))
    with tracer.span("mpi.rndv.copy.recv", track=f"rank{endpoint.rank}.rx",
                     src=env.src, bytes=env.size):
        return (yield from _copy_rendezvous_recv_impl(endpoint, env, addr))


def _copy_rendezvous_recv_impl(endpoint: Endpoint, env: Envelope, addr: Optional[int]) -> Generator:
    cts = endpoint.make_envelope("cts", env.src, env.tag, env.size, rndv=env.rndv)
    yield from send_ctrl(endpoint, env.src, cts)
    remaining = env.size
    payload = None
    offset = 0
    while remaining > 0:
        data = yield endpoint.match_channel.receive(
            lambda e: e.kind == "rdat" and e.rndv == env.rndv
        )
        if addr is not None:
            # copy out of the bounce into the user buffer
            cost = endpoint.proc.engine.stream(addr + offset, data.size, write=True)
            yield endpoint.kernel.timeout(cost.ticks)
        if data.payload is not None:
            payload = data.payload
        offset += data.size
        remaining -= data.size
    return payload


def eager_recv_copy_out(endpoint: Endpoint, env: Envelope, addr: Optional[int]) -> Generator:
    """Charge the receiver-side copy from the bounce to the user buffer."""
    tracer = trace.active()
    if tracer is None:
        return (yield from _eager_recv_copy_out_impl(endpoint, env, addr))
    with tracer.span("mpi.eager.recv", track=f"rank{endpoint.rank}.rx",
                     src=env.src, bytes=env.size):
        return (yield from _eager_recv_copy_out_impl(endpoint, env, addr))


def _eager_recv_copy_out_impl(endpoint: Endpoint, env: Envelope, addr: Optional[int]) -> Generator:
    if addr is not None and env.size > 0:
        cost = endpoint.proc.engine.stream(addr, env.size, write=True)
        yield endpoint.kernel.timeout(cost.ticks)
    return env.payload
