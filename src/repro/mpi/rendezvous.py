"""The RDMA rendezvous protocols (messages > 16 KB).

Write-based (the MVAPICH2 scheme of the paper's era, the default):

    sender                          receiver
    ------                          --------
    RTS(src,tag,size,rndv)  ---->   (matched by a posted recv)
                                    register recv buffer   <- regcache
    (register send buffer)  <----   CTS(rndv, raddr, rkey)
    RDMA-write payload      ---->   (lands directly in the user buffer)
    FIN(rndv)               ---->   completion

Read-based (the scheme MVAPICH adopted shortly after; one less control
message and the sender never blocks on the receiver's progress):

    sender                          receiver
    ------                          --------
    register send buffer                (matched by a posted recv)
    RTS(rndv, saddr, skey)  ---->   register recv buffer
                            <----   RDMA-read of the sender's buffer
                            <----   FIN(rndv): sender may reuse/deregister

Both registrations go through the rank's registration cache; with lazy
deregistration disabled every message pays the full pin+translate+upload
cost on both sides — Fig 5's first experiment.  The data movement itself
is a single one-sided operation on the user buffers, so buffer
*placement* (4 KB vs 2 MB pages) drives both the registration cost and
the adapter's ATT behaviour during the transfer.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Generator

from repro import trace
from repro.faults import MPITransportError
from repro.ib.verbs import SGE, SendWR

if TYPE_CHECKING:
    from repro.mpi.api import Endpoint, Envelope
from repro.mpi.eager import send_ctrl


def rdma_rendezvous_send(endpoint: Endpoint, dest: int, tag: int, size: int,
                         addr: int, payload: Any) -> Generator:
    """Sender half (see module docstring); *addr* must be a real mapped
    buffer — the RDMA path cannot send from nowhere."""
    if addr is None:
        raise ValueError("RDMA rendezvous requires a source buffer address")
    tracer = trace.active()
    if tracer is None:
        yield from _rdma_rendezvous_send_impl(
            endpoint, dest, tag, size, addr, payload
        )
        return
    with tracer.span("mpi.rndv.write.send", track=f"rank{endpoint.rank}.tx",
                     dest=dest, bytes=size):
        yield from _rdma_rendezvous_send_impl(
            endpoint, dest, tag, size, addr, payload
        )


def _rdma_rendezvous_send_impl(endpoint: Endpoint, dest: int, tag: int, size: int,
                               addr: int, payload: Any) -> Generator:
    rndv = endpoint.next_rndv_id()
    rts = endpoint.make_envelope("rts", dest, tag, size, rndv=rndv)
    yield from send_ctrl(endpoint, dest, rts)
    cts = yield endpoint.cts_channel.receive(lambda e: e.rndv == rndv)
    mr = yield from endpoint.regcache.acquire(addr, size)
    qp = endpoint.qp_for(dest)
    wr_id = endpoint.next_wr_id()
    done = endpoint.expect_send_completion(wr_id)
    wr = SendWR(
        wr_id=wr_id,
        sges=[SGE(addr, size, mr.lkey)],
        opcode="rdma_write",
        remote_addr=cts.remote_addr,
        rkey=cts.rkey,
        payload=payload,
    )
    yield from endpoint.hca.post_send(qp, wr)
    try:
        yield done
    except MPITransportError as exc:
        # release the cached registration before surfacing the abort,
        # or the MR leaks a reference for the life of the rank
        yield from endpoint.regcache.release(mr)
        raise MPITransportError(
            f"rank {endpoint.rank}: rendezvous write of {size} B to "
            f"rank {dest} aborted: {exc}"
        ) from exc
    yield from endpoint.regcache.release(mr)
    fin = endpoint.make_envelope("fin", dest, tag, size, rndv=rndv)
    yield from send_ctrl(endpoint, dest, fin)


def rdma_rendezvous_recv(endpoint: Endpoint, env: Envelope, addr: int) -> Generator:
    """Receiver half; *addr* is the user receive buffer (required)."""
    if addr is None:
        raise ValueError(
            "RDMA rendezvous requires a receive buffer address "
            f"(recv of {env.size} bytes from rank {env.src})"
        )
    tracer = trace.active()
    if tracer is None:
        return (yield from _rdma_rendezvous_recv_impl(endpoint, env, addr))
    with tracer.span("mpi.rndv.write.recv", track=f"rank{endpoint.rank}.rx",
                     src=env.src, bytes=env.size):
        return (yield from _rdma_rendezvous_recv_impl(endpoint, env, addr))


def _rdma_rendezvous_recv_impl(endpoint: Endpoint, env: Envelope, addr: int) -> Generator:
    mr = yield from endpoint.regcache.acquire(addr, env.size)
    cts = endpoint.make_envelope(
        "cts", env.src, env.tag, env.size, rndv=env.rndv,
        remote_addr=addr, rkey=mr.rkey,
    )
    yield from send_ctrl(endpoint, env.src, cts)
    yield endpoint.fin_channel.receive(lambda e: e.rndv == env.rndv)
    payload = endpoint.hca.rdma_landed.pop((mr.rkey, addr), None)
    yield from endpoint.regcache.release(mr)
    return payload


def rdma_read_rendezvous_send(endpoint: Endpoint, dest: int, tag: int, size: int,
                              addr: int, payload: Any) -> Generator:
    """Sender half of the read rendezvous: expose the buffer, announce
    it in the RTS, wait for the receiver's FIN."""
    if addr is None:
        raise ValueError("RDMA rendezvous requires a source buffer address")
    tracer = trace.active()
    if tracer is None:
        yield from _rdma_read_rendezvous_send_impl(
            endpoint, dest, tag, size, addr, payload
        )
        return
    with tracer.span("mpi.rndv.read.send", track=f"rank{endpoint.rank}.tx",
                     dest=dest, bytes=size):
        yield from _rdma_read_rendezvous_send_impl(
            endpoint, dest, tag, size, addr, payload
        )


def _rdma_read_rendezvous_send_impl(endpoint: Endpoint, dest: int, tag: int, size: int,
                                    addr: int, payload: Any) -> Generator:
    rndv = endpoint.next_rndv_id()
    mr = yield from endpoint.regcache.acquire(addr, size)
    endpoint.hca.rdma_exposed[(mr.rkey, addr)] = payload
    rts = endpoint.make_envelope("rts", dest, tag, size, rndv=rndv,
                                 remote_addr=addr, rkey=mr.rkey)
    yield from send_ctrl(endpoint, dest, rts)
    yield endpoint.fin_channel.receive(lambda e: e.rndv == rndv)
    endpoint.hca.rdma_exposed.pop((mr.rkey, addr), None)
    yield from endpoint.regcache.release(mr)


def rdma_read_rendezvous_recv(endpoint: Endpoint, env: Envelope, addr: int) -> Generator:
    """Receiver half: pull the announced buffer with one RDMA read."""
    if addr is None:
        raise ValueError(
            "RDMA rendezvous requires a receive buffer address "
            f"(recv of {env.size} bytes from rank {env.src})"
        )
    tracer = trace.active()
    if tracer is None:
        return (yield from _rdma_read_rendezvous_recv_impl(endpoint, env, addr))
    with tracer.span("mpi.rndv.read.recv", track=f"rank{endpoint.rank}.rx",
                     src=env.src, bytes=env.size):
        return (yield from _rdma_read_rendezvous_recv_impl(endpoint, env, addr))


def _rdma_read_rendezvous_recv_impl(endpoint: Endpoint, env: Envelope, addr: int) -> Generator:
    mr = yield from endpoint.regcache.acquire(addr, env.size)
    qp = endpoint.qp_for(env.src)
    wr_id = endpoint.next_wr_id()
    done = endpoint.expect_send_completion(wr_id)
    wr = SendWR(
        wr_id=wr_id,
        sges=[SGE(addr, env.size, mr.lkey)],
        opcode="rdma_read",
        remote_addr=env.remote_addr,
        rkey=env.rkey,
    )
    yield from endpoint.hca.post_send(qp, wr)
    try:
        wc = yield done
    except MPITransportError as exc:
        yield from endpoint.regcache.release(mr)
        raise MPITransportError(
            f"rank {endpoint.rank}: rendezvous read of {env.size} B "
            f"from rank {env.src} aborted: {exc}"
        ) from exc
    yield from endpoint.regcache.release(mr)
    fin = endpoint.make_envelope("fin", env.src, env.tag, env.size,
                                 rndv=env.rndv)
    yield from send_ctrl(endpoint, env.src, fin)
    return wc.payload
