"""The registration cache: lazy deregistration (pin-down cache).

"To reduce this overhead, several strategies have been proposed (e.g.
lazy deregistration [9]) and implemented in communication libraries like
MPICH2-CH3-IB.  There, a pool of already registered memory is hold, so
that memory registration is done only once for each virtual address."
(§1)

And its drawback, which the hugepage library sidesteps: "memory remains
allocated to the application during their whole runtime" — we model that
too: cached registrations pin pages, so the allocator cannot return them
to the kernel, and a ``free()`` of cached memory must invalidate the
cache entry (the classic MVAPICH malloc-hook dance).
"""

from __future__ import annotations

from typing import Dict, Generator, List, Optional

from repro import trace
from repro.analysis.counters import CounterSet
from repro.faults import PermanentRegistrationError, TransientRegistrationError
from repro.ib.hca import HCA
from repro.ib.verbs import MemoryRegion, ProtectionDomain
from repro.mem.address_space import AddressSpace

#: transient-registration retry policy (only ever exercised under fault
#: injection): attempts before a transient failure is promoted to a
#: permanent one, and the exponential-backoff base between attempts
MAX_REG_ATTEMPTS = 5
REG_RETRY_BACKOFF_NS = 10_000.0


class RegistrationCache:
    """An interval cache of live memory registrations for one rank.

    ``enabled=False`` models the paper's "deactivated lazy deregistration"
    mode: every acquire registers and every release deregisters, so the
    full registration cost lands on each message.
    """

    def __init__(
        self,
        hca: HCA,
        aspace: AddressSpace,
        pd: ProtectionDomain,
        enabled: bool = True,
        capacity_bytes: Optional[int] = None,
        counters: Optional[CounterSet] = None,
        owner: Optional[str] = None,
    ):
        self.hca = hca
        self.aspace = aspace
        self.pd = pd
        self.enabled = enabled
        self.capacity_bytes = capacity_bytes
        self.counters = counters if counters is not None else CounterSet()
        self.owner = owner if owner is not None else "regcache"
        self._entries: List[MemoryRegion] = []  # MRU order, newest last
        #: mr_id -> count of in-flight transfers holding the MR (acquired
        #: but not yet released).  Pinned entries are never capacity
        #: victims: evicting an MR under an active rendezvous would
        #: deregister translations the adapter is still DMAing through.
        self._pins: Dict[int, int] = {}
        self.hits = 0
        self.misses = 0

    # -- lookup helpers -----------------------------------------------------
    def _find(self, vaddr: int, length: int) -> Optional[MemoryRegion]:
        for mr in reversed(self._entries):
            if mr.contains(vaddr, length):
                return mr
        return None

    @property
    def cached_bytes(self) -> int:
        """Bytes held registered by the cache."""
        return sum(mr.length for mr in self._entries)

    def __len__(self) -> int:
        return len(self._entries)

    def _pin(self, mr: MemoryRegion) -> None:
        self._pins[mr.mr_id] = self._pins.get(mr.mr_id, 0) + 1

    def _unpin(self, mr: MemoryRegion) -> None:
        count = self._pins.get(mr.mr_id, 0)
        if count <= 1:
            self._pins.pop(mr.mr_id, None)
        else:
            self._pins[mr.mr_id] = count - 1

    def pinned(self, mr: MemoryRegion) -> bool:
        """True while *mr* is held by an unreleased :meth:`acquire`."""
        return self._pins.get(mr.mr_id, 0) > 0

    # -- acquisition ------------------------------------------------------------
    def acquire(self, vaddr: int, length: int) -> Generator:
        """Get a registration covering ``[vaddr, vaddr+length)``.

        A timed operation: ``mr = yield from cache.acquire(...)``.  With
        the cache enabled a hit is free; a miss registers and caches.
        With it disabled every call registers afresh.
        """
        if self.enabled:
            mr = self._find(vaddr, length)
            if mr is not None:
                self.hits += 1
                self.counters.add("regcache.hit")
                trace.instant("mpi.regcache.hit", track=self.owner,
                              bytes=length)
                # MRU touch
                self._entries.remove(mr)
                self._entries.append(mr)
                self._pin(mr)
                return mr
        self.misses += 1
        self.counters.add("regcache.miss")
        trace.instant("mpi.regcache.miss", track=self.owner, bytes=length)
        mr = yield from self.register_with_retry(vaddr, length)
        self._pin(mr)
        if self.enabled:
            self._entries.append(mr)
            yield from self._evict_to_capacity()
        return mr

    def register_with_retry(self, vaddr: int, length: int) -> Generator:
        """Register with the MR-failure policy: transient failures retry
        with exponential backoff (after invalidating any cached
        registrations overlapping the range — they may reference the
        very driver state that just failed), permanent ones invalidate
        and propagate.  Also used directly for uncached registrations
        (the endpoint's bounce slab) that need the same resilience."""
        attempt = 0
        while True:
            try:
                mr = yield from self.hca.register_memory(
                    self.aspace, self.pd, vaddr, length
                )
                return mr
            except PermanentRegistrationError:
                self.invalidate_range(vaddr, length)
                raise
            except TransientRegistrationError:
                attempt += 1
                self.counters.add("faults.regcache.retries")
                self.invalidate_range(vaddr, length)
                if attempt >= MAX_REG_ATTEMPTS:
                    raise PermanentRegistrationError(
                        f"registration of [{vaddr:#x}+{length}] still "
                        f"failing after {attempt} attempts"
                    )
                backoff_ns = REG_RETRY_BACKOFF_NS * (2 ** (attempt - 1))
                yield self.hca.kernel.timeout(
                    max(1, self.hca.clock.ns_to_ticks(backoff_ns))
                )

    def release(self, mr: MemoryRegion) -> Generator:
        """Finish using *mr*: unpins it, then is a no-op when caching or
        an immediate (timed) deregistration otherwise."""
        self._unpin(mr)
        if self.enabled:
            return
            yield  # pragma: no cover - make this a generator
        yield from self.hca.deregister_memory(self.aspace, mr)

    def _evict_to_capacity(self) -> Generator:
        if self.capacity_bytes is None:
            return
        # LRU walk from the cold end, skipping pinned entries (an MR an
        # in-flight transfer still holds) and never evicting the newest
        # entry (the acquisition that triggered the pass)
        idx = 0
        while (self.cached_bytes > self.capacity_bytes
               and idx < len(self._entries) - 1):
            victim = self._entries[idx]
            if self.pinned(victim):
                idx += 1
                continue
            self._entries.pop(idx)
            self.counters.add("regcache.evict")
            trace.instant("mpi.regcache.evict", track=self.owner,
                          bytes=victim.length)
            yield from self.hca.deregister_memory(self.aspace, victim)

    # -- invalidation -----------------------------------------------------------
    def invalidate_range(self, vaddr: int, length: int) -> int:
        """Synchronously drop cached registrations overlapping a freed
        range (the malloc-hook path; kernel-side cost is charged to the
        allocator's free already).  Returns entries dropped."""
        doomed = [
            mr
            for mr in self._entries
            if not (vaddr + length <= mr.vaddr or mr.vaddr + mr.length <= vaddr)
        ]
        for mr in doomed:
            self._entries.remove(mr)
            self.hca.reg.deregister(self.aspace, mr)
            self.counters.add("regcache.invalidate")
        return len(doomed)

    def flush(self) -> Generator:
        """Deregister everything (finalize)."""
        while self._entries:
            mr = self._entries.pop()
            yield from self.hca.deregister_memory(self.aspace, mr)
