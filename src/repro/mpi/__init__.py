"""An MVAPICH2-like MPI message layer over the simulated verbs stack.

The protocol structure matches what the paper describes for MVAPICH2
0.9.x (§5.1):

- **eager** sends up to 8 KB through pre-registered bounce buffers
  (no user-buffer registration, one copy each side);
- **rendezvous** above that, and **RDMA write** of the user buffer for
  messages larger than 16 KB — "so we only see memory registration
  effects for those buffers";
- a **registration cache** ("lazy deregistration", the pin-down cache of
  Tezuka et al.) that can be toggled, reproducing both Fig 5 cases.

Public surface: :class:`~repro.mpi.api.MPIWorld` (launches rank
programs over a :class:`~repro.systems.machine.Cluster`) and
:class:`~repro.mpi.api.Communicator` (the per-rank handle).
"""

from repro.mpi.api import Communicator, MPIConfig, MPIWorld, RankResult
from repro.mpi.datatypes import PackedVector, pack_sges
from repro.mpi.profiler import CallRecord, MPIProfiler
from repro.mpi.regcache import RegistrationCache

__all__ = [
    "CallRecord",
    "Communicator",
    "MPIConfig",
    "MPIProfiler",
    "MPIWorld",
    "PackedVector",
    "RankResult",
    "RegistrationCache",
    "pack_sges",
]
