"""The crash-tolerant experiment service behind ``repro serve``.

:class:`ExperimentService` is the robustness core, independent of any
HTTP front end (the asyncio HTTP layer in :mod:`repro.serve.http` is a
thin adapter over it — which is also what makes the admission and
recovery semantics unit-testable without sockets):

* **Durable queueing** — every admission is journalled (WAL, fsynced)
  before it is acknowledged, into a long-lived *compacting* journal
  (:class:`repro.batch.journal.CompactingJournal`).  A SIGKILLed
  server replays the journal on restart to the exact pre-crash queue
  state: done jobs stay done (verified against the memo cache), queued
  jobs stay queued, running jobs re-queue (resuming from their last
  checkpoint snapshot when one exists), and nothing is ever run twice
  after publishing.
* **Bounded admission** — a queue-depth cap (429 + Retry-After) and a
  per-client in-flight cap.  Overload is refused at the door, not
  discovered as collapse.
* **Deadlines** — a request's wall-clock deadline travels with the
  job: expired-in-queue jobs are *rejected without running*, and a
  running job's worker inherits ``min(job timeout, remaining
  deadline)`` as its kill budget.
* **Classified retries with full-jitter backoff** — crash/timeout
  retries resume from snapshots; deterministic exit-2 failures fail
  fast (:func:`repro.batch.supervisor.classify_exit`); transient
  failures retry from scratch.  Backoff delays are
  ``uniform(0, base * 2**attempt)`` from a seeded RNG — full jitter,
  so a burst of same-shaped failures does not re-converge into a
  thundering herd.
* **Graceful drain** — ``begin_drain`` stops admissions and launches,
  lets in-flight work finish (or checkpoint) within a drain deadline,
  SIGKILLs what remains (their journal state re-queues them on the
  next start), compacts and flushes the journal, and the process
  exits 0.
* **Memoization** — determinism makes the sha256 result cache exact,
  so duplicate submissions are answered without spawning a worker,
  and verified against their digest sidecar on every hit.

This module manages real time and real processes — the documented
escape hatch from the determinism lint, marked per line below.
"""

from __future__ import annotations

import asyncio
import multiprocessing
import os
import random
import shutil
import time
from typing import Any, Dict, List, Optional

from repro.analysis.counters import CounterSet
from repro.batch import journal as journal_mod
from repro.batch import worker
from repro.batch.chaos import ChaosPlan
from repro.batch.journal import CompactingJournal
from repro.batch.memo import MemoCache
from repro.batch.spec import JobSpec, SpecError, job_key, parse_jobs_doc
from repro.batch.supervisor import POLL_S, classify_exit
from repro.serve import state as state_mod
from repro.serve.state import (DONE, FAILED, QUEUED, REJECTED, RUNNING,
                               SCHEMA, ServeJob)
from repro.util import atomic_write


class ServeError(Exception):
    """Raised for serve-level preflight problems (CLI exit 2)."""


class Rejected(Exception):
    """An admission refused by policy; carries the HTTP shape."""

    status = 429
    retry_after: Optional[float] = None

    def __init__(self, message: str, retry_after: Optional[float] = None):
        super().__init__(message)
        if retry_after is not None:
            self.retry_after = retry_after


class Busy(Rejected):
    """Queue depth or client cap exceeded → 429 + Retry-After."""


class Draining(Rejected):
    """The service is draining: no new admissions → 503."""

    status = 503


class Conflict(Rejected):
    """A job id resubmitted with a different config → 409."""

    status = 409


class ExperimentService:
    """Admission, durable queueing, supervision and drain for the
    experiment server.  One instance per ``repro serve`` process."""

    def __init__(
        self,
        out_dir: str,
        workers: int = 2,
        queue_cap: int = 64,
        client_cap: int = 8,
        retries: int = 2,
        backoff: float = 0.25,
        retry_seed: int = 0,
        timeout: Optional[float] = None,
        drain_timeout: float = 30.0,
        chaos: Optional[ChaosPlan] = None,
        resume: bool = False,
        stream: Optional[Any] = None,
    ):
        if workers < 1:
            raise ServeError("worker pool size must be >= 1")
        if queue_cap < 1:
            raise ServeError("queue cap must be >= 1")
        if client_cap < 1:
            raise ServeError("per-client cap must be >= 1")
        if retries < 0:
            raise ServeError("retry budget must be >= 0")
        if drain_timeout <= 0:
            raise ServeError("drain timeout must be > 0")
        self.out_dir = os.path.abspath(out_dir)
        self.workers = workers
        self.queue_cap = queue_cap
        self.client_cap = client_cap
        self.retries = retries
        self.backoff = backoff
        self.default_timeout = timeout
        self.drain_timeout = drain_timeout
        self.chaos = chaos
        self.resume = resume
        self.stream = stream
        self.journal_path = os.path.join(self.out_dir, "serve.jsonl")
        self.counters = CounterSet()
        self.memo: Optional[MemoCache] = None
        self.jobs: Dict[str, ServeJob] = {}
        self.draining = False
        self.drain_reason = ""
        self._drain_deadline: Optional[float] = None
        self._journal: Optional[CompactingJournal] = None
        self._rng = random.Random(retry_seed)
        self._seq = 0
        self._started_wall = 0.0
        self._started_mono = 0.0
        self._spans: List[Dict[str, Any]] = []

    # -- logging ------------------------------------------------------------

    def _log(self, message: str) -> None:
        if self.stream is not None:
            print(f"serve: {message}", file=self.stream)

    # -- lifecycle ----------------------------------------------------------

    def open(self) -> None:
        """Preflight, replay the journal (``--resume``) and start
        appending.  After ``open`` returns, the queue state is exactly
        what the journal says it should be."""
        if os.path.exists(self.journal_path) and not self.resume:
            raise ServeError(
                f"journal {self.journal_path!r} already exists; pass "
                "--resume to continue that service's queue or choose a "
                "fresh --out-dir")
        os.makedirs(self.out_dir, exist_ok=True)
        self.memo = MemoCache(self.out_dir, counters=self.counters)
        self._started_wall = time.time()  # detlint: ignore[wallclock] — request deadlines are real time
        self._started_mono = time.monotonic()
        recovered = self.resume and os.path.exists(self.journal_path)
        if recovered:
            self._recover()
        self._journal = CompactingJournal(
            self.journal_path, fold_keep=state_mod.keep_records,
            header=lambda: {"ev": "serve-start", "schema": SCHEMA,
                            "compacted": True})
        self._journal.append({"ev": "serve-start", "schema": SCHEMA,
                              "resumed": recovered,
                              "recovered_jobs": len(self.jobs)})
        if recovered:
            self._reject_expired(note="expired while the server was down")
            self._journal.compact_now()
            queued = sum(1 for j in self.jobs.values()
                         if j.status == QUEUED)
            self._log(f"recovered {len(self.jobs)} job(s) from the journal "
                      f"({queued} re-queued)")

    def _recover(self) -> None:
        """Rebuild the queue from the journal (crash or restart)."""
        assert self.memo is not None
        try:
            records, torn = journal_mod.read_journal(self.journal_path)
        except journal_mod.JournalError as exc:
            raise ServeError(f"--resume: {exc}")
        if torn:
            self._log("journal had a torn final record (crash mid-append); "
                      "dropped it")
        for job_id, st in sorted(state_mod.fold_serve(records).items(),
                                 key=lambda kv: kv[1]["seq"]):
            if not st["command"]:
                continue  # a record set without its submission (corrupt)
            spec = JobSpec(id=job_id, command=st["command"],
                           args=list(st["args"]), timeout=st["timeout"])
            job = ServeJob(
                spec=spec, key=st["key"] or job_key(spec),
                jobdir=os.path.join(self.out_dir, "jobs", job_id),
                client=st["client"], seq=st["seq"],
                attempts=st["attempts"], cached=st["cached"],
                detail=st["detail"], deadline_wall=st["deadline_wall"],
                submitted_mono=time.monotonic(),
                waiter=asyncio.Event())
            self._seq = max(self._seq, st["seq"] + 1)
            status = st["status"]
            if status == DONE and self.memo.lookup(job.key) is not None:
                job.status = DONE
                job.result = self.memo.result_path(job.key)
                job.waiter.set()
            elif status in (FAILED, REJECTED):
                job.status = status
                job.waiter.set()
            else:
                # queued, running-at-crash, or done-with-missing/corrupt
                # result: owed an answer — re-queue, resuming from a
                # snapshot when the dead attempt left one behind
                job.status = QUEUED
                job.resume_next = os.path.exists(
                    worker.snapshot_path(job.jobdir))
                if status == DONE:
                    self._log(f"job {job_id!r} was done but its result is "
                              "missing/corrupt; re-running")
            self.jobs[job_id] = job

    def close(self) -> None:
        """Flush and compact the journal, write the request timeline,
        print the shutdown report."""
        if self._journal is not None:
            done = sum(1 for j in self.jobs.values() if j.status == DONE)
            self._journal.append({"ev": "serve-stop", "done": done,
                                  "draining": self.draining,
                                  "reason": self.drain_reason})
            self._journal.compact_now()
            self._journal.close()
            self._journal = None
        self._write_spans()
        if self.stream is not None and self.jobs:
            print(self.report(), file=self.stream)

    def report(self) -> str:
        """The shutdown report (``repro.analysis.report.serve_report``)."""
        from repro.analysis.report import serve_report

        rows = [j.as_dict() for j in
                sorted(self.jobs.values(), key=lambda j: j.seq)]
        return serve_report(rows, self.counters.snapshot())

    # -- admission ----------------------------------------------------------

    def depth(self) -> int:
        """Queue depth: jobs admitted but not yet terminal."""
        return sum(1 for j in self.jobs.values() if j.live)

    def client_inflight(self, client: str) -> int:
        """Live jobs charged to *client* (abandoned waits excluded)."""
        return sum(1 for j in self.jobs.values()
                   if j.live and j.client == client
                   and not j.client_released)

    def _retry_after(self) -> float:
        """A Retry-After estimate: one backoff base, floored at 1s."""
        return max(1.0, round(self.backoff, 1))

    def submit(self, doc: Any, client: str = "anonymous",
               deadline_s: Optional[float] = None) -> List[ServeJob]:
        """Admit the job(s) in *doc* (a single job object, a list, or
        ``{"jobs": [...]}``; the ``repro.batch.spec`` schema).

        Raises :class:`Draining` (503) during drain, :class:`Busy`
        (429) when the queue-depth or per-client cap would be
        exceeded, :class:`Conflict` (409) on an id collision with a
        different config, and :class:`repro.batch.spec.SpecError`
        (400) on a malformed spec.  On success every admitted job is
        journalled before this returns — an acknowledged admission
        survives any crash.
        """
        assert self._journal is not None and self.memo is not None
        if self.draining:
            self.counters.add("serve.rejected.draining")
            raise Draining("service is draining; no new admissions",
                           retry_after=self.drain_timeout)
        if deadline_s is not None and deadline_s <= 0:
            raise SpecError("deadline must be a positive number of seconds")
        specs = parse_jobs_doc(doc, where="request", next_index=self._seq)
        fresh = []
        for spec in specs:
            existing = self.jobs.get(spec.id)
            if existing is not None:
                if existing.key != job_key(spec):
                    self.counters.add("serve.rejected.conflict")
                    raise Conflict(
                        f"job id {spec.id!r} already exists with a "
                        "different config")
                continue  # idempotent resubmission
            fresh.append(spec)
        if self.depth() + len(fresh) > self.queue_cap:
            self.counters.add("serve.rejected.backpressure")
            raise Busy(f"queue is full ({self.depth()}/{self.queue_cap} "
                       "in flight)", retry_after=self._retry_after())
        if self.client_inflight(client) + len(fresh) > self.client_cap:
            self.counters.add("serve.rejected.client_cap")
            raise Busy(f"client {client!r} is at its in-flight cap "
                       f"({self.client_cap})",
                       retry_after=self._retry_after())
        now_wall = time.time()  # detlint: ignore[wallclock] — deadline arithmetic
        out = []
        for spec in specs:
            existing = self.jobs.get(spec.id)
            if existing is not None:
                out.append(existing)
                continue
            job = ServeJob(
                spec=spec, key=job_key(spec),
                jobdir=os.path.join(self.out_dir, "jobs", spec.id),
                client=client, seq=self._seq,
                deadline_wall=(now_wall + deadline_s
                               if deadline_s is not None else None),
                submitted_wall=now_wall,
                submitted_mono=time.monotonic(),
                waiter=asyncio.Event())
            self._seq += 1
            self.jobs[spec.id] = job
            self._journal.append(job.submitted_record())
            self.counters.add("serve.submitted")
            cached = self.memo.lookup(job.key)
            if cached is not None:
                # a memo hit is answered at admission: no queue slot,
                # no worker, no wait
                self._finish(job, DONE, cached=True, result=cached)
            out.append(job)
        return out

    def abandon(self, job_id: str) -> None:
        """A waiting client disconnected: release its in-flight slot.

        The job itself keeps running — its result still lands in the
        memo cache, so the next submission of the same config is a
        free hit.
        """
        job = self.jobs.get(job_id)
        if job is not None and not job.client_released:
            job.client_released = True
            self.counters.add("serve.disconnects")
            self._log(f"client {job.client!r} abandoned job "
                      f"{job.spec.id}; slot released, job continues")

    # -- terminal transitions ------------------------------------------------

    def _finish(self, job: ServeJob, status: str, *, cached: bool = False,
                result: Optional[str] = None, detail: str = "") -> None:
        assert self._journal is not None
        job.status = status
        job.cached = cached
        job.result = result
        job.detail = detail
        job.finished_mono = time.monotonic()
        if status == DONE:
            self._journal.append({"ev": "done", "job": job.spec.id,
                                  "key": job.key, "cached": cached,
                                  "result": result})
            self.counters.add("serve.completed")
            if cached:
                self.counters.add("serve.memo_served")
        elif status == FAILED:
            self._journal.append({"ev": "failed", "job": job.spec.id,
                                  "reason": detail})
            self.counters.add("serve.failed")
        else:
            self._journal.append({"ev": "rejected", "job": job.spec.id,
                                  "reason": detail})
            self.counters.add("serve.rejected.deadline")
        self._record_span(job)
        if job.waiter is not None:
            job.waiter.set()

    def _record_span(self, job: ServeJob) -> None:
        """One Chrome trace span per request: admission → terminal."""
        t0 = max(0.0, job.submitted_mono - self._started_mono)
        t1 = max(t0, job.finished_mono - self._started_mono)
        self._spans.append({
            "name": f"{job.spec.command}:{job.spec.id}",
            "cat": "serve.request",
            "ph": "X",
            "ts": int(t0 * 1e6),
            "dur": int((t1 - t0) * 1e6),
            "pid": 1,
            "tid": (job.seq % 32) + 1,
            "args": {
                "client": job.client,
                "key": job.key[:12],
                "status": job.status,
                "attempts": job.attempts,
                "cached": job.cached,
            },
        })

    def _write_spans(self) -> None:
        from repro.trace import wall_clock_doc

        doc = wall_clock_doc(
            self._spans,
            other={"service": "repro serve",
                   "counters": self.counters.snapshot()})
        atomic_write(os.path.join(self.out_dir, "serve_trace.json"),
                     __import__("json").dumps(doc, sort_keys=True,
                                              separators=(",", ":")) + "\n",
                     prefix=".trace-")

    # -- scheduling ----------------------------------------------------------

    def _running(self) -> List[ServeJob]:
        return [j for j in self.jobs.values() if j.status == RUNNING]

    def _queued_in_order(self) -> List[ServeJob]:
        return sorted((j for j in self.jobs.values() if j.status == QUEUED),
                      key=lambda j: j.seq)

    def _reject_expired(self, note: str = "deadline expired in queue") -> None:
        now = time.time()  # detlint: ignore[wallclock] — deadline arithmetic
        for job in self._queued_in_order():
            if job.deadline_wall is not None and now >= job.deadline_wall:
                self._finish(job, REJECTED, detail=note)
                self._log(f"job {job.spec.id} rejected: {note}")

    def _spawn(self, job: ServeJob) -> None:
        assert self._journal is not None
        os.makedirs(job.jobdir, exist_ok=True)
        use_resume = job.resume_next and os.path.exists(
            worker.snapshot_path(job.jobdir))
        spec = job.spec
        args = list(spec.args)
        timeout = spec.timeout if spec.timeout is not None \
            else self.default_timeout
        if job.deadline_wall is not None:
            remaining = max(0.1, job.deadline_wall - time.time())  # detlint: ignore[wallclock]
            timeout = remaining if timeout is None \
                else min(timeout, remaining)
        if timeout is not None and spec.command in worker.CHECKPOINTABLE \
                and "--hang-timeout" not in args:
            args += ["--hang-timeout", str(timeout)]
        argv = worker.build_attempt_argv(spec.command, args, job.jobdir,
                                         use_resume)
        job.chaos_action = (self.chaos.decide(job.key, job.attempts)
                            if self.chaos is not None else None)
        self._journal.append({"ev": "running", "job": spec.id,
                              "attempt": job.attempts,
                              "resume": use_resume,
                              "chaos": job.chaos_action})
        proc = multiprocessing.Process(
            target=worker.worker_entry,
            args=(job.jobdir, argv, job.chaos_action, spec.command),
            daemon=True, name=f"repro-serve-{spec.id}")
        proc.start()
        job.proc = proc
        job.status = RUNNING
        job.used_resume = use_resume
        job.timed_out = False
        job.started_at = time.monotonic()
        job.kill_deadline = (job.started_at + timeout) if timeout else None
        job.attempts += 1
        how = "resumed from snapshot" if use_resume else "started"
        self._log(f"job {spec.id} attempt {job.attempts} {how} "
                  f"(pid {proc.pid})")

    def _kill(self, job: ServeJob, reason: str) -> None:
        proc = job.proc
        if proc is not None and proc.is_alive():
            proc.kill()  # detlint: ignore[wallclock-sleep]
            proc.join(timeout=5.0)
        if reason == "timeout":
            job.timed_out = True

    def _handle_exit(self, job: ServeJob) -> None:
        assert self._journal is not None and self.memo is not None
        proc = job.proc
        assert proc is not None
        proc.join()
        code = proc.exitcode
        job.proc = None
        kind, reason = classify_exit(code, job.timed_out)
        if kind == "done":
            stdout = os.path.join(job.jobdir, worker.STDOUT_NAME)
            result = self.memo.publish(job.key, stdout)
            self._finish(job, DONE, result=result)
            self._log(f"job {job.spec.id} done "
                      f"(attempt {job.attempts}, result {result})")
            return
        attempt = job.attempts - 1
        if kind in ("crash", "timeout"):
            if kind == "timeout":
                job.timeouts += 1
                self.counters.add("serve.timeouts")
            else:
                job.crashes += 1
                self.counters.add("serve.crashes")
            self._journal.append({"ev": "killed", "job": job.spec.id,
                                  "attempt": attempt, "reason": reason})
        else:
            job.failures += 1
            self._journal.append({"ev": "failed_attempt",
                                  "job": job.spec.id, "attempt": attempt,
                                  "exit": code,
                                  "permanent": kind == "permanent"})
            if job.used_resume:
                shutil.rmtree(os.path.join(job.jobdir, worker.CKPT_DIRNAME),
                              ignore_errors=True)
        if kind == "permanent":
            self.counters.add("serve.failed.permanent")
            self._finish(job, FAILED, detail=f"failed ({reason})")
            self._log(f"job {job.spec.id} failed permanently ({reason}); "
                      "deterministic failures are not retried")
            return
        expired = job.deadline_wall is not None \
            and time.time() >= job.deadline_wall  # detlint: ignore[wallclock]
        if expired:
            self._finish(job, FAILED,
                         detail=f"deadline exceeded after {reason}")
            self._log(f"job {job.spec.id} failed: deadline exceeded")
            return
        snap_exists = os.path.exists(worker.snapshot_path(job.jobdir))
        if attempt < self.retries:
            # full jitter: uniform over [0, base * 2^attempt] — retries
            # of a correlated failure burst spread instead of re-aligning
            delay = self._rng.uniform(0.0, self.backoff * (2 ** attempt))
            job.eligible_at = time.monotonic() + delay
            job.resume_next = snap_exists
            job.status = QUEUED
            self.counters.add("serve.retries")
            self._journal.append({"ev": "retry", "job": job.spec.id,
                                  "attempt": attempt + 1,
                                  "backoff_s": round(delay, 6),
                                  "resume": snap_exists})
            self._log(f"job {job.spec.id} attempt {attempt + 1} failed "
                      f"({reason}); retrying in {delay:.2f}s"
                      + (" from snapshot" if snap_exists else ""))
        else:
            self.counters.add("serve.failed.exhausted")
            self._finish(job, FAILED,
                         detail=f"failed ({reason}, budget exhausted)")
            self._log(f"job {job.spec.id} failed permanently after "
                      f"{job.attempts} attempt(s): {reason}")

    def _reap_and_enforce(self) -> None:
        now = time.monotonic()
        for job in self._running():
            proc = job.proc
            assert proc is not None
            if proc.exitcode is None and job.kill_deadline is not None \
                    and now >= job.kill_deadline:
                self._log(f"job {job.spec.id} exceeded its wall-clock "
                          "budget; killing worker")
                self._kill(job, "timeout")
            if proc.exitcode is not None:
                self._handle_exit(job)

    def _launch_eligible(self) -> None:
        assert self.memo is not None
        free = self.workers - len(self._running())
        now = time.monotonic()
        running_keys = {j.key for j in self._running()}
        for job in self._queued_in_order():
            if free <= 0:
                break
            if now < job.eligible_at:
                continue
            cached = self.memo.lookup(job.key)
            if cached is not None:
                self._finish(job, DONE, cached=True, result=cached)
                self._log(f"job {job.spec.id} served from the memo cache")
                continue
            if job.key in running_keys:
                continue  # an identical config is in flight; wait for it
            self._spawn(job)
            running_keys.add(job.key)
            free -= 1

    def tick(self) -> None:
        """One scheduler iteration (reap, expire, launch)."""
        self._reap_and_enforce()
        if not self.draining:
            self._reject_expired()
            self._launch_eligible()

    # -- drain ---------------------------------------------------------------

    def begin_drain(self, reason: str) -> None:
        """Flip to draining: no new admissions, no new launches;
        in-flight jobs get :attr:`drain_timeout` seconds to finish."""
        if self.draining:
            return
        self.draining = True
        self.drain_reason = reason
        self._drain_deadline = time.monotonic() + self.drain_timeout
        self.counters.add("serve.drains")
        if self._journal is not None:
            self._journal.append({"ev": "drain", "reason": reason})
        self._log(f"draining ({reason}): {len(self._running())} in-flight "
                  f"job(s), {self.depth() - len(self._running())} queued — "
                  "queued jobs will resume on the next start")

    def _drain_expired(self) -> bool:
        return self._drain_deadline is not None \
            and time.monotonic() >= self._drain_deadline

    def _kill_all_running(self, reason: str) -> None:
        assert self._journal is not None
        for job in self._running():
            self._kill(job, reason)
            proc = job.proc
            if proc is not None:
                proc.join()
                job.proc = None
            # journalled as killed, not failed: the job is still owed
            # an answer and re-queues (from its snapshot) on restart
            self._journal.append({"ev": "killed", "job": job.spec.id,
                                  "attempt": job.attempts - 1,
                                  "reason": reason})
            job.status = QUEUED
            self._log(f"job {job.spec.id} killed at the drain deadline; "
                      "it will resume on the next start")

    async def run_scheduler(self) -> None:
        """The scheduler loop: drive :meth:`tick` until drain
        completes.  Returns when the service should exit."""
        while True:
            self.tick()
            if self.draining:
                if not self._running():
                    break
                if self._drain_expired():
                    self._kill_all_running("drain-deadline")
                    break
            await asyncio.sleep(POLL_S)

    # -- observability -------------------------------------------------------

    async def wait_finished(self, job: ServeJob,
                            timeout: Optional[float] = None) -> bool:
        """Await *job* reaching a terminal state; False on timeout."""
        assert job.waiter is not None
        if timeout is None:
            await job.waiter.wait()
            return True
        try:
            await asyncio.wait_for(job.waiter.wait(), timeout)
            return True
        except asyncio.TimeoutError:
            return False

    def stats(self) -> Dict[str, Any]:
        """The ``/stats`` document, backed by the counter layer."""
        by_status: Dict[str, int] = {}
        for job in self.jobs.values():
            by_status[job.status] = by_status.get(job.status, 0) + 1
        return {
            "counters": self.counters.snapshot(),
            "queue": {
                "depth": self.depth(),
                "cap": self.queue_cap,
                "by_status": dict(sorted(by_status.items())),
            },
            "workers": self.workers,
            "running": len(self._running()),
            "draining": self.draining,
            "uptime_s": round(time.monotonic() - self._started_mono, 3),
        }
