"""Serve-side job state and the serve journal's fold/compaction logic.

The service journal (``serve.jsonl``) reuses the batch WAL machinery
(:mod:`repro.batch.journal`) with its own schema and a richer event
vocabulary — a *submission* carries the client identity and the
request's absolute wall-clock deadline, because a restarted server
must know whether a recovered job is still worth running.  Unlike the
batch journal (which is deterministic-clock-clean), serve records do
carry wall-clock timestamps: the service is the repository's one
module whose job *is* real time — deadlines, backoff, drain — and the
determinism lint's suppressions in :mod:`repro.serve` document that
boundary.

The fold (:func:`fold_serve`) is total: any journal prefix — including
one torn by SIGKILL — folds to a well-defined queue state, and
:func:`keep_records` re-emits the *minimal* record list that folds to
the same state, which is what :class:`repro.batch.journal.
CompactingJournal` uses to keep a long-lived journal O(live jobs).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

from repro.batch.spec import JobSpec

#: serve journal schema tag, recorded in every serve-start line
SCHEMA = "repro-serve-journal/1"

#: job states; ``rejected`` is terminal-without-running (expired in
#: queue, or cancelled by policy) — a rejected job was *never* executed
QUEUED = "queued"
RUNNING = "running"
DONE = "done"
FAILED = "failed"
REJECTED = "rejected"

TERMINAL = (DONE, FAILED, REJECTED)


@dataclass
class ServeJob:
    """The in-memory state of one submitted experiment."""

    spec: JobSpec
    key: str
    jobdir: str
    client: str = "anonymous"
    seq: int = 0
    status: str = QUEUED
    attempts: int = 0
    crashes: int = 0
    timeouts: int = 0
    failures: int = 0
    cached: bool = False
    detail: str = ""
    result: Optional[str] = None
    #: absolute wall-clock deadline (None = no deadline); journalled so
    #: a restart can reject jobs that expired while the server was down
    deadline_wall: Optional[float] = None
    submitted_wall: float = 0.0
    submitted_mono: float = 0.0
    finished_mono: float = 0.0
    #: scheduling state (monotonic clock; never journalled)
    eligible_at: float = 0.0
    resume_next: bool = False
    used_resume: bool = False
    timed_out: bool = False
    chaos_action: Optional[str] = None
    started_at: float = 0.0
    kill_deadline: Optional[float] = None
    #: True once a waiting client disconnected: the job keeps running
    #: (its result still lands in the memo cache) but stops counting
    #: against the client's in-flight cap
    client_released: bool = False
    proc: Optional[Any] = field(default=None, repr=False)
    waiter: Optional[Any] = field(default=None, repr=False)

    @property
    def terminal(self) -> bool:
        return self.status in TERMINAL

    @property
    def live(self) -> bool:
        return self.status in (QUEUED, RUNNING)

    def as_dict(self) -> Dict[str, Any]:
        """The job's public (HTTP) representation."""
        out: Dict[str, Any] = {
            "id": self.spec.id,
            "command": self.spec.command,
            "key": self.key,
            "status": self.status,
            "attempts": self.attempts,
            "cached": self.cached,
        }
        if self.detail:
            out["detail"] = self.detail
        if self.result:
            out["result"] = f"/jobs/{self.spec.id}/result"
        return out

    def submitted_record(self) -> Dict[str, Any]:
        """The journal record that reconstructs this submission."""
        return {
            "ev": "submitted",
            "job": self.spec.id,
            "seq": self.seq,
            "key": self.key,
            "command": self.spec.command,
            "args": list(self.spec.args),
            "timeout": self.spec.timeout,
            "client": self.client,
            "deadline_wall": self.deadline_wall,
        }


def fold_serve(records: List[Dict[str, Any]]) -> Dict[str, Dict[str, Any]]:
    """Fold serve journal *records* into per-job end states.

    Returns ``{job_id: state}`` where *state* carries everything needed
    to rebuild the queue: the spec fields, client, deadline, ``status``
    (``queued``/``running``/``done``/``failed``/``rejected``),
    ``attempts``, ``result``, ``cached`` and ``detail``.  A job caught
    ``running`` by a crash (or ``killed`` by a drain deadline) folds
    back to a re-runnable state — the restart decides whether to
    resume it from its snapshot, re-run it, or reject it as expired.
    """
    jobs: Dict[str, Dict[str, Any]] = {}

    def slot(job_id: str) -> Dict[str, Any]:
        return jobs.setdefault(job_id, {
            "seq": 0, "key": None, "command": None, "args": [],
            "timeout": None, "client": "anonymous", "deadline_wall": None,
            "status": QUEUED, "attempts": 0, "result": None,
            "cached": False, "detail": "",
        })

    for rec in records:
        ev = rec.get("ev")
        job_id = rec.get("job")
        if not isinstance(job_id, str):
            continue
        state = slot(job_id)
        if ev == "submitted":
            for key in ("seq", "key", "command", "args", "timeout",
                        "client", "deadline_wall"):
                if key in rec:
                    state[key] = rec[key]
        elif ev == "running":
            state["status"] = RUNNING
            state["attempts"] = max(state["attempts"],
                                    int(rec.get("attempt", 0)) + 1)
        elif ev == "retry":
            state["status"] = QUEUED
        elif ev == "killed":
            # drain-deadline or crash cleanup: the attempt died but the
            # job is still owed an answer — it re-queues on restart
            state["status"] = QUEUED
        elif ev == "done":
            state["status"] = DONE
            state["result"] = rec.get("result")
            state["cached"] = bool(rec.get("cached", False))
            if rec.get("key"):
                state["key"] = rec["key"]
        elif ev == "failed":
            state["status"] = FAILED
            state["detail"] = str(rec.get("reason", ""))
        elif ev == "rejected":
            state["status"] = REJECTED
            state["detail"] = str(rec.get("reason", ""))
    return jobs


def keep_records(records: List[Dict[str, Any]]) -> List[Dict[str, Any]]:
    """The minimal record list that folds to the same state as
    *records* — the compaction function for the serve journal.

    Per job (in submission order): its ``submitted`` record; a
    ``running`` record when attempts were consumed (so retry ordinals
    and attempt counts survive compaction, terminal or not); a
    ``retry`` record when it was re-queued; and its terminal record
    when it reached one.
    """
    folded = fold_serve(records)
    keep: List[Dict[str, Any]] = []
    for job_id, state in sorted(folded.items(), key=lambda kv: kv[1]["seq"]):
        keep.append({
            "ev": "submitted", "job": job_id, "seq": state["seq"],
            "key": state["key"], "command": state["command"],
            "args": state["args"], "timeout": state["timeout"],
            "client": state["client"],
            "deadline_wall": state["deadline_wall"],
        })
        if state["attempts"] > 0:
            keep.append({"ev": "running", "job": job_id,
                         "attempt": state["attempts"] - 1})
            if state["status"] == QUEUED:
                keep.append({"ev": "retry", "job": job_id})
        if state["status"] == DONE:
            keep.append({"ev": "done", "job": job_id, "key": state["key"],
                         "cached": state["cached"],
                         "result": state["result"]})
        elif state["status"] == FAILED:
            keep.append({"ev": "failed", "job": job_id,
                         "reason": state["detail"]})
        elif state["status"] == REJECTED:
            keep.append({"ev": "rejected", "job": job_id,
                         "reason": state["detail"]})
    return keep
