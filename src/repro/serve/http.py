"""The asyncio HTTP/1.1 front end for ``repro serve``.

A deliberately small, dependency-free server: one connection = one
request = one response (``Connection: close``), which keeps the
protocol surface auditable and makes client-disconnect detection
trivial — while a handler awaits a job, it also awaits EOF on the
socket, and whichever happens first wins.

Endpoints
=========

``POST /jobs``
    Admit an experiment spec (the ``repro.batch.spec`` schema: a
    single job object, a list, or ``{"jobs": [...]}``).  Admission is
    journalled before the response is written.  ``?wait=1`` blocks
    until the job(s) finish.  Headers: ``X-Client`` names the client
    for the per-client in-flight cap; ``X-Deadline`` is a relative
    deadline in seconds.  Rejections: 400 malformed spec, 409 id
    conflict, 429 over the queue/client cap (with ``Retry-After``),
    503 draining.
``GET /jobs`` / ``GET /jobs/<id>`` / ``GET /jobs/<id>/result``
    Queue listing, one job's state, one job's published result bytes.
``GET /healthz`` / ``GET /readyz`` / ``GET /stats``
    Liveness (always 200 while the process runs), readiness (503 once
    draining — the load-balancer signal), and the counter-backed
    stats document.

Real sockets and real time are this module's whole job; the
determinism lint suppressions below mark that boundary explicitly.
"""

from __future__ import annotations

import asyncio
import json
import os
import signal
from typing import Any, Dict, Optional, Tuple

from repro.batch.spec import SpecError
from repro.serve.service import ExperimentService, Rejected
from repro.util import atomic_write

#: request line + headers are capped; experiment specs are small and an
#: unbounded read is an admission-control hole
MAX_HEADER_BYTES = 32 * 1024
MAX_BODY_BYTES = 1024 * 1024


class _HttpError(Exception):
    def __init__(self, status: int, message: str):
        super().__init__(message)
        self.status = status


_REASONS = {
    200: "OK", 400: "Bad Request", 404: "Not Found",
    405: "Method Not Allowed", 408: "Request Timeout", 409: "Conflict",
    413: "Payload Too Large", 429: "Too Many Requests",
    500: "Internal Server Error", 503: "Service Unavailable",
}


def _response(status: int, body: bytes, content_type: str,
              extra: Optional[Dict[str, str]] = None) -> bytes:
    lines = [f"HTTP/1.1 {status} {_REASONS.get(status, 'Unknown')}",
             f"Content-Type: {content_type}",
             f"Content-Length: {len(body)}",
             "Connection: close"]
    for key, value in (extra or {}).items():
        lines.append(f"{key}: {value}")
    return ("\r\n".join(lines) + "\r\n\r\n").encode("ascii") + body


def _json_response(status: int, doc: Any,
                   extra: Optional[Dict[str, str]] = None) -> bytes:
    body = json.dumps(doc, sort_keys=True, indent=2).encode("utf-8") + b"\n"
    return _response(status, body, "application/json", extra)


async def _read_request(reader: asyncio.StreamReader
                        ) -> Tuple[str, str, Dict[str, str], bytes]:
    """Parse one HTTP/1.1 request: (method, path, headers, body)."""
    try:
        head = await reader.readuntil(b"\r\n\r\n")
    except asyncio.IncompleteReadError as exc:
        if not exc.partial:
            raise ConnectionResetError("client closed before a request")
        raise _HttpError(400, "truncated request head")
    except asyncio.LimitOverrunError:
        raise _HttpError(413, "request head too large")
    if len(head) > MAX_HEADER_BYTES:
        raise _HttpError(413, "request head too large")
    lines = head.decode("latin-1").split("\r\n")
    parts = lines[0].split(" ")
    if len(parts) != 3 or not parts[2].startswith("HTTP/1."):
        raise _HttpError(400, f"malformed request line {lines[0]!r}")
    method, path = parts[0].upper(), parts[1]
    headers: Dict[str, str] = {}
    for line in lines[1:]:
        if not line:
            continue
        name, sep, value = line.partition(":")
        if not sep:
            raise _HttpError(400, f"malformed header line {line!r}")
        headers[name.strip().lower()] = value.strip()
    length_s = headers.get("content-length", "0")
    try:
        length = int(length_s)
    except ValueError:
        raise _HttpError(400, f"bad Content-Length {length_s!r}")
    if length < 0 or length > MAX_BODY_BYTES:
        raise _HttpError(413, f"body of {length} bytes exceeds the "
                              f"{MAX_BODY_BYTES}-byte cap")
    body = await reader.readexactly(length) if length else b""
    return method, path, headers, body


class ServeApp:
    """Routes HTTP requests onto an :class:`ExperimentService`."""

    def __init__(self, service: ExperimentService):
        self.service = service

    async def handle(self, reader: asyncio.StreamReader,
                     writer: asyncio.StreamWriter) -> None:
        svc = self.service
        try:
            try:
                method, path, headers, body = await _read_request(reader)
            except _HttpError as exc:
                writer.write(_json_response(exc.status,
                                            {"error": str(exc)}))
                await writer.drain()
                return
            except (ConnectionResetError, asyncio.IncompleteReadError):
                return
            svc.counters.add("serve.http.requests")
            try:
                payload = await self._route(method, path, headers, body,
                                            reader)
            except _HttpError as exc:
                payload = _json_response(exc.status, {"error": str(exc)})
            except Rejected as exc:
                extra = {}
                if exc.retry_after is not None:
                    extra["Retry-After"] = str(int(max(1, exc.retry_after)))
                payload = _json_response(exc.status, {"error": str(exc)},
                                         extra)
            except SpecError as exc:
                payload = _json_response(400, {"error": str(exc)})
            except _Disconnected:
                return  # nobody left to answer
            except Exception as exc:  # pragma: no cover - defensive
                svc.counters.add("serve.http.errors")
                payload = _json_response(
                    500, {"error": f"{type(exc).__name__}: {exc}"})
            writer.write(payload)
            await writer.drain()
        except (ConnectionResetError, BrokenPipeError):
            pass
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError):
                pass

    async def _route(self, method: str, path: str, headers: Dict[str, str],
                     body: bytes, reader: asyncio.StreamReader) -> bytes:
        path, _, query = path.partition("?")
        if path == "/healthz":
            return _json_response(200, {"ok": True})
        if path == "/readyz":
            if self.service.draining:
                return _json_response(
                    503, {"ready": False, "draining": True,
                          "reason": self.service.drain_reason})
            return _json_response(200, {"ready": True, "draining": False})
        if path == "/stats":
            return _json_response(200, self.service.stats())
        if path == "/jobs" and method == "POST":
            return await self._submit(headers, body, query, reader)
        if path == "/jobs" and method == "GET":
            jobs = sorted(self.service.jobs.values(), key=lambda j: j.seq)
            return _json_response(200, {"jobs": [j.as_dict() for j in jobs]})
        if path.startswith("/jobs/"):
            if method != "GET":
                raise _HttpError(405, f"{method} not allowed on {path}")
            rest = path[len("/jobs/"):]
            job_id, _, tail = rest.partition("/")
            job = self.service.jobs.get(job_id)
            if job is None:
                raise _HttpError(404, f"no job {job_id!r}")
            if tail == "result":
                return self._result(job)
            if tail:
                raise _HttpError(404, f"no such resource {path!r}")
            return _json_response(200, job.as_dict())
        raise _HttpError(404, f"no such resource {path!r}")

    def _result(self, job: Any) -> bytes:
        if job.status != "done" or job.result is None:
            raise _HttpError(404, f"job {job.spec.id!r} has no result "
                                  f"(status {job.status})")
        try:
            with open(job.result, "rb") as fh:
                data = fh.read()
        except OSError as exc:
            raise _HttpError(500, f"result unreadable: {exc}")
        return _response(200, data, "text/plain; charset=utf-8")

    async def _submit(self, headers: Dict[str, str], body: bytes,
                      query: str, reader: asyncio.StreamReader) -> bytes:
        try:
            doc = json.loads(body.decode("utf-8"))
        except (UnicodeDecodeError, ValueError) as exc:
            raise _HttpError(400, f"request body is not JSON: {exc}")
        client = headers.get("x-client", "anonymous")
        deadline_s: Optional[float] = None
        if "x-deadline" in headers:
            try:
                deadline_s = float(headers["x-deadline"])
            except ValueError:
                raise _HttpError(400, f"bad X-Deadline "
                                      f"{headers['x-deadline']!r}")
        jobs = self.service.submit(doc, client=client,
                                   deadline_s=deadline_s)
        wait = "wait=1" in query.split("&") if query else False
        if wait:
            await self._wait_or_disconnect(jobs, reader)
        status = 200
        doc_out = {"jobs": [j.as_dict() for j in jobs],
                   "queue_depth": self.service.depth()}
        return _json_response(status, doc_out)

    async def _wait_or_disconnect(self, jobs: Any,
                                  reader: asyncio.StreamReader) -> None:
        """Block until every job finishes — or the client hangs up.

        The disconnect watch is an EOF read on the request socket: the
        client sent its whole request, so any read completing means it
        went away.  An abandoned wait releases the client's in-flight
        slots (the jobs keep running into the memo cache).
        """
        wait_tasks = {asyncio.ensure_future(self.service.wait_finished(j))
                      for j in jobs if not j.terminal}
        if not wait_tasks:
            return
        eof_task = asyncio.ensure_future(reader.read(1))
        try:
            while wait_tasks:
                finished, _ = await asyncio.wait(
                    wait_tasks | {eof_task},
                    return_when=asyncio.FIRST_COMPLETED)
                if eof_task in finished:
                    for job in jobs:
                        self.service.abandon(job.spec.id)
                    raise _Disconnected()
                wait_tasks -= finished
        finally:
            eof_task.cancel()
            for task in wait_tasks:
                task.cancel()


class _Disconnected(Exception):
    """The waiting client hung up mid-request."""


async def run_server(service: ExperimentService, host: str, port: int,
                     stream: Optional[Any] = None) -> int:
    """Open the service, bind, serve until drain completes; the
    ``repro serve`` event loop.  Returns the process exit code (0 for
    a graceful drain, 1 if any job failed permanently)."""
    service.open()
    app = ServeApp(service)
    server = await asyncio.start_server(  # detlint: ignore[socket-io] — the HTTP layer's whole job
        app.handle, host=host, port=port)
    bound = server.sockets[0].getsockname()
    addr = f"{bound[0]}:{bound[1]}"
    # --port 0 picks an ephemeral port; publish the bound address so
    # clients (and the chaos tests) can find it
    atomic_write(os.path.join(service.out_dir, "serve.addr"), addr + "\n",
                 prefix=".addr-")
    if stream is not None:
        print(f"serve: listening on http://{addr} "
              f"(journal {service.journal_path})", file=stream)

    loop = asyncio.get_running_loop()
    # SIGTERM (the orchestrator's stop) and SIGINT (^C) both mean the
    # same thing here: drain gracefully, flush the journal, exit 0
    for signum in (signal.SIGTERM, signal.SIGINT):
        loop.add_signal_handler(
            signum, service.begin_drain, signal.Signals(signum).name)
    try:
        await service.run_scheduler()
    finally:
        for signum in (signal.SIGTERM, signal.SIGINT):
            loop.remove_signal_handler(signum)
        server.close()
        await server.wait_closed()
        service.close()
        # a clean drain retires the address file so a restart's clients
        # never dial the dead port; a crash leaves it stale on purpose
        # (the journal, not the addr file, is the source of truth)
        try:
            os.unlink(os.path.join(service.out_dir, "serve.addr"))
        except OSError:
            pass
    failed = sum(1 for j in service.jobs.values() if j.status == "failed")
    if stream is not None:
        print(f"serve: drained ({service.drain_reason or 'idle'}); "
              f"{failed} job(s) failed", file=stream)
    return 0
