"""Crash-tolerant experiment service (``repro serve``).

A long-lived HTTP front end over the :mod:`repro.batch` substrate:
experiment specs are POSTed, durably journalled, executed on a bounded
worker pool with classified retries, memoized by their sha256 config
key, and survivable across SIGKILL — a restarted server replays its
journal to the exact pre-crash queue state.

:mod:`repro.serve.state`
    Serve-side job state, the journal fold and its compaction rule.
:mod:`repro.serve.service`
    :class:`~repro.serve.service.ExperimentService`: admission control
    (queue-depth and per-client caps), deadlines, full-jitter retry,
    graceful drain, recovery, stats.
:mod:`repro.serve.http`
    The dependency-free asyncio HTTP/1.1 layer and signal handling.

See ``docs/serving.md`` for the API, the durability and drain
semantics, and the chaos-testing recipe.
"""

from repro.serve.service import (Busy, Conflict, Draining,
                                 ExperimentService, Rejected, ServeError)
from repro.serve.state import ServeJob, fold_serve, keep_records

__all__ = [
    "Busy",
    "Conflict",
    "Draining",
    "ExperimentService",
    "Rejected",
    "ServeError",
    "ServeJob",
    "fold_serve",
    "keep_records",
]
