"""repro — simulation-based reproduction of the CLUSTER 2006 paper
*Improving Communication Performance on InfiniBand by Using Efficient
Data Placement Strategies* (Rex, Mietke, Rehm, Raisch, Nguyen).

The package models, in pure Python, every layer the paper touches:

- :mod:`repro.engine` — a discrete-event simulation kernel (the clock all
  results are measured against, in TBR ticks).
- :mod:`repro.mem` — a virtual-memory substrate: physical frames, page
  tables, mmap/brk, a HugeTLBfs pool, a split TLB and a cache/prefetcher
  model.
- :mod:`repro.alloc` — allocators: a glibc-like general-purpose allocator,
  the paper's three-layer hugepage library, and the libhugetlbfs /
  libhugepagealloc baselines it compares against.
- :mod:`repro.ib` — an InfiniBand substrate: verbs objects (PD/MR/QP/CQ),
  an HCA with an address-translation-table cache and DMA engine, the
  memory-registration pipeline, and parametric bus models.
- :mod:`repro.mpi` — an MVAPICH2-like message layer with eager and
  rendezvous/RDMA protocols and a pin-down registration cache.
- :mod:`repro.core` — the paper's contribution as a public API: data
  placement policies, the preloadable hugepage library facade and
  scatter-gather aggregation strategies.
- :mod:`repro.systems` — presets for the paper's three test machines.
- :mod:`repro.workloads` — IMB SendRecv, mini NAS kernels (CG/EP/IS/LU/MG)
  and an Abinit-like allocation trace.
- :mod:`repro.analysis` — PAPI-like counters and report formatting.
- :mod:`repro.faults` — deterministic fault injection: lossy links,
  registration failures, mid-run hugepage depletion, and the QP
  retry/timeout machinery that recovers from them.

Quickstart::

    from repro.systems import presets
    from repro.workloads.imb import SendRecvBenchmark

    bench = SendRecvBenchmark(presets.opteron_infinihost_pcie)
    result = bench.run(sizes=[65536], hugepages=True, lazy_dereg=False)
    print(result.rows[0].bandwidth_mb_s)
"""

__version__ = "1.0.0"

__all__ = ["__version__"]
