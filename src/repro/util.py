"""Small shared utilities with no simulation semantics.

Currently one thing lives here: :func:`atomic_write`, the single
implementation of the temp-file + ``fsync`` + ``os.replace`` pattern
that :mod:`repro.checkpoint` (snapshot files), :mod:`repro.trace`
(Chrome trace exports) and :mod:`repro.batch` (journal compaction,
memoized result publication, batch reports) all rely on.  Readers of
any of those files only ever observe a complete, fully-flushed file —
a crash mid-write leaves the previous contents (or no file) behind,
never a truncated one.
"""

from __future__ import annotations

import os
import tempfile
from typing import Union


def atomic_write(path: str, data: Union[bytes, str], *,
                 prefix: str = ".tmp-") -> None:
    """Atomically replace *path* with *data* (bytes or text).

    The data is written to a temporary file in *path*'s directory
    (created if needed), flushed and fsynced, then renamed over *path*
    with ``os.replace`` — an atomic operation on POSIX and Windows.
    On any failure the temporary file is removed and *path* is left
    untouched.
    """
    if isinstance(data, str):
        data = data.encode("utf-8")
    directory = os.path.dirname(os.path.abspath(path))
    os.makedirs(directory, exist_ok=True)
    fd, tmp = tempfile.mkstemp(prefix=prefix, dir=directory)
    try:
        with os.fdopen(fd, "wb") as fh:
            fh.write(data)
            fh.flush()
            os.fsync(fh.fileno())
        os.replace(tmp, path)
    except BaseException:
        try:
            os.unlink(tmp)
        except OSError:
            pass
        raise
