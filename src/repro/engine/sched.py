"""Pluggable event schedulers for the DES kernel.

The kernel orders events by ``(time, priority, sequence)``.  A scheduler
stores pending ``(when, priority, seq, event)`` entries and hands them
back one *frame* at a time — a frame being every entry that shares the
minimal ``(when, priority)`` key, in sequence order.  Frames are the
unit of dispatch in :meth:`repro.engine.core.SimKernel.run`: draining
key-equal events together lets the kernel fuse same-tick cascades
without re-entering the scheduler.

Two implementations, byte-identity-pinned against each other (see
tests/test_scheduler.py):

- :class:`HeapScheduler` — the reference: one global binary heap.
- :class:`CalendarScheduler` — a calendar queue: a power-of-two ring of
  buckets, each covering ``2**shift`` ticks, with a heap overflow for
  events beyond the ring horizon.  Short-horizon timeouts (the simulator
  is dominated by them: WQE fetches, CQE writes, bus holds) become O(1)
  appends instead of O(log n) sift-ups; overflow entries migrate into
  the ring as the cursor advances, so each entry pays the heap at most
  once.
"""

from __future__ import annotations

from heapq import heappop, heappush
from typing import Any, List, Optional, Tuple

#: one scheduler entry: (when, priority, seq, event)
Entry = Tuple[int, int, int, Any]
#: one frame member: (seq, event)
FrameItem = Tuple[int, Any]


class HeapScheduler:
    """The reference scheduler: a single binary heap (seed behaviour)."""

    kind = "heap"

    __slots__ = ("_heap",)

    def __init__(self) -> None:
        self._heap: List[Entry] = []

    def __len__(self) -> int:
        return len(self._heap)

    def push(self, when: int, priority: int, seq: int, event: Any) -> None:
        heappush(self._heap, (when, priority, seq, event))

    def peek_time(self) -> Optional[int]:
        """Tick of the next frame, or None when empty."""
        return self._heap[0][0] if self._heap else None

    def pop_frame(self) -> Tuple[int, int, List[FrameItem]]:
        """Remove and return ``(when, priority, [(seq, event), ...])`` for
        the minimal key; the list is in ascending sequence order."""
        heap = self._heap
        when, prio, seq, event = heappop(heap)
        frame = [(seq, event)]
        while heap and heap[0][0] == when and heap[0][1] == prio:
            entry = heappop(heap)
            frame.append((entry[2], entry[3]))
        return when, prio, frame

    def entries(self) -> List[Entry]:
        """All pending entries in dispatch order (forensics/checkpoint)."""
        return sorted(self._heap)

    def clear(self) -> None:
        self._heap.clear()


class CalendarScheduler:
    """A calendar queue: bucket ring for the near future, heap overflow
    for far events.

    Invariants (kept by construction, audited in repro.audit):

    - every ring entry's slot (``when >> shift``) lies in
      ``[cursor, cursor + mask]`` — one lap, so a bucket only ever holds
      entries of a single slot;
    - the cursor never passes a non-empty bucket;
    - overflow entries migrate into the ring before any frame selection,
      so the ring always sees the global minimum.
    """

    kind = "calendar"

    __slots__ = ("_shift", "_mask", "_buckets", "_cursor", "_count", "_overflow")

    def __init__(self, shift: int = 7, n_buckets: int = 2048) -> None:
        if n_buckets & (n_buckets - 1):
            raise ValueError(f"n_buckets must be a power of two, got {n_buckets}")
        self._shift = shift
        self._mask = n_buckets - 1
        self._buckets: List[List[Entry]] = [[] for _ in range(n_buckets)]
        self._cursor = 0  # slots below this are empty
        self._count = 0  # entries in the ring
        self._overflow: List[Entry] = []

    def __len__(self) -> int:
        return self._count + len(self._overflow)

    def push(self, when: int, priority: int, seq: int, event: Any) -> None:
        slot = when >> self._shift
        delta = slot - self._cursor
        if delta < 0:
            # the kernel clock context moved back below the cursor (only
            # possible after an early-stopped run(until=...) advanced the
            # cursor past `now` while scanning); rebuild around the new
            # minimum — rare, so correctness beats speed here
            self._rewind(slot)
            delta = 0
        if delta <= self._mask:
            self._buckets[slot & self._mask].append((when, priority, seq, event))
            self._count += 1
        else:
            heappush(self._overflow, (when, priority, seq, event))

    def _rewind(self, new_slot: int) -> None:
        pending = [e for bucket in self._buckets for e in bucket]
        for bucket in self._buckets:
            del bucket[:]
        self._count = 0
        self._cursor = new_slot
        for entry in pending:
            self.push(*entry)

    def _migrate(self) -> None:
        """Pull every overflow entry now within the ring horizon."""
        overflow = self._overflow
        if not overflow:
            return
        shift = self._shift
        mask = self._mask
        limit = self._cursor + mask
        while overflow and (overflow[0][0] >> shift) <= limit:
            entry = heappop(overflow)
            self._buckets[(entry[0] >> shift) & mask].append(entry)
            self._count += 1

    def _advance(self) -> List[Entry]:
        """Move the cursor to the first non-empty bucket and return it.

        The caller must ensure the scheduler is non-empty.
        """
        self._migrate()
        if self._count == 0:
            # ring drained: jump straight to the overflow minimum
            entry = heappop(self._overflow)
            self._cursor = entry[0] >> self._shift
            self._buckets[self._cursor & self._mask].append(entry)
            self._count = 1
            self._migrate()
        buckets = self._buckets
        mask = self._mask
        slot = self._cursor
        while True:
            bucket = buckets[slot & mask]
            if bucket:
                self._cursor = slot
                return bucket
            slot += 1

    def peek_time(self) -> Optional[int]:
        if self._count == 0 and not self._overflow:
            return None
        bucket = self._advance()
        best = bucket[0][0]
        for entry in bucket:
            if entry[0] < best:
                best = entry[0]
        return best

    def pop_frame(self) -> Tuple[int, int, List[FrameItem]]:
        bucket = self._advance()
        if len(bucket) == 1:
            # sparse queues (small windows, long periods) make one-entry
            # buckets the common case; skip the scan/rebuild/sort
            when, prio, seq, event = bucket[0]
            del bucket[:]
            self._count -= 1
            return when, prio, [(seq, event)]
        # min() compares (when, priority, seq, ...) left-to-right and seq
        # is unique, so events themselves are never compared
        best_when, best_prio = min(bucket)[:2]
        frame = [(e[2], e[3]) for e in bucket if e[0] == best_when and e[1] == best_prio]
        if len(frame) == len(bucket):
            del bucket[:]
        else:
            bucket[:] = [
                e for e in bucket if e[0] != best_when or e[1] != best_prio
            ]
        self._count -= len(frame)
        # appends are seq-ordered except across a requeue boundary; a
        # sort on (nearly) sorted input is O(n) with Timsort
        frame.sort()
        return best_when, best_prio, frame

    def entries(self) -> List[Entry]:
        pending = [e for bucket in self._buckets for e in bucket]
        pending.extend(self._overflow)
        pending.sort()
        return pending

    def clear(self) -> None:
        for bucket in self._buckets:
            del bucket[:]
        self._count = 0
        self._overflow.clear()


#: registry used by SimKernel and the --scheduler CLI flag
SCHEDULERS = {
    "heap": HeapScheduler,
    "calendar": CalendarScheduler,
}


def make_scheduler(kind: str) -> HeapScheduler | CalendarScheduler:
    """Instantiate a scheduler by registry name."""
    try:
        return SCHEDULERS[kind]()
    except KeyError:
        raise ValueError(
            f"unknown scheduler {kind!r} (choose from {sorted(SCHEDULERS)})"
        ) from None
