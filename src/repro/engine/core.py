"""Core of the discrete-event simulation kernel.

The kernel keeps pending ``(time, priority, sequence, event)`` entries in
a pluggable :mod:`scheduler <repro.engine.sched>`.  Time is an integer
tick count; ties are broken first by an event priority (so e.g. urgent
interrupts run before normal timeouts at the same instant) and then by
scheduling order, which makes every simulation fully deterministic.

Dispatch is *frame-fused*: the scheduler hands back every event sharing
the minimal ``(time, priority)`` key as one frame, and events scheduled
**during** the frame for the same key are appended to the live frame —
same-tick cascades (resource grants, zero-delay succeeds) never touch
the scheduler at all.  An urgent event scheduled mid-frame preempts the
rest of the frame exactly as the old per-event heap loop would have.

Processes are plain generator functions.  Each ``yield`` hands the kernel a
waitable :class:`Event`; the process is resumed with the event's value when
it fires (or the event's exception is thrown into the generator).

Event ownership and pooling
---------------------------

Spent ``Event``/``Timeout`` instances are recycled through per-kernel
pools.  Pooling is governed by an explicit hold count, not a refcount
heuristic: events made by the factories :meth:`SimKernel.event` and
:meth:`SimKernel.timeout` are *kernel-owned* (hold count 0) and return
to the pool as soon as their callbacks have run.  Code that keeps a
reference past that point — to read ``.value`` later, or to yield the
event again — must take ownership with :meth:`Event.hold` and drop it
with :meth:`Event.release` when done.  Directly-constructed events
(``Event(kernel)``, ``Timeout(kernel, d)``) start creator-owned (hold
count 1) and are never recycled behind the creator's back.
"""

from __future__ import annotations

from typing import Any, Callable, Generator, Iterable, List, Optional, Union

from repro.engine.sched import make_scheduler

#: scheduling priorities (lower runs first at equal times)
URGENT = 0
NORMAL = 1


class SimError(Exception):
    """Base class for simulation kernel errors."""


class Interrupt(Exception):
    """Thrown into a process when :meth:`Process.interrupt` is called.

    The interrupt ``cause`` is available as ``exc.cause``.
    """

    def __init__(self, cause: Any = None):
        super().__init__(cause)
        self.cause = cause


class Event:
    """A waitable occurrence.

    Events move through three states: *pending* (created, not triggered),
    *triggered* (scheduled to fire, value set) and *processed* (callbacks
    have run).  Processes wait on events by yielding them.
    """

    __slots__ = (
        "kernel",
        "callbacks",
        "_value",
        "_ok",
        "_triggered",
        "_processed",
        "_holds",
    )

    def __init__(self, kernel: "SimKernel"):
        self.kernel = kernel
        self.callbacks: Optional[List[Callable[["Event"], None]]] = []
        self._value: Any = None
        self._ok: bool = True
        self._triggered = False
        self._processed = False
        # directly-constructed events are creator-owned; the kernel
        # factories reset this to 0 (kernel-owned, poolable)
        self._holds = 1

    # -- state ----------------------------------------------------------
    @property
    def triggered(self) -> bool:
        """True once the event has been given a value (success or failure)."""
        return self._triggered

    @property
    def processed(self) -> bool:
        """True once callbacks have run."""
        return self._processed

    @property
    def ok(self) -> bool:
        """True if the event succeeded (only meaningful once triggered)."""
        return self._ok

    @property
    def value(self) -> Any:
        """The event's value (or exception, if it failed)."""
        return self._value

    # -- ownership ------------------------------------------------------
    def hold(self) -> "Event":
        """Take ownership: the event will not be recycled while held.

        Call this before stashing a factory-made event for later reads
        (``.value`` after other work has run, re-yielding, tracing).
        Pair with :meth:`release`.
        """
        self._holds += 1
        return self

    def release(self) -> None:
        """Drop one hold; a processed event with no holds left returns to
        its kernel's pool."""
        holds = self._holds - 1
        if holds < 0:
            raise SimError(f"release() without a matching hold() on {self!r}")
        self._holds = holds
        if holds == 0 and self._processed:
            self.kernel._recycle(self)

    # -- triggering -----------------------------------------------------
    def succeed(self, value: Any = None, delay: int = 0) -> "Event":
        """Trigger the event successfully with *value* after *delay* ticks."""
        if self._triggered:
            raise SimError(f"{self!r} already triggered")
        self._triggered = True
        self._ok = True
        self._value = value
        self.kernel._schedule(self, delay, NORMAL)
        return self

    def fail(self, exception: BaseException, delay: int = 0) -> "Event":
        """Trigger the event as failed; waiters get *exception* thrown."""
        if self._triggered:
            raise SimError(f"{self!r} already triggered")
        if not isinstance(exception, BaseException):
            raise TypeError("fail() requires an exception instance")
        self._triggered = True
        self._ok = False
        self._value = exception
        self.kernel._schedule(self, delay, NORMAL)
        return self

    # -- internal -------------------------------------------------------
    def _run_callbacks(self) -> None:
        callbacks, self.callbacks = self.callbacks, None
        self._processed = True
        if callbacks:
            for cb in callbacks:
                cb(self)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = (
            "processed" if self._processed else "triggered" if self._triggered else "pending"
        )
        return f"<{type(self).__name__} {state} at {hex(id(self))}>"


class Timeout(Event):
    """An event that fires *delay* ticks after creation."""

    __slots__ = ("delay",)

    def __init__(self, kernel: "SimKernel", delay: int, value: Any = None):
        if delay < 0:
            raise SimError(f"negative timeout delay {delay}")
        super().__init__(kernel)
        self.delay = delay
        self._triggered = True
        self._value = value
        kernel._schedule(self, delay, NORMAL)


class Initialize(Event):
    """Internal event used to start a freshly created process."""

    __slots__ = ()

    def __init__(self, kernel: "SimKernel", process: "Process"):
        super().__init__(kernel)
        self._triggered = True
        self._value = None
        self.callbacks.append(process._resume)
        kernel._schedule(self, 0, URGENT)


class Process(Event):
    """A running generator coroutine; also an event that fires on return.

    The value of the event is the generator's ``return`` value; if the
    generator raises, the process event fails with that exception (unless a
    waiter exists, the exception propagates out of :meth:`SimKernel.run`).
    """

    __slots__ = ("generator", "_target", "name")

    def __init__(self, kernel: "SimKernel", generator: Generator, name: Optional[str] = None):
        if not hasattr(generator, "throw"):
            raise SimError(f"{generator!r} is not a generator")
        super().__init__(kernel)
        self.generator = generator
        self.name = name or getattr(generator, "__name__", "process")
        self._target: Optional[Event] = None
        Initialize(kernel, self)

    @property
    def is_alive(self) -> bool:
        """True while the underlying generator has not finished."""
        return not self._triggered

    def interrupt(self, cause: Any = None) -> None:
        """Throw :class:`Interrupt` into the process at the current instant.

        Interrupting a finished process is an error; interrupting a process
        that is waiting on an event detaches it from that event.
        """
        if self._triggered:
            raise SimError(f"cannot interrupt finished {self!r}")
        if self._target is not None and self._target.callbacks is not None:
            try:
                self._target.callbacks.remove(self._resume)
            except ValueError:
                pass
        self._target = None
        interrupt_ev = Event(self.kernel)
        interrupt_ev._holds = 0  # kernel-internal, nobody retains it
        interrupt_ev._triggered = True
        interrupt_ev._ok = False
        interrupt_ev._value = Interrupt(cause)
        interrupt_ev.callbacks.append(self._resume_throw)
        self.kernel._schedule(interrupt_ev, 0, URGENT)

    # -- resumption -----------------------------------------------------
    def _resume(self, event: Event) -> None:
        self._step(event, throw=not event.ok)

    def _resume_throw(self, event: Event) -> None:
        self._step(event, throw=True)

    def _step(self, event: Event, throw: bool) -> None:
        self._target = None
        self.kernel._active_process = self
        try:
            if throw:
                target = self.generator.throw(event.value)
            else:
                target = self.generator.send(event.value)
        except StopIteration as stop:
            self._triggered = True
            self._ok = True
            self._value = stop.value
            self.kernel._schedule(self, 0, NORMAL)
            return
        except BaseException as exc:
            self._triggered = True
            self._ok = False
            self._value = exc
            if self.callbacks:
                self.kernel._schedule(self, 0, NORMAL)
            else:
                # nobody is waiting: surface the failure from run()
                self.kernel._crash = exc
            return
        finally:
            self.kernel._active_process = None

        if not isinstance(target, Event):
            raise SimError(
                f"process {self.name!r} yielded {target!r}, which is not an Event"
            )
        if target.callbacks is None:
            # already processed: resume immediately at the current instant
            immediate = Event(self.kernel)
            immediate._holds = 0  # kernel-internal
            immediate._triggered = True
            immediate._ok = target.ok
            immediate._value = target.value
            immediate.callbacks.append(self._resume)
            self.kernel._schedule(immediate, 0, URGENT)
        else:
            target.callbacks.append(self._resume)
            self._target = target


class AllOf(Event):
    """Fires when every child event has fired; value is the list of values.

    Fails as soon as any child fails.  Children are held (see
    :meth:`Event.hold`) until the combinator settles, so pooled events
    are safe to combine.
    """

    __slots__ = ("events", "_pending", "_held")

    def __init__(self, kernel: "SimKernel", events: Iterable[Event]):
        super().__init__(kernel)
        self.events = list(events)
        self._pending = 0
        self._held: List[Event] = []
        failed: Optional[Event] = None
        for ev in self.events:
            if ev.callbacks is None:  # already processed
                if not ev.ok and failed is None:
                    failed = ev
                continue
            self._pending += 1
            ev.hold()
            self._held.append(ev)
            ev.callbacks.append(self._child_fired)
        if failed is not None:
            self.fail(failed.value)
            self._release_children()
        elif self._pending == 0:
            self.succeed([ev.value for ev in self.events])

    def _release_children(self) -> None:
        held, self._held = self._held, []
        for ev in held:
            ev.release()

    def _child_fired(self, event: Event) -> None:
        if self._triggered:
            return
        if not event.ok:
            self.fail(event.value)
            self._release_children()
            return
        self._pending -= 1
        if self._pending == 0:
            self.succeed([ev.value for ev in self.events])
            self._release_children()


class AnyOf(Event):
    """Fires when the first child event fires; value is ``(index, value)``.

    Children are held until the combinator settles; note that reading a
    *losing* child's value after the AnyOf fires requires your own
    :meth:`Event.hold` on it.
    """

    __slots__ = ("events", "_held")

    def __init__(self, kernel: "SimKernel", events: Iterable[Event]):
        super().__init__(kernel)
        self.events = list(events)
        self._held: List[Event] = []
        if not self.events:
            raise SimError("AnyOf requires at least one event")
        for i, ev in enumerate(self.events):
            if ev.callbacks is None:
                if not self._triggered:
                    if ev.ok:
                        self.succeed((i, ev.value))
                    else:
                        self.fail(ev.value)
                continue
            ev.hold()
            self._held.append(ev)
            ev.callbacks.append(self._make_cb(i))
        if self._triggered:
            self._release_children()

    def _release_children(self) -> None:
        held, self._held = self._held, []
        for ev in held:
            ev.release()

    def _make_cb(self, index: int) -> Callable[[Event], None]:
        def _cb(event: Event) -> None:
            if self._triggered:
                return
            if event.ok:
                self.succeed((index, event.value))
            else:
                self.fail(event.value)
            self._release_children()

        return _cb


#: the kernel currently inside :meth:`SimKernel.run`, if any.  The hang
#: watchdog (:mod:`repro.checkpoint`) samples this from its own thread to
#: tell "the event loop is stalled" apart from "the host is doing slow
#: non-simulation work"; one global assignment per run() call keeps the
#: hot loop untouched.
_active_kernel: Optional["SimKernel"] = None


def active_kernel() -> Optional["SimKernel"]:
    """The kernel currently executing run(), or None between runs."""
    return _active_kernel


#: scheduler used by kernels that don't name one (see --scheduler)
_default_scheduler = "heap"


def set_default_scheduler(kind: str) -> None:
    """Set the scheduler new kernels use by default (``heap``/``calendar``)."""
    global _default_scheduler
    make_scheduler(kind)  # validate the name eagerly
    _default_scheduler = kind


def default_scheduler() -> str:
    """The scheduler kind new kernels get by default."""
    return _default_scheduler


class SimKernel:
    """The event loop: a virtual clock plus a scheduling queue.

    >>> k = SimKernel()
    >>> def proc():
    ...     yield k.timeout(10)
    ...     return k.now
    >>> p = k.process(proc())
    >>> k.run()
    >>> p.value
    10
    """

    __slots__ = (
        "_sched",
        "_seq",
        "_now",
        "_active_process",
        "_crash",
        "_timeout_pool",
        "_event_pool",
        "_frame",
        "_frame_when",
        "_frame_prio",
        "_preempt",
        "_frames",
        "_events",
    )

    #: recycled events kept per pool; beyond this, spent events are left
    #: to the garbage collector
    _POOL_MAX = 256

    def __init__(self, scheduler: Optional[Union[str, object]] = None) -> None:
        if scheduler is None:
            scheduler = _default_scheduler
        self._sched = (
            make_scheduler(scheduler) if isinstance(scheduler, str) else scheduler
        )
        self._seq = 0
        self._now = 0
        self._active_process: Optional[Process] = None
        self._crash: Optional[BaseException] = None
        # object pools: Timeout/Event instances are the kernel's hottest
        # allocation; the dispatch loop recycles kernel-owned ones (hold
        # count 0) and the factories below reuse them
        self._timeout_pool: List[Timeout] = []
        self._event_pool: List[Event] = []
        # the dispatch frame currently executing: same-key schedules fuse
        # into it, an urgent same-tick schedule preempts it
        self._frame: Optional[List] = None
        self._frame_when = 0
        self._frame_prio = NORMAL
        self._preempt = False
        self._frames = 0
        self._events = 0

    # -- clock ----------------------------------------------------------
    @property
    def now(self) -> int:
        """Current simulated time in ticks."""
        return self._now

    @property
    def active_process(self) -> Optional[Process]:
        """The process currently executing, if any."""
        return self._active_process

    @property
    def scheduler_kind(self) -> str:
        """Registry name of the scheduler this kernel runs on."""
        return self._sched.kind

    # -- event factories --------------------------------------------------
    def event(self) -> Event:
        """Create a new untriggered kernel-owned event (recycled when its
        callbacks have run unless :meth:`Event.hold` is taken)."""
        pool = self._event_pool
        if pool:
            ev = pool.pop()
            ev.callbacks = []
            ev._value = None
            ev._ok = True
            ev._triggered = False
            ev._processed = False
            ev._holds = 0
            return ev
        ev = Event(self)
        ev._holds = 0
        return ev

    def timeout(self, delay: int, value: Any = None) -> Timeout:
        """Create a kernel-owned event firing after *delay* ticks
        (recycled when possible)."""
        pool = self._timeout_pool
        if pool:
            delay = int(delay)
            if delay < 0:
                raise SimError(f"negative timeout delay {delay}")
            ev = pool.pop()
            # reset *all* slot state: a recycled timeout must be
            # indistinguishable from a newly-constructed one
            ev.delay = delay
            ev.callbacks = []
            ev._value = value
            ev._ok = True
            ev._triggered = True
            ev._processed = False
            ev._holds = 0
            self._schedule(ev, delay, NORMAL)
            return ev
        ev = Timeout(self, int(delay), value)
        ev._holds = 0
        return ev

    def process(self, generator: Generator, name: Optional[str] = None) -> Process:
        """Start *generator* as a simulation process."""
        return Process(self, generator, name)

    def all_of(self, events: Iterable[Event]) -> AllOf:
        """Wait for all of *events*."""
        return AllOf(self, events)

    def any_of(self, events: Iterable[Event]) -> AnyOf:
        """Wait for the first of *events*."""
        return AnyOf(self, events)

    # -- pooling ----------------------------------------------------------
    def _recycle(self, event: Event) -> None:
        """Return a spent kernel-owned event to its pool (exact types
        only — subclasses carry extra state)."""
        cls = event.__class__
        if cls is Timeout:
            pool = self._timeout_pool
            if len(pool) < self._POOL_MAX:
                pool.append(event)
        elif cls is Event:
            pool = self._event_pool
            if len(pool) < self._POOL_MAX:
                pool.append(event)

    # -- scheduling -------------------------------------------------------
    def _schedule(self, event: Event, delay: int, priority: int) -> None:
        self._seq += 1
        when = self._now + int(delay)
        frame = self._frame
        if frame is not None and when == self._frame_when:
            if priority == self._frame_prio:
                # same-tick fusion: join the live frame (the fresh seq is
                # larger than anything dispatched or pending in it)
                frame.append((self._seq, event))
                return
            if priority < self._frame_prio:
                # an urgent event at the current tick outranks the rest
                # of this frame: make the dispatch loop yield to it
                self._preempt = True
        self._sched.push(when, priority, self._seq, event)

    def peek(self) -> Optional[int]:
        """Time of the next scheduled event, or None if the queue is empty."""
        return self._sched.peek_time()

    def step(self) -> None:
        """Process the single next event."""
        sched = self._sched
        if not len(sched):
            raise SimError("step() on an empty event queue")
        when, prio, frame = sched.pop_frame()
        for seq, ev in frame[1:]:
            sched.push(when, prio, seq, ev)
        event = frame[0][1]
        self._now = when
        event._run_callbacks()
        crash = self._crash
        if event._holds == 0:
            self._recycle(event)
        if crash is not None:
            self._crash = None
            raise crash

    def run(self, until: Optional[int] = None) -> None:
        """Run until the queue drains or the clock passes *until* ticks.

        If the queue drains before *until*, the clock stays at the last
        processed event's time — it never fast-forwards past work that
        doesn't exist (checkpoints taken after such a run must record a
        tick some event actually reached).

        If a process dies with an unhandled exception and no other process
        is waiting on it, the exception propagates out of ``run()``.

        When a tracer is installed (:mod:`repro.trace`) the whole run is
        wrapped in one ``engine.run`` span and a closing ``engine.frames``
        instant records the frame-batched dispatch stats — never per-event
        instrumentation, which would touch the hot loop.
        """
        from repro import trace

        tracer = trace.active()
        if tracer is None:
            return self._run_loop(until)
        frames0, events0 = self._frames, self._events
        with tracer.span("engine.run", track="kernel",
                         pending=len(self._sched)):
            result = self._run_loop(until)
            tracer.instant("engine.frames", track="kernel",
                           frames=self._frames - frames0,
                           events=self._events - events0)
            return result

    def _run_loop(self, until: Optional[int] = None) -> None:
        """The actual event loop (see :meth:`run`).

        The frame dispatch is inlined — the per-event bookkeeping is the
        simulator's hottest code, and method calls plus repeated
        attribute loads are measurable at millions of events.
        """
        if until is not None and until < self._now:
            raise SimError(f"until={until} is in the past (now={self._now})")
        global _active_kernel
        _active_kernel = self
        frames = 0
        events = 0
        sched = self._sched
        pop_frame = sched.pop_frame
        push = sched.push
        timeout_pool = self._timeout_pool
        event_pool = self._event_pool
        pool_max = self._POOL_MAX
        try:
            while len(sched):
                if until is not None and sched.peek_time() > until:
                    self._now = until
                    return
                when, prio, frame = pop_frame()
                self._now = when
                frames += 1
                self._frame = frame
                self._frame_when = when
                self._frame_prio = prio
                i = 0
                try:
                    while i < len(frame):
                        event = frame[i][1]
                        i += 1
                        callbacks = event.callbacks
                        event.callbacks = None
                        event._processed = True
                        if callbacks:
                            for cb in callbacks:
                                cb(event)
                        if event._holds == 0:
                            cls = event.__class__
                            if cls is Timeout:
                                if len(timeout_pool) < pool_max:
                                    timeout_pool.append(event)
                            elif cls is Event:
                                if len(event_pool) < pool_max:
                                    event_pool.append(event)
                        if self._crash is not None:
                            exc, self._crash = self._crash, None
                            raise exc
                        if self._preempt:
                            self._preempt = False
                            break
                finally:
                    self._frame = None
                    events += i
                    if i < len(frame):
                        # preempted (or crashed): the unprocessed tail
                        # goes back to the scheduler in original order
                        for entry in frame[i:]:
                            push(when, prio, entry[0], entry[1])
        finally:
            self._frames += frames
            self._events += events
            _active_kernel = None
