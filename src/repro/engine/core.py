"""Core of the discrete-event simulation kernel.

The kernel keeps a priority queue of ``(time, priority, sequence, event)``
entries.  Time is an integer tick count; ties are broken first by an event
priority (so e.g. urgent interrupts run before normal timeouts at the same
instant) and then by scheduling order, which makes every simulation fully
deterministic.

Processes are plain generator functions.  Each ``yield`` hands the kernel a
waitable :class:`Event`; the process is resumed with the event's value when
it fires (or the event's exception is thrown into the generator).
"""

from __future__ import annotations

import heapq
from sys import getrefcount
from typing import Any, Callable, Generator, Iterable, List, Optional

#: scheduling priorities (lower runs first at equal times)
URGENT = 0
NORMAL = 1


class SimError(Exception):
    """Base class for simulation kernel errors."""


class Interrupt(Exception):
    """Thrown into a process when :meth:`Process.interrupt` is called.

    The interrupt ``cause`` is available as ``exc.cause``.
    """

    def __init__(self, cause: Any = None):
        super().__init__(cause)
        self.cause = cause


class Event:
    """A waitable occurrence.

    Events move through three states: *pending* (created, not triggered),
    *triggered* (scheduled to fire, value set) and *processed* (callbacks
    have run).  Processes wait on events by yielding them.
    """

    __slots__ = ("kernel", "callbacks", "_value", "_ok", "_triggered", "_processed")

    def __init__(self, kernel: "SimKernel"):
        self.kernel = kernel
        self.callbacks: Optional[List[Callable[["Event"], None]]] = []
        self._value: Any = None
        self._ok: bool = True
        self._triggered = False
        self._processed = False

    # -- state ----------------------------------------------------------
    @property
    def triggered(self) -> bool:
        """True once the event has been given a value (success or failure)."""
        return self._triggered

    @property
    def processed(self) -> bool:
        """True once callbacks have run."""
        return self._processed

    @property
    def ok(self) -> bool:
        """True if the event succeeded (only meaningful once triggered)."""
        return self._ok

    @property
    def value(self) -> Any:
        """The event's value (or exception, if it failed)."""
        return self._value

    # -- triggering -----------------------------------------------------
    def succeed(self, value: Any = None, delay: int = 0) -> "Event":
        """Trigger the event successfully with *value* after *delay* ticks."""
        if self._triggered:
            raise SimError(f"{self!r} already triggered")
        self._triggered = True
        self._ok = True
        self._value = value
        self.kernel._schedule(self, delay, NORMAL)
        return self

    def fail(self, exception: BaseException, delay: int = 0) -> "Event":
        """Trigger the event as failed; waiters get *exception* thrown."""
        if self._triggered:
            raise SimError(f"{self!r} already triggered")
        if not isinstance(exception, BaseException):
            raise TypeError("fail() requires an exception instance")
        self._triggered = True
        self._ok = False
        self._value = exception
        self.kernel._schedule(self, delay, NORMAL)
        return self

    # -- internal -------------------------------------------------------
    def _run_callbacks(self) -> None:
        callbacks, self.callbacks = self.callbacks, None
        self._processed = True
        if callbacks:
            for cb in callbacks:
                cb(self)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = (
            "processed" if self._processed else "triggered" if self._triggered else "pending"
        )
        return f"<{type(self).__name__} {state} at {hex(id(self))}>"


class Timeout(Event):
    """An event that fires *delay* ticks after creation."""

    __slots__ = ("delay",)

    def __init__(self, kernel: "SimKernel", delay: int, value: Any = None):
        if delay < 0:
            raise SimError(f"negative timeout delay {delay}")
        super().__init__(kernel)
        self.delay = delay
        self._triggered = True
        self._value = value
        kernel._schedule(self, delay, NORMAL)


class Initialize(Event):
    """Internal event used to start a freshly created process."""

    __slots__ = ()

    def __init__(self, kernel: "SimKernel", process: "Process"):
        super().__init__(kernel)
        self._triggered = True
        self._value = None
        self.callbacks.append(process._resume)
        kernel._schedule(self, 0, URGENT)


class Process(Event):
    """A running generator coroutine; also an event that fires on return.

    The value of the event is the generator's ``return`` value; if the
    generator raises, the process event fails with that exception (unless a
    waiter exists, the exception propagates out of :meth:`SimKernel.run`).
    """

    __slots__ = ("generator", "_target", "name")

    def __init__(self, kernel: "SimKernel", generator: Generator, name: Optional[str] = None):
        if not hasattr(generator, "throw"):
            raise SimError(f"{generator!r} is not a generator")
        super().__init__(kernel)
        self.generator = generator
        self.name = name or getattr(generator, "__name__", "process")
        self._target: Optional[Event] = None
        Initialize(kernel, self)

    @property
    def is_alive(self) -> bool:
        """True while the underlying generator has not finished."""
        return not self._triggered

    def interrupt(self, cause: Any = None) -> None:
        """Throw :class:`Interrupt` into the process at the current instant.

        Interrupting a finished process is an error; interrupting a process
        that is waiting on an event detaches it from that event.
        """
        if self._triggered:
            raise SimError(f"cannot interrupt finished {self!r}")
        if self._target is not None and self._target.callbacks is not None:
            try:
                self._target.callbacks.remove(self._resume)
            except ValueError:
                pass
        self._target = None
        interrupt_ev = Event(self.kernel)
        interrupt_ev._triggered = True
        interrupt_ev._ok = False
        interrupt_ev._value = Interrupt(cause)
        interrupt_ev.callbacks.append(self._resume_throw)
        self.kernel._schedule(interrupt_ev, 0, URGENT)

    # -- resumption -----------------------------------------------------
    def _resume(self, event: Event) -> None:
        self._step(event, throw=not event.ok)

    def _resume_throw(self, event: Event) -> None:
        self._step(event, throw=True)

    def _step(self, event: Event, throw: bool) -> None:
        self._target = None
        self.kernel._active_process = self
        try:
            if throw:
                target = self.generator.throw(event.value)
            else:
                target = self.generator.send(event.value)
        except StopIteration as stop:
            self._triggered = True
            self._ok = True
            self._value = stop.value
            self.kernel._schedule(self, 0, NORMAL)
            return
        except BaseException as exc:
            self._triggered = True
            self._ok = False
            self._value = exc
            if self.callbacks:
                self.kernel._schedule(self, 0, NORMAL)
            else:
                # nobody is waiting: surface the failure from run()
                self.kernel._crash = exc
            return
        finally:
            self.kernel._active_process = None

        if not isinstance(target, Event):
            raise SimError(
                f"process {self.name!r} yielded {target!r}, which is not an Event"
            )
        if target.callbacks is None:
            # already processed: resume immediately at the current instant
            immediate = Event(self.kernel)
            immediate._triggered = True
            immediate._ok = target.ok
            immediate._value = target.value
            immediate.callbacks.append(self._resume)
            self.kernel._schedule(immediate, 0, URGENT)
        else:
            target.callbacks.append(self._resume)
            self._target = target


class AllOf(Event):
    """Fires when every child event has fired; value is the list of values.

    Fails as soon as any child fails.
    """

    __slots__ = ("events", "_pending")

    def __init__(self, kernel: "SimKernel", events: Iterable[Event]):
        super().__init__(kernel)
        self.events = list(events)
        self._pending = 0
        for ev in self.events:
            if ev.callbacks is None:  # already processed
                if not ev.ok and not self._triggered:
                    self.fail(ev.value)
                continue
            self._pending += 1
            ev.callbacks.append(self._child_fired)
        if self._pending == 0 and not self._triggered:
            self.succeed([ev.value for ev in self.events])

    def _child_fired(self, event: Event) -> None:
        if self._triggered:
            return
        if not event.ok:
            self.fail(event.value)
            return
        self._pending -= 1
        if self._pending == 0:
            self.succeed([ev.value for ev in self.events])


class AnyOf(Event):
    """Fires when the first child event fires; value is ``(index, value)``."""

    __slots__ = ("events",)

    def __init__(self, kernel: "SimKernel", events: Iterable[Event]):
        super().__init__(kernel)
        self.events = list(events)
        if not self.events:
            raise SimError("AnyOf requires at least one event")
        for i, ev in enumerate(self.events):
            if ev.callbacks is None:
                if not self._triggered:
                    if ev.ok:
                        self.succeed((i, ev.value))
                    else:
                        self.fail(ev.value)
                continue
            ev.callbacks.append(self._make_cb(i))

    def _make_cb(self, index: int) -> Callable[[Event], None]:
        def _cb(event: Event) -> None:
            if self._triggered:
                return
            if event.ok:
                self.succeed((index, event.value))
            else:
                self.fail(event.value)

        return _cb


#: the kernel currently inside :meth:`SimKernel.run`, if any.  The hang
#: watchdog (:mod:`repro.checkpoint`) samples this from its own thread to
#: tell "the event loop is stalled" apart from "the host is doing slow
#: non-simulation work"; one global assignment per run() call keeps the
#: hot loop untouched.
_active_kernel: Optional["SimKernel"] = None


def active_kernel() -> Optional["SimKernel"]:
    """The kernel currently executing run(), or None between runs."""
    return _active_kernel


class SimKernel:
    """The event loop: a virtual clock plus a scheduling queue.

    >>> k = SimKernel()
    >>> def proc():
    ...     yield k.timeout(10)
    ...     return k.now
    >>> p = k.process(proc())
    >>> k.run()
    >>> p.value
    10
    """

    __slots__ = (
        "_queue",
        "_seq",
        "_now",
        "_active_process",
        "_crash",
        "_timeout_pool",
        "_event_pool",
    )

    #: recycled events kept per pool; beyond this, spent events are left
    #: to the garbage collector
    _POOL_MAX = 256

    def __init__(self) -> None:
        self._queue: List = []
        self._seq = 0
        self._now = 0
        self._active_process: Optional[Process] = None
        self._crash: Optional[BaseException] = None
        # object pools: Timeout/Event instances are the kernel's hottest
        # allocation; step() recycles ones nobody else references (see
        # the refcount check there) and the factories below reuse them
        self._timeout_pool: List[Timeout] = []
        self._event_pool: List[Event] = []

    # -- clock ----------------------------------------------------------
    @property
    def now(self) -> int:
        """Current simulated time in ticks."""
        return self._now

    @property
    def active_process(self) -> Optional[Process]:
        """The process currently executing, if any."""
        return self._active_process

    # -- event factories --------------------------------------------------
    def event(self) -> Event:
        """Create a new untriggered event (recycled when possible)."""
        pool = self._event_pool
        if pool:
            ev = pool.pop()
            ev.callbacks = []
            ev._value = None
            ev._ok = True
            ev._triggered = False
            ev._processed = False
            return ev
        return Event(self)

    def timeout(self, delay: int, value: Any = None) -> Timeout:
        """Create an event firing after *delay* ticks (recycled when
        possible)."""
        pool = self._timeout_pool
        if pool:
            delay = int(delay)
            if delay < 0:
                raise SimError(f"negative timeout delay {delay}")
            ev = pool.pop()
            ev.delay = delay
            ev.callbacks = []
            ev._value = value
            ev._ok = True
            ev._triggered = True
            ev._processed = False
            self._schedule(ev, delay, NORMAL)
            return ev
        return Timeout(self, int(delay), value)

    def process(self, generator: Generator, name: Optional[str] = None) -> Process:
        """Start *generator* as a simulation process."""
        return Process(self, generator, name)

    def all_of(self, events: Iterable[Event]) -> AllOf:
        """Wait for all of *events*."""
        return AllOf(self, events)

    def any_of(self, events: Iterable[Event]) -> AnyOf:
        """Wait for the first of *events*."""
        return AnyOf(self, events)

    # -- scheduling -------------------------------------------------------
    def _schedule(self, event: Event, delay: int, priority: int) -> None:
        self._seq += 1
        heapq.heappush(self._queue, (self._now + int(delay), priority, self._seq, event))

    def peek(self) -> Optional[int]:
        """Time of the next scheduled event, or None if the queue is empty."""
        return self._queue[0][0] if self._queue else None

    def step(self) -> None:
        """Process the single next event."""
        if not self._queue:
            raise SimError("step() on an empty event queue")
        when, _prio, _seq, event = heapq.heappop(self._queue)
        self._now = when
        event._run_callbacks()
        if self._crash is not None:
            exc, self._crash = self._crash, None
            raise exc
        # Recycle the spent event if nobody else holds it: refcount 2 is
        # our local binding plus getrefcount's argument.  Safe because
        # Event has __slots__ without __weakref__ (no weak references can
        # observe reuse) and the kernel is single-threaded.  Exact types
        # only — subclasses carry extra state.
        cls = type(event)
        if cls is Timeout:
            if len(self._timeout_pool) < self._POOL_MAX and getrefcount(event) == 2:
                event._value = None
                self._timeout_pool.append(event)
        elif cls is Event:
            if len(self._event_pool) < self._POOL_MAX and getrefcount(event) == 2:
                event._value = None
                self._event_pool.append(event)

    def run(self, until: Optional[int] = None) -> None:
        """Run until the queue drains or the clock passes *until* ticks.

        If a process dies with an unhandled exception and no other process
        is waiting on it, the exception propagates out of ``run()``.

        When a tracer is installed (:mod:`repro.trace`) the whole run is
        wrapped in one ``engine.run`` span — never the per-event loop,
        which stays untouched.
        """
        from repro import trace

        tracer = trace.active()
        if tracer is None:
            return self._run_loop(until)
        with tracer.span("engine.run", track="kernel",
                         pending=len(self._queue)):
            return self._run_loop(until)

    def _run_loop(self, until: Optional[int] = None) -> None:
        """The actual event loop (see :meth:`run`).

        The loop body is :meth:`step` inlined — the per-event bookkeeping
        is the simulator's hottest code, and the method call plus repeated
        attribute loads are measurable at millions of events.
        """
        if until is not None and until < self._now:
            raise SimError(f"until={until} is in the past (now={self._now})")
        global _active_kernel
        _active_kernel = self
        try:
            queue = self._queue
            pop = heapq.heappop
            timeout_pool = self._timeout_pool
            event_pool = self._event_pool
            pool_max = self._POOL_MAX
            while queue:
                if until is not None and queue[0][0] > until:
                    self._now = until
                    return
                when, _prio, _seq, event = pop(queue)
                self._now = when
                callbacks, event.callbacks = event.callbacks, None
                event._processed = True
                if callbacks:
                    for cb in callbacks:
                        cb(event)
                if self._crash is not None:
                    exc, self._crash = self._crash, None
                    raise exc
                # recycling: see step() for the reasoning
                cls = type(event)
                if cls is Timeout:
                    if len(timeout_pool) < pool_max and getrefcount(event) == 2:
                        event._value = None
                        timeout_pool.append(event)
                elif cls is Event:
                    if len(event_pool) < pool_max and getrefcount(event) == 2:
                        event._value = None
                        event_pool.append(event)
            if until is not None:
                self._now = until
        finally:
            _active_kernel = None
