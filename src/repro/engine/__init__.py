"""Discrete-event simulation kernel.

A small, dependency-free DES kernel in the style of SimPy: processes are
Python generators that ``yield`` events; the kernel owns a virtual clock
measured in integer **ticks** (we use time-base-register ticks throughout
the reproduction, matching the paper's reporting unit).

Public surface:

- :class:`~repro.engine.core.SimKernel` — event loop and clock.
- :class:`~repro.engine.core.Event`, :class:`~repro.engine.core.Timeout`,
  :class:`~repro.engine.core.Process` — waitables.
- :class:`~repro.engine.core.AllOf`, :class:`~repro.engine.core.AnyOf` —
  combinators.
- :class:`~repro.engine.resources.Resource`,
  :class:`~repro.engine.resources.Store`,
  :class:`~repro.engine.resources.Channel` — synchronisation primitives.
- :class:`~repro.engine.clock.TickClock` — tick/nanosecond conversions.
- :class:`~repro.engine.sched.HeapScheduler`,
  :class:`~repro.engine.sched.CalendarScheduler` — pluggable event
  schedulers (``SimKernel(scheduler=...)``, ``--scheduler`` on the CLI).
"""

from repro.engine.clock import TickClock
from repro.engine.core import (
    AllOf,
    AnyOf,
    Event,
    Interrupt,
    Process,
    SimError,
    SimKernel,
    Timeout,
    default_scheduler,
    set_default_scheduler,
)
from repro.engine.resources import Channel, Resource, Store
from repro.engine.sched import SCHEDULERS, CalendarScheduler, HeapScheduler

__all__ = [
    "AllOf",
    "AnyOf",
    "CalendarScheduler",
    "Channel",
    "Event",
    "HeapScheduler",
    "Interrupt",
    "Process",
    "Resource",
    "SCHEDULERS",
    "SimError",
    "SimKernel",
    "Store",
    "TickClock",
    "Timeout",
    "default_scheduler",
    "set_default_scheduler",
]
