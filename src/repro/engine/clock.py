"""Tick/time conversions.

The paper reports microbenchmark results in **time base register (TBR)
ticks** (a PowerPC register, read on the IBM System p machines).  All
simulated costs in this reproduction are integer tick counts; a
:class:`TickClock` fixes the tick frequency so results can also be reported
in nanoseconds or converted to bandwidths.
"""

from __future__ import annotations

from dataclasses import dataclass, field

#: ns→ticks memo cap per clock: figure runs use a small set of distinct
#: durations (fixed pipeline costs plus one value per message size), so
#: the cache stays tiny; the cap only guards pathological workloads.
_MEMO_MAX = 4096


@dataclass(frozen=True)
class TickClock:
    """A fixed-frequency tick clock.

    Parameters
    ----------
    ticks_per_us:
        Tick frequency expressed as ticks per microsecond.  The System p
        time base runs at 1/8 the CPU clock; for a 1.65 GHz CPU that is
        ~206 ticks/us.  We default to a round 200 ticks/us so numbers are
        easy to eyeball; presets override it per machine.
    """

    ticks_per_us: float = 200.0
    #: per-instance ns→ticks memo (ns_to_ticks is the hottest call in
    #: the simulator and mostly sees the same handful of fixed costs)
    _memo: dict = field(default_factory=dict, compare=False, repr=False)

    def ns_to_ticks(self, ns: float) -> int:
        """Convert nanoseconds to whole ticks (round half up, min 0)."""
        ticks = self._memo.get(ns)
        if ticks is not None:
            return ticks
        if ns < 0:
            raise ValueError(f"negative duration: {ns} ns")
        ticks = int(ns * self.ticks_per_us / 1000.0 + 0.5)
        if len(self._memo) < _MEMO_MAX:
            self._memo[ns] = ticks
        return ticks

    def us_to_ticks(self, us: float) -> int:
        """Convert microseconds to whole ticks."""
        return self.ns_to_ticks(us * 1000.0)

    def ticks_to_ns(self, ticks: int) -> float:
        """Convert ticks to nanoseconds."""
        if ticks < 0:
            raise ValueError(f"negative duration: {ticks} ticks")
        return ticks * 1000.0 / self.ticks_per_us

    def ticks_to_us(self, ticks: int) -> float:
        """Convert ticks to microseconds."""
        return self.ticks_to_ns(ticks) / 1000.0

    def bandwidth_mb_s(self, nbytes: int, ticks: int) -> float:
        """Bandwidth in MB/s (10^6 bytes/s, as IMB reports) for *nbytes*
        transferred in *ticks*."""
        if ticks <= 0:
            raise ValueError(f"non-positive duration: {ticks} ticks")
        seconds = self.ticks_to_ns(ticks) / 1e9
        return nbytes / 1e6 / seconds

    def ticks_for_bandwidth(self, nbytes: float, mb_s: float) -> int:
        """Ticks needed to move *nbytes* at *mb_s* MB/s (at least 1)."""
        if mb_s <= 0:
            raise ValueError(f"non-positive bandwidth: {mb_s} MB/s")
        ns = nbytes / (mb_s * 1e6) * 1e9
        return max(1, self.ns_to_ticks(ns))
