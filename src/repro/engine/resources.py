"""Synchronisation primitives built on the DES kernel.

- :class:`Resource` — a counted resource with FIFO request queue (used to
  model exclusive units such as the bus DMA engine or a doorbell register).
- :class:`Store` — a buffered FIFO of items with optional capacity (used
  for work queues and completion queues).
- :class:`Channel` — a message channel with optional filtering on receive
  (used for MPI message matching by ``(source, tag)``).
"""

from __future__ import annotations

from collections import deque
from typing import Any, Callable, Deque, Optional

from repro.engine.core import Event, SimError, SimKernel


class Resource:
    """A resource with *capacity* slots and FIFO granting.

    Usage inside a process::

        req = resource.request()
        yield req
        ...critical section...
        resource.release()
    """

    __slots__ = ("kernel", "capacity", "_in_use", "_waiters")

    def __init__(self, kernel: SimKernel, capacity: int = 1):
        if capacity < 1:
            raise SimError(f"Resource capacity must be >= 1, got {capacity}")
        self.kernel = kernel
        self.capacity = capacity
        self._in_use = 0
        self._waiters: Deque[Event] = deque()

    @property
    def in_use(self) -> int:
        """Number of currently held slots."""
        return self._in_use

    @property
    def queue_length(self) -> int:
        """Number of requests waiting for a slot."""
        return len(self._waiters)

    def request(self) -> Event:
        """Return an event that fires when a slot is granted."""
        ev = self.kernel.event()
        if self._in_use < self.capacity:
            self._in_use += 1
            ev.succeed()
        else:
            self._waiters.append(ev)
        return ev

    def try_acquire(self) -> bool:
        """Take a free slot synchronously; False when none is free.

        Equivalent to :meth:`request` succeeding immediately, minus the
        grant event — the caller continues in the same dispatch frame it
        would have resumed in, so uncontended acquisition costs no kernel
        event.  On False the caller must fall back to ``yield request()``
        (or queue a callback on it); the slot state is untouched.
        """
        if self._in_use < self.capacity:
            self._in_use += 1
            return True
        return False

    def release(self) -> None:
        """Release one held slot, granting the oldest live waiter.

        A queued request whose event has no callbacks was abandoned (its
        process was interrupted while waiting and will never take the
        grant); handing it the slot would leak the slot forever, so such
        requests are skipped.
        """
        if self._in_use <= 0:
            raise SimError("release() without a matching request()")
        while self._waiters:
            waiter = self._waiters.popleft()
            if waiter.callbacks:
                # hand the slot straight to the next live waiter
                waiter.succeed()
                return
        self._in_use -= 1


class Store:
    """A FIFO store of items with optional capacity.

    ``put(item)`` and ``get()`` both return events.  Puts block (stay
    untriggered) while the store is full; gets block while it is empty.
    """

    __slots__ = ("kernel", "capacity", "_items", "_getters", "_putters")

    def __init__(self, kernel: SimKernel, capacity: Optional[int] = None):
        if capacity is not None and capacity < 1:
            raise SimError(f"Store capacity must be >= 1, got {capacity}")
        self.kernel = kernel
        self.capacity = capacity
        self._items: Deque[Any] = deque()
        self._getters: Deque[Event] = deque()
        self._putters: Deque[tuple] = deque()

    def __len__(self) -> int:
        return len(self._items)

    @property
    def items(self) -> tuple:
        """Snapshot of queued items (oldest first)."""
        return tuple(self._items)

    def put(self, item: Any) -> Event:
        """Enqueue *item*; the returned event fires once it is accepted."""
        ev = self.kernel.event()
        if self.capacity is None or len(self._items) < self.capacity:
            self._items.append(item)
            ev.succeed()
            self._dispatch()
        else:
            self._putters.append((ev, item))
        return ev

    def put_nowait(self, item: Any) -> bool:
        """Enqueue *item* without creating a put event; False when full.

        The fire-and-forget half of :meth:`put`: producers that never
        wait on the put (work queues, completion queues) otherwise pay a
        kernel event per item whose only job is to be dispatched empty.
        Waiting getters are served exactly as :meth:`put` would serve
        them.  On False (store full) nothing is enqueued and the caller
        must fall back to ``put()`` to queue as a putter.
        """
        if self.capacity is not None and len(self._items) >= self.capacity:
            return False
        self._items.append(item)
        self._dispatch()
        return True

    def get(self) -> Event:
        """Dequeue an item; the returned event fires with the item."""
        ev = self.kernel.event()
        self._getters.append(ev)
        self._dispatch()
        return ev

    def try_get(self) -> Optional[Any]:
        """Non-blocking dequeue: the oldest item, or None when empty (or
        when waiting getters would race us for it)."""
        if self._getters or not self._items:
            return None
        item = self._items.popleft()
        while self._putters and (
            self.capacity is None or len(self._items) < self.capacity
        ):
            pev, pitem = self._putters.popleft()
            self._items.append(pitem)
            pev.succeed()
        return item

    def _dispatch(self) -> None:
        while self._getters and self._items:
            self._getters.popleft().succeed(self._items.popleft())
            while self._putters and (
                self.capacity is None or len(self._items) < self.capacity
            ):
                pev, pitem = self._putters.popleft()
                self._items.append(pitem)
                pev.succeed()


class Channel:
    """A message channel with filtered receive.

    Unlike :class:`Store`, receivers may pass a predicate; a message is
    delivered to the oldest receiver whose predicate accepts it.  This is
    the substrate for MPI-style ``(source, tag)`` matching: unmatched
    messages queue, unmatched receivers queue, and matching is performed
    whenever either side posts (posted-receive semantics).
    """

    __slots__ = ("kernel", "_messages", "_receivers")

    def __init__(self, kernel: SimKernel):
        self.kernel = kernel
        self._messages: Deque[Any] = deque()
        self._receivers: Deque[tuple] = deque()

    @property
    def pending_messages(self) -> int:
        """Messages waiting for a matching receiver (the unexpected queue)."""
        return len(self._messages)

    @property
    def pending_receivers(self) -> int:
        """Receivers waiting for a matching message (posted receives)."""
        return len(self._receivers)

    def send(self, message: Any) -> None:
        """Deliver *message* immediately to a matching waiting receiver,
        or queue it (the "unexpected message queue")."""
        for idx, (ev, predicate) in enumerate(self._receivers):
            if predicate is None or predicate(message):
                del self._receivers[idx]
                ev.succeed(message)
                return
        self._messages.append(message)

    def receive(self, predicate: Optional[Callable[[Any], bool]] = None) -> Event:
        """Return an event firing with the oldest message matching
        *predicate* (or any message when *predicate* is None)."""
        ev = self.kernel.event()
        for idx, message in enumerate(self._messages):
            if predicate is None or predicate(message):
                del self._messages[idx]
                ev.succeed(message)
                return ev
        self._receivers.append((ev, predicate))
        return ev
