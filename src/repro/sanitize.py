"""SimSan: continuous shadow-state sanitizers for the simulated stack.

The cross-layer auditor (:mod:`repro.audit`) proves invariants at
*snapshot boundaries*; the bug classes PR 4 fixed (pinned-MR eviction,
zero-byte WRs, str-subclass interning) all manifest **between**
boundaries and were invisible to it.  This module is the continuous
counterpart — ASAN/MSAN for the simulated allocators and verbs stack:
per-operation checks that fire *at the faulting access*, with the exact
address/key in hand.

Rule groups (``--sanitize=heap,mr,tlb,counter`` / ``REPRO_SANITIZE``):

``heap`` — shadow intervals over every outermost allocation of
:class:`repro.alloc.base.Allocator` (libc and the hugepage library),
with freed ranges quarantined until the allocator reuses them:

- ``heap.use-after-free`` — an access overlaps a freed allocation.
- ``heap.double-free`` — ``free()`` of a quarantined pointer.
- ``heap.out-of-bounds`` — an access starts inside a live allocation
  and runs past its requested size.
- ``heap.redzone-touch`` — an access starts in the redzone (the
  allocator-metadata bytes just past a live allocation's end).
- ``heap.overlap`` — the allocator handed out memory overlapping a
  live allocation (allocator bug, not application bug).

``mr`` — rkey/lkey lifetime tracking mirroring every registration:

- ``mr.use-after-dereg`` — a posted SGE or an inbound RDMA resolves a
  key whose region was deregistered (checked at ``post_send``/rx time,
  not at the next snapshot).
- ``mr.duplicate-registration`` — two *live* registrations of the
  identical range in one address space.  Mere overlap is **legal**: the
  lazy-dereg registration cache keeps MRs over ranges the application
  has freed, and a later wider registration may overlap them.
- ``mr.unmapped-frame`` / ``mr.unpinned-page`` — a DMA walks a page of
  a live MR that has lost its mapping or its pin (the adapter's ATT
  would point at a stale frame).
- ``att.stale-entry`` / ``att.out-of-range`` — the ATT cache is asked
  to translate through an entry of a dead region, or an entry index
  past the region's uploaded translation count.

``tlb`` — page-table/TLB consistency at each translated access:

- ``tlb.stale-translation`` — a cached VMA translation holds an entry
  object that is no longer the live leaf PTE.
- ``tlb.unbacked-frame`` — a PTE's frame is misaligned or outside
  physical memory.
- ``tlb.dangling-entry`` — the TLB holds a virtual page with no PTE.
- ``tlb.unmapped-range`` — an access shape touches unmapped memory.

``counter`` — ``counter.float-amount``: a non-integer amount entering a
:class:`~repro.analysis.counters.CounterSet` (floats drift across
platforms and break byte-identical reports; see ``tools/detlint.py``
for the static version of this rule).

The enablement pattern is :mod:`repro.trace`'s: a module-level
``_active`` handle, hook sites paying one attribute read + ``None``
check when sanitizing is off, and :func:`capturing` for scoped
installs.  Sanitizers only *read* model state (plus their own shadow)
and never touch clocks, RNG streams or counters, so a clean sanitized
run is **byte-identical** to an unsanitized one — pinned by hypothesis
tests in ``tests/test_sanitize.py``.

Violations raise :class:`SanitizerError` carrying the rule id, the
faulting address/key and a context dict; when a tracer is installed a
``sanitize.violation`` instant is emitted first, so the report links
into the Chrome trace timeline at the exact simulated tick (see
``docs/static_analysis.md``).
"""

from __future__ import annotations

from bisect import bisect_right, insort
from contextlib import contextmanager
from typing import Any, Dict, Iterator, List, Optional, Tuple

from repro import trace

#: rule groups accepted by :func:`parse_rules`
RULE_GROUPS = ("heap", "mr", "tlb", "counter")

#: bytes just past a live allocation treated as allocator metadata
#: (libc's boundary-tag header is 16 bytes; the chunk freelist's
#: metadata is out-of-band but freed-neighbour reuse gives the same
#: hazard window)
REDZONE_BYTES = 16

#: the installed sanitizer, or None (sanitizing disabled).  Module-level
#: so hook sites pay one attribute read + None check when off.
_active: Optional["Sanitizer"] = None


def active() -> Optional["Sanitizer"]:
    """The installed :class:`Sanitizer`, or None when disabled."""
    return _active


def install(sanitizer: "Sanitizer") -> None:
    """Install *sanitizer* as the process-wide sanitizer."""
    global _active
    _active = sanitizer


def uninstall() -> None:
    """Disable sanitizing."""
    global _active
    _active = None


@contextmanager
def capturing(sanitizer: "Sanitizer") -> Iterator["Sanitizer"]:
    """Install *sanitizer* for the duration of a ``with`` block."""
    global _active
    prior = _active
    _active = sanitizer
    try:
        yield sanitizer
    finally:
        _active = prior


def parse_rules(spec: Optional[str]) -> Tuple[str, ...]:
    """Parse a ``--sanitize``/``REPRO_SANITIZE`` value into rule groups.

    ``None``, ``""``, ``"1"``, ``"true"``, ``"on"`` and ``"all"`` mean
    every group; otherwise a comma-separated subset of
    :data:`RULE_GROUPS`.
    """
    if spec is None or spec.strip().lower() in ("", "1", "true", "yes", "on", "all"):
        return RULE_GROUPS
    groups: List[str] = []
    for part in spec.split(","):
        name = part.strip().lower()
        if not name:
            continue
        if name not in RULE_GROUPS:
            raise ValueError(
                f"unknown sanitizer group {name!r} "
                f"(choose from {', '.join(RULE_GROUPS)})"
            )
        if name not in groups:
            groups.append(name)
    if not groups:
        return RULE_GROUPS
    return tuple(groups)


class SanitizerError(Exception):
    """A sanitizer rule fired.

    Attributes
    ----------
    rule: the rule id (``"heap.use-after-free"``, ``"mr.use-after-dereg"``…).
    address: faulting virtual address, when the rule has one.
    key: faulting lkey/rkey/mr_id, when the rule has one.
    tick: simulated tick of the faulting operation (0 when no tracer
        clock is attached).
    context: extra structured detail (sizes, page addresses, op names).
    """

    def __init__(self, rule: str, message: str, *,
                 address: Optional[int] = None, key: Optional[int] = None,
                 tick: int = 0,
                 context: Optional[Dict[str, Any]] = None) -> None:
        self.rule = rule
        self.address = address
        self.key = key
        self.tick = tick
        self.context = context if context is not None else {}
        super().__init__(message)

    def __str__(self) -> str:
        parts = [f"sanitize[{self.rule}]: {self.args[0]}"]
        if self.address is not None:
            parts.append(f"address={self.address:#x}")
        if self.key is not None:
            parts.append(f"key={self.key:#x}")
        if self.tick:
            parts.append(f"tick={self.tick}")
        for name, value in sorted(self.context.items()):
            parts.append(f"{name}={value}")
        return " ".join(parts)


class _Alloc:
    """One shadow interval: an allocation the application made."""

    __slots__ = ("start", "size", "free", "allocator")

    def __init__(self, start: int, size: int, allocator: str) -> None:
        self.start = start
        self.size = size
        self.free = False
        self.allocator = allocator

    @property
    def end(self) -> int:
        return self.start + self.size


class _HeapShadow:
    """Shadow intervals of one address space's heap allocations."""

    __slots__ = ("starts", "recs")

    def __init__(self) -> None:
        #: sorted allocation start addresses (live and quarantined)
        self.starts: List[int] = []
        self.recs: Dict[int, _Alloc] = {}


class _MRShadow:
    """Lifetime record of one registration (kept after dereg)."""

    __slots__ = ("mr_id", "lkey", "rkey", "vaddr", "length", "n_entries",
                 "aspace", "registered")

    def __init__(self, mr: Any, aspace: Any) -> None:
        self.mr_id = mr.mr_id
        self.lkey = mr.lkey
        self.rkey = mr.rkey
        self.vaddr = mr.vaddr
        self.length = mr.length
        self.n_entries = mr.n_entries
        self.aspace = aspace
        self.registered = True


class Sanitizer:
    """Shadow-state checker; see the module docstring for the rules.

    One sanitizer is single-run state, like a
    :class:`~repro.trace.Tracer`: install one per run with
    :func:`capturing`.  ``checks`` counts performed checks per group —
    sanitizer-internal bookkeeping, deliberately **not** part of any
    cluster :class:`~repro.analysis.counters.CounterSet` (which would
    break byte-identity with unsanitized runs).
    """

    def __init__(self, groups: Tuple[str, ...] = RULE_GROUPS) -> None:
        for group in groups:
            if group not in RULE_GROUPS:
                raise ValueError(f"unknown sanitizer group {group!r}")
        self.groups = tuple(groups)
        self.heap = "heap" in groups
        self.mr = "mr" in groups
        self.tlb = "tlb" in groups
        self.counter = "counter" in groups
        self.checks: Dict[str, int] = {g: 0 for g in RULE_GROUPS}
        self._heaps: Dict[int, Tuple[Any, _HeapShadow]] = {}
        self._mrs: Dict[int, _MRShadow] = {}
        self._by_lkey: Dict[int, _MRShadow] = {}
        self._by_rkey: Dict[int, _MRShadow] = {}
        #: allocator-call nesting depth: the hugepage library delegates
        #: small requests to libc through the *public* malloc/free, and
        #: only the outermost call is the application's allocation
        self._heap_depth = 0

    # -- violation reporting ------------------------------------------------

    def _violate(self, rule: str, message: str, *,
                 address: Optional[int] = None, key: Optional[int] = None,
                 **context: Any) -> None:
        tick = 0
        tracer = trace.active()
        if tracer is not None:
            tick = tracer._now()
            attrs = dict(context)
            if address is not None:
                attrs["address"] = address
            if key is not None:
                attrs["key"] = key
            tracer.instant("sanitize.violation", track="sanitize",
                           rule=rule, **attrs)
        raise SanitizerError(rule, message, address=address, key=key,
                             tick=tick, context=context)

    def report(self) -> str:
        """One-line per-group summary of checks performed."""
        done = ", ".join(f"{g}={self.checks[g]}" for g in self.groups)
        return f"sanitize: clean ({done} checks)"

    # -- heap shadow --------------------------------------------------------

    def _heap_shadow(self, aspace: Any) -> _HeapShadow:
        entry = self._heaps.get(id(aspace))
        if entry is None:
            # keyed by id() for speed; the aspace reference keeps the
            # object alive so ids cannot be recycled under us
            entry = self._heaps[id(aspace)] = (aspace, _HeapShadow())
        return entry[1]

    def on_malloc(self, allocator: Any, vaddr: int, size: int) -> None:
        """Record an outermost allocation; flags ``heap.overlap``."""
        if self._heap_depth:
            return  # inner delegation (hugepage lib -> libc): not an app alloc
        self.checks["heap"] += 1
        aspace = getattr(allocator, "aspace", None)
        if aspace is None:  # pragma: no cover - all repo allocators have one
            return
        shadow = self._heap_shadow(aspace)
        starts, recs = shadow.starts, shadow.recs
        end = vaddr + size
        # evict quarantined intervals the allocator is reusing (a partial
        # reuse drops the whole freed record's quarantine); a *live*
        # overlap means the allocator handed out the same bytes twice
        doomed: List[int] = []
        i = bisect_right(starts, vaddr) - 1
        j = i if i >= 0 else 0
        while j < len(starts) and starts[j] < end:
            rec = recs[starts[j]]
            if rec.end > vaddr and rec.start < end:
                if not rec.free:
                    who = getattr(allocator, "name",
                                  type(allocator).__name__)
                    self._violate(
                        "heap.overlap",
                        f"{who} returned [{vaddr:#x}+{size}] "
                        f"overlapping live allocation "
                        f"[{rec.start:#x}+{rec.size}]",
                        address=vaddr, overlaps=rec.start, size=size,
                    )
                doomed.append(rec.start)
            j += 1
        for start in doomed:
            del recs[start]
            starts.remove(start)
        rec = _Alloc(vaddr, size,
                     getattr(allocator, "name", type(allocator).__name__))
        recs[vaddr] = rec
        insort(starts, vaddr)

    def on_free(self, allocator: Any, vaddr: int) -> None:
        """Check + record an outermost free; flags ``heap.double-free``."""
        if self._heap_depth:
            return
        self.checks["heap"] += 1
        aspace = getattr(allocator, "aspace", None)
        if aspace is None:  # pragma: no cover - all repo allocators have one
            return
        rec = self._heap_shadow(aspace).recs.get(vaddr)
        if rec is None:
            return  # allocated before the sanitizer was installed
        if rec.free:
            self._violate(
                "heap.double-free",
                f"free() of already-freed [{vaddr:#x}+{rec.size}] "
                f"({rec.allocator})",
                address=vaddr, size=rec.size,
            )
        rec.free = True

    def check_heap_access(self, aspace: Any, vaddr: int, nbytes: int,
                          op: str) -> None:
        """Validate one access shape against the shadow intervals."""
        self.checks["heap"] += 1
        entry = self._heaps.get(id(aspace))
        if entry is None:
            return
        shadow = entry[1]
        starts, recs = shadow.starts, shadow.recs
        end = vaddr + nbytes
        i = bisect_right(starts, vaddr) - 1
        if i >= 0:
            rec = recs[starts[i]]
            if vaddr < rec.end:  # access starts inside this allocation
                if rec.free:
                    self._violate(
                        "heap.use-after-free",
                        f"{nbytes}-byte {op} inside freed "
                        f"[{rec.start:#x}+{rec.size}] ({rec.allocator})",
                        address=vaddr, size=nbytes, op=op,
                    )
                if end > rec.end:
                    self._violate(
                        "heap.out-of-bounds",
                        f"{nbytes}-byte {op} at {vaddr:#x} runs "
                        f"{end - rec.end} bytes past "
                        f"[{rec.start:#x}+{rec.size}] ({rec.allocator})",
                        address=rec.end, size=nbytes, op=op,
                    )
                return  # wholly inside one live allocation
            if not rec.free and vaddr < rec.end + REDZONE_BYTES:
                self._violate(
                    "heap.redzone-touch",
                    f"{nbytes}-byte {op} at {vaddr:#x} in the redzone of "
                    f"[{rec.start:#x}+{rec.size}] ({rec.allocator})",
                    address=vaddr, size=nbytes, op=op,
                )
        # freed intervals that start inside the accessed range
        j = i + 1
        while j < len(starts) and starts[j] < end:
            rec = recs[starts[j]]
            if rec.free:
                self._violate(
                    "heap.use-after-free",
                    f"{nbytes}-byte {op} at {vaddr:#x} overlaps freed "
                    f"[{rec.start:#x}+{rec.size}] ({rec.allocator})",
                    address=rec.start, size=nbytes, op=op,
                )
            j += 1

    # -- TLB / page-table consistency ---------------------------------------

    def check_translations(self, engine: Any, vaddr: int, nbytes: int,
                           op: str) -> None:
        """Validate every translation an access shape walks through."""
        from repro.mem.paging import TranslationFault
        from repro.mem.physical import PAGE_2M, PAGE_4K

        self.checks["tlb"] += 1
        aspace = engine.address_space
        table = aspace.page_table
        total = aspace.physical.total_bytes
        try:
            for entry in table.pages_in_range(vaddr, nbytes):
                paddr = entry.paddr
                if paddr < 0 or paddr + entry.page_size > total \
                        or paddr % entry.page_size:
                    self._violate(
                        "tlb.unbacked-frame",
                        f"PTE {entry.vaddr:#x} points at frame "
                        f"{paddr:#x} outside/misaligned in physical "
                        f"memory ({total} bytes)",
                        address=entry.vaddr, frame=paddr, op=op,
                    )
        except TranslationFault as fault:
            fault_vaddr = getattr(fault, "vaddr", vaddr)
            arrays = getattr(engine.tlb, "_arrays", {})
            for page_size in (PAGE_4K, PAGE_2M):
                base = fault_vaddr - fault_vaddr % page_size
                if base in arrays.get(page_size, ()):
                    self._violate(
                        "tlb.dangling-entry",
                        f"TLB holds {base:#x} ({page_size}-byte page) "
                        f"but the page table has no PTE for it",
                        address=base, op=op,
                    )
            self._violate(
                "tlb.unmapped-range",
                f"{nbytes}-byte {op} at {vaddr:#x} touches unmapped "
                f"address {fault_vaddr:#x}",
                address=fault_vaddr, size=nbytes, op=op,
            )
        # the cached VMA translations (the fast path's view) must agree
        # with the live page table entry-for-entry
        run = aspace.translation_run(vaddr, nbytes)
        if run is not None:
            xlate, first, last = run
            leaf = table.leaf_table(xlate.page_size)
            for entry in xlate.entries[first:last + 1]:
                if leaf.get(entry.vaddr) is not entry:
                    self._violate(
                        "tlb.stale-translation",
                        f"cached translation for {entry.vaddr:#x} is not "
                        f"the live page-table entry",
                        address=entry.vaddr, op=op,
                    )

    def check_access(self, engine: Any, vaddr: int, nbytes: int,
                     op: str) -> None:
        """The per-access hook: heap + TLB checks as enabled."""
        if self.heap:
            self.check_heap_access(engine.address_space, vaddr, nbytes, op)
        if self.tlb:
            self.check_translations(engine, vaddr, nbytes, op)

    # -- MR / ATT lifetimes -------------------------------------------------

    def on_register(self, mr: Any, aspace: Any) -> None:
        """Record a registration; flags ``mr.duplicate-registration``."""
        self.checks["mr"] += 1
        for rec in self._mrs.values():
            if (rec.registered and rec.aspace is aspace
                    and rec.vaddr == mr.vaddr and rec.length == mr.length):
                self._violate(
                    "mr.duplicate-registration",
                    f"[{mr.vaddr:#x}+{mr.length}] is already registered "
                    f"as MR {rec.mr_id} (new MR {mr.mr_id})",
                    address=mr.vaddr, key=mr.mr_id, duplicate_of=rec.mr_id,
                )
        shadow = _MRShadow(mr, aspace)
        self._mrs[mr.mr_id] = shadow
        self._by_lkey[mr.lkey] = shadow
        self._by_rkey[mr.rkey] = shadow

    def on_deregister(self, mr: Any) -> None:
        """Mark a registration dead (the record is kept: dead keys are
        what ``mr.use-after-dereg`` recognises)."""
        self.checks["mr"] += 1
        rec = self._mrs.get(mr.mr_id)
        if rec is not None:
            rec.registered = False

    def check_lkey(self, mr: Any, lkey: int, op: str) -> None:
        """Flag a local key whose region was deregistered."""
        self.checks["mr"] += 1
        if mr is not None and mr.registered:
            return
        rec = self._by_lkey.get(lkey)
        if rec is not None and not rec.registered:
            self._violate(
                "mr.use-after-dereg",
                f"{op} uses lkey {lkey:#x} of deregistered MR "
                f"{rec.mr_id} [{rec.vaddr:#x}+{rec.length}]",
                address=rec.vaddr, key=lkey, mr_id=rec.mr_id, op=op,
            )

    def check_rkey(self, mr: Any, rkey: int, addr: int, nbytes: int,
                   op: str) -> None:
        """Flag a remote key whose region was deregistered (at rx time,
        before the HCA quietly answers remote-access-error)."""
        self.checks["mr"] += 1
        if mr is not None and mr.registered:
            if mr.contains(addr, nbytes):
                self.check_dma(mr, addr, nbytes, op)
            return
        rec = self._by_rkey.get(rkey)
        if rec is not None and not rec.registered:
            self._violate(
                "mr.use-after-dereg",
                f"{op} targets rkey {rkey:#x} of deregistered MR "
                f"{rec.mr_id} [{rec.vaddr:#x}+{rec.length}]",
                address=addr, key=rkey, mr_id=rec.mr_id, op=op,
            )

    def check_dma(self, mr: Any, addr: int, nbytes: int, op: str) -> None:
        """A DMA over a live MR: every page must still be mapped and
        pinned (otherwise the adapter's translations point at frames the
        OS may have reused)."""
        from repro.mem.paging import TranslationFault

        self.checks["mr"] += 1
        if nbytes <= 0:
            return
        rec = self._mrs.get(mr.mr_id)
        if rec is None or rec.aspace is None:
            return  # registered before the sanitizer was installed
        try:
            for page in rec.aspace.page_table.pages_in_range(addr, nbytes):
                if page.pin_count < 1:
                    self._violate(
                        "mr.unpinned-page",
                        f"{op} DMA walks page {page.vaddr:#x} of MR "
                        f"{mr.mr_id} whose pin count is {page.pin_count}",
                        address=page.vaddr, key=mr.mr_id, op=op,
                    )
        except TranslationFault as fault:
            fault_vaddr = getattr(fault, "vaddr", addr)
            self._violate(
                "mr.unmapped-frame",
                f"{op} DMA over MR {mr.mr_id} touches unmapped address "
                f"{fault_vaddr:#x} (mapping dropped under a live "
                f"registration)",
                address=fault_vaddr, key=mr.mr_id, op=op,
            )

    def check_att(self, mr_id: int, first_entry: int, n_entries: int) -> None:
        """An ATT translation must belong to a live region and stay
        inside its uploaded entry count."""
        self.checks["mr"] += 1
        rec = self._mrs.get(mr_id)
        if rec is None:
            return  # registered before the sanitizer was installed
        if not rec.registered:
            self._violate(
                "att.stale-entry",
                f"ATT translates entry {first_entry} of deregistered MR "
                f"{mr_id} [{rec.vaddr:#x}+{rec.length}]",
                address=rec.vaddr, key=mr_id, entry=first_entry,
            )
        if first_entry < 0 or first_entry + n_entries > rec.n_entries:
            self._violate(
                "att.out-of-range",
                f"ATT entry range [{first_entry}, "
                f"{first_entry + n_entries}) exceeds MR {mr_id}'s "
                f"{rec.n_entries} uploaded entries",
                key=mr_id, entry=first_entry, n_entries=rec.n_entries,
            )

    # -- counter integrity --------------------------------------------------

    def check_amount(self, name: str, amount: Any) -> None:
        """Flag non-integral counter increments (``counter.float-amount``)."""
        self.checks["counter"] += 1
        if not isinstance(amount, int):
            self._violate(
                "counter.float-amount",
                f"counter {str(name)!r} incremented by non-int "
                f"{amount!r} ({type(amount).__name__})",
                counter=str(name), amount=repr(amount),
            )
