"""The fast-path switch: batched/closed-form costing vs reference loops.

The simulator keeps two implementations of every hot costing routine:

- a **reference path** that walks structures element by element (per
  cache line, per page, per translation entry) through the stateful
  hardware models — simple to audit, and the behaviour every test and
  figure was originally validated against;
- a **fast path** that computes the same result in bulk: LRU sweeps are
  replayed with set arithmetic instead of per-key method calls, page
  walks come from a per-VMA translation cache, and counters are updated
  once per phase instead of once per element.

Both paths are required to be *equivalent*: identical reported ticks,
identical counter values, identical model state afterwards (TLB/cache/
ATT residency, LRU order, pin counts).  ``tests/test_fastpath_
equivalence.py`` enforces this property-style; ``docs/performance.md``
documents the contract.

This module owns the global toggle.  The fast path is ON by default;
it can be disabled

- programmatically: :func:`set_enabled` / :func:`disabled`,
- from the CLI: every ``repro`` command accepts ``--no-fastpath``,
- from the environment: ``REPRO_NO_FASTPATH=1``.

The flag is read through :func:`enabled` on every fast-path entry, so
flipping it mid-run is safe (each phase is costed wholly on one path).
"""

from __future__ import annotations

import os
from contextlib import contextmanager
from typing import Iterator

_enabled: bool = os.environ.get("REPRO_NO_FASTPATH", "").strip().lower() not in (
    "1",
    "true",
    "yes",
    "on",
)


def enabled() -> bool:
    """True while the batched fast paths are active."""
    return _enabled


def set_enabled(flag: bool) -> None:
    """Turn the fast paths on or off globally."""
    global _enabled
    _enabled = bool(flag)


@contextmanager
def disabled() -> Iterator[None]:
    """Context manager: run the body on the reference paths."""
    global _enabled
    prior = _enabled
    _enabled = False
    try:
        yield
    finally:
        _enabled = prior


@contextmanager
def forced(flag: bool) -> Iterator[None]:
    """Context manager: pin the fast-path switch to *flag* for the body."""
    global _enabled
    prior = _enabled
    _enabled = bool(flag)
    try:
        yield
    finally:
        _enabled = prior


# ---------------------------------------------------------------------------
# the event-fold switch
#
# Orthogonal to the costing switch above: folding replaces the adapter's
# per-message generator processes with equivalent callback chains (see
# ``repro.ib.hca``), cutting kernel events and generator resumes without
# changing a single cost formula.  It is therefore active on BOTH costing
# paths AND under the sanitizer (its hooks are synchronous calls the
# fold chains make too); this switch exists so equivalence tests (and
# debugging) can pin a run onto the per-hop process machinery that
# folding replaces.  Tracing (per message) and fault plans (per HCA)
# pin that machinery on their own — the fold has no span sites and no
# per-packet decision points; this is the global override.
# ---------------------------------------------------------------------------

_fold: bool = os.environ.get("REPRO_NO_FOLD", "").strip().lower() not in (
    "1",
    "true",
    "yes",
    "on",
)


def fold_enabled() -> bool:
    """True while the adapter event folds are allowed."""
    return _fold


def set_fold(flag: bool) -> None:
    """Turn the adapter event folds on or off globally."""
    global _fold
    _fold = bool(flag)


@contextmanager
def fold_forced(flag: bool) -> Iterator[None]:
    """Context manager: pin the fold switch to *flag* for the body."""
    global _fold
    prior = _fold
    _fold = bool(flag)
    try:
        yield
    finally:
        _fold = prior


def lru_sweep(array: "dict", first_key: int, n_keys: int, stride: int, capacity: int):
    """Replay a sequential LRU sweep in bulk; returns ``(hits, misses)``.

    *array* is an ``OrderedDict``-like LRU map (front = least recently
    used) whose integer keys are compared against the arithmetic key
    sequence ``first_key, first_key + stride, ...`` (*n_keys* keys).
    The replay is **exact**: hit/miss totals and the final content *and
    order* of *array* match a key-by-key replay of::

        for key in keys:
            if key in array: array.move_to_end(key)          # hit
            else:                                            # miss
                while len(array) >= capacity: array.popitem(last=False)
                array[key] = True

    The common cases (no swept key resident; every swept key resident)
    cost ``O(len(array))`` / ``O(n_keys bounded by capacity)`` instead
    of ``O(n_keys)`` dict traffic; mixed residency falls back to an
    in-line exact replay.
    """
    end = first_key + n_keys * stride
    resident = 0
    if len(array) <= n_keys:
        for key in array:
            if first_key <= key < end and (key - first_key) % stride == 0:
                resident += 1
    else:
        for key in range(first_key, end, stride):
            if key in array:
                resident += 1
    if resident == 0:
        # all misses: survivors of the old content, then the new keys
        # (inserted via dict.fromkeys/update so the per-key loop runs in C)
        if n_keys >= capacity:
            array.clear()
            array.update(dict.fromkeys(range(end - capacity * stride, end, stride), True))
        else:
            overflow = len(array) + n_keys - capacity
            for _ in range(overflow if overflow > 0 else 0):
                array.popitem(last=False)
            array.update(dict.fromkeys(range(first_key, end, stride), True))
        return 0, n_keys
    if resident == n_keys:
        # all hits: no insertions, so no evictions — refresh LRU order
        for key in range(first_key, end, stride):
            array.move_to_end(key)
        return n_keys, 0
    # Repeated long sweep: the array holds exactly the *last* `capacity`
    # sweep keys in sweep order (the state any >=capacity sweep leaves
    # behind).  With n >= 2*capacity every one of those residents is
    # evicted before the cursor reaches it — the first (n - capacity)
    # misses each evict the oldest entry, and n - capacity >= capacity
    # drains the whole array — so the sweep is all misses and ends in the
    # same state it started in.  O(capacity) instead of an O(n) replay.
    if (
        resident == capacity
        and len(array) == capacity
        and n_keys >= 2 * capacity
    ):
        tail = end - capacity * stride
        if all(key == expect for key, expect in zip(array, range(tail, end, stride))):
            # the replay re-inserts those same keys in the same order:
            # the array is already in its final state
            return 0, n_keys
    # mixed residency: exact in-line replay (no per-key method calls)
    hits = 0
    pop = array.popitem
    move = array.move_to_end
    for key in range(first_key, end, stride):
        if key in array:
            move(key)
            hits += 1
        else:
            while len(array) >= capacity:
                pop(last=False)
            array[key] = True
    return hits, n_keys - hits
