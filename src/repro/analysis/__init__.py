"""Measurement support: PAPI-like counters, report formatting, and
communication-cost breakdowns."""

from repro.analysis.counters import CounterSet
from repro.analysis.report import Table, degradation_report, format_series

__all__ = ["CounterSet", "Table", "degradation_report", "format_series"]


def __getattr__(name: str) -> object:
    # breakdown pulls in repro.systems; import lazily to avoid a cycle
    if name in ("MessageBreakdown", "breakdown_rdma_message",
                "placement_comparison"):
        from repro.analysis import breakdown

        return getattr(breakdown, name)
    raise AttributeError(name)
