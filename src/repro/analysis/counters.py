"""PAPI-like performance counters.

The paper instruments an Opteron with PAPI to read hardware performance
counters (notably TLB misses) while running the NAS benchmarks.  Our
simulated hardware publishes its counters through :class:`CounterSet`, a
small hierarchical counter registry: every component (TLB, caches, ATT,
allocators, protocol engines) increments named counters, and benchmarks
snapshot/diff them exactly like a PAPI harness would.
"""

from __future__ import annotations

from collections import defaultdict
from sys import intern
from typing import Dict, Iterable, Iterator, Mapping, Tuple

from repro import sanitize as _sanitize


class CounterSet:
    """A mutable mapping of counter name -> integer value.

    Names are dotted paths by convention (``"tlb.4k.miss"``,
    ``"att.fetch"``, ``"alloc.free_calls"``) so related counters can be
    grouped with :meth:`group`.

    Keys are interned on insertion: components increment the same small
    name set millions of times, and interning makes every later lookup a
    pointer comparison (and cross-set merges cheap) regardless of where
    the name string came from.

    Keys are normalised to exact ``str`` before interning: ``sys.intern``
    raises TypeError on ``str`` subclasses, and counter names routinely
    arrive from deserialisers (checkpoint restore, JSON plan files)
    whose string types are not guaranteed.  Without the normalisation a
    restored run crashes — or worse, stores a subclass key that compares
    equal to but is not the interned key an uninterrupted run stores.
    """

    __slots__ = ("_counts",)

    def __init__(self) -> None:
        self._counts: Dict[str, int] = defaultdict(int)

    def add(self, name: str, amount: int = 1) -> None:
        """Increment *name* by *amount* (may be negative for corrections)."""
        san = _sanitize._active
        if san is not None and san.counter:
            san.check_amount(name, amount)
        counts = self._counts
        if name not in counts:
            if type(name) is not str:
                name = str(name)
            name = intern(name)  # detlint: ignore[intern-str] — normalised above
        counts[name] += amount

    def add_many(self, pairs: Iterable[Tuple[str, int]]) -> None:
        """Apply several ``(name, amount)`` increments in one call."""
        san = _sanitize._active
        check = san is not None and san.counter
        counts = self._counts
        for name, amount in pairs:
            if check:
                san.check_amount(name, amount)
            if name not in counts:
                if type(name) is not str:
                    name = str(name)
                name = intern(name)  # detlint: ignore[intern-str] — normalised above
            counts[name] += amount

    def get(self, name: str, default: int = 0) -> int:
        """Current value of *name* (0 if never incremented)."""
        return self._counts.get(name, default)

    def __getitem__(self, name: str) -> int:
        return self._counts.get(name, 0)

    def __contains__(self, name: str) -> bool:
        return name in self._counts

    def __iter__(self) -> Iterator[Tuple[str, int]]:
        return iter(sorted(self._counts.items()))

    def __len__(self) -> int:
        return len(self._counts)

    def group(self, prefix: str) -> Dict[str, int]:
        """All counters whose name starts with ``prefix + '.'`` (or equals
        *prefix*), keyed by the remainder of the name."""
        out: Dict[str, int] = {}
        dotted = prefix + "."
        for name, value in self._counts.items():
            if name == prefix:
                out[""] = value
            elif name.startswith(dotted):
                out[name[len(dotted):]] = value
        return out

    def snapshot(self) -> Dict[str, int]:
        """A frozen copy of all counters, keys in sorted order (so
        snapshots — and every report built from one — diff cleanly
        across runs regardless of increment order)."""
        return dict(sorted(self._counts.items()))

    def restore(self, mapping: Mapping[str, int]) -> None:
        """Replace all counters with *mapping* (checkpoint restore).

        Restored keys intern to the same objects an uninterrupted run's
        :meth:`add` calls produce, so post-restore increments land on
        the same entries and :meth:`snapshot` is identical either way.
        """
        self._counts.clear()
        for name, value in mapping.items():
            if type(name) is not str:
                name = str(name)
            self._counts[intern(name)] = value  # detlint: ignore[intern-str] — normalised above

    def diff(self, baseline: Mapping[str, int]) -> Dict[str, int]:
        """Counters accumulated since *baseline* (a prior snapshot)."""
        out: Dict[str, int] = {}
        for name, value in self._counts.items():
            delta = value - baseline.get(name, 0)
            if delta:
                out[name] = delta
        return out

    def reset(self) -> None:
        """Zero every counter."""
        self._counts.clear()

    def merged_with(self, other: "CounterSet") -> Dict[str, int]:
        """Sum of this set and *other* (e.g. aggregating across ranks)."""
        out = dict(self._counts)
        for name, value in other._counts.items():
            out[name] = out.get(name, 0) + value
        return out
