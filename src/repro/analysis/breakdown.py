"""Communication-cost breakdowns: making the remaining bottlenecks visible.

§6 closes with "we believe that with a further analysis, remaining
bottlenecks can be made visible" — this module is that analysis tool.
It decomposes one message's end-to-end cost into the pipeline components
the simulator charges (post, registration, WQE fetch, gather, wire,
scatter, completion), using exactly the same cost models, so a user can
see *where* a configuration spends its time and what a placement change
would buy before running a full simulation.

The decomposition is analytic (steady-state, cold ATT for the page-count
dependent parts), so it is instantaneous; the simulator remains the
ground truth for contention effects.
"""

from __future__ import annotations

from dataclasses import dataclass, fields
from typing import Any, Dict, Optional

from repro.ib.hca import HCAConfig
from repro.mem.physical import PAGE_2M, PAGE_4K
from repro.systems.machine import MachineSpec


@dataclass(frozen=True)
class MessageBreakdown:
    """Per-component cost of one message (nanoseconds)."""

    post_ns: float
    registration_ns: float
    wqe_fetch_ns: float
    gather_ns: float
    wire_ns: float
    scatter_ns: float
    completion_ns: float

    @property
    def total_ns(self) -> float:
        """Sum of the serial components (upper bound: the simulator
        overlaps gather/wire/scatter)."""
        return sum(getattr(self, f.name) for f in fields(self))

    @property
    def critical_path_ns(self) -> float:
        """Pipeline estimate: overlapped gather/wire/scatter."""
        return (
            self.post_ns
            + self.registration_ns
            + self.wqe_fetch_ns
            + max(self.gather_ns, self.wire_ns, self.scatter_ns)
            + self.completion_ns
        )

    def fractions(self) -> Dict[str, float]:
        """Each component's share of the serial total."""
        total = self.total_ns
        if total <= 0:
            return {f.name: 0.0 for f in fields(self)}
        return {f.name: getattr(self, f.name) / total for f in fields(self)}

    def dominant(self) -> str:
        """The costliest component's name."""
        return max(fields(self), key=lambda f: getattr(self, f.name)).name


def breakdown_rdma_message(
    spec: MachineSpec,
    size: int,
    page_size: int = PAGE_4K,
    registration_cached: bool = False,
    att_warm: bool = False,
    hca: Optional[HCAConfig] = None,
) -> MessageBreakdown:
    """Decompose one RDMA-rendezvous message on machine *spec*.

    ``registration_cached`` models a lazy-deregistration hit (both
    sides); ``att_warm`` models a repeated transfer whose translations
    are resident (only possible when they fit the ATT cache).
    """
    if size <= 0:
        raise ValueError(f"message size must be positive, got {size}")
    if page_size not in (PAGE_4K, PAGE_2M):
        raise ValueError(f"unsupported page size {page_size}")
    hca = hca if hca is not None else spec.hca
    bus, link, reg, att = spec.bus, spec.link, spec.reg_costs, spec.att

    # post: WQE build + doorbell
    post = hca.post_base_ns + hca.post_per_sge_ns + bus.mmio_write_ns

    # registration (both sides), at the driver-visible entry granularity
    pages = max(1, (size + page_size - 1) // page_size)
    entries = pages if (spec.hugepage_aware_driver or page_size == PAGE_4K) \
        else pages * (PAGE_2M // PAGE_4K)
    if registration_cached:
        registration = 0.0
    else:
        pin = reg.per_4k_pin_ns if page_size == PAGE_4K else reg.per_2m_pin_ns
        one_side = (reg.base_ns + pages * (pin + reg.per_page_translate_ns)
                    + entries * reg.per_entry_upload_ns)
        registration = 2 * one_side

    wqe_bytes = 64 + 16
    wqe_fetch = bus.read_latency_ns + (
        (wqe_bytes + bus.burst_bytes - 1) // bus.burst_bytes
    ) * bus.burst_ns

    att_misses = 0 if (att_warm and entries <= att.entries) else entries
    att_stall = att_misses * att.fetch_ns

    stream_ns = size / bus.bandwidth_mb_s * 1e3
    bursts = (size + bus.burst_bytes - 1) // bus.burst_bytes
    gather = bus.dma_setup_ns + bursts * bus.burst_ns + stream_ns + att_stall

    packets = max(1, (size + link.mtu_bytes - 1) // link.mtu_bytes)
    wire = link.latency_ns + packets * link.packet_ns + \
        size / link.payload_mb_s * 1e3

    scatter = bus.dma_setup_ns + bursts * bus.burst_ns + stream_ns + att_stall

    completion = hca.process_ns + hca.cqe_write_ns + hca.poll_ns + \
        link.latency_ns  # the RC ack

    return MessageBreakdown(
        post_ns=post,
        registration_ns=registration,
        wqe_fetch_ns=wqe_fetch,
        gather_ns=gather,
        wire_ns=wire,
        scatter_ns=scatter,
        completion_ns=completion,
    )


def placement_comparison(
    spec: MachineSpec, size: int, registration_cached: bool = False
) -> Dict[str, MessageBreakdown]:
    """Breakdowns for the two placements side by side."""
    return {
        "4k": breakdown_rdma_message(spec, size, PAGE_4K,
                                     registration_cached=registration_cached),
        "2m": breakdown_rdma_message(spec, size, PAGE_2M,
                                     registration_cached=registration_cached),
    }


def phase_delta_table(tracer: Any, min_total: int = 0) -> str:
    """Render a traced run's per-phase counter-delta table.

    *tracer* is a :class:`repro.trace.Tracer` whose run has finished
    (and been flushed).  Rows are span names plus the
    ``(unattributed)`` bucket; columns are the counters that moved,
    widest-moving first, capped at six with the rest summed into an
    ``(other)`` column.  The column sums equal the run's final
    aggregate counter totals exactly — the property the trace tests
    pin — so this table is a faithful decomposition, not a sampling.
    Counters whose total moved *min_total* or less are folded into
    ``(other)``.
    """
    table = tracer.phase_table()
    totals = tracer.counter_totals()
    if not table:
        return "(no counter deltas traced)"
    ranked = sorted(totals, key=lambda k: (-abs(totals[k]), k))
    shown = [k for k in ranked if abs(totals[k]) > min_total][:6]
    other = [k for k in ranked if k not in shown]
    header = ["phase"] + shown + (["(other)"] if other else [])
    rows = []
    for phase, deltas in table.items():
        row = [phase] + [str(deltas.get(k, 0)) for k in shown]
        if other:
            row.append(str(sum(deltas.get(k, 0) for k in other)))
        rows.append(row)
    total_row = ["(total)"] + [str(totals.get(k, 0)) for k in shown]
    if other:
        total_row.append(str(sum(totals.get(k, 0) for k in other)))
    rows.append(total_row)
    widths = [max(len(header[i]), max(len(r[i]) for r in rows))
              for i in range(len(header))]
    lines = ["  ".join(h.ljust(widths[i]) for i, h in enumerate(header))]
    lines.append("  ".join("-" * w for w in widths))
    for row in rows:
        lines.append("  ".join(
            cell.ljust(widths[i]) if i == 0 else cell.rjust(widths[i])
            for i, cell in enumerate(row)
        ))
    return "\n".join(lines)
