"""ASCII table / series formatting for benchmark output.

The benchmark harness prints the same rows and series the paper's tables
and figures report; this module provides the small formatting helpers.
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Sequence, Union

Cell = Union[str, int, float, None]


def _fmt(cell: Cell) -> str:
    if cell is None:
        return "-"
    if isinstance(cell, float):
        if cell == 0:
            return "0"
        if abs(cell) >= 1000:
            return f"{cell:,.0f}"
        if abs(cell) >= 10:
            return f"{cell:.1f}"
        return f"{cell:.3f}"
    return str(cell)


class Table:
    """A fixed-column ASCII table.

    >>> t = Table(["size", "MB/s"], title="demo")
    >>> t.add_row([1024, 812.5])
    >>> print(t.render())  # doctest: +SKIP
    """

    def __init__(self, columns: Sequence[str], title: Optional[str] = None):
        if not columns:
            raise ValueError("Table needs at least one column")
        self.columns = list(columns)
        self.title = title
        self.rows: List[List[str]] = []

    def add_row(self, cells: Iterable[Cell]) -> None:
        """Append a row; cell count must match the column count."""
        row = [_fmt(c) for c in cells]
        if len(row) != len(self.columns):
            raise ValueError(
                f"row has {len(row)} cells, table has {len(self.columns)} columns"
            )
        self.rows.append(row)

    def render(self) -> str:
        """Render the table as ASCII art."""
        widths = [len(c) for c in self.columns]
        for row in self.rows:
            for i, cell in enumerate(row):
                widths[i] = max(widths[i], len(cell))
        sep = "+".join("-" * (w + 2) for w in widths)
        sep = f"+{sep}+"
        lines = []
        if self.title:
            lines.append(self.title)
        lines.append(sep)
        lines.append(
            "|" + "|".join(f" {c:<{w}} " for c, w in zip(self.columns, widths)) + "|"
        )
        lines.append(sep)
        for row in self.rows:
            lines.append(
                "|" + "|".join(f" {c:>{w}} " for c, w in zip(row, widths)) + "|"
            )
        lines.append(sep)
        return "\n".join(lines)


def format_series(
    name: str,
    xs: Sequence[Union[int, float]],
    ys: Sequence[Union[int, float]],
    x_label: str = "x",
    y_label: str = "y",
) -> str:
    """Format one figure series as aligned ``x y`` pairs (gnuplot-style)."""
    if len(xs) != len(ys):
        raise ValueError("xs and ys must have the same length")
    lines = [f"# series: {name}", f"# {x_label} {y_label}"]
    for x, y in zip(xs, ys):
        lines.append(f"{_fmt(x):>12} {_fmt(y):>14}")
    return "\n".join(lines)


def percent_change(before: float, after: float) -> float:
    """Improvement in percent going from *before* to *after* (positive =
    *after* is faster/smaller), as the paper reports it."""
    if before == 0:
        raise ValueError("before must be non-zero")
    return (before - after) / before * 100.0
