"""ASCII table / series formatting for benchmark output.

The benchmark harness prints the same rows and series the paper's tables
and figures report; this module provides the small formatting helpers.
"""

from __future__ import annotations

from typing import Any, Iterable, List, Mapping, Optional, Sequence, Union

Cell = Union[str, int, float, None]


def _fmt(cell: Cell) -> str:
    if cell is None:
        return "-"
    if isinstance(cell, float):
        if cell == 0:
            return "0"
        if abs(cell) >= 1000:
            return f"{cell:,.0f}"
        if abs(cell) >= 10:
            return f"{cell:.1f}"
        return f"{cell:.3f}"
    return str(cell)


class Table:
    """A fixed-column ASCII table.

    >>> t = Table(["size", "MB/s"], title="demo")
    >>> t.add_row([1024, 812.5])
    >>> print(t.render())  # doctest: +SKIP
    """

    def __init__(self, columns: Sequence[str],
                 title: Optional[str] = None) -> None:
        if not columns:
            raise ValueError("Table needs at least one column")
        self.columns = list(columns)
        self.title = title
        self.rows: List[List[str]] = []

    def add_row(self, cells: Iterable[Cell]) -> None:
        """Append a row; cell count must match the column count."""
        row = [_fmt(c) for c in cells]
        if len(row) != len(self.columns):
            raise ValueError(
                f"row has {len(row)} cells, table has {len(self.columns)} columns"
            )
        self.rows.append(row)

    def render(self) -> str:
        """Render the table as ASCII art."""
        widths = [len(c) for c in self.columns]
        for row in self.rows:
            for i, cell in enumerate(row):
                widths[i] = max(widths[i], len(cell))
        sep = "+".join("-" * (w + 2) for w in widths)
        sep = f"+{sep}+"
        lines = []
        if self.title:
            lines.append(self.title)
        lines.append(sep)
        lines.append(
            "|" + "|".join(f" {c:<{w}} " for c, w in zip(self.columns, widths)) + "|"
        )
        lines.append(sep)
        for row in self.rows:
            lines.append(
                "|" + "|".join(f" {c:>{w}} " for c, w in zip(row, widths)) + "|"
            )
        lines.append(sep)
        return "\n".join(lines)


def format_series(
    name: str,
    xs: Sequence[Union[int, float]],
    ys: Sequence[Union[int, float]],
    x_label: str = "x",
    y_label: str = "y",
) -> str:
    """Format one figure series as aligned ``x y`` pairs (gnuplot-style)."""
    if len(xs) != len(ys):
        raise ValueError("xs and ys must have the same length")
    lines = [f"# series: {name}", f"# {x_label} {y_label}"]
    for x, y in zip(xs, ys):
        lines.append(f"{_fmt(x):>12} {_fmt(y):>14}")
    return "\n".join(lines)


def percent_change(before: float, after: float) -> float:
    """Improvement in percent going from *before* to *after* (positive =
    *after* is faster/smaller), as the paper reports it."""
    if before == 0:
        raise ValueError("before must be non-zero")
    return (before - after) / before * 100.0


def batch_report(rows: Sequence[Mapping[str, Any]]) -> str:
    """Render the batch runner's degradation report.

    *rows* come from :meth:`repro.batch.supervisor.BatchSupervisor.
    report_rows`: one mapping per job with ``job``, ``command``,
    ``attempts``, ``retries``, ``crashes``, ``timeouts``, ``outcome``
    and ``cached`` keys.  Modeled on :func:`degradation_report`: the
    per-job table shows what was *attempted*, what was *recovered*
    (retries after crashes/timeouts) and what was *aborted* (permanent
    failures), with a WARNING line when any job failed for good.
    """
    table = Table(["job", "command", "attempts", "retries", "crashes",
                   "timeouts", "outcome"],
                  title="batch report")
    for row in rows:
        table.add_row([row["job"], row["command"], row["attempts"],
                       row["retries"], row["crashes"], row["timeouts"],
                       row["outcome"]])
    done = sum(1 for r in rows if str(r["outcome"]).startswith("done"))
    cached = sum(1 for r in rows if r.get("cached"))
    failed = sum(1 for r in rows if str(r["outcome"]).startswith("failed"))
    retries = sum(int(r["retries"]) for r in rows)
    crashes = sum(int(r["crashes"]) for r in rows)
    timeouts = sum(int(r["timeouts"]) for r in rows)
    lines = [table.render()]
    lines.append(
        f"batch: {len(rows)} job(s): {done} done ({cached} from the memo "
        f"cache), {failed} failed; {retries} retries, {crashes} worker "
        f"crash(es), {timeouts} timeout(s)"
    )
    if failed:
        lines.append(
            f"WARNING: {failed} job(s) failed permanently (retry budget "
            "exhausted); completed jobs kept their results — re-run with "
            "--resume to retry only the failures"
        )
    return "\n".join(lines)


def serve_report(rows: Sequence[Mapping[str, Any]],
                 counters: Mapping[str, int]) -> str:
    """Render the experiment service's shutdown report.

    *rows* are :meth:`repro.serve.state.ServeJob.as_dict` mappings
    (``id``, ``command``, ``attempts``, ``status``, ``cached``,
    optionally ``detail``); *counters* is the service's
    :meth:`~repro.analysis.counters.CounterSet.snapshot`.  Same shape
    as :func:`batch_report`, but statuses include ``rejected`` (never
    executed: expired deadline) and the summary line reports the
    admission-control outcomes alongside the execution ones.
    """
    table = Table(["job", "command", "attempts", "status", "detail"],
                  title="serve report")
    for row in rows:
        status = str(row["status"])
        if row.get("cached"):
            status += " (memo)"
        table.add_row([row["id"], row["command"], row["attempts"],
                       status, row.get("detail", "")])
    get = counters.get
    lines = [table.render()]
    lines.append(
        f"serve: {get('serve.submitted', 0)} admitted: "
        f"{get('serve.completed', 0)} done "
        f"({get('serve.memo_served', 0)} from the memo cache), "
        f"{get('serve.failed', 0)} failed, "
        f"{get('serve.rejected.deadline', 0)} rejected; "
        f"{get('serve.retries', 0)} retries, "
        f"{get('serve.crashes', 0)} worker crash(es), "
        f"{get('serve.timeouts', 0)} timeout(s), "
        f"{get('serve.disconnects', 0)} client disconnect(s)"
    )
    refused = (get("serve.rejected.backpressure", 0)
               + get("serve.rejected.client_cap", 0)
               + get("serve.rejected.draining", 0))
    if refused:
        lines.append(
            f"serve: {refused} admission(s) refused at the door "
            f"({get('serve.rejected.backpressure', 0)} backpressure, "
            f"{get('serve.rejected.client_cap', 0)} client cap, "
            f"{get('serve.rejected.draining', 0)} draining)"
        )
    corrupt = get("memo.corrupt", 0)
    if corrupt:
        lines.append(
            f"WARNING: {corrupt} corrupt memo entr(y/ies) detected and "
            "re-run — check the disk under results/"
        )
    return "\n".join(lines)


#: how each fault counter is classified in the degradation report
_INJECTED_PREFIXES = ("faults.link.dropped", "faults.link.corrupted",
                      "faults.reg.", "faults.mem.")
_RECOVERED_PREFIXES = ("faults.qp.retries", "faults.qp.rnr_naks",
                       "faults.qp.duplicates", "faults.qp.stale_acks",
                       "faults.link.rejected", "faults.regcache.")
_ABORTED_PREFIXES = ("faults.qp.retry_exhausted", "faults.qp.flushed")


def degradation_report(counters: Mapping[str, int],
                       clock: Optional[Any] = None) -> str:
    """Summarize a run's fault/degradation counters as an ASCII report.

    *counters* is a dotted-name → value mapping (a ``CounterSet``
    snapshot or :meth:`~repro.systems.machine.Cluster.
    aggregate_counters` output).  Counters are grouped into what was
    *injected* (faults that fired), what was *recovered* (retransmitted,
    retried, deduplicated), what was *aborted* (errors surfaced to the
    application) and how placement *degraded* (hugepage → base-page
    fallbacks).  Pass the cluster's *clock* to render recovery latency
    in microseconds.
    """
    fault_items = {
        name: value for name, value in sorted(counters.items())
        if name.startswith("faults.") or ".fallback" in name
    }
    if not any(fault_items.values()):
        return "degradation: no faults injected, no degraded modes entered"

    def classify(name: str) -> str:
        if ".fallback" in name:
            return "degraded"
        for prefix in _ABORTED_PREFIXES:
            if name.startswith(prefix):
                return "aborted"
        for prefix in _RECOVERED_PREFIXES:
            if name.startswith(prefix):
                return "recovered"
        for prefix in _INJECTED_PREFIXES:
            if name.startswith(prefix):
                return "injected"
        return "injected"

    table = Table(["class", "counter", "count"], title="degradation report")
    for phase in ("injected", "recovered", "aborted", "degraded"):
        for name, value in fault_items.items():
            if name == "faults.qp.recovery_ticks" or not value:
                continue
            if classify(name) == phase:
                table.add_row([phase, name, value])
    lines = [table.render()]
    recovery = fault_items.get("faults.qp.recovery_ticks", 0)
    retries = fault_items.get("faults.qp.retries", 0)
    if recovery and retries:
        if clock is not None:
            lines.append(
                f"recovery latency: {clock.ticks_to_us(recovery):.1f} us "
                f"total across {retries} retransmissions "
                f"({clock.ticks_to_us(recovery) / retries:.1f} us each)"
            )
        else:
            lines.append(
                f"recovery latency: {recovery} ticks total across "
                f"{retries} retransmissions"
            )
    aborted = sum(v for n, v in fault_items.items()
                  if classify(n) == "aborted")
    if aborted:
        lines.append(
            f"WARNING: {aborted} operation(s) aborted with error "
            "completions (retry budget exhausted or queue flushed)"
        )
    return "\n".join(lines)
