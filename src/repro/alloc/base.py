"""Allocator interface, statistics and cost model.

Every allocator charges simulated time for its own bookkeeping: freelist
node visits, header writes, syscalls, page population.  The paper measures
exactly this ("With Abinit, the time consumption of allocation/deallocation
functions is significantly lower with our library", §3.2), so allocator
work must be first-class simulated cost, not free.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import Dict, Optional

from repro import sanitize
from repro.analysis.counters import CounterSet
from repro.mem.physical import PAGE_2M, PAGE_4K


class AllocationError(Exception):
    """Raised on invalid allocator usage (double free, unknown pointer...)."""


@dataclass(frozen=True)
class AllocatorCostModel:
    """Per-operation costs in nanoseconds.

    The values follow the same order of magnitude as the era's hardware:
    a pointer-chase through allocator metadata costs a cache access, a
    syscall costs ~1 µs, populating a fresh page costs its zeroing.
    """

    #: visiting one freelist/bin node (pointer chase + compare)
    node_visit_ns: float = 6.0
    #: visiting one node of the paper's *cache-packed* freelist (§3.2
    #: item 3: metadata lives in a dense array, so traversal stays in cache)
    packed_node_visit_ns: float = 2.0
    #: writing a header/footer boundary tag
    header_ns: float = 8.0
    #: one mmap/brk/munmap syscall
    syscall_ns: float = 1100.0
    #: faulting in + zeroing one 4 KB page
    populate_4k_ns: float = 380.0
    #: faulting in + zeroing one 2 MB hugepage
    populate_2m_ns: float = 95_000.0
    #: zeroing cost per byte for calloc on already-populated memory
    zero_ns_per_byte: float = 0.08

    def populate_ns(self, page_size: int, n_pages: int) -> float:
        """Population cost for *n_pages* pages of *page_size*."""
        if page_size == PAGE_4K:
            return n_pages * self.populate_4k_ns
        if page_size == PAGE_2M:
            return n_pages * self.populate_2m_ns
        raise ValueError(f"unsupported page size {page_size}")


@dataclass
class AllocStats:
    """Aggregate statistics of an allocator instance."""

    mallocs: int = 0
    frees: int = 0
    reallocs: int = 0
    bytes_requested: int = 0
    current_bytes: int = 0
    peak_bytes: int = 0
    malloc_ns: float = 0.0
    free_ns: float = 0.0

    @property
    def total_ns(self) -> float:
        """All simulated time spent inside the allocator."""
        return self.malloc_ns + self.free_ns

    def note_malloc(self, size: int, cost_ns: float) -> None:
        """Record one successful allocation."""
        self.mallocs += 1
        self.bytes_requested += size
        self.current_bytes += size
        self.peak_bytes = max(self.peak_bytes, self.current_bytes)
        self.malloc_ns += cost_ns

    def note_free(self, size: int, cost_ns: float) -> None:
        """Record one free."""
        self.frees += 1
        self.current_bytes -= size
        self.free_ns += cost_ns


class Allocator(ABC):
    """Common allocator surface (malloc/free/calloc/realloc).

    Concrete allocators return simulated virtual addresses inside their
    :class:`~repro.mem.AddressSpace`; callers use those addresses with the
    memory-access engine and the registration pipeline, so *where* an
    allocator places a buffer (base pages vs hugepages, shared page vs
    fresh mapping) determines all downstream costs.
    """

    #: human-readable allocator name (used in reports)
    name: str = "allocator"

    def __init__(self, cost_model: Optional[AllocatorCostModel] = None,
                 counters: Optional[CounterSet] = None):
        self.cost = cost_model if cost_model is not None else AllocatorCostModel()
        self.counters = counters if counters is not None else CounterSet()
        self.stats = AllocStats()
        self._sizes: Dict[int, int] = {}

    # -- abstract core ----------------------------------------------------
    @abstractmethod
    def _malloc(self, size: int) -> tuple:
        """Allocate *size* bytes; return ``(vaddr, cost_ns)``."""

    @abstractmethod
    def _free(self, vaddr: int, size: int) -> float:
        """Free the allocation at *vaddr*; return the cost in ns."""

    # -- public API -----------------------------------------------------------
    def malloc(self, size: int) -> int:
        """Allocate *size* bytes and return the buffer's virtual address."""
        if size <= 0:
            raise AllocationError(f"malloc size must be positive, got {size}")
        san = sanitize._active
        if san is None or not san.heap:
            vaddr, cost_ns = self._malloc(size)
        else:
            # track nesting so the shadow heap records the application's
            # allocation, not the hugepage library's inner libc delegate
            san._heap_depth += 1
            try:
                vaddr, cost_ns = self._malloc(size)
            finally:
                san._heap_depth -= 1
            san.on_malloc(self, vaddr, size)
        self._sizes[vaddr] = size
        self.stats.note_malloc(size, cost_ns)
        self.counters.add(f"alloc.{self.name}.malloc")
        return vaddr

    def free(self, vaddr: int) -> None:
        """Release the allocation starting at *vaddr*."""
        san = sanitize._active
        if san is not None and san.heap:
            san.on_free(self, vaddr)
        size = self._sizes.pop(vaddr, None)
        if size is None:
            raise AllocationError(f"free() of unknown pointer {vaddr:#x}")
        if san is None or not san.heap:
            cost_ns = self._free(vaddr, size)
        else:
            san._heap_depth += 1
            try:
                cost_ns = self._free(vaddr, size)
            finally:
                san._heap_depth -= 1
        self.stats.note_free(size, cost_ns)
        self.counters.add(f"alloc.{self.name}.free")

    def calloc(self, nmemb: int, size: int) -> int:
        """Allocate and zero ``nmemb * size`` bytes."""
        if nmemb <= 0 or size <= 0:
            raise AllocationError("calloc arguments must be positive")
        total = nmemb * size
        vaddr = self.malloc(total)
        self.stats.malloc_ns += total * self.cost.zero_ns_per_byte
        return vaddr

    def realloc(self, vaddr: int, size: int) -> int:
        """Resize an allocation (modelled as malloc + copy-charge + free)."""
        if vaddr == 0:
            return self.malloc(size)
        old_size = self.allocation_size(vaddr)
        new_vaddr = self.malloc(size)
        # charge the copy of the preserved prefix
        self.stats.malloc_ns += min(old_size, size) * self.cost.zero_ns_per_byte
        self.free(vaddr)
        self.stats.reallocs += 1
        return new_vaddr

    # -- introspection ------------------------------------------------------------
    def allocation_size(self, vaddr: int) -> int:
        """Requested size of the live allocation at *vaddr*."""
        try:
            return self._sizes[vaddr]
        except KeyError:
            raise AllocationError(f"unknown pointer {vaddr:#x}") from None

    def owns(self, vaddr: int) -> bool:
        """True if *vaddr* is a live allocation of this allocator."""
        return vaddr in self._sizes

    @property
    def live_allocations(self) -> int:
        """Number of outstanding allocations."""
        return len(self._sizes)
