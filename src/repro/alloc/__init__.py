"""Allocators.

The paper's contribution is a preloadable allocation library that places
large buffers in hugepages (§3).  This package implements it together
with every allocator it is compared against:

- :mod:`repro.alloc.libc` — a glibc-like general-purpose allocator
  (binned free lists, boundary tags, coalescing, ``morecore()``/``mmap``).
- :mod:`repro.alloc.freelist` — the address-ordered first-fit chunk
  allocator the paper's management layer uses (§3.2 items 2-5).
- :mod:`repro.alloc.hugepage_lib` — the paper's three-layer library (§3.1).
- :mod:`repro.alloc.libhugetlbfs` — the ``morecore()``-wrapping baseline.
- :mod:`repro.alloc.libhugepagealloc` — the one-hugepage-per-buffer
  baseline.
- :mod:`repro.alloc.traces` — allocation-trace generation and replay
  (the Abinit ×10 measurement).

All allocators implement the :class:`~repro.alloc.base.Allocator`
interface, operate on a simulated :class:`~repro.mem.AddressSpace`, and
charge simulated nanoseconds for their own work so allocator efficiency
shows up in application runtimes.
"""

from repro.alloc.base import AllocationError, Allocator, AllocatorCostModel, AllocStats
from repro.alloc.freelist import ChunkFreeList, FreeExtent
from repro.alloc.hugepage_lib import HugepageLibraryAllocator, HugepageLibraryConfig
from repro.alloc.libc import LibcAllocator
from repro.alloc.libhugepagealloc import LibhugepageallocAllocator
from repro.alloc.libhugetlbfs import LibhugetlbfsAllocator
from repro.alloc.traces import (
    ReplayResult,
    TraceOp,
    abinit_like_trace,
    load_trace,
    replay,
    save_trace,
)

__all__ = [
    "AllocStats",
    "AllocationError",
    "Allocator",
    "AllocatorCostModel",
    "ChunkFreeList",
    "FreeExtent",
    "HugepageLibraryAllocator",
    "HugepageLibraryConfig",
    "LibcAllocator",
    "LibhugepageallocAllocator",
    "LibhugetlbfsAllocator",
    "ReplayResult",
    "TraceOp",
    "abinit_like_trace",
    "load_trace",
    "replay",
    "save_trace",
]
