"""A glibc-like general-purpose allocator.

Faithful to the circa-2006 dlmalloc/ptmalloc2 design in the ways that
matter for the paper's comparison:

- **boundary-tag blocks** with a 16-byte header carved out of the heap
  (the "inflation of libc structures" the paper mentions in §1);
- **fastbins** (LIFO, no coalescing) for tiny blocks;
- a **size-sorted bin** with best-fit search for everything else;
- **immediate coalescing** of non-fast blocks with their neighbours —
  which, combined with splitting on the next allocation, produces the
  "useless coalescing/splitting patterns" (§3.2 item 5) for
  alloc/free/alloc cycles of the same size;
- an **mmap threshold** (128 KB): big requests get fresh ``mmap`` regions
  and ``free`` returns them to the kernel, so every cycle repays the
  syscall *and the page population* — the dominant thrash cost for
  Abinit-style wavefunction arrays;
- **heap trimming** past 128 KB of free top, re-paying population on the
  next growth.

The heap normally grows with ``sbrk`` (``morecore()``); the growth
mechanism is pluggable so :mod:`repro.alloc.libhugetlbfs` can rebind it to
hugepage mappings exactly like the real libhugetlbfs does.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.alloc.base import AllocationError, Allocator, AllocatorCostModel
from repro.mem.address_space import AddressSpace
from repro.mem.physical import PAGE_4K, align_up

#: block header size (boundary tag), bytes
HEADER = 16
#: allocation granularity
ALIGN = 16
#: largest fastbin payload
FASTBIN_MAX = 160
#: requests at or above this go straight to mmap
MMAP_THRESHOLD = 128 * 1024
#: free top space beyond which the heap is trimmed back
TRIM_THRESHOLD = 128 * 1024
#: minimum heap growth per morecore call (glibc top_pad)
MIN_GROW = 128 * 1024
#: smallest splittable remainder
MIN_BLOCK = 32


class _Block:
    """One heap block (allocated or free), linked by address.

    Fastbin blocks keep ``free=False`` with ``in_fastbin=True`` — like
    glibc, which leaves fastbin chunks marked in-use precisely so the
    coalescing fast path skips them.
    """

    __slots__ = ("addr", "size", "free", "in_fastbin", "prev", "next")

    def __init__(self, addr: int, size: int):
        self.addr = addr
        self.size = size
        self.free = False
        self.in_fastbin = False
        self.prev: Optional[int] = None
        self.next: Optional[int] = None


class BrkMorecore:
    """Classic ``morecore()``: extend the brk heap with base pages."""

    page_size = PAGE_4K

    def __init__(self, aspace: AddressSpace, cost: AllocatorCostModel):
        self.aspace = aspace
        self.cost = cost

    def extend(self, nbytes: int) -> Tuple[int, int, float]:
        """Grow the heap; returns ``(start, length, cost_ns)``."""
        nbytes = align_up(nbytes, PAGE_4K)
        start = self.aspace.sbrk(nbytes)
        ns = self.cost.syscall_ns + self.cost.populate_ns(PAGE_4K, nbytes // PAGE_4K)
        return start, nbytes, ns

    def shrink(self, nbytes: int) -> float:
        """Give heap back to the kernel; returns the cost in ns."""
        nbytes = (nbytes // PAGE_4K) * PAGE_4K
        if nbytes <= 0:
            return 0.0
        self.aspace.sbrk(-nbytes)
        return self.cost.syscall_ns


class LibcAllocator(Allocator):
    """The general-purpose allocator (see module docstring)."""

    name = "libc"

    def __init__(
        self,
        aspace: AddressSpace,
        cost_model: Optional[AllocatorCostModel] = None,
        counters=None,
        morecore=None,
        use_mmap: bool = True,
    ):
        super().__init__(cost_model, counters)
        self.aspace = aspace
        self.morecore = morecore if morecore is not None else BrkMorecore(aspace, self.cost)
        self.use_mmap = use_mmap
        self._blocks: Dict[int, _Block] = {}
        self._fastbins: Dict[int, List[int]] = {}
        self._sorted_bin: List[Tuple[int, int]] = []  # (size, addr), sorted
        self._mmapped: Dict[int, int] = {}  # vaddr -> vma start length implied
        self._heap_end: Optional[int] = None  # current top of brk-backed heap

    # -- bin helpers --------------------------------------------------------
    @staticmethod
    def _class_of(size: int) -> int:
        return align_up(size + HEADER, ALIGN)

    def _bin_insert(self, block: _Block) -> int:
        """Insert into the size-sorted bin; returns nodes visited."""
        import bisect

        key = (block.size, block.addr)
        i = bisect.bisect_left(self._sorted_bin, key)
        self._sorted_bin.insert(i, key)
        return max(1, i + 1)

    def _bin_remove(self, block: _Block) -> None:
        import bisect

        key = (block.size, block.addr)
        i = bisect.bisect_left(self._sorted_bin, key)
        if i >= len(self._sorted_bin) or self._sorted_bin[i] != key:
            raise AllocationError(f"bin corruption at {block.addr:#x}")
        del self._sorted_bin[i]

    def _bin_best_fit(self, need: int) -> Tuple[Optional[_Block], int]:
        """Smallest free block with size >= need; returns (block, visited)."""
        import bisect

        i = bisect.bisect_left(self._sorted_bin, (need, 0))
        if i >= len(self._sorted_bin):
            return None, max(1, len(self._sorted_bin))
        size, addr = self._sorted_bin[i]
        return self._blocks[addr], i + 1

    # -- block surgery -----------------------------------------------------------
    def _split(self, block: _Block, need: int) -> float:
        """Split *block* (already out of bins) so it is exactly *need*
        bytes; the remainder becomes a free block.  Returns cost in ns."""
        ns = self.cost.header_ns
        remainder = block.size - need
        if remainder >= MIN_BLOCK:
            rest = _Block(block.addr + need, remainder)
            rest.free = True
            rest.prev = block.addr
            rest.next = block.next
            if block.next is not None:
                self._blocks[block.next].prev = rest.addr
            block.next = rest.addr
            block.size = need
            self._blocks[rest.addr] = rest
            ns += self.cost.header_ns
            ns += self._bin_insert(rest) * self.cost.node_visit_ns
        return ns

    def _coalesce(self, block: _Block) -> Tuple[_Block, float]:
        """Merge *block* with free neighbours; returns (merged, cost_ns)."""
        ns = 0.0
        # merge with next
        if block.next is not None:
            nxt = self._blocks[block.next]
            if nxt.free:
                self._bin_remove(nxt)
                ns += self.cost.node_visit_ns + self.cost.header_ns
                block.size += nxt.size
                block.next = nxt.next
                if nxt.next is not None:
                    self._blocks[nxt.next].prev = block.addr
                del self._blocks[nxt.addr]
        # merge with prev
        if block.prev is not None:
            prv = self._blocks[block.prev]
            if prv.free:
                self._bin_remove(prv)
                ns += self.cost.node_visit_ns + self.cost.header_ns
                prv.size += block.size
                prv.next = block.next
                if block.next is not None:
                    self._blocks[block.next].prev = prv.addr
                del self._blocks[block.addr]
                block = prv
        return block, ns

    # -- allocation -------------------------------------------------------------
    def _malloc(self, size: int) -> Tuple[int, float]:
        if self.use_mmap and size >= MMAP_THRESHOLD:
            return self._mmap_alloc(size)
        need = self._class_of(size)
        ns = 0.0
        # 1. fastbin exact hit
        if need - HEADER <= FASTBIN_MAX:
            stack = self._fastbins.get(need)
            if stack:
                addr = stack.pop()
                block = self._blocks[addr]
                block.in_fastbin = False
                ns += self.cost.node_visit_ns + self.cost.header_ns
                return addr + HEADER, ns
        # 2. best fit from the sorted bin
        block, visited = self._bin_best_fit(need)
        ns += visited * self.cost.node_visit_ns
        if block is None:
            # 3. grow the heap
            grow = max(need, MIN_GROW)
            start, length, grow_ns = self.morecore.extend(grow)
            ns += grow_ns
            fresh = _Block(start, length)
            fresh.free = True
            if self._heap_end == start:
                # contiguous growth: stitch to the previous last block
                last = self._last_block_before(start)
                if last is not None:
                    last.next = fresh.addr
                    fresh.prev = last.addr
            self._heap_end = start + length if self._heap_end in (None, start) else self._heap_end
            self._blocks[start] = fresh
            ns += self._bin_insert(fresh) * self.cost.node_visit_ns
            fresh, merge_ns = self._coalesce_free_into_bin(fresh)
            ns += merge_ns
            block = fresh
        self._bin_remove(block)
        block.free = False
        ns += self._split(block, need)
        return block.addr + HEADER, ns

    def _last_block_before(self, addr: int) -> Optional[_Block]:
        best = None
        for b in self._blocks.values():
            if b.addr + b.size == addr:
                return b
            if b.addr < addr and (best is None or b.addr > best.addr):
                best = b
        return None if best is None or best.addr + best.size != addr else best

    def _coalesce_free_into_bin(self, block: _Block) -> Tuple[_Block, float]:
        """Coalesce a block that is currently in the bin with neighbours,
        keeping bin membership consistent."""
        self._bin_remove(block)
        block, ns = self._coalesce(block)
        block.free = True
        ns += self._bin_insert(block) * self.cost.node_visit_ns
        return block, ns

    def _mmap_alloc(self, size: int) -> Tuple[int, float]:
        length = align_up(size + HEADER, PAGE_4K)
        vma = self.aspace.mmap(length, page_size=PAGE_4K, name="libc-mmap")
        ns = self.cost.syscall_ns + self.cost.populate_ns(PAGE_4K, length // PAGE_4K)
        self._mmapped[vma.start + HEADER] = vma.start
        return vma.start + HEADER, ns

    # -- free ----------------------------------------------------------------------
    def _free(self, vaddr: int, size: int) -> float:
        start = self._mmapped.pop(vaddr, None)
        if start is not None:
            self.aspace.munmap(start)
            return self.cost.syscall_ns
        addr = vaddr - HEADER
        block = self._blocks.get(addr)
        if block is None or block.free or block.in_fastbin:
            raise AllocationError(f"bad or double free at {vaddr:#x}")
        ns = self.cost.header_ns
        payload_class = block.size - HEADER
        if payload_class <= FASTBIN_MAX:
            block.in_fastbin = True
            self._fastbins.setdefault(block.size, []).append(addr)
            return ns + self.cost.node_visit_ns
        block.free = True
        block, merge_ns = self._coalesce(block)
        ns += merge_ns
        ns += self._bin_insert(block) * self.cost.node_visit_ns
        ns += self._maybe_trim(block)
        return ns

    def _maybe_trim(self, block: _Block) -> float:
        """Give the heap top back to the kernel when it grows too fat."""
        if self._heap_end is None or not block.free:
            return 0.0
        if block.addr + block.size != self._heap_end:
            return 0.0
        if block.size <= TRIM_THRESHOLD:
            return 0.0
        keep = TRIM_THRESHOLD // 2
        give_back = (block.size - keep) // PAGE_4K * PAGE_4K
        if give_back <= 0:
            return 0.0
        self._bin_remove(block)
        block.size -= give_back
        self._heap_end -= give_back
        ns = self._bin_insert(block) * self.cost.node_visit_ns
        ns += self.morecore.shrink(give_back)
        return ns

    # -- diagnostics -------------------------------------------------------------
    def heap_bytes(self) -> int:
        """Total bytes currently under heap-block management."""
        return sum(b.size for b in self._blocks.values())

    def free_bytes(self) -> int:
        """Bytes in free blocks (bin + fastbins)."""
        return sum(b.size for b in self._blocks.values() if b.free or b.in_fastbin)
