"""Allocation traces: generation and replay.

The paper instruments applications and reports "allocation benefits of up
to 10 times with our library (e.g. for Abinit)" (§2) and a 1.5 % Abinit
runtime improvement from allocator time alone (§3.2 item 2).  Abinit is a
plane-wave DFT code: each SCF iteration allocates a family of large work
arrays (wavefunction/FFT scratch), uses them, and frees them — the exact
"allocate and deallocate buffers with the same size in a short time
frame" pattern §3.2 item 5 targets — plus steady small-object churn.

:func:`abinit_like_trace` generates such a trace deterministically;
:func:`replay` runs any trace against any allocator and reports the
simulated allocator time.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from typing import Dict, List

import numpy as np

from repro.alloc.base import Allocator

KB = 1024
MB = 1024 * 1024


@dataclass(frozen=True)
class TraceOp:
    """One trace record: ``malloc`` (with size) or ``free`` of a handle."""

    op: str  # "malloc" | "free"
    handle: int
    size: int = 0

    def __post_init__(self):
        if self.op not in ("malloc", "free"):
            raise ValueError(f"unknown trace op {self.op!r}")
        if self.op == "malloc" and self.size <= 0:
            raise ValueError("malloc trace op needs a positive size")


@dataclass
class ReplayResult:
    """Outcome of replaying a trace against one allocator."""

    allocator: str
    mallocs: int = 0
    frees: int = 0
    alloc_ns: float = 0.0
    free_ns: float = 0.0
    peak_bytes: int = 0

    @property
    def total_ns(self) -> float:
        """Total simulated allocator time."""
        return self.alloc_ns + self.free_ns


def abinit_like_trace(
    iterations: int = 30,
    large_arrays: int = 6,
    large_size: int = 8 * MB,
    medium_per_iter: int = 12,
    small_per_iter: int = 120,
    seed: int = 42,
) -> List[TraceOp]:
    """Generate a deterministic Abinit-like allocation trace.

    Structure:

    - a persistent base working set allocated up front and never freed
      during the run (density/potential grids),
    - per SCF iteration: *large_arrays* same-size large temporaries,
      *medium_per_iter* medium scratch buffers (64–512 KB) and
      *small_per_iter* small objects (< 32 KB), all freed at iteration
      end (LIFO, like stack-of-scopes Fortran allocation).
    """
    if iterations <= 0:
        raise ValueError("iterations must be positive")
    rng = np.random.default_rng(seed)
    trace: List[TraceOp] = []
    handle = 0

    def nxt() -> int:
        nonlocal handle
        handle += 1
        return handle

    # persistent working set
    for _ in range(4):
        trace.append(TraceOp("malloc", nxt(), int(rng.integers(2 * MB, 24 * MB))))

    for _ in range(iterations):
        scope: List[int] = []
        for _ in range(large_arrays):
            h = nxt()
            trace.append(TraceOp("malloc", h, large_size))
            scope.append(h)
        for _ in range(medium_per_iter):
            h = nxt()
            trace.append(TraceOp("malloc", h, int(rng.integers(64 * KB, 512 * KB))))
            scope.append(h)
        for _ in range(small_per_iter):
            h = nxt()
            trace.append(TraceOp("malloc", h, int(rng.integers(32, 32 * KB))))
            scope.append(h)
        for h in reversed(scope):
            trace.append(TraceOp("free", h))
    return trace


def replay(trace: List[TraceOp], allocator: Allocator) -> ReplayResult:
    """Run *trace* against *allocator*, accumulating simulated time."""
    result = ReplayResult(allocator=allocator.name)
    pointers: Dict[int, int] = {}
    for op in trace:
        if op.op == "malloc":
            before = allocator.stats.malloc_ns
            pointers[op.handle] = allocator.malloc(op.size)
            result.alloc_ns += allocator.stats.malloc_ns - before
            result.mallocs += 1
        else:
            vaddr = pointers.pop(op.handle, None)
            if vaddr is None:
                raise ValueError(f"trace frees unknown handle {op.handle}")
            before = allocator.stats.free_ns
            allocator.free(vaddr)
            result.free_ns += allocator.stats.free_ns - before
            result.frees += 1
        result.peak_bytes = max(result.peak_bytes, allocator.stats.current_bytes)
    return result


def save_trace(trace: List[TraceOp], path: str) -> None:
    """Write a trace as JSON lines (one op per line, diffable)."""
    with open(path, "w") as fh:
        for op in trace:
            fh.write(json.dumps(
                {"op": op.op, "handle": op.handle, "size": op.size}
            ) + "\n")


def load_trace(path: str) -> List[TraceOp]:
    """Read a trace written by :func:`save_trace`."""
    trace: List[TraceOp] = []
    with open(path) as fh:
        for line_no, line in enumerate(fh, 1):
            line = line.strip()
            if not line:
                continue
            try:
                rec = json.loads(line)
                trace.append(TraceOp(op=rec["op"], handle=rec["handle"],
                                     size=rec.get("size", 0)))
            except (json.JSONDecodeError, KeyError, ValueError) as exc:
                raise ValueError(f"{path}:{line_no}: bad trace record "
                                 f"({exc})") from exc
    return trace
