"""The paper's hugepage library (§3): a three-layer preloadable allocator.

Layer 1 — **transparency** (this module's facade class): intercepts
``malloc``/``free``/``calloc``/``realloc``.  Requests *below 32 KB* are
forwarded to the libc allocator (§3.2 item 1: empirical registration
measurements favoured small pages there, and hugepage-TLB-poor processors
punish indiscriminate hugepage use); larger requests go to the management
layer.

Layer 2 — **mapping** (:class:`MappingLayer`): talks to HugeTLBfs, maps
hugepages into the process address space and "must leave a reserve of
hugepages that are needed when forking processes for Copy-on-Write
reasons".

Layer 3 — **management** (:class:`ManagementLayer`): manages the mapped
hugepage memory as 4 KB chunks with an address-ordered first-fit free
list, metadata packed in a dense cache, and no coalescing on ``free()``
(§3.2 items 2-5; see :mod:`repro.alloc.freelist`).

The layering is strict: the facade only talks to the management layer,
the management layer only talks to the mapping layer — the paper's
"strict tier model [that] guarantees an easy interchangeability for each
module" (§3.1).  The ablation knobs (:attr:`HugepageLibraryConfig.
fit_policy`, :attr:`~HugepageLibraryConfig.coalesce_on_free`,
:attr:`~HugepageLibraryConfig.cutoff_bytes`) exist to let the benchmark
suite quantify each design decision.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Tuple

from repro.alloc.base import AllocationError, Allocator, AllocatorCostModel
from repro.alloc.freelist import CHUNK_SIZE, ChunkFreeList
from repro.alloc.libc import LibcAllocator
from repro.mem.address_space import AddressSpace
from repro.mem.hugetlbfs import HugePagePoolExhausted
from repro.mem.physical import PAGE_2M


@dataclass(frozen=True)
class HugepageLibraryConfig:
    """Tunables of the hugepage library.

    Attributes
    ----------
    cutoff_bytes:
        Requests below this go to libc (§3.2 item 1; the paper uses 32 KB).
    fork_reserve_pages:
        Hugepages the mapping layer always leaves free (§3.1 layer 2).
    min_map_pages:
        Smallest number of hugepages mapped per growth (mapping
        hysteresis; 1 = map exactly what is needed).
    coalesce_on_free:
        False per the paper (§3.2 item 5); True is the ablation variant.
    fit_policy:
        ``"first"`` (paper, address-ordered first fit) or ``"best"``
        (ablation).
    """

    cutoff_bytes: int = 32 * 1024
    fork_reserve_pages: int = 2
    min_map_pages: int = 1
    coalesce_on_free: bool = False
    fit_policy: str = "first"

    def __post_init__(self):
        if self.cutoff_bytes < CHUNK_SIZE:
            raise ValueError("cutoff below chunk size makes no sense")
        if self.fit_policy not in ("first", "best"):
            raise ValueError(f"unknown fit policy {self.fit_policy!r}")
        if self.min_map_pages < 1:
            raise ValueError("min_map_pages must be >= 1")
        if self.fork_reserve_pages < 0:
            raise ValueError("fork_reserve_pages must be >= 0")


class MappingLayer:
    """Layer 2: maps/unmaps hugepages via hugetlbfs, honouring the
    fork/CoW reserve."""

    def __init__(self, aspace: AddressSpace, config: HugepageLibraryConfig,
                 cost: AllocatorCostModel):
        self.aspace = aspace
        self.config = config
        self.cost = cost
        self.pages_mapped = 0

    def map_pages(self, n_pages: int) -> Tuple[int, int, float]:
        """Map *n_pages* hugepages; returns ``(vaddr, length, cost_ns)``.

        Raises :class:`~repro.mem.HugePagePoolExhausted` when granting the
        request would eat into the fork reserve.
        """
        n_pages = max(n_pages, self.config.min_map_pages)
        vma = self.aspace.mmap(
            n_pages * PAGE_2M,
            page_size=PAGE_2M,
            name="hugepage-lib",
            keep_hugepage_reserve=self.config.fork_reserve_pages,
        )
        self.pages_mapped += n_pages
        ns = self.cost.syscall_ns + self.cost.populate_ns(PAGE_2M, n_pages)
        return vma.start, vma.length, ns


class ManagementLayer:
    """Layer 3: chunked first-fit management of the mapped hugepages."""

    def __init__(self, mapping: MappingLayer, config: HugepageLibraryConfig,
                 cost: AllocatorCostModel):
        self.mapping = mapping
        self.config = config
        self.cost = cost
        self.freelist = ChunkFreeList()
        self._live: Dict[int, int] = {}  # vaddr -> n_chunks

    def _take(self, n_chunks: int) -> Tuple[Optional[int], int]:
        if self.config.fit_policy == "best":
            return self.freelist.take_best_fit(n_chunks)
        return self.freelist.take_first_fit(n_chunks)

    def alloc(self, nbytes: int) -> Tuple[int, float]:
        """Allocate *nbytes* from hugepage memory; returns (vaddr, ns)."""
        n_chunks = ChunkFreeList.chunks_for(nbytes)
        ns = 0.0
        vaddr, visited = self._take(n_chunks)
        ns += visited * self.cost.packed_node_visit_ns
        if vaddr is None:
            # §3.2 item 5: coalescing is deferred to allocation failure
            merges, swept = self.freelist.coalesce()
            ns += swept * self.cost.packed_node_visit_ns
            if merges:
                vaddr, visited = self._take(n_chunks)
                ns += visited * self.cost.packed_node_visit_ns
        if vaddr is None:
            pages = (n_chunks * CHUNK_SIZE + PAGE_2M - 1) // PAGE_2M
            start, length, map_ns = self.mapping.map_pages(pages)
            ns += map_ns
            ns += self.freelist.insert(start, length // CHUNK_SIZE) * \
                self.cost.packed_node_visit_ns
            vaddr, visited = self._take(n_chunks)
            ns += visited * self.cost.packed_node_visit_ns
            if vaddr is None:  # pragma: no cover - defensive
                raise AllocationError("management layer lost a fresh region")
        self._live[vaddr] = n_chunks
        return vaddr, ns

    def free(self, vaddr: int) -> float:
        """Return an allocation's chunks to the free list."""
        n_chunks = self._live.pop(vaddr, None)
        if n_chunks is None:
            raise AllocationError(f"management layer does not own {vaddr:#x}")
        ns = self.freelist.insert(vaddr, n_chunks) * self.cost.packed_node_visit_ns
        if self.config.coalesce_on_free:
            merges, swept = self.freelist.coalesce()
            ns += swept * self.cost.packed_node_visit_ns
        return ns

    def owns(self, vaddr: int) -> bool:
        """True if *vaddr* is a live management-layer allocation."""
        return vaddr in self._live


class HugepageLibraryAllocator(Allocator):
    """Layer 1 (transparency) + the full stack: the paper's library.

    Preloading semantics: construct one per process with the process's
    libc allocator; every ``malloc`` the application makes goes through
    :meth:`malloc` here, exactly like an ``LD_PRELOAD`` interposition.
    """

    name = "hugepage_lib"

    def __init__(
        self,
        aspace: AddressSpace,
        libc: Optional[LibcAllocator] = None,
        config: Optional[HugepageLibraryConfig] = None,
        cost_model: Optional[AllocatorCostModel] = None,
        counters=None,
    ):
        super().__init__(cost_model, counters)
        self.aspace = aspace
        self.config = config if config is not None else HugepageLibraryConfig()
        self.libc = libc if libc is not None else LibcAllocator(
            aspace, cost_model=self.cost, counters=self.counters
        )
        self.mapping = MappingLayer(aspace, self.config, self.cost)
        self.management = ManagementLayer(self.mapping, self.config, self.cost)
        #: symbol-resolution + dispatch overhead per intercepted call
        self._dispatch_ns = 4.0

    def _malloc(self, size: int) -> Tuple[int, float]:
        if size < self.config.cutoff_bytes:
            before = self.libc.stats.malloc_ns
            vaddr = self.libc.malloc(size)
            return vaddr, self._dispatch_ns + (self.libc.stats.malloc_ns - before)
        try:
            vaddr, ns = self.management.alloc(size)
        except HugePagePoolExhausted:
            # a transparent preload library must never fail an
            # allocation the application could have satisfied: when the
            # hugepage pool (minus the fork reserve) is dry, fall back
            # to libc placement
            self.counters.add(f"alloc.{self.name}.fallback")
            before = self.libc.stats.malloc_ns
            vaddr = self.libc.malloc(size)
            return vaddr, self._dispatch_ns + (self.libc.stats.malloc_ns - before)
        return vaddr, self._dispatch_ns + ns

    def _free(self, vaddr: int, size: int) -> float:
        if self.management.owns(vaddr):
            return self._dispatch_ns + self.management.free(vaddr)
        before = self.libc.stats.free_ns
        self.libc.free(vaddr)
        return self._dispatch_ns + (self.libc.stats.free_ns - before)

    def free(self, vaddr: int) -> None:
        """Release an allocation — including pointers that libc handed
        out *before* this library was preloaded (a real LD_PRELOAD
        interposition must free those through the original libc too)."""
        if not self.owns(vaddr) and self.libc.owns(vaddr):
            self.libc.free(vaddr)
            return
        super().free(vaddr)

    def allocation_size(self, vaddr: int) -> int:
        """Size of a live allocation, wherever it was made."""
        if not self.owns(vaddr) and self.libc.owns(vaddr):
            return self.libc.allocation_size(vaddr)
        return super().allocation_size(vaddr)

    # -- placement introspection (used by tests and benchmarks) -----------
    def is_hugepage_backed(self, vaddr: int) -> bool:
        """True if the allocation at *vaddr* lives in hugepages."""
        return self.management.owns(vaddr)

    @property
    def hugepages_mapped(self) -> int:
        """Hugepages the mapping layer has mapped so far."""
        return self.mapping.pages_mapped
