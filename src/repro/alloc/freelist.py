"""Address-ordered first-fit free list over fixed-size chunks.

This is the data structure of the paper's management layer, built to its
§3.2 specification:

2. *address-ordered first fit* — "shows best performance values due to a
   good locality (see [12])" (Wilson et al.'s allocator survey);
4. fixed **4 KB chunks** — "simplifies the memory management data
   structures and ensures a fast access in a complexity of O(1)";
5. **no coalescing on free()** — "avoids useless coalescing/splitting
   patterns, when applications allocate and deallocate buffers with the
   same size in a short time frame".  Fragmented lists are repaired by an
   explicit on-demand :meth:`ChunkFreeList.coalesce` pass (run when a fit
   cannot be found), which keeps the common path branch-free.

Extents are kept in a dense sorted list (the paper's item 3: metadata
lives in a cache created at initialisation, not in per-buffer headers),
so traversal is cheap; the cost model reflects that with the packed node
visit price.
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass
from typing import List, Optional, Tuple

#: chunk granularity (bytes) — §3.2 item 4
CHUNK_SIZE = 4096


@dataclass(frozen=True)
class FreeExtent:
    """A run of free chunks: ``[start, start + n_chunks * CHUNK_SIZE)``.

    *start* is a virtual address, always chunk-aligned.
    """

    start: int
    n_chunks: int

    @property
    def end(self) -> int:
        """One past the extent's last byte."""
        return self.start + self.n_chunks * CHUNK_SIZE

    def __post_init__(self):
        if self.start % CHUNK_SIZE:
            raise ValueError(f"extent start {self.start:#x} not chunk-aligned")
        if self.n_chunks <= 0:
            raise ValueError(f"extent needs positive chunk count, got {self.n_chunks}")


class ChunkFreeList:
    """The management layer's free list.

    All mutating operations return the number of extents *visited*, which
    the caller converts into simulated time — the data structure itself is
    the cost model's input.
    """

    def __init__(self) -> None:
        self._starts: List[int] = []  # sorted extent start addresses
        self._extents: List[FreeExtent] = []  # parallel to _starts

    # -- introspection ----------------------------------------------------
    def __len__(self) -> int:
        return len(self._extents)

    @property
    def extents(self) -> Tuple[FreeExtent, ...]:
        """Snapshot of extents in address order."""
        return tuple(self._extents)

    @property
    def free_chunks(self) -> int:
        """Total free chunks across all extents."""
        return sum(e.n_chunks for e in self._extents)

    def invariant_ok(self) -> bool:
        """True when extents are sorted, aligned and non-overlapping."""
        for a, b in zip(self._extents, self._extents[1:]):
            if a.end > b.start:
                return False
        return self._starts == [e.start for e in self._extents]

    # -- checkpointing ----------------------------------------------------
    def dump_state(self) -> list:
        """Picklable snapshot: ``(start, n_chunks)`` in address order."""
        return [(e.start, e.n_chunks) for e in self._extents]

    def load_state(self, state: list) -> None:
        """Restore a :meth:`dump_state` snapshot."""
        self._extents = [FreeExtent(start=s, n_chunks=n) for s, n in state]
        self._starts = [e.start for e in self._extents]

    # -- allocation ----------------------------------------------------------
    def take_first_fit(self, n_chunks: int) -> Tuple[Optional[int], int]:
        """Address-ordered first fit for *n_chunks*.

        Returns ``(vaddr, visited)``; *vaddr* is None when nothing fits.
        A fitting extent is consumed from its front; any remainder stays
        in place (a split, never a merge).
        """
        if n_chunks <= 0:
            raise ValueError(f"need positive chunk count, got {n_chunks}")
        for i, extent in enumerate(self._extents):
            if extent.n_chunks >= n_chunks:
                vaddr = extent.start
                if extent.n_chunks == n_chunks:
                    del self._extents[i]
                    del self._starts[i]
                else:
                    rest = FreeExtent(
                        start=extent.start + n_chunks * CHUNK_SIZE,
                        n_chunks=extent.n_chunks - n_chunks,
                    )
                    self._extents[i] = rest
                    self._starts[i] = rest.start
                return vaddr, i + 1
        return None, len(self._extents)

    def take_best_fit(self, n_chunks: int) -> Tuple[Optional[int], int]:
        """Best fit (ablation alternative to the paper's first fit).

        Scans every extent for the tightest fit; returns ``(vaddr,
        visited)`` with ``visited == len(self)`` since best fit cannot
        stop early.
        """
        if n_chunks <= 0:
            raise ValueError(f"need positive chunk count, got {n_chunks}")
        best_i = -1
        best_n = None
        for i, extent in enumerate(self._extents):
            if extent.n_chunks >= n_chunks and (
                best_n is None or extent.n_chunks < best_n
            ):
                best_i, best_n = i, extent.n_chunks
        visited = max(1, len(self._extents))
        if best_i < 0:
            return None, visited
        extent = self._extents[best_i]
        vaddr = extent.start
        if extent.n_chunks == n_chunks:
            del self._extents[best_i]
            del self._starts[best_i]
        else:
            rest = FreeExtent(
                start=extent.start + n_chunks * CHUNK_SIZE,
                n_chunks=extent.n_chunks - n_chunks,
            )
            self._extents[best_i] = rest
            self._starts[best_i] = rest.start
        return vaddr, visited

    def insert(self, start: int, n_chunks: int) -> int:
        """Insert a freed extent at its address-ordered position, without
        coalescing (§3.2 item 5).  Returns the probe count (a binary
        search through the packed array)."""
        extent = FreeExtent(start=start, n_chunks=n_chunks)
        i = bisect.bisect_left(self._starts, start)
        # reject overlap with neighbours (double free / corruption)
        if i > 0 and self._extents[i - 1].end > start:
            raise ValueError(f"extent {start:#x} overlaps predecessor")
        if i < len(self._extents) and extent.end > self._extents[i].start:
            raise ValueError(f"extent {start:#x} overlaps successor")
        self._starts.insert(i, start)
        self._extents.insert(i, extent)
        # log2-ish probe count for the bisect plus the insertion shift
        return max(1, len(self._extents).bit_length())

    # -- on-demand coalescing ----------------------------------------------------
    def coalesce(self) -> Tuple[int, int]:
        """Merge all adjacent extents in one pass.

        Returns ``(merges, visited)``.  Run when first fit fails; the
        address-ordered invariant makes this a single linear sweep.
        """
        if not self._extents:
            return 0, 0
        merged: List[FreeExtent] = [self._extents[0]]
        merges = 0
        for extent in self._extents[1:]:
            last = merged[-1]
            if last.end == extent.start:
                merged[-1] = FreeExtent(
                    start=last.start, n_chunks=last.n_chunks + extent.n_chunks
                )
                merges += 1
            else:
                merged.append(extent)
        visited = len(self._extents)
        self._extents = merged
        self._starts = [e.start for e in merged]
        return merges, visited

    # -- helpers ----------------------------------------------------------------
    @staticmethod
    def chunks_for(nbytes: int) -> int:
        """Chunks needed to hold *nbytes*."""
        if nbytes <= 0:
            raise ValueError(f"nbytes must be positive, got {nbytes}")
        return (nbytes + CHUNK_SIZE - 1) // CHUNK_SIZE
