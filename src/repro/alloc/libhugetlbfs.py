"""The libhugetlbfs baseline: libc with ``morecore()`` rebound to hugepages.

The second library discussed in §2 "wraps the internal libc function
morecore()", with two drawbacks the paper calls out:

1. *every* buffer the libc allocator hands out lives in hugepages —
   including tiny ones — which matters for TLB-miss behaviour on parts
   with few hugepage TLB entries;
2. the libc allocator still manages all requests, so its general-purpose
   bin machinery (and its thrashing patterns) are unchanged.

We reproduce exactly that: a :class:`~repro.alloc.libc.LibcAllocator`
whose growth callback maps hugetlbfs memory and whose mmap path is
disabled (real libhugetlbfs sets ``M_MMAP_MAX=0`` so everything flows
through morecore).
"""

from __future__ import annotations

from typing import Optional, Tuple

from repro.alloc.base import AllocatorCostModel
from repro.alloc.libc import LibcAllocator
from repro.mem.address_space import AddressSpace
from repro.mem.physical import PAGE_2M, align_up


class HugeMorecore:
    """``morecore()`` backed by private hugetlbfs mappings.

    Each growth maps a fresh hugepage VMA (regions are not virtually
    contiguous, so the heap becomes a set of hugepage arenas — matching
    real libhugetlbfs behaviour where the hugepage heap lives in its own
    region).
    """

    page_size = PAGE_2M

    def __init__(
        self,
        aspace: AddressSpace,
        cost: AllocatorCostModel,
        keep_hugepage_reserve: int = 0,
    ):
        self.aspace = aspace
        self.cost = cost
        self.keep_hugepage_reserve = keep_hugepage_reserve

    def extend(self, nbytes: int) -> Tuple[int, int, float]:
        """Map hugepages; returns ``(start, length, cost_ns)``."""
        length = align_up(nbytes, PAGE_2M)
        vma = self.aspace.mmap(
            length,
            page_size=PAGE_2M,
            name="libhugetlbfs-heap",
            keep_hugepage_reserve=self.keep_hugepage_reserve,
        )
        ns = self.cost.syscall_ns + self.cost.populate_ns(PAGE_2M, length // PAGE_2M)
        return vma.start, length, ns

    def shrink(self, nbytes: int) -> float:
        """Hugepage heaps are never trimmed (the real library keeps them)."""
        return 0.0


class LibhugetlbfsAllocator(LibcAllocator):
    """libc allocator on a hugepage-backed heap (see module docstring)."""

    name = "libhugetlbfs"

    def __init__(
        self,
        aspace: AddressSpace,
        cost_model: Optional[AllocatorCostModel] = None,
        counters=None,
        keep_hugepage_reserve: int = 0,
    ):
        cost = cost_model if cost_model is not None else AllocatorCostModel()
        super().__init__(
            aspace,
            cost_model=cost,
            counters=counters,
            morecore=HugeMorecore(aspace, cost, keep_hugepage_reserve),
            use_mmap=False,
        )
