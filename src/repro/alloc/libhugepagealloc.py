"""The libhugepagealloc baseline: one hugepage mapping per buffer.

The first library discussed in §2: "not thread safe and does not assure
locality between allocated buffers since every buffer is mapped into a
separate hugepage".  We reproduce that placement policy: every request is
served from a *fresh* private hugetlbfs mapping sized up to whole
hugepages, so

- a 100-byte buffer consumes a full 2 MB hugepage (pool pressure),
- no two buffers share a hugepage (no locality, nothing for a prefetch
  stream to ride across buffers),
- each allocation pays the full map + populate cost, and each free the
  unmap cost.

Thread-unsafety is modelled as a flag (:attr:`thread_safe`); the
simulation is single-threaded, but components that would run the
allocator concurrently (e.g. a threaded MPI progress engine) check it and
refuse.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

from repro.alloc.base import AllocationError, Allocator, AllocatorCostModel
from repro.mem.address_space import AddressSpace
from repro.mem.physical import PAGE_2M


class LibhugepageallocAllocator(Allocator):
    """One private hugepage mapping per allocation (see module docstring)."""

    name = "libhugepagealloc"
    #: the real library is documented as not thread safe (§2)
    thread_safe = False

    def __init__(
        self,
        aspace: AddressSpace,
        cost_model: Optional[AllocatorCostModel] = None,
        counters=None,
    ):
        super().__init__(cost_model, counters)
        self.aspace = aspace
        self._vmas: Dict[int, int] = {}  # payload vaddr -> vma start

    def _malloc(self, size: int) -> Tuple[int, float]:
        n_pages = (size + PAGE_2M - 1) // PAGE_2M
        vma = self.aspace.mmap(
            n_pages * PAGE_2M, page_size=PAGE_2M, name="libhugepagealloc"
        )
        ns = self.cost.syscall_ns + self.cost.populate_ns(PAGE_2M, n_pages)
        self._vmas[vma.start] = vma.start
        return vma.start, ns

    def _free(self, vaddr: int, size: int) -> float:
        start = self._vmas.pop(vaddr, None)
        if start is None:
            raise AllocationError(f"unknown pointer {vaddr:#x}")
        self.aspace.munmap(start)
        return self.cost.syscall_ns

    def hugepages_held(self) -> int:
        """Hugepages currently consumed (shows the waste for small bufs)."""
        total = 0
        for vaddr in self._vmas:
            vma = self.aspace.find_vma(vaddr)
            if vma is not None:
                total += vma.length // PAGE_2M
        return total
