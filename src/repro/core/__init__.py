"""The paper's contribution as a public API.

Three data-placement strategies, one module each:

- :mod:`repro.core.library` — *transparent hugepage placement for large
  buffers*: "preload" the three-layer hugepage library onto a simulated
  process, exactly like the paper's ``LD_PRELOAD`` library (§3).
- :mod:`repro.core.placement` — explicit placement policies: which page
  size a buffer should live in and at which in-page offset small
  buffers should start (§4's offset results).
- :mod:`repro.core.sge` — scatter-gather aggregation strategies for
  small buffers: one work request with an SGE list instead of several
  requests or a CPU pack (§4, §7).
"""

from repro.core.config import PlacementConfig
from repro.core.library import PreloadedLibrary, preload_hugepage_library
from repro.core.placement import BufferPlacer, PlacementPolicy
from repro.core.sge import AggregationPlan, AggregationStrategy, plan_aggregation

__all__ = [
    "AggregationPlan",
    "AggregationStrategy",
    "BufferPlacer",
    "PlacementConfig",
    "PlacementPolicy",
    "PreloadedLibrary",
    "plan_aggregation",
    "preload_hugepage_library",
]
