"""Preloading the hugepage library onto a process.

The paper's library "can be preloaded for applications at load time"
(abstract) — an ``LD_PRELOAD`` interposition that swaps the allocation
functions underneath an unmodified application.  The simulated
equivalent: :func:`preload_hugepage_library` replaces an
:class:`~repro.systems.machine.OSProcess`'s active allocator with a
:class:`~repro.alloc.hugepage_lib.HugepageLibraryAllocator` stacked on
the process's existing libc allocator, so

- allocations the application already holds stay valid (libc still owns
  them; the facade routes frees to the right owner),
- everything the application allocates from now on follows the paper's
  placement policy (≥ 32 KB → hugepages).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.alloc.hugepage_lib import HugepageLibraryAllocator, HugepageLibraryConfig
from repro.systems.machine import OSProcess


@dataclass
class PreloadedLibrary:
    """Handle returned by :func:`preload_hugepage_library`."""

    proc: OSProcess
    allocator: HugepageLibraryAllocator

    def unload(self) -> None:
        """Restore the plain libc allocator (live hugepage allocations
        stay owned by the library facade and must be freed through it —
        same constraint a real un-preload would have)."""
        self.proc.allocator = self.proc.libc


def preload_hugepage_library(
    proc: OSProcess, config: Optional[HugepageLibraryConfig] = None
) -> PreloadedLibrary:
    """Interpose the hugepage library on *proc* (see module docstring).

    Idempotent per process: preloading twice returns a handle to the
    existing interposition rather than stacking facades.
    """
    if isinstance(proc.allocator, HugepageLibraryAllocator):
        return PreloadedLibrary(proc=proc, allocator=proc.allocator)
    lib = HugepageLibraryAllocator(
        proc.aspace,
        libc=proc.libc,
        config=config,
        cost_model=proc.machine.spec.alloc_costs,
        counters=proc.counters,
    )
    proc.allocator = lib
    return PreloadedLibrary(proc=proc, allocator=lib)
