"""Explicit buffer-placement policies.

For code that wants control rather than transparency (benchmark
harnesses, communication libraries), :class:`BufferPlacer` allocates
buffers with a chosen page size and in-page start offset:

- page size per :class:`PlacementPolicy` — base pages, hugepages, or the
  paper's size-based policy (≥ 32 KB → hugepages);
- start offset for small buffers, defaulting to 64 — the offset §4 found
  the adapter's memory access "optimized" for.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Dict, Optional

from repro.core.config import PlacementConfig
from repro.mem.hugetlbfs import HugePagePoolExhausted
from repro.mem.physical import PAGE_2M, PAGE_4K
from repro.systems.machine import OSProcess


class PlacementPolicy(enum.Enum):
    """Where buffers should live."""

    #: always base pages (the baseline)
    SMALL_PAGES = "small"
    #: always hugepages (libhugetlbfs-style)
    HUGE_PAGES = "huge"
    #: the paper's policy: hugepages from the library cutoff upward
    SIZE_BASED = "size-based"


@dataclass
class PlacedBuffer:
    """A buffer produced by the placer."""

    addr: int
    size: int
    page_size: int
    vma_start: int

    @property
    def offset_in_page(self) -> int:
        """Start offset inside the first (4 KB) page."""
        return self.addr % PAGE_4K


class BufferPlacer:
    """Allocates placement-controlled buffers on one process.

    Buffers come from dedicated ``mmap`` regions (not the malloc heap),
    so page size and offset are exact; :meth:`release` returns them.
    """

    def __init__(self, proc: OSProcess,
                 config: Optional[PlacementConfig] = None) -> None:
        self.proc = proc
        self.config = config if config is not None else PlacementConfig()
        self._live: Dict[int, PlacedBuffer] = {}

    def _page_size_for(self, size: int, policy: PlacementPolicy) -> int:
        if policy is PlacementPolicy.SMALL_PAGES:
            return PAGE_4K
        if policy is PlacementPolicy.HUGE_PAGES:
            return PAGE_2M
        cutoff = self.config.library.cutoff_bytes
        return PAGE_2M if size >= cutoff else PAGE_4K

    def place(
        self,
        size: int,
        policy: PlacementPolicy = PlacementPolicy.SIZE_BASED,
        offset: Optional[int] = None,
    ) -> PlacedBuffer:
        """Allocate *size* bytes per *policy*, starting *offset* bytes
        into the mapping (default: the configured sweet offset for
        sub-page buffers, page-aligned otherwise)."""
        if size <= 0:
            raise ValueError(f"buffer size must be positive, got {size}")
        if offset is None:
            offset = self.config.small_buffer_offset if size < PAGE_4K else 0
        if not 0 <= offset < PAGE_4K:
            raise ValueError(f"offset {offset} outside the first page")
        page_size = self._page_size_for(size, policy)
        try:
            vma = self.proc.aspace.mmap(size + offset, page_size=page_size,
                                        name=f"placed-{policy.value}")
        except HugePagePoolExhausted:
            # libhugetlbfs-style degradation: when the pool runs dry
            # mid-run, fall back to base pages rather than failing the
            # allocation — slower, never wrong
            page_size = PAGE_4K
            self.proc.counters.add("alloc.placer.fallback")
            vma = self.proc.aspace.mmap(size + offset, page_size=page_size,
                                        name=f"placed-{policy.value}")
        buf = PlacedBuffer(
            addr=vma.start + offset, size=size, page_size=page_size,
            vma_start=vma.start,
        )
        self._live[buf.addr] = buf
        return buf

    def release(self, buf: PlacedBuffer) -> None:
        """Unmap a placed buffer."""
        if self._live.pop(buf.addr, None) is None:
            raise ValueError(f"buffer {buf.addr:#x} is not live")
        self.proc.aspace.munmap(buf.vma_start)

    @property
    def live_buffers(self) -> int:
        """Number of outstanding placed buffers."""
        return len(self._live)
