"""Top-level placement configuration."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.alloc.hugepage_lib import HugepageLibraryConfig


@dataclass(frozen=True)
class PlacementConfig:
    """Everything the placement strategies need in one object.

    Attributes
    ----------
    library:
        Configuration of the transparent hugepage library (§3).
    small_buffer_offset:
        Preferred in-page start offset for latency-critical small
        buffers.  §4's measurements found the adapter/bus "optimized for
        certain offsets, e.g. at offset 64"; 64 is therefore the default.
    sge_aggregation_limit:
        Largest per-element size for which SGE aggregation of small
        buffers is preferred over separate sends (§4: up to 128 B, four
        same-size SGEs cost only ~14 % more than one).
    """

    library: HugepageLibraryConfig = field(default_factory=HugepageLibraryConfig)
    small_buffer_offset: int = 64
    sge_aggregation_limit: int = 128

    def __post_init__(self) -> None:
        if not 0 <= self.small_buffer_offset < 4096:
            raise ValueError("offset must lie inside one page")
        if self.sge_aggregation_limit < 1:
            raise ValueError("aggregation limit must be positive")
