"""Scatter-gather aggregation strategies for small buffers.

§4's argument: sending *k* small buffers as one work request with *k*
SGEs pays the fixed per-WQE costs (post, doorbell, WQE fetch, pipeline,
CQE, poll) once instead of *k* times — "the sending of 4 SGEs with same
sizes ... is only 14 % more costly" than one.  The alternatives an MPI
library has are separate sends, or packing through the CPU.

:func:`plan_aggregation` chooses between the three using the same cost
structure the simulated HCA charges, so the planner's decisions can be
validated against measured simulation results (see the ablation bench).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Sequence

from repro.core.config import PlacementConfig
from repro.ib.bus import BusConfig
from repro.ib.hca import HCAConfig


class AggregationStrategy(enum.Enum):
    """How to move a batch of small buffers."""

    #: one work request per buffer
    SEPARATE_SENDS = "separate"
    #: one work request, one SGE per buffer (§4's proposal)
    SGE_LIST = "sge"
    #: CPU-copy all buffers into one staging buffer, send one SGE
    CPU_PACK = "pack"


@dataclass(frozen=True)
class AggregationPlan:
    """The planner's verdict for one batch."""

    strategy: AggregationStrategy
    estimated_ns: dict
    n_buffers: int
    total_bytes: int


def estimate_send_overhead_ns(
    n_wrs: int, sges_per_wr: int, hca: HCAConfig, bus: BusConfig
) -> float:
    """Fixed-cost estimate of posting *n_wrs* work requests of
    *sges_per_wr* SGEs each (data streaming excluded — identical across
    strategies)."""
    per_wr = (
        hca.post_base_ns
        + bus.mmio_write_ns  # doorbell
        + bus.read_latency_ns  # WQE fetch
        + hca.process_ns
        + hca.cqe_write_ns
        + hca.poll_ns
        + bus.dma_setup_ns
    )
    per_sge = hca.post_per_sge_ns + hca.sge_extra_ns + bus.burst_ns
    return n_wrs * (per_wr + sges_per_wr * per_sge)


def plan_aggregation(
    buffer_sizes: Sequence[int],
    hca: HCAConfig = HCAConfig(),
    bus: BusConfig = None,
    config: PlacementConfig = None,
    copy_ns_per_byte: float = 0.8,
    copy_block_overhead_ns: float = 80.0,
    max_sge: int = 128,
) -> AggregationPlan:
    """Pick the cheapest strategy for a batch of small buffers.

    The CPU-pack estimate charges ``copy_ns_per_byte`` per packed byte
    plus ``copy_block_overhead_ns`` per block (small scattered copies are
    dominated by per-block cold misses, not bulk bandwidth); SGE
    aggregation is capped at *max_sge* elements per work request.
    """
    if not buffer_sizes:
        raise ValueError("need at least one buffer")
    if any(s <= 0 for s in buffer_sizes):
        raise ValueError("buffer sizes must be positive")
    if bus is None:
        from repro.ib.bus import pci_express_x8

        bus = pci_express_x8()
    if config is None:
        config = PlacementConfig()
    n = len(buffer_sizes)
    total = sum(buffer_sizes)
    n_wrs_sge = (n + max_sge - 1) // max_sge
    estimates = {
        AggregationStrategy.SEPARATE_SENDS: estimate_send_overhead_ns(n, 1, hca, bus),
        AggregationStrategy.SGE_LIST: estimate_send_overhead_ns(
            n_wrs_sge, min(n, max_sge), hca, bus
        ),
        AggregationStrategy.CPU_PACK: (
            estimate_send_overhead_ns(1, 1, hca, bus)
            + n * copy_block_overhead_ns
            + total * copy_ns_per_byte
        ),
    }
    best = min(estimates, key=lambda s: estimates[s])
    return AggregationPlan(
        strategy=best,
        estimated_ns={s.value: v for s, v in estimates.items()},
        n_buffers=n,
        total_bytes=total,
    )
