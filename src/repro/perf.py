"""Tracked performance harness: fast path vs reference path.

``repro perf`` times every figure driver twice — once with the batched
fast paths of :mod:`repro.fastpath` enabled, once forced onto the
reference per-element loops — and records, per benchmark:

- ``fast_s`` / ``ref_s``: best-of-N wall-clock seconds on each path,
- ``speedup``: ``ref_s / fast_s``,
- ``identical``: whether both paths produced *exactly* the same result
  payload (every reported tick, latency and counter-derived figure).

``identical: false`` anywhere is a hard failure — the fast paths exist
only because they are bit-equivalent (see ``docs/performance.md``).

Results are written to a JSON file (default ``BENCH_PR2.json``), keyed
by mode (``full`` / ``quick``) so a quick CI run compares against the
quick section of the committed baseline.  ``--compare BASELINE`` fails
(exit 1) when the headline ``fig5`` speedup regresses more than
``1 - REGRESSION_TOLERANCE`` relative to the baseline's same-mode entry
— a *ratio* of two timings on the same machine, so the check is
machine-independent.

The two sweep scales are deliberate: the paper-scale figure commands
(``repro fig5``/``fig6 --class W``) are event-bound and gain ~1.3x from
the fast paths; the perf benchmarks below run the same drivers at
production scale (messages to 64 MB, NAS class B) where per-page /
per-entry reference costing dominates and the batched paths pay off
3-4x.  Both scales are reported honestly.
"""

from __future__ import annotations

import json
import os
import platform
import sys
import time
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional

from repro import fastpath

KB = 1024
MB = 1024 * 1024

SCHEMA = "repro-perf/1"

#: ``--compare`` fails when fig5's speedup drops below this fraction of
#: the baseline's (0.8 = a >20 % regression fails)
REGRESSION_TOLERANCE = 0.8


# ---------------------------------------------------------------------------
# benchmark payloads
#
# Each benchmark returns a plain tuple of the driver's reported numbers.
# The harness runs it on both paths and compares the tuples with ``==``:
# any tick, latency or counter-derived value that diverges flips
# ``identical`` to false.
# ---------------------------------------------------------------------------

def _bench_fig3(quick: bool):
    """Fig 3 driver: SGE count/size sweep at the verbs level."""
    from repro.workloads.verbs_micro import measure_send

    sizes = [8, 64, 512, 2048] if quick else [1, 8, 32, 64, 128, 256, 512,
                                              1024, 2048]
    counts = [1, 2, 4, 8, 32, 128]
    return tuple(
        measure_send(sges=n, sge_size=s).total_ticks
        for s in sizes for n in counts
    )


def _bench_fig4(quick: bool):
    """Fig 4 driver: in-page offset sweep."""
    from repro.workloads.verbs_micro import measure_send

    offsets = range(0, 129, 32) if quick else range(0, 129, 8)
    sizes = [8, 16, 32, 64]
    return tuple(
        measure_send(sges=1, sge_size=s, offset=off).total_ticks
        for off in offsets for s in sizes
    )


def _bench_fig5(quick: bool):
    """Fig 5 driver (IMB SendRecv) at benchmark scale.

    Same 4 placement curves as ``repro fig5``, but swept to 64 MB
    messages — the regime the registration/ATT fast paths target.
    """
    from repro.systems import presets
    from repro.workloads.imb import SendRecvBenchmark

    bench = SendRecvBenchmark(presets.opteron_infinihost_pcie)
    if quick:
        sizes = [1 * MB, 4 * MB, 16 * MB, 32 * MB]
        curves = [(False, True), (True, True)]
        iterations = 3
    else:
        sizes = [256 * KB, 1 * MB, 4 * MB, 16 * MB, 64 * MB]
        curves = [(False, True), (True, True), (False, False), (True, False)]
        iterations = 5
    payload: List[tuple] = []
    for hugepages, lazy in curves:
        result = bench.run(sizes, hugepages=hugepages, lazy_dereg=lazy,
                           iterations=iterations, warmup=1)
        payload.extend(
            (hugepages, lazy, row.size, row.ticks_per_iter, row.latency_us,
             row.bandwidth_mb_s)
            for row in result.rows
        )
    return tuple(payload)


def _bench_fig6(quick: bool):
    """Fig 6 driver: the NAS hugepage comparison (class B; W when quick)."""
    from repro.systems import presets
    from repro.workloads.nas import KERNELS
    from repro.workloads.nas.common import compare_hugepages

    klass = "W" if quick else "B"
    payload: List[tuple] = []
    for name, prog in KERNELS.items():
        c = compare_hugepages(prog, presets.opteron_infinihost_pcie(),
                              klass=klass, nas_hugepage_pool=720)
        payload.append((
            name,
            c.small.total_ticks, c.huge.total_ticks,
            c.small.comm_ticks, c.huge.comm_ticks,
            c.small.compute_ticks, c.huge.compute_ticks,
            c.small.tlb_misses_4k, c.small.tlb_misses_2m,
            c.huge.tlb_misses_4k, c.huge.tlb_misses_2m,
            c.small.regcache_hits, c.small.regcache_misses,
            c.huge.regcache_hits, c.huge.regcache_misses,
        ))
    return tuple(payload)


def _bench_nas(quick: bool):
    """The NAS suite on 4 KB pages (class B; W when quick).

    The small-page configuration is the page-count-heavy half of Fig 6 —
    the regime where per-page reference loops dominate (the hugepage
    half has ~500x fewer pages and gains almost nothing, which is the
    paper's point).
    """
    from repro.systems import presets
    from repro.workloads.nas import KERNELS
    from repro.workloads.nas.common import run_nas

    klass = "W" if quick else "B"
    payload: List[tuple] = []
    for name, prog in KERNELS.items():
        r = run_nas(prog, presets.opteron_infinihost_pcie(), hugepages=False,
                    klass=klass, nas_hugepage_pool=720)
        payload.append((
            name, r.total_ticks, r.comm_ticks, r.compute_ticks, r.verified,
            r.tlb_misses_4k, r.tlb_misses_2m,
            r.regcache_hits, r.regcache_misses,
        ))
    return tuple(payload)


@dataclass
class BenchSpec:
    """One tracked benchmark: a driver and how often to repeat it."""

    name: str
    describe: str
    run: Callable[[bool], tuple]
    #: timed repetitions per path (min is reported); heavy drivers run once
    repeats: int
    quick_repeats: int


BENCHMARKS: List[BenchSpec] = [
    BenchSpec("fig3", "SGE sweep (verbs micro)", _bench_fig3, 3, 3),
    BenchSpec("fig4", "offset sweep (verbs micro)", _bench_fig4, 3, 3),
    BenchSpec("fig5", "IMB SendRecv placement-curve sweep", _bench_fig5, 2, 3),
    BenchSpec("fig6", "NAS hugepage comparison, class B", _bench_fig6, 1, 1),
    BenchSpec("nas", "NAS suite, 4 KB pages, class B", _bench_nas, 1, 1),
]


# ---------------------------------------------------------------------------
# the harness
# ---------------------------------------------------------------------------

def _prime() -> None:
    """Pay one-time import/setup costs before anything is timed."""
    from repro.workloads import imb, nas, verbs_micro  # noqa: F401
    from repro.workloads.verbs_micro import measure_send

    measure_send(sges=1, sge_size=64)


def _time_path(spec: BenchSpec, quick: bool, fast: bool):
    """Run *spec* on one path; returns ``(best_seconds, payload)``."""
    repeats = spec.quick_repeats if quick else spec.repeats
    best = float("inf")
    payload = None
    with fastpath.forced(fast):
        for _ in range(repeats):
            start = time.perf_counter()
            payload = spec.run(quick)
            best = min(best, time.perf_counter() - start)
    return best, payload


def run_benchmarks(quick: bool = False,
                   only: Optional[List[str]] = None) -> Dict[str, dict]:
    """Time every benchmark on both paths; returns the results mapping."""
    _prime()
    results: Dict[str, dict] = {}
    for spec in BENCHMARKS:
        if only and spec.name not in only:
            continue
        print(f"  {spec.name}: {spec.describe} ...", file=sys.stderr)
        fast_s, fast_payload = _time_path(spec, quick, fast=True)
        ref_s, ref_payload = _time_path(spec, quick, fast=False)
        identical = fast_payload == ref_payload
        results[spec.name] = {
            "describe": spec.describe,
            "fast_s": round(fast_s, 4),
            "ref_s": round(ref_s, 4),
            "speedup": round(ref_s / fast_s, 3) if fast_s else 0.0,
            "identical": identical,
        }
        print(f"  {spec.name}: fast={fast_s:.3f}s ref={ref_s:.3f}s "
              f"speedup={ref_s / fast_s:.2f}x identical={identical}",
              file=sys.stderr)
    return results


def render_results(mode: str, results: Dict[str, dict]) -> str:
    """A human-readable summary table."""
    from repro.analysis.report import Table

    table = Table(["benchmark", "fast [s]", "ref [s]", "speedup", "identical"],
                  title=f"repro perf ({mode} mode): fast path vs reference")
    for name, r in results.items():
        table.add_row([name, r["fast_s"], r["ref_s"],
                       f"{r['speedup']:.2f}x", str(r["identical"])])
    return table.render()


def write_results(path: str, mode: str, results: Dict[str, dict]) -> None:
    """Merge this run's *mode* section into the JSON file at *path*."""
    doc = {"schema": SCHEMA, "modes": {}}
    if os.path.exists(path):
        try:
            with open(path) as fh:
                existing = json.load(fh)
            if existing.get("schema") == SCHEMA:
                doc = existing
        except (OSError, ValueError):
            pass
    doc.setdefault("modes", {})[mode] = {
        # results-file metadata only; never feeds simulated state
        "created": time.strftime("%Y-%m-%dT%H:%M:%S"),  # detlint: ignore[wallclock]
        "python": platform.python_version(),
        "platform": platform.platform(),
        "results": results,
    }
    with open(path, "w") as fh:
        json.dump(doc, fh, indent=2, sort_keys=True)
        fh.write("\n")


def measure_trace_overhead(quick: bool = True, repeats: int = 3) -> Dict[str, float]:
    """Time the fig5 sweep with tracing disabled vs enabled.

    ``off_s`` is the default mode every figure command runs in: the
    instrumentation sites pay one module-global read plus a None check
    (see ``repro.trace``).  ``on_s`` carries the full span/counter
    sampling cost.  Returns best-of-*repeats* seconds for each plus the
    enabled-mode ``overhead`` fraction (``on_s / off_s - 1``).
    """
    from repro import trace

    spec = next(s for s in BENCHMARKS if s.name == "fig5")

    def best(traced: bool) -> float:
        out = float("inf")
        for _ in range(repeats):
            start = time.perf_counter()
            if traced:
                with trace.capturing(trace.Tracer()) as tracer:
                    spec.run(quick)
                    tracer.flush()
            else:
                spec.run(quick)
            out = min(out, time.perf_counter() - start)
        return out

    _prime()
    off_s = best(False)
    on_s = best(True)
    return {"off_s": round(off_s, 4), "on_s": round(on_s, 4),
            "overhead": round(on_s / off_s - 1.0, 4) if off_s else 0.0}


def measure_sanitize_overhead(quick: bool = True,
                              repeats: int = 3) -> Dict[str, float]:
    """Time the fig5 sweep with the sanitizer disabled vs enabled.

    ``off_s`` is the default mode: every hook site pays one module-global
    read plus a None check (see :mod:`repro.sanitize` — the same pattern
    as :mod:`repro.trace`).  ``on_s`` carries the full shadow-state
    bookkeeping for every group.  Returns best-of-*repeats* seconds for
    each plus the enabled-mode ``overhead`` fraction (``on_s/off_s - 1``).
    """
    from repro import sanitize

    spec = next(s for s in BENCHMARKS if s.name == "fig5")

    def best(sanitized: bool) -> float:
        out = float("inf")
        for _ in range(repeats):
            start = time.perf_counter()
            if sanitized:
                with sanitize.capturing(sanitize.Sanitizer()):
                    spec.run(quick)
            else:
                spec.run(quick)
            out = min(out, time.perf_counter() - start)
        return out

    _prime()
    off_s = best(False)
    on_s = best(True)
    return {"off_s": round(off_s, 4), "on_s": round(on_s, 4),
            "overhead": round(on_s / off_s - 1.0, 4) if off_s else 0.0}


def compare_results(baseline_path: str, mode: str,
                    results: Dict[str, dict],
                    max_slowdown: Optional[float] = None) -> List[str]:
    """Regression check against a committed baseline; returns failures.

    By default only speedup *ratios* are compared (same-machine fast vs
    ref), never absolute seconds, so the check holds across hardware.
    ``max_slowdown`` additionally bounds fig5's absolute ``fast_s``
    against the baseline's (e.g. 0.05 = fail past a 5 % slowdown) —
    only meaningful when baseline and current run share a machine
    class, which is why it is opt-in.
    """
    failures: List[str] = []
    try:
        with open(baseline_path) as fh:
            baseline = json.load(fh)
    except (OSError, ValueError) as exc:
        return [f"cannot read baseline {baseline_path}: {exc}"]
    section = (baseline.get("modes") or {}).get(mode)
    if section is None:
        return [f"baseline {baseline_path} has no '{mode}' section"]
    base = section.get("results", {})
    for name in ("fig5",):
        cur, ref = results.get(name), base.get(name)
        if cur is None or ref is None:
            continue
        floor = REGRESSION_TOLERANCE * ref["speedup"]
        if cur["speedup"] < floor:
            failures.append(
                f"{name}: speedup {cur['speedup']:.2f}x regressed >"
                f"{(1 - REGRESSION_TOLERANCE) * 100:.0f}% vs baseline "
                f"{ref['speedup']:.2f}x (floor {floor:.2f}x)"
            )
        if max_slowdown is not None:
            ceiling = (1.0 + max_slowdown) * ref["fast_s"]
            if cur["fast_s"] > ceiling:
                failures.append(
                    f"{name}: fast path {cur['fast_s']:.3f}s exceeds "
                    f"baseline {ref['fast_s']:.3f}s by more than "
                    f"{max_slowdown * 100:.0f}% (ceiling {ceiling:.3f}s)"
                )
    return failures


def run_perf(quick: bool = False, out: str = "BENCH_PR2.json",
             compare: Optional[str] = None,
             only: Optional[List[str]] = None,
             max_slowdown: Optional[float] = None,
             trace_overhead: bool = False,
             sanitize_overhead: bool = False) -> int:
    """The ``repro perf`` entry point; returns a process exit code."""
    mode = "quick" if quick else "full"
    if trace_overhead:
        oh = measure_trace_overhead(quick=quick)
        print(f"fig5 trace overhead: off={oh['off_s']:.3f}s "
              f"on={oh['on_s']:.3f}s (+{oh['overhead'] * 100:.1f}% when "
              f"tracing is enabled; disabled mode pays only the None check)")
    if sanitize_overhead:
        oh = measure_sanitize_overhead(quick=quick)
        print(f"fig5 sanitize overhead: off={oh['off_s']:.3f}s "
              f"on={oh['on_s']:.3f}s (+{oh['overhead'] * 100:.1f}% when "
              f"the sanitizer is enabled; disabled mode pays only the "
              f"None check)")
    results = run_benchmarks(quick=quick, only=only)
    print(render_results(mode, results))
    failures = [f"{name}: fast and reference paths diverged"
                for name, r in results.items() if not r["identical"]]
    if compare:
        failures += compare_results(compare, mode, results,
                                    max_slowdown=max_slowdown)
    if out:
        write_results(out, mode, results)
        print(f"\nresults written to {out} (mode: {mode})")
    if failures:
        for failure in failures:
            print(f"FAIL: {failure}", file=sys.stderr)
        return 1
    return 0
