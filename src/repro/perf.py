"""Tracked performance harness: fast path vs reference path.

``repro perf`` times every figure driver twice — once with the batched
fast paths of :mod:`repro.fastpath` enabled, once forced onto the
reference per-element loops — and records, per benchmark:

- ``fast_s`` / ``ref_s``: best-of-N wall-clock seconds on each path,
- ``speedup``: ``ref_s / fast_s``,
- ``identical``: whether both paths produced *exactly* the same result
  payload (every reported tick, latency and counter-derived figure).

``identical: false`` anywhere is a hard failure — the fast paths exist
only because they are bit-equivalent (see ``docs/performance.md``).

Results are written to a JSON file (default ``BENCH_PR2.json``), keyed
by mode (``full`` / ``quick``) so a quick CI run compares against the
quick section of the committed baseline.  ``--compare BASELINE`` fails
(exit 1) when the headline ``fig5`` speedup regresses more than
``1 - REGRESSION_TOLERANCE`` relative to the baseline's same-mode entry
— a *ratio* of two timings on the same machine, so the check is
machine-independent.

The two sweep scales are deliberate: the paper-scale figure commands
(``repro fig5``/``fig6 --class W``) are event-bound and gain ~1.3x from
the fast paths; the perf benchmarks below run the same drivers at
production scale (messages to 64 MB, NAS class B) where per-page /
per-entry reference costing dominates and the batched paths pay off
3-4x.  Both scales are reported honestly.

A second harness (``repro perf --scheduler-sweep``) covers the *kernel*
axis: it times the event-bound ``train`` benchmark (and fig5) under
both registered schedulers, requires byte-identical payloads, gates the
heap/calendar timing ratio, and measures the delivery-fold speedup
(fold on vs off) — results land in ``BENCH_PR9.json``.  Only ratios of
same-machine timings are gated, never absolute seconds, so the gate
holds in CI regardless of hardware (see ``docs/performance.md`` for the
honest numbers and why the paper-scale drivers are model-arithmetic-
bound rather than event-bound).
"""

from __future__ import annotations

import json
import os
import platform
import sys
import time
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional

from repro import fastpath

KB = 1024
MB = 1024 * 1024

SCHEMA = "repro-perf/1"

#: ``--compare`` fails when fig5's speedup drops below this fraction of
#: the baseline's (0.8 = a >20 % regression fails)
REGRESSION_TOLERANCE = 0.8

SCHED_SCHEMA = "repro-sched/1"

#: ``--scheduler-sweep`` fails when either scheduler is more than this
#: fraction slower than the other.  The known steady-state gap is ~1.25x
#: on the sparse-queue train (C-implemented heapq beats a pure-Python
#: calendar at ~30 pending events) and ~0.92x on fig5 (the calendar wins
#: once queues are deep) — 0.35 leaves headroom over the honest gap
#: while still failing on any real regression in either scheduler.
SCHED_TOLERANCE = 0.35


# ---------------------------------------------------------------------------
# benchmark payloads
#
# Each benchmark returns a plain tuple of the driver's reported numbers.
# The harness runs it on both paths and compares the tuples with ``==``:
# any tick, latency or counter-derived value that diverges flips
# ``identical`` to false.
# ---------------------------------------------------------------------------

def _bench_fig3(quick: bool):
    """Fig 3 driver: SGE count/size sweep at the verbs level."""
    from repro.workloads.verbs_micro import measure_send

    sizes = [8, 64, 512, 2048] if quick else [1, 8, 32, 64, 128, 256, 512,
                                              1024, 2048]
    counts = [1, 2, 4, 8, 32, 128]
    return tuple(
        measure_send(sges=n, sge_size=s).total_ticks
        for s in sizes for n in counts
    )


def _bench_fig4(quick: bool):
    """Fig 4 driver: in-page offset sweep."""
    from repro.workloads.verbs_micro import measure_send

    offsets = range(0, 129, 32) if quick else range(0, 129, 8)
    sizes = [8, 16, 32, 64]
    return tuple(
        measure_send(sges=1, sge_size=s, offset=off).total_ticks
        for off in offsets for s in sizes
    )


def _bench_fig5(quick: bool):
    """Fig 5 driver (IMB SendRecv) at benchmark scale.

    Same 4 placement curves as ``repro fig5``, but swept to 64 MB
    messages — the regime the registration/ATT fast paths target.
    """
    from repro.systems import presets
    from repro.workloads.imb import SendRecvBenchmark

    bench = SendRecvBenchmark(presets.opteron_infinihost_pcie)
    if quick:
        sizes = [1 * MB, 4 * MB, 16 * MB, 32 * MB]
        curves = [(False, True), (True, True)]
        iterations = 3
    else:
        sizes = [256 * KB, 1 * MB, 4 * MB, 16 * MB, 64 * MB]
        curves = [(False, True), (True, True), (False, False), (True, False)]
        iterations = 5
    payload: List[tuple] = []
    for hugepages, lazy in curves:
        result = bench.run(sizes, hugepages=hugepages, lazy_dereg=lazy,
                           iterations=iterations, warmup=1)
        payload.extend(
            (hugepages, lazy, row.size, row.ticks_per_iter, row.latency_us,
             row.bandwidth_mb_s)
            for row in result.rows
        )
    return tuple(payload)


def _bench_fig6(quick: bool):
    """Fig 6 driver: the NAS hugepage comparison (class B; W when quick)."""
    from repro.systems import presets
    from repro.workloads.nas import KERNELS
    from repro.workloads.nas.common import compare_hugepages

    klass = "W" if quick else "B"
    payload: List[tuple] = []
    for name, prog in KERNELS.items():
        c = compare_hugepages(prog, presets.opteron_infinihost_pcie(),
                              klass=klass, nas_hugepage_pool=720)
        payload.append((
            name,
            c.small.total_ticks, c.huge.total_ticks,
            c.small.comm_ticks, c.huge.comm_ticks,
            c.small.compute_ticks, c.huge.compute_ticks,
            c.small.tlb_misses_4k, c.small.tlb_misses_2m,
            c.huge.tlb_misses_4k, c.huge.tlb_misses_2m,
            c.small.regcache_hits, c.small.regcache_misses,
            c.huge.regcache_hits, c.huge.regcache_misses,
        ))
    return tuple(payload)


def _bench_nas(quick: bool):
    """The NAS suite on 4 KB pages (class B; W when quick).

    The small-page configuration is the page-count-heavy half of Fig 6 —
    the regime where per-page reference loops dominate (the hugepage
    half has ~500x fewer pages and gains almost nothing, which is the
    paper's point).
    """
    from repro.systems import presets
    from repro.workloads.nas import KERNELS
    from repro.workloads.nas.common import run_nas

    klass = "W" if quick else "B"
    payload: List[tuple] = []
    for name, prog in KERNELS.items():
        r = run_nas(prog, presets.opteron_infinihost_pcie(), hugepages=False,
                    klass=klass, nas_hugepage_pool=720)
        payload.append((
            name, r.total_ticks, r.comm_ticks, r.compute_ticks, r.verified,
            r.tlb_misses_4k, r.tlb_misses_2m,
            r.regcache_hits, r.regcache_misses,
        ))
    return tuple(payload)


def _bench_train(quick: bool):
    """Verbs message train (:mod:`repro.workloads.train`).

    The one benchmark that is genuinely event-kernel-bound: a windowed
    back-to-back train where nearly all simulated work is scheduling,
    dispatch, resource grants and completions — the regime the calendar
    scheduler and the folded delivery path target.  The payload carries
    the analytic period too, so any drift between the DES and the closed
    form flips ``identical``.
    """
    from repro.workloads.train import run_train

    count = 600 if quick else 2000
    payload: List[tuple] = []
    for msg_bytes, window in ((1024, 16), (4096, 4)):
        r = run_train(msg_bytes=msg_bytes, count=count, window=window)
        payload.append((
            msg_bytes, window, r.total_ticks, r.analytic_period_ticks,
            r.tx_messages, r.rx_messages,
        ))
    return tuple(payload)


@dataclass
class BenchSpec:
    """One tracked benchmark: a driver and how often to repeat it."""

    name: str
    describe: str
    run: Callable[[bool], tuple]
    #: timed repetitions per path (min is reported); heavy drivers run once
    repeats: int
    quick_repeats: int


BENCHMARKS: List[BenchSpec] = [
    BenchSpec("fig3", "SGE sweep (verbs micro)", _bench_fig3, 3, 3),
    BenchSpec("fig4", "offset sweep (verbs micro)", _bench_fig4, 3, 3),
    BenchSpec("fig5", "IMB SendRecv placement-curve sweep", _bench_fig5, 2, 3),
    BenchSpec("fig6", "NAS hugepage comparison, class B", _bench_fig6, 1, 1),
    BenchSpec("nas", "NAS suite, 4 KB pages, class B", _bench_nas, 1, 1),
    BenchSpec("train", "verbs message train (event-kernel bound)",
              _bench_train, 3, 3),
]


# ---------------------------------------------------------------------------
# the harness
# ---------------------------------------------------------------------------

def _prime() -> None:
    """Pay one-time import/setup costs before anything is timed."""
    from repro.workloads import imb, nas, verbs_micro  # noqa: F401
    from repro.workloads.verbs_micro import measure_send

    measure_send(sges=1, sge_size=64)


def _time_path(spec: BenchSpec, quick: bool, fast: bool):
    """Run *spec* on one path; returns ``(best_seconds, payload)``."""
    repeats = spec.quick_repeats if quick else spec.repeats
    best = float("inf")
    payload = None
    with fastpath.forced(fast):
        for _ in range(repeats):
            start = time.perf_counter()
            payload = spec.run(quick)
            best = min(best, time.perf_counter() - start)
    return best, payload


def run_benchmarks(quick: bool = False,
                   only: Optional[List[str]] = None) -> Dict[str, dict]:
    """Time every benchmark on both paths; returns the results mapping."""
    _prime()
    results: Dict[str, dict] = {}
    for spec in BENCHMARKS:
        if only and spec.name not in only:
            continue
        print(f"  {spec.name}: {spec.describe} ...", file=sys.stderr)
        fast_s, fast_payload = _time_path(spec, quick, fast=True)
        ref_s, ref_payload = _time_path(spec, quick, fast=False)
        identical = fast_payload == ref_payload
        results[spec.name] = {
            "describe": spec.describe,
            "fast_s": round(fast_s, 4),
            "ref_s": round(ref_s, 4),
            "speedup": round(ref_s / fast_s, 3) if fast_s else 0.0,
            "identical": identical,
        }
        print(f"  {spec.name}: fast={fast_s:.3f}s ref={ref_s:.3f}s "
              f"speedup={ref_s / fast_s:.2f}x identical={identical}",
              file=sys.stderr)
    return results


def render_results(mode: str, results: Dict[str, dict]) -> str:
    """A human-readable summary table."""
    from repro.analysis.report import Table

    table = Table(["benchmark", "fast [s]", "ref [s]", "speedup", "identical"],
                  title=f"repro perf ({mode} mode): fast path vs reference")
    for name, r in results.items():
        table.add_row([name, r["fast_s"], r["ref_s"],
                       f"{r['speedup']:.2f}x", str(r["identical"])])
    return table.render()


def write_results(path: str, mode: str, results: Dict[str, dict]) -> None:
    """Merge this run's *mode* section into the JSON file at *path*."""
    doc = {"schema": SCHEMA, "modes": {}}
    if os.path.exists(path):
        try:
            with open(path) as fh:
                existing = json.load(fh)
            if existing.get("schema") == SCHEMA:
                doc = existing
        except (OSError, ValueError):
            pass
    doc.setdefault("modes", {})[mode] = {
        # results-file metadata only; never feeds simulated state
        "created": time.strftime("%Y-%m-%dT%H:%M:%S"),  # detlint: ignore[wallclock]
        "python": platform.python_version(),
        "platform": platform.platform(),
        "results": results,
    }
    with open(path, "w") as fh:
        json.dump(doc, fh, indent=2, sort_keys=True)
        fh.write("\n")


def measure_trace_overhead(quick: bool = True, repeats: int = 3) -> Dict[str, float]:
    """Time the fig5 sweep with tracing disabled vs enabled.

    ``off_s`` is the default mode every figure command runs in: the
    instrumentation sites pay one module-global read plus a None check
    (see ``repro.trace``).  ``on_s`` carries the full span/counter
    sampling cost.  Returns best-of-*repeats* seconds for each plus the
    enabled-mode ``overhead`` fraction (``on_s / off_s - 1``).
    """
    from repro import trace

    spec = next(s for s in BENCHMARKS if s.name == "fig5")

    def best(traced: bool) -> float:
        out = float("inf")
        for _ in range(repeats):
            start = time.perf_counter()
            if traced:
                with trace.capturing(trace.Tracer()) as tracer:
                    spec.run(quick)
                    tracer.flush()
            else:
                spec.run(quick)
            out = min(out, time.perf_counter() - start)
        return out

    _prime()
    off_s = best(False)
    on_s = best(True)
    return {"off_s": round(off_s, 4), "on_s": round(on_s, 4),
            "overhead": round(on_s / off_s - 1.0, 4) if off_s else 0.0}


def measure_sanitize_overhead(quick: bool = True,
                              repeats: int = 3) -> Dict[str, float]:
    """Time the fig5 sweep with the sanitizer disabled vs enabled.

    ``off_s`` is the default mode: every hook site pays one module-global
    read plus a None check (see :mod:`repro.sanitize` — the same pattern
    as :mod:`repro.trace`).  ``on_s`` carries the full shadow-state
    bookkeeping for every group.  Returns best-of-*repeats* seconds for
    each plus the enabled-mode ``overhead`` fraction (``on_s/off_s - 1``).
    """
    from repro import sanitize

    spec = next(s for s in BENCHMARKS if s.name == "fig5")

    def best(sanitized: bool) -> float:
        out = float("inf")
        for _ in range(repeats):
            start = time.perf_counter()
            if sanitized:
                with sanitize.capturing(sanitize.Sanitizer()):
                    spec.run(quick)
            else:
                spec.run(quick)
            out = min(out, time.perf_counter() - start)
        return out

    _prime()
    off_s = best(False)
    on_s = best(True)
    return {"off_s": round(off_s, 4), "on_s": round(on_s, 4),
            "overhead": round(on_s / off_s - 1.0, 4) if off_s else 0.0}


def measure_scheduler_sweep(quick: bool = True,
                            names: tuple = ("train", "fig5")) -> Dict[str, dict]:
    """Time the named benchmarks under every registered scheduler.

    Returns per benchmark: best-of-N seconds under ``heap`` and
    ``calendar``, the slow/fast ``ratio`` between them, and whether the
    payloads were byte-identical (they must be — the schedulers are
    pinned to dispatch in the same order).
    """
    from repro.engine import default_scheduler, set_default_scheduler

    _prime()
    out: Dict[str, dict] = {}
    prior = default_scheduler()
    try:
        for spec in BENCHMARKS:
            if spec.name not in names:
                continue
            repeats = spec.quick_repeats if quick else spec.repeats
            times: Dict[str, float] = {}
            payloads: Dict[str, tuple] = {}
            for kind in ("heap", "calendar"):
                set_default_scheduler(kind)
                best = float("inf")
                for _ in range(repeats):
                    start = time.perf_counter()
                    payloads[kind] = spec.run(quick)
                    best = min(best, time.perf_counter() - start)
                times[kind] = best
            slow, fast = max(times.values()), min(times.values())
            out[spec.name] = {
                "heap_s": round(times["heap"], 4),
                "calendar_s": round(times["calendar"], 4),
                "ratio": round(slow / fast, 3) if fast else 0.0,
                "identical": payloads["heap"] == payloads["calendar"],
            }
            print(f"  {spec.name}: heap={times['heap']:.3f}s "
                  f"calendar={times['calendar']:.3f}s "
                  f"ratio={slow / fast:.2f}x "
                  f"identical={out[spec.name]['identical']}",
                  file=sys.stderr)
    finally:
        set_default_scheduler(prior)
    return out


def measure_fold_speedup(quick: bool = True, repeats: int = 3) -> Dict[str, float]:
    """Time the train with the delivery folds on vs off.

    ``fold_s`` is the default mode (callback chains); ``nofold_s`` pins
    the per-message generator machinery the folds replace
    (``REPRO_NO_FOLD``).  Both must produce identical ticks; the speedup
    is reported honestly — the fold removes events and generator
    resumes, not model arithmetic, so expect ~1.1-1.3x on the train and
    ~1.0x on the figure drivers (see ``docs/performance.md``).
    """
    spec = next(s for s in BENCHMARKS if s.name == "train")
    _prime()
    times: Dict[bool, float] = {}
    payloads: Dict[bool, tuple] = {}
    for folded in (True, False):
        with fastpath.fold_forced(folded):
            best = float("inf")
            for _ in range(repeats):
                start = time.perf_counter()
                payloads[folded] = spec.run(quick)
                best = min(best, time.perf_counter() - start)
            times[folded] = best
    return {
        "fold_s": round(times[True], 4),
        "nofold_s": round(times[False], 4),
        "speedup": round(times[False] / times[True], 3) if times[True] else 0.0,
        "identical": payloads[True] == payloads[False],
    }


def write_sched_results(path: str, mode: str, sweep: Dict[str, dict],
                        fold: Dict[str, float],
                        tolerance: float = SCHED_TOLERANCE) -> None:
    """Merge this run's *mode* section into the scheduler results file."""
    doc = {"schema": SCHED_SCHEMA, "modes": {}}
    if os.path.exists(path):
        try:
            with open(path) as fh:
                existing = json.load(fh)
            if existing.get("schema") == SCHED_SCHEMA:
                doc = existing
        except (OSError, ValueError):
            pass
    doc.setdefault("modes", {})[mode] = {
        # results-file metadata only; never feeds simulated state
        "created": time.strftime("%Y-%m-%dT%H:%M:%S"),  # detlint: ignore[wallclock]
        "python": platform.python_version(),
        "platform": platform.platform(),
        "tolerance": tolerance,
        "sweep": sweep,
        "fold": fold,
    }
    with open(path, "w") as fh:
        json.dump(doc, fh, indent=2, sort_keys=True)
        fh.write("\n")


def run_sched_gate(quick: bool = False, out: str = "BENCH_PR9.json",
                   tolerance: float = SCHED_TOLERANCE) -> List[str]:
    """The ``--scheduler-sweep`` half of ``repro perf``.

    Runs the sweep and the fold measurement, writes *out*, and returns
    gate failures: payload divergence anywhere (hard identity), or a
    heap/calendar timing gap beyond *tolerance* — a same-machine ratio,
    so the gate is hardware-independent.  The fold *speedup* is recorded
    but not gated (it is honest measurement, not a promise).
    """
    mode = "quick" if quick else "full"
    print(f"  scheduler sweep ({mode} mode) ...", file=sys.stderr)
    sweep = measure_scheduler_sweep(quick=quick)
    fold = measure_fold_speedup(quick=quick)
    print(f"  train fold: fold={fold['fold_s']:.3f}s "
          f"nofold={fold['nofold_s']:.3f}s speedup={fold['speedup']:.2f}x "
          f"identical={fold['identical']}", file=sys.stderr)
    failures: List[str] = []
    for name, r in sweep.items():
        if not r["identical"]:
            failures.append(f"{name}: heap and calendar payloads diverged")
        if r["ratio"] > 1.0 + tolerance:
            failures.append(
                f"{name}: scheduler timing gap {r['ratio']:.2f}x exceeds "
                f"{(1 + tolerance):.2f}x (heap {r['heap_s']:.3f}s vs "
                f"calendar {r['calendar_s']:.3f}s)"
            )
    if not fold["identical"]:
        failures.append("train: folded and process-machinery ticks diverged")
    if out:
        write_sched_results(out, mode, sweep, fold, tolerance)
        print(f"scheduler results written to {out} (mode: {mode})")
    return failures


def compare_results(baseline_path: str, mode: str,
                    results: Dict[str, dict],
                    max_slowdown: Optional[float] = None) -> List[str]:
    """Regression check against a committed baseline; returns failures.

    By default only speedup *ratios* are compared (same-machine fast vs
    ref), never absolute seconds, so the check holds across hardware.
    ``max_slowdown`` additionally bounds fig5's absolute ``fast_s``
    against the baseline's (e.g. 0.05 = fail past a 5 % slowdown) —
    only meaningful when baseline and current run share a machine
    class, which is why it is opt-in.
    """
    failures: List[str] = []
    try:
        with open(baseline_path) as fh:
            baseline = json.load(fh)
    except (OSError, ValueError) as exc:
        return [f"cannot read baseline {baseline_path}: {exc}"]
    section = (baseline.get("modes") or {}).get(mode)
    if section is None:
        return [f"baseline {baseline_path} has no '{mode}' section"]
    base = section.get("results", {})
    for name in ("fig5",):
        cur, ref = results.get(name), base.get(name)
        if cur is None or ref is None:
            continue
        floor = REGRESSION_TOLERANCE * ref["speedup"]
        if cur["speedup"] < floor:
            failures.append(
                f"{name}: speedup {cur['speedup']:.2f}x regressed >"
                f"{(1 - REGRESSION_TOLERANCE) * 100:.0f}% vs baseline "
                f"{ref['speedup']:.2f}x (floor {floor:.2f}x)"
            )
        if max_slowdown is not None:
            ceiling = (1.0 + max_slowdown) * ref["fast_s"]
            if cur["fast_s"] > ceiling:
                failures.append(
                    f"{name}: fast path {cur['fast_s']:.3f}s exceeds "
                    f"baseline {ref['fast_s']:.3f}s by more than "
                    f"{max_slowdown * 100:.0f}% (ceiling {ceiling:.3f}s)"
                )
    return failures


def run_perf(quick: bool = False, out: str = "BENCH_PR2.json",
             compare: Optional[str] = None,
             only: Optional[List[str]] = None,
             max_slowdown: Optional[float] = None,
             trace_overhead: bool = False,
             sanitize_overhead: bool = False,
             scheduler_sweep: bool = False,
             sched_out: str = "BENCH_PR9.json") -> int:
    """The ``repro perf`` entry point; returns a process exit code."""
    mode = "quick" if quick else "full"
    if scheduler_sweep:
        failures = run_sched_gate(quick=quick, out=sched_out)
        if failures:
            for failure in failures:
                print(f"FAIL: {failure}", file=sys.stderr)
            return 1
        return 0
    if trace_overhead:
        oh = measure_trace_overhead(quick=quick)
        print(f"fig5 trace overhead: off={oh['off_s']:.3f}s "
              f"on={oh['on_s']:.3f}s (+{oh['overhead'] * 100:.1f}% when "
              f"tracing is enabled; disabled mode pays only the None check)")
    if sanitize_overhead:
        oh = measure_sanitize_overhead(quick=quick)
        print(f"fig5 sanitize overhead: off={oh['off_s']:.3f}s "
              f"on={oh['on_s']:.3f}s (+{oh['overhead'] * 100:.1f}% when "
              f"the sanitizer is enabled; disabled mode pays only the "
              f"None check)")
    results = run_benchmarks(quick=quick, only=only)
    print(render_results(mode, results))
    failures = [f"{name}: fast and reference paths diverged"
                for name, r in results.items() if not r["identical"]]
    if compare:
        failures += compare_results(compare, mode, results,
                                    max_slowdown=max_slowdown)
    if out:
        write_results(out, mode, results)
        print(f"\nresults written to {out} (mode: {mode})")
    if failures:
        for failure in failures:
            print(f"FAIL: {failure}", file=sys.stderr)
        return 1
    return 0
