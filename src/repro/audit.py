"""Cross-layer invariant auditor.

Checks the relationships *between* the simulator's layers that no single
layer can see broken on its own:

- every registered MR's pages are mapped and pinned in some owning
  address space, and every ATT cache entry translates a live region
  within its uploaded entry range;
- every TLB entry whose virtual page still belongs to a live VMA is
  backed by a leaf PTE of the matching page size, and every data-cache
  line points into physical memory;
- allocator metadata is sound: heap blocks non-overlapping with
  consistent linkage, fastbin/sorted-bin members real, the hugepage
  library's free list acyclic/sorted and disjoint from live blocks;
- the event heap is time-monotonic and a well-formed heap;
- QP/CQ bookkeeping balances posted against completed work requests.

Runnable standalone (the drivers' ``--audit`` flag), at every snapshot
boundary (:class:`repro.checkpoint.RunCheckpointer` calls
:func:`assert_clean` before saving), and directly from tests that
deliberately corrupt state to prove each check fires.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List

from repro.mem.physical import PAGE_2M, PAGE_4K


@dataclass
class Violation:
    """One broken invariant, with enough context to debug it."""

    check: str
    location: str
    message: str
    context: Dict[str, Any] = field(default_factory=dict)

    def __str__(self) -> str:
        ctx = ""
        if self.context:
            pairs = ", ".join(f"{k}={v!r}" for k, v in sorted(self.context.items()))
            ctx = f" ({pairs})"
        return f"[{self.check}] {self.location}: {self.message}{ctx}"


class AuditError(Exception):
    """Raised by :func:`assert_clean` when any invariant is broken."""

    def __init__(self, violations: List[Violation], label: str = "cluster"):
        self.violations = violations
        super().__init__(
            f"audit of {label} found {len(violations)} violation(s):\n"
            + render(violations)
        )


def render(violations: List[Violation]) -> str:
    """Render violations one per line (empty string when clean)."""
    return "\n".join(str(v) for v in violations)


# ---------------------------------------------------------------------------
# engine
# ---------------------------------------------------------------------------

def audit_kernel(kernel, label: str = "kernel") -> List[Violation]:
    """Event-scheduler invariants: time monotonicity, seq sanity, plus
    the structural invariants of whichever scheduler backs the kernel."""
    violations = []
    sched = kernel._sched
    entries = sched.entries()
    for when, priority, seq, ev in entries:
        if when < kernel._now:
            violations.append(Violation(
                check="event-heap", location=label,
                message=f"event scheduled in the past (t={when} < now={kernel._now})",
                context={"seq": seq, "priority": priority, "type": type(ev).__name__},
            ))
        if seq > kernel._seq:
            violations.append(Violation(
                check="event-heap", location=label,
                message=f"event seq {seq} exceeds kernel seq {kernel._seq}",
                context={"when": when},
            ))
    seqs = [e[2] for e in entries]
    if len(set(seqs)) != len(seqs):
        violations.append(Violation(
            check="event-heap", location=label,
            message="duplicate event sequence numbers in the scheduler",
            context={"entries": len(entries)},
        ))
    if sched.kind == "heap":
        queue = sched._heap
        for i in range(len(queue)):
            for child in (2 * i + 1, 2 * i + 2):
                if child < len(queue) and queue[child][:3] < queue[i][:3]:
                    violations.append(Violation(
                        check="event-heap", location=label,
                        message=f"heap property broken at index {i} (child {child} sorts first)",
                        context={"parent": queue[i][:3], "child": queue[child][:3]},
                    ))
    elif sched.kind == "calendar":
        # every bucket holds entries of exactly one slot, within the
        # ring horizon; the ring count matches the bucket contents
        count = 0
        for idx, bucket in enumerate(sched._buckets):
            count += len(bucket)
            slots = {e[0] >> sched._shift for e in bucket}
            if len(slots) > 1:
                violations.append(Violation(
                    check="event-heap", location=label,
                    message=f"calendar bucket {idx} spans {len(slots)} slots",
                    context={"slots": sorted(slots)},
                ))
            for slot in slots:
                if (slot & sched._mask) != idx:
                    violations.append(Violation(
                        check="event-heap", location=label,
                        message=f"entry for slot {slot} filed in bucket {idx}",
                        context={},
                    ))
                if not 0 <= slot - sched._cursor <= sched._mask:
                    violations.append(Violation(
                        check="event-heap", location=label,
                        message=f"slot {slot} outside ring horizon",
                        context={"cursor": sched._cursor},
                    ))
        if count != sched._count:
            violations.append(Violation(
                check="event-heap", location=label,
                message=f"ring count {sched._count} != bucket total {count}",
                context={},
            ))
    return violations


# ---------------------------------------------------------------------------
# memory / IB
# ---------------------------------------------------------------------------

def _audit_mrs(machine, label: str) -> List[Violation]:
    violations = []
    procs = machine.processes
    for mr in machine.hca._mrs_by_lkey.values():
        if not mr.registered:
            continue
        # separate per-process address spaces may reuse virtual addresses,
        # so the MR passes if *any* process fully maps and pins its range
        best_reason = None
        satisfied = False
        for proc in procs:
            if proc.aspace.find_vma(mr.vaddr) is None:
                continue
            try:
                entries = list(proc.aspace.page_table.pages_in_range(mr.vaddr, mr.length))
            except Exception:
                best_reason = best_reason or (
                    f"range [{mr.vaddr:#x}, +{mr.length}) is partially unmapped "
                    f"in {proc.name}"
                )
                continue
            unpinned = [e.vaddr for e in entries if e.pin_count < 1]
            if unpinned:
                best_reason = (
                    f"page {unpinned[0]:#x} of registered range is not pinned "
                    f"in {proc.name}"
                )
                continue
            satisfied = True
            break
        if not satisfied:
            violations.append(Violation(
                check="mr-pinning", location=f"{label}/MR{mr.mr_id}",
                message=best_reason or "no process maps the registered range",
                context={"vaddr": hex(mr.vaddr), "length": mr.length,
                         "lkey": hex(mr.lkey), "entries": mr.n_entries},
            ))
    return violations


def _audit_att(machine, label: str) -> List[Violation]:
    violations = []
    live = {mr.mr_id: mr for mr in machine.hca._mrs_by_lkey.values() if mr.registered}
    for mr_id, entry_index in machine.att._cache:
        mr = live.get(mr_id)
        if mr is None:
            violations.append(Violation(
                check="att-stale", location=f"{label}/att",
                message=f"cached translation for unknown or deregistered MR {mr_id}",
                context={"entry_index": entry_index},
            ))
        elif not (0 <= entry_index < mr.n_entries):
            violations.append(Violation(
                check="att-stale", location=f"{label}/att",
                message=(
                    f"entry index {entry_index} outside MR {mr_id}'s "
                    f"uploaded range [0, {mr.n_entries})"
                ),
                context={"entry_page_size": mr.entry_page_size},
            ))
    return violations


def _audit_proc_memory(proc, machine, label: str) -> List[Violation]:
    violations = []
    aspace = proc.aspace
    # TLB: a vpage still inside a live VMA must have a live PTE at the
    # TLB's page size.  A vpage with no VMA is benign staleness — real
    # hardware keeps entries after munmap until eviction or shootdown.
    for size, tlb_name in ((PAGE_4K, "tlb.4k"), (PAGE_2M, "tlb.2m")):
        table = aspace.page_table.leaf_table(size)
        for vpage in proc.engine.tlb._arrays[size]:
            vma = aspace.find_vma(vpage)
            if vma is not None and vpage not in table:
                violations.append(Violation(
                    check="tlb-dangling", location=f"{label}/{tlb_name}",
                    message=(
                        f"TLB holds {vpage:#x} inside live VMA "
                        f"[{vma.start:#x}, +{vma.length}) but no "
                        f"{size}-byte PTE backs it"
                    ),
                    context={"vma_kind": vma.kind, "vma_page_size": vma.page_size},
                ))
    total = machine.physical.total_bytes
    line_size = proc.engine.cache.config.line_size
    for line in proc.engine.cache._lines:
        paddr = line * line_size
        if not (0 <= paddr < total):
            violations.append(Violation(
                check="cache-backing", location=f"{label}/cache",
                message=f"cached line at paddr {paddr:#x} outside physical memory",
                context={"total_bytes": total},
            ))
    return violations


# ---------------------------------------------------------------------------
# allocators
# ---------------------------------------------------------------------------

def _audit_libc(proc, label: str) -> List[Violation]:
    violations = []
    libc = proc.libc
    blocks = libc._blocks
    ordered = sorted(blocks.values(), key=lambda b: b.addr)
    for a, b in zip(ordered, ordered[1:]):
        if a.addr + a.size > b.addr:
            violations.append(Violation(
                check="alloc-overlap", location=f"{label}/libc",
                message=f"heap blocks {a.addr:#x}(+{a.size}) and {b.addr:#x} overlap",
                context={"a_free": a.free, "b_free": b.free},
            ))
    for block in ordered:
        for direction, neighbour in (("next", block.next), ("prev", block.prev)):
            if neighbour is None:
                continue
            other = blocks.get(neighbour)
            if other is None:
                violations.append(Violation(
                    check="alloc-linkage", location=f"{label}/libc",
                    message=f"block {block.addr:#x}.{direction} points at "
                            f"missing block {neighbour:#x}",
                ))
            else:
                back = other.prev if direction == "next" else other.next
                if back != block.addr:
                    violations.append(Violation(
                        check="alloc-linkage", location=f"{label}/libc",
                        message=(
                            f"asymmetric links: {block.addr:#x}.{direction} -> "
                            f"{neighbour:#x} but its back-link is "
                            f"{back if back is None else hex(back)}"
                        ),
                    ))
    for size, addrs in libc._fastbins.items():
        for addr in addrs:
            block = blocks.get(addr)
            if block is None or not block.in_fastbin:
                violations.append(Violation(
                    check="alloc-freelist", location=f"{label}/libc",
                    message=f"fastbin[{size}] references "
                            f"{'missing' if block is None else 'non-fastbin'} "
                            f"block {addr:#x}",
                ))
    for size, addr in libc._sorted_bin:
        block = blocks.get(addr)
        if block is None or not block.free or block.size != size:
            violations.append(Violation(
                check="alloc-freelist", location=f"{label}/libc",
                message=f"sorted bin entry ({size}, {addr:#x}) does not match a "
                        f"free block of that size",
                context={"exists": block is not None,
                         "free": getattr(block, "free", None),
                         "actual_size": getattr(block, "size", None)},
            ))
    return violations


def _audit_hugepage_lib(proc, label: str) -> List[Violation]:
    violations = []
    alloc = proc.allocator
    if alloc is proc.libc:
        return violations
    freelist = alloc.management.freelist
    if not freelist.invariant_ok():
        violations.append(Violation(
            check="alloc-freelist", location=f"{label}/hugepage_lib",
            message="chunk free list is unsorted, misaligned or self-overlapping",
            context={"extents": [(hex(e.start), e.n_chunks) for e in freelist.extents][:8]},
        ))
    from repro.alloc.freelist import CHUNK_SIZE

    live = sorted(alloc.management._live.items())
    for start, n_chunks in live:
        end = start + n_chunks * CHUNK_SIZE
        for extent in freelist.extents:
            if extent.start < end and start < extent.end:
                violations.append(Violation(
                    check="alloc-overlap", location=f"{label}/hugepage_lib",
                    message=(
                        f"free extent [{extent.start:#x}, {extent.end:#x}) overlaps "
                        f"live block [{start:#x}, {end:#x})"
                    ),
                    context={"live_chunks": n_chunks, "free_chunks": extent.n_chunks},
                ))
    return violations


# ---------------------------------------------------------------------------
# QP / CQ bookkeeping
# ---------------------------------------------------------------------------

def _audit_qps(machine, label: str) -> List[Violation]:
    violations = []
    hca = machine.hca
    outstanding_per_qp: Dict[int, int] = {}
    for qp, _wr in hca._outstanding.values():
        outstanding_per_qp[qp.qp_num] = outstanding_per_qp.get(qp.qp_num, 0) + 1
    for qp in hca._qps.values():
        in_use = qp.wr_slots.in_use
        if in_use > qp.max_send_wr:
            violations.append(Violation(
                check="qp-balance", location=f"{label}/QP{qp.qp_num}",
                message=f"{in_use} WR slots in use exceeds queue depth {qp.max_send_wr}",
            ))
        accounted = len(qp.send_q.items) + outstanding_per_qp.get(qp.qp_num, 0)
        if in_use < accounted:
            violations.append(Violation(
                check="qp-balance", location=f"{label}/QP{qp.qp_num}",
                message=(
                    f"{accounted} WRs queued or outstanding but only "
                    f"{in_use} send slots held — completions outran posts"
                ),
                context={"queued": len(qp.send_q.items),
                         "outstanding": outstanding_per_qp.get(qp.qp_num, 0)},
            ))
        stores = [("send_q", qp.send_q), ("recv_q", qp.recv_q)]
        for cq_name, cq in (("send_cq", qp.send_cq), ("recv_cq", qp.recv_cq)):
            if cq is not None:
                stores.append((cq_name, cq.store))
        for store_name, store in stores:
            if store._items and store._getters:
                violations.append(Violation(
                    check="qp-balance", location=f"{label}/QP{qp.qp_num}/{store_name}",
                    message=(
                        f"{len(store._items)} items waiting while "
                        f"{len(store._getters)} getters block — dispatch wedged"
                    ),
                ))
    return violations


# ---------------------------------------------------------------------------
# entry points
# ---------------------------------------------------------------------------

def audit_machine(machine, label: str = "") -> List[Violation]:
    """All per-node checks for one :class:`~repro.systems.machine.Machine`."""
    label = label or machine.name
    violations = []
    violations += _audit_mrs(machine, label)
    violations += _audit_att(machine, label)
    violations += _audit_qps(machine, label)
    for proc in machine.processes:
        proc_label = f"{label}/{proc.name}"
        violations += _audit_proc_memory(proc, machine, proc_label)
        violations += _audit_libc(proc, proc_label)
        violations += _audit_hugepage_lib(proc, proc_label)
    return violations


def audit_cluster(cluster, label: str = "cluster") -> List[Violation]:
    """Every invariant across *cluster*, most severe checks first."""
    violations = audit_kernel(cluster.kernel, label=f"{label}/kernel")
    for node in cluster.nodes:
        violations += audit_machine(node, label=f"{label}/{node.name}")
    return violations


def assert_clean(cluster, label: str = "cluster") -> None:
    """Raise :class:`AuditError` unless *cluster* passes every check."""
    violations = audit_cluster(cluster, label=label)
    if violations:
        raise AuditError(violations, label=label)
