"""Page tables.

A :class:`PageTable` maps virtual page bases to :class:`PageTableEntry`
records for two page sizes (4 KB base pages and 2 MB hugepages, which on
x86-64 are leaf entries one level up the radix tree — hence the cheaper
walk).  Translation returns both the physical address and the page size so
callers (TLB, registration engine, DMA) can behave page-size-aware.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterator, Optional, Tuple

from repro.mem.physical import PAGE_2M, PAGE_4K, align_down


class TranslationFault(Exception):
    """Raised when a virtual address has no mapping (a segfault)."""

    def __init__(self, vaddr: int):
        super().__init__(f"no translation for {vaddr:#x}")
        self.vaddr = vaddr


@dataclass(slots=True)
class PageTableEntry:
    """One leaf translation.

    Attributes
    ----------
    vaddr: virtual page base.
    paddr: physical frame base.
    page_size: 4096 or 2 MB.
    pin_count: number of holders that pinned this page (registration).
    """

    vaddr: int
    paddr: int
    page_size: int
    pin_count: int = 0
    #: Copy-on-Write: shared with another address space after a fork;
    #: the first write must copy the frame
    cow: bool = False

    @property
    def pinned(self) -> bool:
        """True while at least one registration pins the page."""
        return self.pin_count > 0


class PageTable:
    """A two-granularity page table for one address space."""

    #: page-walk depth for each page size (x86-64: 4 levels for 4 KB
    #: leaves, 3 for 2 MB leaves)
    WALK_LEVELS = {PAGE_4K: 4, PAGE_2M: 3}

    def __init__(self) -> None:
        self._small: Dict[int, PageTableEntry] = {}
        self._huge: Dict[int, PageTableEntry] = {}

    # -- mapping -----------------------------------------------------------
    def map(self, vaddr: int, paddr: int, page_size: int) -> PageTableEntry:
        """Install a leaf translation; *vaddr*/*paddr* must be aligned."""
        if page_size not in (PAGE_4K, PAGE_2M):
            raise ValueError(f"unsupported page size {page_size}")
        if vaddr % page_size or paddr % page_size:
            raise ValueError(
                f"unaligned mapping {vaddr:#x} -> {paddr:#x} ({page_size} B page)"
            )
        table = self._huge if page_size == PAGE_2M else self._small
        if vaddr in table:
            raise ValueError(f"{vaddr:#x} is already mapped")
        if page_size == PAGE_2M and any(
            vaddr <= sm < vaddr + PAGE_2M for sm in self._small
        ):
            raise ValueError(f"{vaddr:#x} overlaps existing 4 KB mappings")
        entry = PageTableEntry(vaddr=vaddr, paddr=paddr, page_size=page_size)
        table[vaddr] = entry
        return entry

    def bulk_map(self, vaddr: int, frames, page_size: int) -> "list[PageTableEntry]":
        """Install consecutive leaf translations starting at *vaddr*,
        one per physical frame in *frames*; returns the new entries.

        Equivalent to calling :meth:`map` once per frame at
        ``vaddr, vaddr + page_size, ...`` but with the validity checks
        hoisted out of the per-page loop.
        """
        if page_size not in (PAGE_4K, PAGE_2M):
            raise ValueError(f"unsupported page size {page_size}")
        end = vaddr + len(frames) * page_size
        if page_size == PAGE_2M:
            # probe whichever side is smaller: the 4 KB bases inside the
            # range, or the whole 4 KB table
            small = self._small
            n_range = (end - vaddr) // PAGE_4K
            if len(small) <= n_range:
                clash = any(vaddr <= sm < end for sm in small)
            else:
                clash = any(
                    sm in small for sm in range(vaddr, end, PAGE_4K)
                )
            if clash:
                raise ValueError(f"{vaddr:#x} overlaps existing 4 KB mappings")
        table = self._huge if page_size == PAGE_2M else self._small
        if vaddr % page_size:
            # bases step by page_size, so aligning the first aligns all
            raise ValueError(
                f"unaligned mapping {vaddr:#x} ({page_size} B page)"
            )
        entries = []
        append = entries.append
        base = vaddr
        for paddr in frames:
            if paddr % page_size:
                raise ValueError(
                    f"unaligned mapping {base:#x} -> {paddr:#x} ({page_size} B page)"
                )
            if base in table:
                raise ValueError(f"{base:#x} is already mapped")
            entry = PageTableEntry(base, paddr, page_size)
            table[base] = entry
            append(entry)
            base += page_size
        return entries

    def leaf_table(self, page_size: int) -> Dict[int, PageTableEntry]:
        """The leaf-entry dict for *page_size* (read-only use)."""
        if page_size == PAGE_2M:
            return self._huge
        if page_size == PAGE_4K:
            return self._small
        raise ValueError(f"unsupported page size {page_size}")

    def unmap(self, vaddr: int, page_size: int) -> PageTableEntry:
        """Remove a leaf translation; pinned pages may not be unmapped."""
        table = self._huge if page_size == PAGE_2M else self._small
        entry = table.get(vaddr)
        if entry is None:
            raise TranslationFault(vaddr)
        if entry.pinned:
            raise ValueError(f"cannot unmap pinned page {vaddr:#x}")
        del table[vaddr]
        return entry

    # -- lookup ------------------------------------------------------------
    def lookup(self, vaddr: int) -> PageTableEntry:
        """Find the leaf entry covering *vaddr* (hugepages win)."""
        huge_base = align_down(vaddr, PAGE_2M)
        entry = self._huge.get(huge_base)
        if entry is not None:
            return entry
        small_base = align_down(vaddr, PAGE_4K)
        entry = self._small.get(small_base)
        if entry is None:
            raise TranslationFault(vaddr)
        return entry

    def try_lookup(self, vaddr: int) -> Optional[PageTableEntry]:
        """Like :meth:`lookup` but returns None instead of faulting."""
        try:
            return self.lookup(vaddr)
        except TranslationFault:
            return None

    def translate(self, vaddr: int) -> Tuple[int, int]:
        """Return ``(paddr, page_size)`` for *vaddr*."""
        entry = self.lookup(vaddr)
        return entry.paddr + (vaddr - entry.vaddr), entry.page_size

    def is_mapped(self, vaddr: int) -> bool:
        """True if *vaddr* has a translation."""
        return self.try_lookup(vaddr) is not None

    def walk_levels(self, vaddr: int) -> int:
        """Radix-walk depth needed to translate *vaddr* (miss cost input)."""
        return self.WALK_LEVELS[self.lookup(vaddr).page_size]

    # -- iteration ----------------------------------------------------------
    def pages_in_range(self, vaddr: int, length: int) -> Iterator[PageTableEntry]:
        """Yield each leaf entry covering ``[vaddr, vaddr+length)`` in
        address order.  Faults if any byte of the range is unmapped."""
        if length <= 0:
            raise ValueError(f"non-positive length {length}")
        cursor = vaddr
        end = vaddr + length
        while cursor < end:
            entry = self.lookup(cursor)
            yield entry
            cursor = entry.vaddr + entry.page_size

    def entries(self) -> Iterator[PageTableEntry]:
        """All leaf entries (4 KB then 2 MB, address order)."""
        for vaddr in sorted(self._small):
            yield self._small[vaddr]
        for vaddr in sorted(self._huge):
            yield self._huge[vaddr]

    @property
    def n_small(self) -> int:
        """Number of 4 KB leaf entries."""
        return len(self._small)

    @property
    def n_huge(self) -> int:
        """Number of 2 MB leaf entries."""
        return len(self._huge)
