"""Per-process address spaces: VMAs, ``mmap``/``munmap`` and ``brk``.

The layout mirrors a classic Linux x86-64 process:

- the **brk heap** grows upward from ``BRK_BASE`` (base pages only — this
  is what ``morecore()``-style allocators extend),
- **anonymous 4 KB mmaps** are placed downward from ``MMAP_TOP``,
- **hugepage mmaps** (private hugetlbfs mappings) get their own region
  above ``HUGE_BASE`` so 2 MB alignment is free.

All mappings are populated eagerly (``MAP_POPULATE``): HPC applications
touch their buffers immediately, and the paper's registration costs are
measured on resident memory, so modelling demand faults would only add
noise.
"""

from __future__ import annotations

from bisect import bisect_right
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.mem.hugetlbfs import HugeTLBfs
from repro.mem.paging import PageTable, PageTableEntry
from repro.mem.physical import (
    PAGE_2M,
    PAGE_4K,
    PhysicalMemory,
    align_up,
)

#: bottom of the brk heap
BRK_BASE = 0x0000_1000_0000
#: hugepage-mapping region base
HUGE_BASE = 0x0000_4000_0000_0000
#: top of the downward-growing anonymous mmap region
MMAP_TOP = 0x0000_7FFF_0000_0000


class MappingError(Exception):
    """Raised for invalid mmap/munmap/brk requests."""


@dataclass
class VMA:
    """A virtual memory area.

    Attributes
    ----------
    start, length: the virtual range ``[start, start+length)``.
    page_size: backing page size (4 KB or 2 MB).
    kind: "brk", "anon" or "huge".
    name: optional label (useful in debugging and reports).
    """

    start: int
    length: int
    page_size: int
    kind: str
    name: str = ""

    @property
    def end(self) -> int:
        """One past the last mapped byte."""
        return self.start + self.length

    def contains(self, vaddr: int) -> bool:
        """True if *vaddr* falls inside this VMA."""
        return self.start <= vaddr < self.end


class VMATranslations:
    """Cached translations of one VMA: the fast path's page-walk skip.

    Holds the VMA's leaf page-table entries in address order plus a
    prefix count of physical discontinuities, so a streaming sweep can
    read its prefetcher restart count in O(1) instead of touching every
    page.  Entries are the *live* :class:`PageTableEntry` objects (pin
    counts and CoW flags stay accurate); the cache is dropped whenever a
    translation can change (munmap, sbrk, CoW copy — see
    :meth:`AddressSpace._invalidate_translations`).
    """

    __slots__ = ("start", "length", "page_size", "entries", "break_prefix")

    def __init__(self, start: int, length: int, page_size: int,
                 entries: List[PageTableEntry]):
        self.start = start
        self.length = length
        self.page_size = page_size
        self.entries = entries
        prefix = [0] * len(entries)
        breaks = 0
        prev = entries[0]
        for i in range(1, len(entries)):
            entry = entries[i]
            if prev.paddr + page_size != entry.paddr:
                breaks += 1
            prefix[i] = breaks
            prev = entry
        self.break_prefix = prefix

    def restarts(self, first_idx: int, last_idx: int) -> int:
        """Prefetcher stream restarts over entries [first..last]: one
        cold start plus one per physical discontinuity inside the run."""
        return 1 + self.break_prefix[last_idx] - self.break_prefix[first_idx]


class AddressSpace:
    """One process's virtual address space.

    Parameters
    ----------
    physical: machine physical memory (4 KB frame source).
    hugetlbfs: the hugepage pool (2 MB frame source); optional — address
        spaces on machines without a hugepage pool simply cannot create
        hugepage mappings.
    """

    def __init__(self, physical: PhysicalMemory, hugetlbfs: Optional[HugeTLBfs] = None):
        self.physical = physical
        self.hugetlbfs = hugetlbfs
        self.page_table = PageTable()
        #: callables invoked as ``hook(start, length)`` just before a
        #: virtual range loses its mapping (munmap / brk shrink).  The MPI
        #: registration cache hooks in here — the pin-down cache must be
        #: invalidated when virtual-to-physical translations change, and
        #: *only* then (a free() that keeps the mapping, like the hugepage
        #: library's, keeps cached registrations valid).
        self.unmap_hooks: List = []
        self._vmas: Dict[int, VMA] = {}
        self._brk = BRK_BASE
        self._mmap_cursor = MMAP_TOP
        self._huge_cursor = HUGE_BASE
        # fast path: cached per-VMA translations + a sorted-start index
        # for O(log n) VMA lookup (rebuilt lazily after map changes)
        self._xlate_cache: Dict[int, VMATranslations] = {}
        self._vma_starts: List[int] = []
        self._vma_index_dirty = True

    # -- introspection -----------------------------------------------------
    @property
    def vmas(self) -> List[VMA]:
        """All VMAs in address order."""
        return [self._vmas[k] for k in sorted(self._vmas)]

    @property
    def brk(self) -> int:
        """Current program break."""
        return self._brk

    def find_vma(self, vaddr: int) -> Optional[VMA]:
        """The VMA containing *vaddr*, or None."""
        if self._vma_index_dirty:
            self._vma_starts = sorted(self._vmas)
            self._vma_index_dirty = False
        starts = self._vma_starts
        i = bisect_right(starts, vaddr) - 1
        if i < 0:
            return None
        vma = self._vmas[starts[i]]
        return vma if vaddr < vma.end else None

    # -- cached translations (fast path) -----------------------------------
    def vma_translations(self, vma: VMA) -> Optional[VMATranslations]:
        """Cached leaf entries of *vma*, building on first use.

        Returns None when the VMA's pages cannot be served from a single
        leaf table (partially unmapped, or 4 KB pages shadowed by a
        hugepage mapping) — callers must fall back to per-page lookups.
        """
        cached = self._xlate_cache.get(vma.start)
        if (
            cached is not None
            and cached.length == vma.length
            and cached.page_size == vma.page_size
        ):
            return cached
        ps = vma.page_size
        table = self.page_table.leaf_table(ps)
        huge = self.page_table.leaf_table(PAGE_2M)
        check_shadow = ps == PAGE_4K and bool(huge)
        entries: List[PageTableEntry] = []
        append = entries.append
        for base in range(vma.start, vma.start + vma.length, ps):
            entry = table.get(base)
            if entry is None:
                return None
            if check_shadow and (base - base % PAGE_2M) in huge:
                # lookup() prefers the hugepage leaf — don't cache a view
                # that disagrees with the reference walk
                return None
            append(entry)
        if not entries:
            return None
        xlate = VMATranslations(vma.start, vma.length, ps, entries)
        self._xlate_cache[vma.start] = xlate
        return xlate

    def translation_run(
        self, vaddr: int, nbytes: int
    ) -> Optional[Tuple[VMATranslations, int, int]]:
        """Cached translations covering ``[vaddr, vaddr+nbytes)``.

        Returns ``(xlate, first_idx, last_idx)`` — the inclusive entry
        index range inside ``xlate.entries`` — or None when the range is
        not wholly inside one cacheable VMA (fall back to page walks).
        """
        if nbytes <= 0:
            return None
        vma = self.find_vma(vaddr)
        if vma is None or vaddr + nbytes > vma.end:
            return None
        xlate = self.vma_translations(vma)
        if xlate is None:
            return None
        ps = xlate.page_size
        off = vaddr - vma.start
        return xlate, off // ps, (off + nbytes - 1) // ps

    def translate(self, vaddr: int):
        """``(paddr, page_size)`` for *vaddr* (faults if unmapped)."""
        return self.page_table.translate(vaddr)

    # -- mmap ----------------------------------------------------------------
    def mmap(
        self,
        length: int,
        page_size: int = PAGE_4K,
        name: str = "",
        keep_hugepage_reserve: int = 0,
    ) -> VMA:
        """Create a populated anonymous mapping of *length* bytes.

        Hugepage mappings draw frames from the hugetlbfs pool and honour
        *keep_hugepage_reserve* (see :meth:`HugeTLBfs.acquire`).  The
        length is rounded up to the page size.
        """
        if length <= 0:
            raise MappingError(f"mmap length must be positive, got {length}")
        if page_size == PAGE_4K:
            length = align_up(length, PAGE_4K)
            n_pages = length // PAGE_4K
            start = self._mmap_cursor - length
            frames = self.physical.alloc_frames(n_pages)
            vma = VMA(start=start, length=length, page_size=PAGE_4K, kind="anon", name=name)
            self.page_table.bulk_map(start, frames, PAGE_4K)
            self._mmap_cursor = start - PAGE_4K  # guard page gap
        elif page_size == PAGE_2M:
            if self.hugetlbfs is None:
                raise MappingError("no hugetlbfs mounted on this machine")
            length = align_up(length, PAGE_2M)
            n_pages = length // PAGE_2M
            frames = self.hugetlbfs.acquire(n_pages, keep_reserve=keep_hugepage_reserve)
            start = self._huge_cursor
            vma = VMA(start=start, length=length, page_size=PAGE_2M, kind="huge", name=name)
            self.page_table.bulk_map(start, frames, PAGE_2M)
            self.hugetlbfs.notice_acquired(n_pages)
            self._huge_cursor = start + length + PAGE_2M  # guard gap
        else:
            raise MappingError(f"unsupported page size {page_size}")
        self._vmas[vma.start] = vma
        self._vma_index_dirty = True
        return vma

    def munmap(self, start: int) -> None:
        """Unmap the VMA beginning exactly at *start*, freeing its frames.

        (Partial unmaps are not needed by any modelled component.)
        """
        vma = self._vmas.get(start)
        if vma is None:
            raise MappingError(f"no VMA starts at {start:#x}")
        if vma.kind == "brk":
            raise MappingError("the brk VMA is shrunk with sbrk(), not munmap()")
        for hook in self.unmap_hooks:
            hook(vma.start, vma.length)
        n_pages = vma.length // vma.page_size
        freed = []
        for i in range(n_pages):
            entry = self.page_table.unmap(start + i * vma.page_size, vma.page_size)
            freed.append(entry.paddr)
        if vma.page_size == PAGE_2M:
            assert self.hugetlbfs is not None
            self.hugetlbfs.release(freed)
            self.hugetlbfs.notice_released(n_pages)
        else:
            for paddr in freed:
                self.physical.free_frame(paddr)
        del self._vmas[start]
        self._xlate_cache.pop(start, None)
        self._vma_index_dirty = True

    # -- brk -------------------------------------------------------------------
    def sbrk(self, delta: int) -> int:
        """Grow (or shrink, with negative *delta*) the heap; returns the
        *previous* break, like the libc call.

        Growth is page-granular internally; partial pages of the break are
        kept mapped until the break leaves them entirely.
        """
        old_brk = self._brk
        new_brk = old_brk + delta
        if new_brk < BRK_BASE:
            raise MappingError("brk below heap base")
        old_top = align_up(old_brk, PAGE_4K)
        new_top = align_up(new_brk, PAGE_4K)
        if new_top > old_top:
            n_new = (new_top - old_top) // PAGE_4K
            frames = self.physical.alloc_frames(n_new)
            self.page_table.bulk_map(old_top, frames, PAGE_4K)
            self._xlate_cache.pop(BRK_BASE, None)
        elif new_top < old_top:
            for hook in self.unmap_hooks:
                hook(new_top, old_top - new_top)
            for base in range(new_top, old_top, PAGE_4K):
                entry = self.page_table.unmap(base, PAGE_4K)
                self.physical.free_frame(entry.paddr)
            self._xlate_cache.pop(BRK_BASE, None)
        self._brk = new_brk
        self._sync_brk_vma()
        return old_brk

    def _sync_brk_vma(self) -> None:
        length = align_up(self._brk, PAGE_4K) - BRK_BASE
        if length > 0:
            self._vmas[BRK_BASE] = VMA(
                start=BRK_BASE, length=length, page_size=PAGE_4K, kind="brk", name="[heap]"
            )
        else:
            self._vmas.pop(BRK_BASE, None)
        self._vma_index_dirty = True

    # -- fork / Copy-on-Write ---------------------------------------------------
    def fork(self) -> "AddressSpace":
        """Fork this address space: the child shares every frame
        Copy-on-Write, like ``fork(2)`` with ``MAP_PRIVATE`` mappings.

        This is why the paper's mapping layer "must leave a reserve of
        hugepages that are needed when forking processes for
        Copy-on-Write reasons" (§3.1): the *fork* itself allocates no
        hugepages, but the first write to a shared hugepage must — see
        :meth:`write_fault` — and fails if the pool is dry.

        Forking with pinned (registered) pages is refused: CoW would
        silently break the adapter's translations, the classic
        InfiniBand fork hazard.
        """
        for entry in self.page_table.entries():
            if entry.pinned:
                raise MappingError(
                    f"fork with registered memory is unsafe (page "
                    f"{entry.vaddr:#x} is pinned)"
                )
        child = AddressSpace(self.physical, self.hugetlbfs)
        child._brk = self._brk
        child._mmap_cursor = self._mmap_cursor
        child._huge_cursor = self._huge_cursor
        for vma in self.vmas:
            child._vmas[vma.start] = VMA(
                start=vma.start, length=vma.length, page_size=vma.page_size,
                kind=vma.kind, name=vma.name,
            )
        for entry in self.page_table.entries():
            shared = child.page_table.map(entry.vaddr, entry.paddr,
                                          entry.page_size)
            entry.cow = True
            shared.cow = True
            self.physical.share_frame(entry.paddr)
        if self.hugetlbfs is not None:
            huge_pages = sum(
                v.length // PAGE_2M for v in self.vmas if v.page_size == PAGE_2M
            )
            self.hugetlbfs.notice_acquired(huge_pages)
        return child

    def write_fault(self, vaddr: int) -> bool:
        """Handle a write to *vaddr*: if the page is CoW, copy it.

        Returns True when a copy happened.  Hugepage copies draw a fresh
        frame from the hugetlbfs pool and raise
        :class:`~repro.mem.hugetlbfs.HugePagePoolExhausted` when it is
        empty — the failure mode the library's fork reserve prevents.
        """
        entry = self.page_table.lookup(vaddr)
        if not entry.cow:
            return False
        if entry.page_size == PAGE_2M:
            if self.hugetlbfs is None:
                raise MappingError("CoW hugepage fault without hugetlbfs")
            new_paddr = self.hugetlbfs.acquire(1)[0]
        else:
            new_paddr = self.physical.alloc_frame()
        old_paddr = entry.paddr
        entry.paddr = new_paddr
        entry.cow = False
        # the frame moved: any cached physical-adjacency prefix is stale
        vma = self.find_vma(vaddr)
        if vma is not None:
            self._xlate_cache.pop(vma.start, None)
        # drop our reference to the shared frame
        if entry.page_size == PAGE_2M:
            self.physical.free_hugepage(old_paddr)
        else:
            self.physical.free_frame(old_paddr)
        return True

    # -- teardown -----------------------------------------------------------------
    def destroy(self) -> None:
        """Release every mapping (process exit)."""
        for start in [v.start for v in self.vmas if v.kind != "brk"]:
            self.munmap(start)
        if self._brk > BRK_BASE:
            self.sbrk(BRK_BASE - self._brk)
