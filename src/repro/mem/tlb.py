"""Split TLB model.

Processors of the paper's era keep *separate* TLB entry arrays per page
size; the AMD Opteron that dominates the evaluation has a large array for
4 KB pages (the paper quotes 544 entries = 32 L1 + 512 L2) but only **8**
entries for 2 MB pages.  This asymmetry is the root of the paper's §5.2
observation that hugepages *increase* TLB miss counts (up to 8× for EP):
code that rotates across more than 8 distinct hugepage-backed regions
thrashes the tiny hugepage array, while the same rotation fits easily in
544 base-page entries.

Both a stateful exact model (:class:`SplitTLB`, LRU, used for small access
counts and unit tests) and analytic steady-state helpers (used by the
access engine for phase-level costing of millions of accesses) live here.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from typing import Optional, Tuple

from repro.analysis.counters import CounterSet
from repro.fastpath import lru_sweep
from repro.mem.physical import PAGE_2M, PAGE_4K, align_down


@dataclass(frozen=True)
class TLBConfig:
    """TLB geometry and cost parameters.

    Attributes
    ----------
    entries_4k / entries_2m:
        Fully-associative LRU entry counts per page size.
    walk_ns_per_level:
        Cost of one radix level of a page walk, in nanoseconds (misses on
        2 MB pages walk one level less — see
        :attr:`repro.mem.paging.PageTable.WALK_LEVELS`).
    """

    entries_4k: int = 544
    entries_2m: int = 8
    walk_ns_per_level: float = 10.0
    #: a 2 MB-page walk is one level shorter *and* its upper levels stay
    #: resident in the paging-structure caches, so each (frequent) miss is
    #: cheap — the mechanism behind the paper's finding that the inflated
    #: hugepage miss counts "are not responsible for less application
    #: time" (§5.2)
    walk_2m_ns: float = 6.0

    def entries_for(self, page_size: int) -> int:
        """Entry count of the array serving *page_size*."""
        if page_size == PAGE_4K:
            return self.entries_4k
        if page_size == PAGE_2M:
            return self.entries_2m
        raise ValueError(f"unsupported page size {page_size}")

    def walk_ns(self, page_size: int) -> float:
        """Full page-walk cost for a miss on *page_size*."""
        if page_size == PAGE_2M:
            return self.walk_2m_ns
        return 4 * self.walk_ns_per_level

    @property
    def coverage_4k(self) -> int:
        """Bytes covered by a full 4 KB array."""
        return self.entries_4k * PAGE_4K

    @property
    def coverage_2m(self) -> int:
        """Bytes covered by a full 2 MB array."""
        return self.entries_2m * PAGE_2M


class SplitTLB:
    """Stateful fully-associative LRU TLB with per-page-size arrays."""

    #: counter names per page size, precomputed so the hot translation
    #: path never rebuilds (and re-hashes) f-strings
    _HIT_NAMES = {PAGE_4K: "tlb.4k.hit", PAGE_2M: "tlb.2m.hit"}
    _MISS_NAMES = {PAGE_4K: "tlb.4k.miss", PAGE_2M: "tlb.2m.miss"}

    def __init__(self, config: TLBConfig, counters: Optional[CounterSet] = None):
        self.config = config
        self.counters = counters if counters is not None else CounterSet()
        self._arrays = {
            PAGE_4K: OrderedDict(),
            PAGE_2M: OrderedDict(),
        }

    def access(self, vaddr: int, page_size: int) -> Tuple[bool, float]:
        """Translate one access; returns ``(hit, extra_ns)``.

        A hit costs nothing extra; a miss costs a page walk and installs
        the translation, evicting LRU if the array is full.
        """
        array = self._arrays[page_size]
        vpage = align_down(vaddr, page_size)
        if vpage in array:
            array.move_to_end(vpage)
            self.counters.add(self._HIT_NAMES[page_size])
            return True, 0.0
        self.counters.add(self._MISS_NAMES[page_size])
        capacity = self.config.entries_for(page_size)
        while len(array) >= capacity:
            array.popitem(last=False)
        array[vpage] = True
        return False, self.config.walk_ns(page_size)

    def sweep(self, vbase: int, n_pages: int, page_size: int) -> Tuple[int, int, float]:
        """Translate a sequential sweep over *n_pages* pages in one call.

        Exactly equivalent to ``n_pages`` consecutive :meth:`access`
        calls on ``vbase, vbase + page_size, ...`` (*vbase* must be
        page-aligned): identical hit/miss totals and counters, identical
        final array content and LRU order.  Returns
        ``(hits, misses, walk_ns_total)``.
        """
        if n_pages <= 0:
            raise ValueError(f"n_pages must be positive, got {n_pages}")
        if vbase % page_size:
            raise ValueError(f"unaligned sweep base {vbase:#x}")
        hits, misses = lru_sweep(
            self._arrays[page_size],
            vbase,
            n_pages,
            page_size,
            self.config.entries_for(page_size),
        )
        if hits:
            self.counters.add(self._HIT_NAMES[page_size], hits)
        if misses:
            self.counters.add(self._MISS_NAMES[page_size], misses)
        return hits, misses, misses * self.config.walk_ns(page_size)

    def flush(self) -> None:
        """Drop all entries (context switch)."""
        for array in self._arrays.values():
            array.clear()

    def resident(self, page_size: int) -> int:
        """Number of live entries in the array for *page_size*."""
        return len(self._arrays[page_size])

    # -- checkpointing ------------------------------------------------------
    def dump_state(self) -> dict:
        """Picklable snapshot: per-array entry keys in LRU order
        (oldest first), so a restore reproduces eviction order exactly."""
        return {size: list(array) for size, array in self._arrays.items()}

    def load_state(self, state: dict) -> None:
        """Restore a :meth:`dump_state` snapshot."""
        for size, keys in state.items():
            array = self._arrays[size]
            array.clear()
            for key in keys:
                array[key] = True

    # -- analytic steady-state helpers ------------------------------------
    def analytic_stream_misses(self, nbytes: int, page_size: int) -> int:
        """Misses for a single sequential sweep over *nbytes*: one per
        page touched (streams never revisit pages soon enough to hit)."""
        if nbytes <= 0:
            raise ValueError(f"nbytes must be positive, got {nbytes}")
        return (nbytes + page_size - 1) // page_size

    def analytic_rotate_misses(
        self, n_streams: int, switches: int, pages_per_stream_visit: float, page_size: int
    ) -> int:
        """Misses for round-robin bursts over *n_streams* regions.

        With LRU capacity *C* and a strict round-robin over ``n > C``
        streams, every burst switch misses (the stream's page was evicted
        ``n - 1`` switches ago); with ``n <= C`` only page-boundary
        crossings miss.  *pages_per_stream_visit* is the average number of
        new pages a burst spills into (0 when bursts stay inside one page).
        """
        if n_streams <= 0 or switches < 0:
            raise ValueError("need n_streams > 0 and switches >= 0")
        capacity = self.config.entries_for(page_size)
        boundary = int(switches * pages_per_stream_visit)
        if n_streams <= capacity:
            # resident steady state: only boundary crossings miss
            return n_streams + boundary
        # thrash: every switch misses, plus boundary crossings
        return switches + boundary

    def analytic_random_misses(
        self, n_accesses: int, region_bytes: int, page_size: int
    ) -> int:
        """Misses for uniform random accesses over *region_bytes*:
        steady-state hit probability is coverage/region (capped at 1)."""
        if n_accesses < 0 or region_bytes <= 0:
            raise ValueError("need n_accesses >= 0 and region_bytes > 0")
        capacity = self.config.entries_for(page_size)
        pages_in_region = max(1, region_bytes // page_size)
        hit_prob = min(1.0, capacity / pages_in_region)
        return int(round(n_accesses * (1.0 - hit_prob)))
