"""Virtual-memory substrate.

Models the pieces of the Linux memory system the paper's placement
strategies interact with:

- :mod:`repro.mem.physical` — physical memory as pools of 4 KB frames and
  2 MB hugepage frames (with realistic fragmentation of the 4 KB pool).
- :mod:`repro.mem.paging` — page tables and page-walk costing.
- :mod:`repro.mem.address_space` — per-process VMAs, ``mmap``/``brk``.
- :mod:`repro.mem.hugetlbfs` — the HugeTLBfs hugepage pool with the
  fork/Copy-on-Write reserve the paper's mapping layer must keep.
- :mod:`repro.mem.tlb` — a split TLB (separate 4 KB / 2 MB entry arrays,
  like the AMD Opteron's 544 vs 8 entries).
- :mod:`repro.mem.cache` — data cache + hardware prefetcher model whose
  effectiveness depends on *physical* contiguity.
- :mod:`repro.mem.access` — a timed memory-access engine combining all of
  the above into per-operation tick costs.
"""

from repro.mem.physical import (
    PAGE_4K,
    PAGE_2M,
    OutOfMemoryError,
    PhysicalMemory,
)
from repro.mem.paging import PageTable, PageTableEntry
from repro.mem.address_space import AddressSpace, VMA, MappingError
from repro.mem.hugetlbfs import HugeTLBfs, HugePagePoolExhausted
from repro.mem.tlb import SplitTLB, TLBConfig
from repro.mem.cache import CacheConfig, DataCache, Prefetcher
from repro.mem.access import AccessCost, MemoryAccessEngine

__all__ = [
    "AccessCost",
    "AddressSpace",
    "CacheConfig",
    "DataCache",
    "HugePagePoolExhausted",
    "HugeTLBfs",
    "MappingError",
    "MemoryAccessEngine",
    "OutOfMemoryError",
    "PAGE_2M",
    "PAGE_4K",
    "PageTable",
    "PageTableEntry",
    "PhysicalMemory",
    "Prefetcher",
    "SplitTLB",
    "TLBConfig",
    "VMA",
]
