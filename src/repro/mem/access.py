"""Timed memory accesses: the bridge from data placement to ticks.

:class:`MemoryAccessEngine` combines one process's page table with a TLB,
a data cache and a prefetcher model, and prices four access shapes that
between them cover every workload in the paper:

- :meth:`~MemoryAccessEngine.touch` — exact line-by-line costing for small
  buffers (verbs microbenchmarks, allocator metadata).
- :meth:`~MemoryAccessEngine.stream` — sequential sweep over a large
  buffer (the dominant NAS access shape; prefetch-sensitive, so hugepages
  help through physical contiguity).
- :meth:`~MemoryAccessEngine.rotate` — round-robin bursts over many
  distinct regions (EP-style; thrashes the 8-entry hugepage TLB, which is
  how the paper's "TLB misses increase up to 8×" arises).
- :meth:`~MemoryAccessEngine.random` — uniform random touches over a
  region (IS-style bucket scatter).

All methods return an :class:`AccessCost`; internal arithmetic is in
nanoseconds and converted to whole ticks per call, so per-access costs far
below one tick still accumulate correctly across a phase.
"""

from __future__ import annotations

from dataclasses import dataclass, fields
from typing import Optional, Sequence, Tuple

from repro import fastpath, sanitize, trace
from repro.analysis.counters import CounterSet
from repro.engine.clock import TickClock
from repro.mem.address_space import AddressSpace
from repro.mem.cache import CacheConfig, DataCache, Prefetcher
from repro.mem.physical import PAGE_2M, PAGE_4K, align_down
from repro.mem.tlb import SplitTLB, TLBConfig


@dataclass
class AccessCost:
    """Cost and event counts of one access phase."""

    ns: float = 0.0
    ticks: int = 0
    tlb_misses: int = 0
    tlb_hits: int = 0
    cache_misses: int = 0
    cache_hits: int = 0
    prefetched_lines: int = 0

    def __add__(self, other: "AccessCost") -> "AccessCost":
        # summed field-by-field from the dataclass definition, so a field
        # added later cannot be silently dropped from the sum
        return AccessCost(
            **{
                name: getattr(self, name) + getattr(other, name)
                for name in _COST_FIELDS
            }
        )


#: field names of AccessCost, resolved once (``dataclasses.fields`` is
#: too slow to call inside ``__add__``)
_COST_FIELDS = tuple(f.name for f in fields(AccessCost))


class MemoryAccessEngine:
    """Per-process (per-core) timed memory model."""

    def __init__(
        self,
        address_space: AddressSpace,
        tlb_config: TLBConfig,
        cache_config: CacheConfig,
        clock: TickClock,
        counters: Optional[CounterSet] = None,
    ):
        self.address_space = address_space
        self.clock = clock
        self.counters = counters if counters is not None else CounterSet()
        self.tlb = SplitTLB(tlb_config, self.counters)
        self.cache = DataCache(cache_config, self.counters)
        self.prefetcher = Prefetcher(cache_config, self.counters)

    # -- helpers ------------------------------------------------------------
    def _finish(self, cost: AccessCost, op: Optional[str] = None,
                nbytes: int = 0) -> AccessCost:
        cost.ticks = self.clock.ns_to_ticks(cost.ns)
        # every public access shape funnels through exactly one _finish
        # call on both the fast and the reference path, so the trace
        # stream is identical whichever path priced the access
        if op is not None and trace.active() is not None:
            trace.instant(
                f"mem.{op}", track="mem", bytes=nbytes, ticks=cost.ticks,
                tlb_misses=int(cost.tlb_misses),
                cache_misses=int(cost.cache_misses),
            )
        return cost

    def _page_size_at(self, vaddr: int) -> int:
        return self.address_space.page_table.lookup(vaddr).page_size

    # -- exact small-buffer access -------------------------------------------
    def touch(self, vaddr: int, nbytes: int, write: bool = False) -> AccessCost:
        """Access ``[vaddr, vaddr+nbytes)`` line by line, exactly.

        Intended for small buffers (the verbs benchmarks use 1 B–64 KB);
        cost grows with lines touched, page walks paid per page via the
        stateful TLB and cache.
        """
        if nbytes <= 0:
            raise ValueError(f"nbytes must be positive, got {nbytes}")
        san = sanitize._active
        if san is not None:
            san.check_access(self, vaddr, nbytes, "touch")
        if fastpath.enabled():
            cost = self._touch_fast(vaddr, nbytes, write)
            if cost is not None:
                return cost
        cost = AccessCost()
        line = self.cache.config.line_size
        cursor = align_down(vaddr, line)
        end = vaddr + nbytes
        last_page = -1
        while cursor < end:
            entry = self.address_space.page_table.lookup(cursor)
            if entry.vaddr != last_page:
                hit, ns = self.tlb.access(cursor, entry.page_size)
                cost.ns += ns
                if hit:
                    cost.tlb_hits += 1
                else:
                    cost.tlb_misses += 1
                last_page = entry.vaddr
            paddr = entry.paddr + (cursor - entry.vaddr)
            hit, ns = self.cache.access(paddr, write)
            cost.ns += ns
            if hit:
                cost.cache_hits += 1
            else:
                cost.cache_misses += 1
            cursor += line
        return self._finish(cost, "touch", nbytes)

    def _touch_fast(self, vaddr: int, nbytes: int, write: bool) -> Optional[AccessCost]:
        """Batched :meth:`touch`: TLB pages in one sweep, cache lines in
        one sweep per physically-contiguous run.

        Exactly equivalent to the reference loop (same ticks, counters
        and model state); returns None when the range is not covered by
        one cached VMA and the caller must walk page by page.
        """
        line = self.cache.config.line_size
        start = align_down(vaddr, line)
        end = vaddr + nbytes
        run = self.address_space.translation_run(start, end - start)
        if run is None:
            return None
        xlate, first_idx, last_idx = run
        ps = xlate.page_size
        entries = xlate.entries
        cost = AccessCost()
        cost.tlb_hits, cost.tlb_misses, ns = self.tlb.sweep(
            entries[first_idx].vaddr, last_idx - first_idx + 1, ps
        )
        sweep = self.cache.sweep
        cursor = start
        i = first_idx
        while cursor < end:
            # extend across physically adjacent pages: their lines form
            # one consecutive run of cache keys
            j = i
            while j < last_idx and entries[j + 1].paddr == entries[j].paddr + ps:
                j += 1
            entry = entries[i]
            run_vend = entries[j].vaddr + ps
            seg_end = run_vend if run_vend < end else end
            n_lines = (seg_end - cursor + line - 1) // line
            hits, misses, seg_ns = sweep(
                (entry.paddr + (cursor - entry.vaddr)) // line, n_lines, write
            )
            cost.cache_hits += hits
            cost.cache_misses += misses
            ns += seg_ns
            cursor += n_lines * line
            i = j + 1
        cost.ns = ns
        return self._finish(cost, "touch", nbytes)

    # -- streaming -------------------------------------------------------------
    def stream(self, vaddr: int, nbytes: int, write: bool = False) -> AccessCost:
        """Sequential sweep over a large range (analytic per page).

        One TLB translation is charged per page; the prefetcher stream
        restarts whenever consecutive pages are not physically adjacent —
        scattered 4 KB frames restart every page, hugepages every 2 MB.
        """
        if nbytes <= 0:
            raise ValueError(f"nbytes must be positive, got {nbytes}")
        san = sanitize._active
        if san is not None:
            san.check_access(self, vaddr, nbytes, "stream")
        if fastpath.enabled():
            cost = self._stream_fast(vaddr, nbytes)
            if cost is not None:
                return cost
        cost = AccessCost()
        restarts = 1  # the first line of the sweep is always a cold start
        prev_entry = None
        for entry in self.address_space.page_table.pages_in_range(vaddr, nbytes):
            hit, ns = self.tlb.access(entry.vaddr, entry.page_size)
            cost.ns += ns
            if hit:
                cost.tlb_hits += 1
            else:
                cost.tlb_misses += 1
            if prev_entry is not None:
                physically_adjacent = (
                    prev_entry.paddr + prev_entry.page_size == entry.paddr
                )
                if not physically_adjacent:
                    restarts += 1
            prev_entry = entry
        n_lines = self.prefetcher.lines_for(nbytes)
        cost.ns += self.prefetcher.stream_cost_ns(n_lines, restarts)
        restart_lines = min(n_lines, restarts * self.cache.config.stream_restart_lines)
        cost.cache_misses += restart_lines
        cost.prefetched_lines += n_lines - restart_lines
        return self._finish(cost, "stream", nbytes)

    def _stream_fast(self, vaddr: int, nbytes: int) -> Optional[AccessCost]:
        """Batched :meth:`stream`: one TLB sweep, restarts read from the
        VMA's precomputed physical-adjacency prefix.

        Exactly equivalent to the reference loop; returns None when the
        range is not covered by one cached VMA.
        """
        run = self.address_space.translation_run(vaddr, nbytes)
        if run is None:
            return None
        xlate, first_idx, last_idx = run
        cost = AccessCost()
        cost.tlb_hits, cost.tlb_misses, walk_ns = self.tlb.sweep(
            xlate.entries[first_idx].vaddr,
            last_idx - first_idx + 1,
            xlate.page_size,
        )
        restarts = xlate.restarts(first_idx, last_idx)
        n_lines = self.prefetcher.lines_for(nbytes)
        cost.ns = walk_ns + self.prefetcher.stream_cost_ns(n_lines, restarts)
        restart_lines = min(n_lines, restarts * self.cache.config.stream_restart_lines)
        cost.cache_misses = restart_lines
        cost.prefetched_lines = n_lines - restart_lines
        return self._finish(cost, "stream", nbytes)

    def copy(self, src: int, dst: int, nbytes: int) -> AccessCost:
        """A memcpy: stream-read the source and stream-write the target."""
        return self.stream(src, nbytes, write=False) + self.stream(
            dst, nbytes, write=True
        )

    # -- multi-stream rotation ----------------------------------------------------
    def rotate(
        self,
        regions: Sequence[Tuple[int, int]],
        switches: int,
        burst_bytes: int,
    ) -> AccessCost:
        """Round-robin bursts of *burst_bytes* over *regions* (analytic).

        ``regions`` is a list of ``(vaddr, nbytes)``; *switches* is the
        total number of bursts executed (cycling through the regions).
        This is the access shape that penalises hugepages: more regions
        than hugepage TLB entries means every burst switch pays a walk.
        """
        if not regions:
            raise ValueError("rotate() needs at least one region")
        if switches < 0 or burst_bytes <= 0:
            raise ValueError("need switches >= 0 and burst_bytes > 0")
        san = sanitize._active
        if san is not None:
            for region_vaddr, region_bytes in regions:
                san.check_access(self, region_vaddr, region_bytes, "rotate")
        cost = AccessCost()
        page_size = self._page_size_at(regions[0][0])
        # bursts wander through their region; spill fraction = share of
        # bursts that start a page the stream has not visited recently
        pages_per_visit = min(1.0, burst_bytes / page_size)
        misses = self.tlb.analytic_rotate_misses(
            len(regions), switches, pages_per_visit, page_size
        )
        total_accesses = switches  # one translated burst per switch
        hits = max(0, total_accesses - misses)
        cost.tlb_misses += misses
        cost.tlb_hits += hits
        self.counters.add(SplitTLB._MISS_NAMES[page_size], misses)
        self.counters.add(SplitTLB._HIT_NAMES[page_size], hits)
        cost.ns += misses * self.tlb.config.walk_ns(page_size)
        # each burst: first line restarts the stream, rest ride prefetch
        lines_per_burst = self.prefetcher.lines_for(burst_bytes)
        cost.ns += switches * self.prefetcher.stream_cost_ns(lines_per_burst, 1)
        restart_lines = min(
            lines_per_burst, self.cache.config.stream_restart_lines
        )
        cost.cache_misses += switches * restart_lines
        cost.prefetched_lines += switches * (lines_per_burst - restart_lines)
        return self._finish(cost, "rotate", switches * burst_bytes)

    # -- power-of-two strided access -------------------------------------------
    def strided(
        self, vaddr: int, region_bytes: int, stride: int, n_accesses: int
    ) -> AccessCost:
        """Strided sweeps (bucket scatters, transposes) — the hugepage
        *pathology* (analytic).

        Physically scattered 4 KB frames randomise which cache sets a
        power-of-two stride lands in, so strided writes behave like an
        ordinary miss stream.  A physically *contiguous* hugepage keeps
        the stride's set-mapping intact: strides of a page or more map to
        the same few sets and thrash them (the classic loss of page
        colouring), costing full conflict misses.  This is the mechanism
        that makes the IS bucket scatter slower under hugepages.
        """
        if n_accesses < 0 or region_bytes <= 0 or stride <= 0:
            raise ValueError("need n_accesses >= 0, region/stride > 0")
        san = sanitize._active
        if san is not None:
            san.check_access(self, vaddr, region_bytes, "strided")
        cost = AccessCost()
        page_size = self._page_size_at(vaddr)
        # TLB: the stride visits region/stride slots in rotation
        slots = max(1, region_bytes // stride)
        misses = self.tlb.analytic_rotate_misses(
            min(slots, 4096), n_accesses, 0.0, page_size
        )
        hits = max(0, n_accesses - misses)
        cost.tlb_misses += misses
        cost.tlb_hits += hits
        self.counters.add(SplitTLB._MISS_NAMES[page_size], misses)
        self.counters.add(SplitTLB._HIT_NAMES[page_size], hits)
        cost.ns += misses * self.tlb.config.walk_ns(page_size)
        # cache: set conflicts only when physical layout preserves the
        # power-of-two stride (hugepages) and the stride spans >= a page
        pow2 = stride & (stride - 1) == 0
        conflicts = page_size == PAGE_2M and pow2 and stride >= PAGE_4K
        if conflicts:
            cost.ns += n_accesses * self.cache.config.miss_ns
            cost.cache_misses += n_accesses
            self.counters.add("cache.miss", n_accesses)
            self.counters.add("cache.set_conflict", n_accesses)
        else:
            cost.ns += n_accesses * self.cache.config.prefetch_hit_ns * 1.5
            cost.cache_misses += n_accesses // 2
            self.counters.add("cache.miss", n_accesses // 2)
        return self._finish(cost, "strided", region_bytes)

    # -- random access ----------------------------------------------------------
    def random(self, vaddr: int, region_bytes: int, n_accesses: int) -> AccessCost:
        """Uniform random single-line touches over a region (analytic).

        TLB behaviour follows the steady-state coverage model; every
        access is a cache miss (a random working set of NAS class C size
        never fits), and the prefetcher cannot help.
        """
        if n_accesses < 0 or region_bytes <= 0:
            raise ValueError("need n_accesses >= 0 and region_bytes > 0")
        san = sanitize._active
        if san is not None:
            san.check_access(self, vaddr, region_bytes, "random")
        cost = AccessCost()
        page_size = self._page_size_at(vaddr)
        misses = self.tlb.analytic_random_misses(n_accesses, region_bytes, page_size)
        hits = n_accesses - misses
        cost.tlb_misses += misses
        cost.tlb_hits += hits
        self.counters.add(SplitTLB._MISS_NAMES[page_size], misses)
        self.counters.add(SplitTLB._HIT_NAMES[page_size], hits)
        cost.ns += misses * self.tlb.config.walk_ns(page_size)
        cost.ns += n_accesses * self.cache.config.miss_ns
        cost.cache_misses += n_accesses
        self.counters.add("cache.miss", n_accesses)
        return self._finish(cost, "random", region_bytes)
