"""HugeTLBfs: the kernel hugepage pool.

Linux exposes boot-reserved 2 MB pages through the ``hugetlbfs``
pseudo-filesystem; since kernel 2.6.16 they can be mapped privately, which
is what makes the paper's *transparent* use possible.  This module models
the pool: acquiring/releasing hugepage frames, and accounting so a client
(the library's mapping layer) can keep a fork/Copy-on-Write reserve.
"""

from __future__ import annotations

from typing import List, Optional

from repro.faults import FaultInjector
from repro.mem.physical import PAGE_2M, OutOfMemoryError, PhysicalMemory


class HugePagePoolExhausted(OutOfMemoryError):
    """Raised when a hugepage request cannot be satisfied from the pool."""


class HugeTLBfs:
    """The mounted hugetlbfs: a view onto the boot-time hugepage pool.

    Parameters
    ----------
    physical:
        The machine's :class:`~repro.mem.physical.PhysicalMemory`, whose
        hugepage pool backs this filesystem.
    faults:
        Optional :class:`~repro.faults.FaultInjector`; when its plan sets
        ``hugepage_deplete_after``, the pool seizes mid-run as if other
        processes drained ``nr_hugepages``.
    """

    def __init__(self, physical: PhysicalMemory,
                 faults: Optional[FaultInjector] = None):
        self.physical = physical
        self._acquired = 0
        self.faults = faults if (faults is not None and faults.active) else None

    # -- accounting ---------------------------------------------------------
    @property
    def total_pages(self) -> int:
        """Pool size (``nr_hugepages``)."""
        return self.physical.total_hugepages

    @property
    def free_pages(self) -> int:
        """Hugepages currently available."""
        return self.physical.free_hugepages

    @property
    def acquired_pages(self) -> int:
        """Hugepages handed out through this filesystem."""
        return self._acquired

    # -- allocation -----------------------------------------------------------
    def acquire(self, n_pages: int, keep_reserve: int = 0) -> List[int]:
        """Take *n_pages* hugepage frames from the pool.

        *keep_reserve* refuses the request if it would leave fewer than
        that many pages free — the paper's mapping layer "must leave a
        reserve of hugepages that are needed when forking processes for
        Copy-on-Write reasons" (§3.1).

        Returns the list of physical frame addresses; the operation is
        atomic (all-or-nothing).
        """
        if n_pages <= 0:
            raise ValueError(f"n_pages must be positive, got {n_pages}")
        if keep_reserve < 0:
            raise ValueError(f"keep_reserve must be >= 0, got {keep_reserve}")
        if self.faults is not None and self.faults.hugepage_request_denied():
            raise HugePagePoolExhausted(
                f"need {n_pages} hugepages, but the pool has been depleted "
                "mid-run (fault injection: other processes drained "
                "nr_hugepages)"
            )
        if self.free_pages - n_pages < keep_reserve:
            raise HugePagePoolExhausted(
                f"need {n_pages} hugepages with reserve {keep_reserve}, "
                f"only {self.free_pages} free"
            )
        return [self.physical.alloc_hugepage() for _ in range(n_pages)]

    def release(self, frames: List[int]) -> None:
        """Return hugepage frames to the pool."""
        for paddr in frames:
            self.physical.free_hugepage(paddr)

    def notice_acquired(self, n_pages: int) -> None:
        """Bookkeeping hook: record pages mapped into an address space."""
        self._acquired += n_pages

    def notice_released(self, n_pages: int) -> None:
        """Bookkeeping hook: record pages unmapped from an address space."""
        self._acquired -= n_pages
        if self._acquired < 0:
            raise ValueError("released more hugepages than were acquired")

    @staticmethod
    def bytes_to_pages(nbytes: int) -> int:
        """Hugepages needed to hold *nbytes*."""
        if nbytes <= 0:
            raise ValueError(f"nbytes must be positive, got {nbytes}")
        return (nbytes + PAGE_2M - 1) // PAGE_2M
