"""Physical memory: frame pools for base pages and hugepages.

Two properties of real machines matter for the paper's results and are
modelled here:

1. **Hugepages are physically contiguous.**  A 2 MB hugepage is one 2 MB
   aligned frame, so the hardware prefetcher can stream across what would
   otherwise be 512 unrelated 4 KB frames.
2. **The 4 KB frame pool is fragmented.**  On a machine that has been up
   for a while, consecutive virtual pages map to scattered physical
   frames.  We model this by handing out 4 KB frames in a seeded
   pseudo-random order (the ``fragmentation`` knob interpolates between
   fully sequential and fully scattered).

The 4 KB pool is lazy: frames are drawn from shuffle *windows* of 4096
frames (16 MB) generated on demand, so constructing a 16 GB machine does
not materialise four million frame addresses.  Scattering within a 16 MB
window is exactly what the prefetcher model cares about — consecutive
virtual pages land on non-adjacent frames.
"""

from __future__ import annotations

from typing import List

import numpy as np

#: base page size (bytes)
PAGE_4K = 4096
#: hugepage size (bytes)
PAGE_2M = 2 * 1024 * 1024
#: frames per hugepage
FRAMES_PER_HUGEPAGE = PAGE_2M // PAGE_4K
#: frames per lazy shuffle window
_WINDOW_FRAMES = 4096


class OutOfMemoryError(MemoryError):
    """Raised when a frame pool is exhausted."""


def is_aligned(value: int, alignment: int) -> bool:
    """True if *value* is a multiple of *alignment*."""
    return value % alignment == 0


def align_up(value: int, alignment: int) -> int:
    """Round *value* up to the next multiple of *alignment*."""
    return (value + alignment - 1) // alignment * alignment


def align_down(value: int, alignment: int) -> int:
    """Round *value* down to a multiple of *alignment*."""
    return value - value % alignment


class PhysicalMemory:
    """Physical memory split into a 4 KB pool and a hugepage pool.

    Parameters
    ----------
    total_bytes:
        Total physical memory.  The hugepage pool is carved from the top.
    hugepages:
        Number of 2 MB hugepages reserved at boot (``hugetlb_pool``).
    fragmentation:
        0.0 = 4 KB frames handed out in address order (freshly booted
        machine); 1.0 = fully shuffled within each window (long-running
        machine).  The paper's test systems are busy cluster nodes, so
        presets default to high fragmentation.
    seed:
        Seed for the frame-order shuffling (determinism).
    """

    def __init__(
        self,
        total_bytes: int,
        hugepages: int = 0,
        fragmentation: float = 1.0,
        seed: int = 2006,
    ):
        if total_bytes <= 0 or not is_aligned(total_bytes, PAGE_2M):
            raise ValueError(
                f"total_bytes must be a positive multiple of {PAGE_2M}, got {total_bytes}"
            )
        if not 0.0 <= fragmentation <= 1.0:
            raise ValueError(f"fragmentation must be in [0,1], got {fragmentation}")
        huge_bytes = hugepages * PAGE_2M
        if huge_bytes >= total_bytes:
            raise ValueError(
                f"hugepage pool ({huge_bytes} B) does not fit in {total_bytes} B"
            )
        self.total_bytes = total_bytes
        self.fragmentation = fragmentation

        # hugepage pool sits at the top of physical memory
        self._huge_base = total_bytes - huge_bytes
        self._free_huge: List[int] = [
            self._huge_base + i * PAGE_2M for i in range(hugepages)
        ]
        self._total_huge = hugepages

        # lazy 4 KB pool below it
        self._total_small = self._huge_base // PAGE_4K
        self._cursor = 0  # next never-touched frame index
        self._window: List[int] = []  # current shuffle window (pop from end)
        self._returned: List[int] = []  # freed frames (reused first)
        self._rng = np.random.default_rng(seed)
        # CoW sharing: refcounts > 1 for frames mapped by several address
        # spaces after a fork; freeing a shared frame just drops a ref
        self._shared: dict = {}

    # -- 4 KB frames ------------------------------------------------------
    @property
    def free_small_frames(self) -> int:
        """Number of free 4 KB frames."""
        return (
            (self._total_small - self._cursor)
            + len(self._window)
            + len(self._returned)
        )

    def _refill_window(self) -> None:
        n = min(_WINDOW_FRAMES, self._total_small - self._cursor)
        if n <= 0:
            raise OutOfMemoryError("4 KB frame pool exhausted")
        order = np.arange(self._cursor, self._cursor + n, dtype=np.int64)
        self._cursor += n
        if self.fragmentation > 0.0 and n > 1:
            n_shuffle = int(n * self.fragmentation)
            if n_shuffle > 1:
                idx = self._rng.choice(n, size=n_shuffle, replace=False)
                order[np.sort(idx)] = order[self._rng.permutation(np.sort(idx))]
        # hand out in index order: pop() takes from the end, so reverse
        self._window = [int(i) * PAGE_4K for i in order[::-1]]

    def alloc_frame(self) -> int:
        """Allocate one 4 KB frame; returns its physical address."""
        if self._returned:
            return self._returned.pop()
        if not self._window:
            self._refill_window()
        return self._window.pop()

    def alloc_frames(self, n: int) -> List[int]:
        """Allocate *n* 4 KB frames in one call.

        Returns exactly the frames ``n`` consecutive :meth:`alloc_frame`
        calls would return, in the same order (freed frames first, then
        shuffle-window frames) — allocation order feeds the prefetcher
        model, so the bulk path must not perturb it.  On exhaustion the
        partial allocation is returned to the pool (mirroring the
        allocate-then-rollback idiom of the per-frame callers) and
        :class:`OutOfMemoryError` propagates.
        """
        if n <= 0:
            raise ValueError(f"frame count must be positive, got {n}")
        frames: List[int] = []
        try:
            returned = self._returned
            while returned and len(frames) < n:
                frames.append(returned.pop())
            remaining = n - len(frames)
            while remaining:
                if not self._window:
                    self._refill_window()
                window = self._window
                take = remaining if remaining < len(window) else len(window)
                frames += window[: -take - 1 : -1]
                del window[-take:]
                remaining -= take
        except OutOfMemoryError:
            for paddr in frames:
                self.free_frame(paddr)
            raise
        return frames

    def free_frame(self, paddr: int) -> None:
        """Return a 4 KB frame to the pool (or drop a CoW reference)."""
        if not is_aligned(paddr, PAGE_4K) or paddr >= self._huge_base:
            raise ValueError(f"bad 4 KB frame address {paddr:#x}")
        if self._drop_share(paddr):
            return
        self._returned.append(paddr)

    # -- CoW sharing --------------------------------------------------------
    def share_frame(self, paddr: int) -> None:
        """Register one more owner of *paddr* (any frame size)."""
        self._shared[paddr] = self._shared.get(paddr, 1) + 1

    def _drop_share(self, paddr: int) -> bool:
        """Drop a reference; True if other owners remain (don't free)."""
        count = self._shared.get(paddr)
        if count is None:
            return False
        if count == 2:
            del self._shared[paddr]  # one owner left: back to unshared
        else:
            self._shared[paddr] = count - 1
        return True

    def shared_owners(self, paddr: int) -> int:
        """Current owner count of a frame (1 when unshared)."""
        return self._shared.get(paddr, 1)

    # -- hugepage frames ---------------------------------------------------
    @property
    def total_hugepages(self) -> int:
        """Configured size of the hugepage pool."""
        return self._total_huge

    @property
    def free_hugepages(self) -> int:
        """Number of free 2 MB frames."""
        return len(self._free_huge)

    def alloc_hugepage(self) -> int:
        """Allocate one 2 MB frame; returns its physical address."""
        if not self._free_huge:
            raise OutOfMemoryError("hugepage pool exhausted")
        return self._free_huge.pop()

    def free_hugepage(self, paddr: int) -> None:
        """Return a 2 MB frame to the pool (or drop a CoW reference)."""
        if not is_aligned(paddr, PAGE_2M) or paddr < self._huge_base:
            raise ValueError(f"bad hugepage frame address {paddr:#x}")
        if self._drop_share(paddr):
            return
        self._free_huge.append(paddr)

    def contains_hugepage(self, paddr: int) -> bool:
        """True if *paddr* lies in the hugepage pool region."""
        return paddr >= self._huge_base

    # -- checkpointing ------------------------------------------------------
    def dump_state(self) -> dict:
        """Picklable snapshot of the mutable pool state (geometry —
        total bytes, pool sizes — is reconstructed from the MachineSpec,
        not stored here)."""
        return {
            "cursor": self._cursor,
            "window": list(self._window),
            "returned": list(self._returned),
            "free_huge": list(self._free_huge),
            "shared": dict(self._shared),
            "rng_state": self._rng.bit_generator.state,
        }

    def load_state(self, state: dict) -> None:
        """Restore a :meth:`dump_state` snapshot onto identical geometry."""
        self._cursor = state["cursor"]
        self._window = list(state["window"])
        self._returned = list(state["returned"])
        self._free_huge = list(state["free_huge"])
        self._shared = dict(state["shared"])
        self._rng.bit_generator.state = state["rng_state"]
