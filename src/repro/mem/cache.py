"""Data cache and hardware prefetcher model.

The paper attributes part of the hugepage computation-time benefit to the
hardware prefetcher: "Maybe, the memory prefetching unit can benefit from
larger physical contiguous areas" (§5.2).  Prefetchers of the era
(Opteron, Xeon, POWER5) track streams of *physical* cache-line addresses
and stop at page boundaries, because the next virtual page's frame is not
physically adjacent.  A 2 MB hugepage gives the prefetcher 512× longer
runways.

Two pieces:

- :class:`DataCache` — a stateful LRU line cache used for exact costing of
  small accesses (verbs-level benchmarks, allocator metadata walks).
- :class:`Prefetcher` — stream-table bookkeeping plus analytic helpers the
  access engine uses to cost large streaming phases per page rather than
  per line.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from typing import Optional, Tuple

from repro.analysis.counters import CounterSet
from repro.fastpath import lru_sweep


@dataclass(frozen=True)
class CacheConfig:
    """Cache geometry and per-access costs (nanoseconds).

    Attributes
    ----------
    line_size: cache line size in bytes.
    capacity_bytes: total cache capacity (modelled fully associative).
    hit_ns: cost of a cache hit.
    miss_ns: cost of a demand miss served from DRAM.
    prefetch_hit_ns: cost of a miss whose line was prefetched in time.
    stream_restart_lines: demand misses paid at full cost each time the
        prefetcher loses its stream (a physical discontinuity, i.e. a page
        boundary onto a non-adjacent frame).
    """

    line_size: int = 64
    capacity_bytes: int = 1024 * 1024
    hit_ns: float = 2.0
    miss_ns: float = 80.0
    prefetch_hit_ns: float = 12.0
    stream_restart_lines: int = 1

    @property
    def capacity_lines(self) -> int:
        """Capacity expressed in lines."""
        return self.capacity_bytes // self.line_size


class DataCache:
    """Fully-associative LRU line cache (exact, stateful)."""

    def __init__(self, config: CacheConfig, counters: Optional[CounterSet] = None):
        self.config = config
        self.counters = counters if counters is not None else CounterSet()
        self._lines: OrderedDict = OrderedDict()

    def access(self, paddr: int, write: bool = False) -> Tuple[bool, float]:
        """Access the line holding physical address *paddr*.

        Returns ``(hit, cost_ns)``.  Writes are modelled write-allocate.
        """
        line = paddr // self.config.line_size
        if line in self._lines:
            self._lines.move_to_end(line)
            self.counters.add("cache.hit")
            return True, self.config.hit_ns
        self.counters.add("cache.miss")
        while len(self._lines) >= self.config.capacity_lines:
            self._lines.popitem(last=False)
        self._lines[line] = True
        return False, self.config.miss_ns

    def sweep(self, first_line: int, n_lines: int, write: bool = False) -> Tuple[int, int, float]:
        """Access *n_lines* consecutive cache lines in one call.

        Exactly equivalent to per-line :meth:`access` calls on physical
        addresses covering lines ``first_line .. first_line+n_lines-1``:
        identical hit/miss totals and counters, identical final LRU
        content and order.  Returns ``(hits, misses, cost_ns)``.
        """
        if n_lines <= 0:
            raise ValueError(f"n_lines must be positive, got {n_lines}")
        hits, misses = lru_sweep(
            self._lines, first_line, n_lines, 1, self.config.capacity_lines
        )
        if hits:
            self.counters.add("cache.hit", hits)
        if misses:
            self.counters.add("cache.miss", misses)
        return hits, misses, hits * self.config.hit_ns + misses * self.config.miss_ns

    def resident_lines(self) -> int:
        """Number of valid lines."""
        return len(self._lines)

    def flush(self) -> None:
        """Invalidate everything."""
        self._lines.clear()

    # -- checkpointing ------------------------------------------------------
    def dump_state(self) -> list:
        """Picklable snapshot: line keys in LRU order (oldest first)."""
        return list(self._lines)

    def load_state(self, state: list) -> None:
        """Restore a :meth:`dump_state` snapshot."""
        self._lines.clear()
        for line in state:
            self._lines[line] = True


class Prefetcher:
    """Stream prefetcher: analytic costing of sequential physical runs.

    The central quantity is the cost of streaming *n_lines* cache lines
    through a physical region that is contiguous in runs of
    *lines_per_run* (64 lines for scattered 4 KB frames; 32768 lines for a
    2 MB hugepage; unbounded for a multi-hugepage range that happens to be
    physically adjacent).
    """

    def __init__(self, config: CacheConfig, counters: Optional[CounterSet] = None):
        self.config = config
        self.counters = counters if counters is not None else CounterSet()

    def stream_cost_ns(self, n_lines: int, n_restarts: int) -> float:
        """Cost of a stream of *n_lines* lines broken *n_restarts* times.

        Each restart pays ``stream_restart_lines`` demand misses at full
        DRAM cost before the prefetcher locks back on; all other lines hit
        prefetched data.
        """
        if n_lines < 0 or n_restarts < 0:
            raise ValueError("negative stream parameters")
        cfg = self.config
        restart_lines = min(n_lines, n_restarts * cfg.stream_restart_lines)
        prefetched = n_lines - restart_lines
        self.counters.add_many(
            (("prefetch.lines", prefetched), ("prefetch.restarts", n_restarts))
        )
        return restart_lines * cfg.miss_ns + prefetched * cfg.prefetch_hit_ns

    def lines_for(self, nbytes: int) -> int:
        """Cache lines touched by *nbytes* of sequential data."""
        if nbytes < 0:
            raise ValueError(f"negative byte count {nbytes}")
        return (nbytes + self.config.line_size - 1) // self.config.line_size
