"""The InfiniBand link: a full-duplex reliable-connection wire.

Models 4x SDR InfiniBand (10 Gb/s signalling, 8b/10b coding, ≈940 MB/s
payload after headers) as the paper's clusters used: per-message latency,
MTU segmentation with a per-packet cost, and streaming bandwidth.  Both
directions are independent (IB is full duplex), so an IMB *SendRecv* can
move ~2× the unidirectional rate — which is how the paper's Fig 5 peaks
near 1750 MB/s.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class LinkConfig:
    """Link parameters.

    Attributes
    ----------
    payload_mb_s: per-direction payload bandwidth.
    mtu_bytes: maximum transfer unit (IB MTU, typically 2048).
    packet_ns: per-packet processing cost (headers, CRC, credits).
    latency_ns: wire + switch latency for the first byte.
    """

    payload_mb_s: float = 940.0
    mtu_bytes: int = 2048
    packet_ns: float = 45.0
    latency_ns: float = 650.0
    #: derived: serialization cost per payload byte (ns).  MB/s is
    #: bytes/µs, so ns/byte = 1000 / (MB/s); computed once here instead
    #: of on every :meth:`IBLink.serialization_ns` call.
    ns_per_byte: float = 0.0

    def __post_init__(self) -> None:
        if self.payload_mb_s <= 0:
            raise ValueError("link bandwidth must be positive")
        if self.mtu_bytes <= 0:
            raise ValueError("MTU must be positive")
        object.__setattr__(self, "ns_per_byte", 1e3 / self.payload_mb_s)


class IBLink:
    """Pure cost arithmetic for one direction of the wire."""

    def __init__(self, config: LinkConfig):
        self.config = config

    def packets_for(self, nbytes: int) -> int:
        """MTU packets needed for *nbytes* of payload (min 1: even a
        0-byte send or an ack is one packet)."""
        if nbytes < 0:
            raise ValueError("negative byte count")
        return max(1, (nbytes + self.config.mtu_bytes - 1) // self.config.mtu_bytes)

    def serialization_ns(self, nbytes: int) -> float:
        """Time to clock *nbytes* onto the wire (no latency).

        ``serialization_ns(0) == packet_ns``: a zero-byte send is one
        header-only packet, never 0 ns — the same floor the ack path
        (:meth:`ack_ns`) pays.  Every byte count costs at least one
        packet time, and the cost is the same on the fast and reference
        costing paths (both call this one function).
        """
        if nbytes < 0:
            raise ValueError(f"negative byte count {nbytes}")
        cfg = self.config
        return self.packets_for(nbytes) * cfg.packet_ns + nbytes * cfg.ns_per_byte

    def transfer_ns(self, nbytes: int) -> float:
        """First-byte latency + serialization: one message, one way."""
        return self.config.latency_ns + self.serialization_ns(nbytes)

    def train_ns(self, nbytes: int, count: int) -> float:
        """Closed-form serialization of a back-to-back message train.

        A train of *count* equal messages pipelines at packet
        granularity: the link never idles between messages, so the wire
        time is exactly ``count * serialization_ns(nbytes)`` — the
        N-packet DATA train of one message and the M-message train of a
        window both collapse to the same per-packet arithmetic.  The
        first-byte latency is paid once per train, not per message; the
        caller adds it (see :meth:`transfer_ns`).  This is the wire half
        of the folded delivery model (see "Event folding" in
        :mod:`repro.ib.hca`) and is pinned tick-exact against the DES
        pipeline by ``tests/test_wire_train.py``.
        """
        if count < 0:
            raise ValueError(f"negative message count {count}")
        return count * self.serialization_ns(nbytes)

    def ack_ns(self) -> float:
        """A zero-payload RC acknowledgement coming back."""
        return self.config.latency_ns + self.config.packet_ns
