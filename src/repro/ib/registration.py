"""Memory registration: pin, translate, upload (§3 of the paper).

    "three important steps have to be done:
     1. All pages of the communication buffer have to stay in memory and
        must be pinned.
     2. The virtual start address of each page has to be translated into
        a physical one.
     3. The address translations have to be sent to the NIC."

Each step's cost is per *page* (steps 1-2, at the kernel's real page
granularity) or per *translation entry* (step 3, at the granularity the
driver chose — see :mod:`repro.ib.driver`).  A 4 MB buffer costs 1024
pin+translate+upload units on base pages but only 2 on hugepages with the
patched driver, which is the mechanism behind the paper's "memory
registration time decreased extremely (down to 1 % of the time as with
small pages)" (§5.1).

Deregistration unpins and drops the adapter-side entries; the ATT cache
invalidates that region.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import List, Optional, Tuple

from repro import fastpath, sanitize
from repro.analysis.counters import CounterSet
from repro.faults import (
    FaultInjector,
    PermanentRegistrationError,
    TransientRegistrationError,
)
from repro.ib.att import ATTCache
from repro.ib.driver import OpenIBDriver
from repro.ib.verbs import IBVerbsError, MemoryRegion, ProtectionDomain
from repro.mem.address_space import AddressSpace
from repro.mem.paging import PageTableEntry
from repro.mem.physical import PAGE_2M, PAGE_4K

_keys = itertools.count(0x1000)


@dataclass(frozen=True)
class RegistrationCosts:
    """Per-step costs (ns), sized to era measurements (~90 µs/MB on
    base pages for large buffers, dominated by per-page work)."""

    base_ns: float = 15_000.0
    per_4k_pin_ns: float = 180.0
    per_2m_pin_ns: float = 420.0
    per_page_translate_ns: float = 80.0
    per_entry_upload_ns: float = 60.0
    dereg_base_ns: float = 8_000.0
    per_entry_dereg_ns: float = 25.0

    def pin_ns(self, page_size: int) -> float:
        """Pinning cost for one page of *page_size*."""
        if page_size == PAGE_4K:
            return self.per_4k_pin_ns
        if page_size == PAGE_2M:
            return self.per_2m_pin_ns
        raise ValueError(f"unsupported page size {page_size}")


class RegistrationEngine:
    """Registers/deregisters user buffers against one HCA."""

    def __init__(
        self,
        driver: OpenIBDriver,
        att: ATTCache,
        costs: Optional[RegistrationCosts] = None,
        counters: Optional[CounterSet] = None,
        faults: Optional[FaultInjector] = None,
    ):
        self.driver = driver
        self.att = att
        self.costs = costs if costs is not None else RegistrationCosts()
        self.counters = counters if counters is not None else CounterSet()
        self.faults = faults if (faults is not None and faults.active) else None

    def register(
        self,
        aspace: AddressSpace,
        pd: ProtectionDomain,
        vaddr: int,
        length: int,
    ) -> Tuple[MemoryRegion, float]:
        """Register ``[vaddr, vaddr+length)``; returns ``(MR, cost_ns)``.

        The whole range must be mapped (HPC apps touch buffers before
        sending; demand-fault-during-registration is out of scope).
        """
        if length <= 0:
            raise IBVerbsError(f"registration length must be positive, got {length}")
        if self.faults is not None:
            # decide before pinning anything, so a failed registration
            # leaves no pinned pages behind
            outcome = self.faults.registration_outcome()
            if outcome == "permanent":
                raise PermanentRegistrationError(
                    f"registration of [{vaddr:#x}+{length}] failed permanently "
                    "(adapter translation table exhausted)"
                )
            if outcome == "transient":
                raise TransientRegistrationError(
                    f"registration of [{vaddr:#x}+{length}] failed transiently "
                    "(driver resource shortage; retry may succeed)"
                )
        pages = self._pages_for(aspace, vaddr, length)
        ns = self.costs.base_ns
        # step 1: pin + step 2: translate, per real kernel page
        if pages and pages[0].page_size == pages[-1].page_size:
            # one VMA's pages share a size: hoist the cost lookup
            per_page = (
                self.costs.pin_ns(pages[0].page_size)
                + self.costs.per_page_translate_ns
            )
            for page in pages:
                page.pin_count += 1
            ns += len(pages) * per_page
        else:
            for page in pages:
                page.pin_count += 1
                ns += self.costs.pin_ns(page.page_size)
                ns += self.costs.per_page_translate_ns
        # step 3: upload translations at the driver's chosen granularity
        entry_page_size, n_entries = self.driver.plan_entries(pages)
        ns += n_entries * self.costs.per_entry_upload_ns
        mr = MemoryRegion(
            mr_id=next(_keys),
            pd=pd,
            vaddr=vaddr,
            length=length,
            entry_page_size=entry_page_size,
            n_entries=n_entries,
            base=pages[0].vaddr,
            lkey=next(_keys),
            rkey=next(_keys),
        )
        self.counters.add("reg.register")
        self.counters.add("reg.entries_uploaded", n_entries)
        self.counters.add("reg.pages_pinned", len(pages))
        san = sanitize._active
        if san is not None and san.mr:
            san.on_register(mr, aspace)
        return mr, ns

    def deregister(self, aspace: AddressSpace, mr: MemoryRegion) -> float:
        """Deregister *mr*; returns the cost in ns."""
        if not mr.registered:
            raise IBVerbsError(f"MR {mr.mr_id} already deregistered")
        ns = self.costs.dereg_base_ns + mr.n_entries * self.costs.per_entry_dereg_ns
        for page in self._pages_for(aspace, mr.vaddr, mr.length):
            if page.pin_count <= 0:
                raise IBVerbsError(
                    f"unpin of page {page.vaddr:#x} that is not pinned"
                )
            page.pin_count -= 1
        self.att.invalidate_region(mr.mr_id)
        mr.registered = False
        self.counters.add("reg.deregister")
        san = sanitize._active
        if san is not None and san.mr:
            san.on_deregister(mr)
        return ns

    @staticmethod
    def _pages_for(aspace: AddressSpace, vaddr: int,
               length: int) -> List[PageTableEntry]:
        """Leaf entries covering the buffer: from the address space's
        VMA translation cache when possible, else a page-table walk."""
        if fastpath.enabled():
            run = aspace.translation_run(vaddr, length)
            if run is not None:
                xlate, first, last = run
                return xlate.entries[first : last + 1]
        return list(aspace.page_table.pages_in_range(vaddr, length))
