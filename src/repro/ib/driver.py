"""The OpenIB-like kernel driver.

One paper-critical behaviour lives here (§5): "The OpenIB stack is not
able to detect hugepages as the kernel pretends 4 KB pages instead.  So
we modified it in a way to send hugepages to the adapter when those are
used (the appropriate patch was sent to the OpenIB mailing list in
August 2006)."

:attr:`OpenIBDriver.hugepage_aware` is that patch as a toggle:

- **False** (stock driver): every registration is uploaded to the HCA as
  4 KB translation entries — a hugepage-backed buffer is expanded to 512
  entries per hugepage, so the adapter's ATT working set is identical to
  a small-page buffer.
- **True** (patched): hugepage-backed ranges upload one entry per 2 MB
  page — 512× fewer entries to upload and to cache.

Host-side pinning always sees the real page structure (the kernel knows
its own hugepages even when the driver hides them from the adapter).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence, Tuple

from repro.mem.paging import PageTableEntry
from repro.mem.physical import PAGE_2M, PAGE_4K


@dataclass
class OpenIBDriver:
    """Driver policy object handed to the registration engine."""

    hugepage_aware: bool = False

    def plan_entries(self, pages: Sequence[PageTableEntry]) -> Tuple[int, int]:
        """Decide the translation layout for a registration.

        *pages* are the leaf page-table entries covering the buffer.
        Returns ``(entry_page_size, n_entries)``.

        The patched driver only uses 2 MB entries when *every* page in
        the range is a hugepage (a mixed range falls back to 4 KB — the
        adapter needs one uniform entry size per region).
        """
        if not pages:
            raise ValueError("registration covers no pages")
        all_huge = all(p.page_size == PAGE_2M for p in pages)
        if self.hugepage_aware and all_huge:
            return PAGE_2M, len(pages)
        n_entries = sum(p.page_size // PAGE_4K for p in pages)
        return PAGE_4K, n_entries
