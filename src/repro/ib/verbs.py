"""The verbs surface: the objects user code holds.

Mirrors the OpenIB verbs the paper programs against: protection domains,
memory regions (with lkey/rkey), scatter-gather elements, send/receive
work requests, queue pairs and completion queues.  The objects here are
passive data; timing and movement live in :mod:`repro.ib.hca` and
:mod:`repro.ib.registration`.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Any, Optional, Sequence

from repro.engine.core import SimKernel
from repro.engine.resources import Resource, Store

_ids = itertools.count(1)


class IBVerbsError(Exception):
    """Raised on verbs misuse (bad lkey, out-of-bounds SGE, QP state...)."""


@dataclass(frozen=True)
class ProtectionDomain:
    """A protection domain; regions and QPs must share one to interact."""

    pd_id: int

    @classmethod
    def fresh(cls) -> "ProtectionDomain":
        return cls(pd_id=next(_ids))


@dataclass
class MemoryRegion:
    """A registered memory region.

    Attributes
    ----------
    mr_id: adapter-side region handle.
    pd: owning protection domain.
    vaddr / length: the user range that was registered.
    entry_page_size: page size of the translations the driver uploaded
        (4 KB for the stock driver, 2 MB when the paper's patch is active
        and the buffer is hugepage-backed).
    n_entries: number of translation entries in adapter memory.
    base: page-aligned start of the registered span.
    lkey / rkey: local / remote access keys.
    """

    mr_id: int
    pd: ProtectionDomain
    vaddr: int
    length: int
    entry_page_size: int
    n_entries: int
    base: int
    lkey: int
    rkey: int
    registered: bool = True

    def contains(self, addr: int, nbytes: int) -> bool:
        """True if ``[addr, addr+nbytes)`` is inside the registered range."""
        return self.vaddr <= addr and addr + nbytes <= self.vaddr + self.length

    def entry_index(self, addr: int) -> int:
        """Translation-entry index covering *addr*."""
        if not (self.base <= addr < self.base + self.n_entries * self.entry_page_size):
            raise IBVerbsError(f"{addr:#x} outside MR {self.mr_id}")
        return (addr - self.base) // self.entry_page_size

    def entries_for(self, addr: int, nbytes: int) -> range:
        """Range of translation-entry indices a DMA of *nbytes* at *addr*
        walks through.  A zero-byte DMA walks no entries."""
        if nbytes < 0:
            raise IBVerbsError("DMA length must be non-negative")
        if nbytes == 0:
            return range(0)
        first = self.entry_index(addr)
        last = self.entry_index(addr + nbytes - 1)
        return range(first, last + 1)


@dataclass(frozen=True)
class SGE:
    """One scatter/gather element of a work request.

    A zero-length SGE is legal (the IB spec allows zero-byte messages);
    the message is then header-only on the wire and costs the link's
    per-packet time, never 0 ns.
    """

    addr: int
    length: int
    lkey: int

    def __post_init__(self) -> None:
        if self.length < 0:
            raise IBVerbsError(
                f"SGE length must be non-negative, got {self.length}")


@dataclass
class SendWR:
    """A send-queue work request.

    ``opcode`` is ``"send"`` (two-sided, consumes a remote RecvWR),
    ``"rdma_write"`` (one-sided, pushes the SGE data to
    ``remote_addr``/``rkey``) or ``"rdma_read"`` (one-sided, pulls
    ``remote_addr``/``rkey`` into the local SGE list).
    ``payload`` optionally carries real data (any Python object) to the
    other side — the co-simulation channel the MPI layer uses; for reads
    the payload comes back from the responder's exposure table.
    """

    wr_id: int
    sges: Sequence[SGE]
    opcode: str = "send"
    remote_addr: int = 0
    rkey: int = 0
    payload: Any = None

    def __post_init__(self) -> None:
        if self.opcode not in ("send", "rdma_write", "rdma_read"):
            raise IBVerbsError(f"unsupported opcode {self.opcode!r}")
        if not self.sges:
            raise IBVerbsError("work request needs at least one SGE")

    @property
    def total_bytes(self) -> int:
        """Message payload size (sum over SGEs)."""
        return sum(s.length for s in self.sges)


@dataclass
class RecvWR:
    """A receive-queue work request (scatter list for an incoming send)."""

    wr_id: int
    sges: Sequence[SGE]

    def __post_init__(self) -> None:
        if not self.sges:
            raise IBVerbsError("receive work request needs at least one SGE")

    @property
    def total_bytes(self) -> int:
        """Receive buffer capacity."""
        return sum(s.length for s in self.sges)


@dataclass(frozen=True)
class WorkCompletion:
    """A completion-queue entry."""

    wr_id: int
    opcode: str
    byte_len: int
    status: str = "success"
    payload: Any = None

    @property
    def ok(self) -> bool:
        return self.status == "success"


class CompletionQueue:
    """A completion queue: CQEs land in a Store the consumer drains."""

    def __init__(self, kernel: SimKernel):
        self.cq_id = next(_ids)
        self.store = Store(kernel)

    def __len__(self) -> int:
        return len(self.store)


#: Legal forward transitions of the QP verbs state machine (IB spec
#: ch. 10.3).  Any state may additionally be forced to ERROR or torn
#: down to RESET — those arcs are handled in :meth:`QueuePair.modify`
#: rather than listed per state.  A send-queue error drains RTS to SQE,
#: which recovers back to RTS once the send queue has been flushed.
QP_TRANSITIONS = {
    "RESET": ("INIT",),
    "INIT": ("RTR",),
    "RTR": ("RTS",),
    "RTS": ("SQE",),
    "SQE": ("RTS",),
    "ERROR": (),
}

QP_STATES = tuple(QP_TRANSITIONS)


class QueuePair:
    """A reliable-connection queue pair.

    Created through :meth:`repro.ib.hca.HCA.create_qp`; the send queue is
    drained by the HCA's per-QP send engine, the receive queue is
    consumed as matching sends arrive.

    The QP carries the verbs state machine (RESET → INIT → RTR → RTS,
    with SQE/ERROR error states) and the RC retry attributes the fault
    subsystem exercises: ``retry_cnt`` (transport retries, a 3-bit
    counter in the spec), ``rnr_retry`` (receiver-not-ready retries,
    where 7 means retry forever) and ``ack_timeout_ns`` (the Local Ack
    Timeout floor before a retransmission).
    """

    def __init__(
        self,
        kernel: SimKernel,
        pd: ProtectionDomain,
        send_cq: CompletionQueue,
        recv_cq: CompletionQueue,
        max_sge: int = 128,
        max_send_wr: int = 128,
    ):
        self.qp_num = next(_ids)
        self.pd = pd
        self.send_cq = send_cq
        self.recv_cq = recv_cq
        self.max_sge = max_sge
        #: send-queue depth: posts block while this many WRs are
        #: outstanding (posted but not yet completed) — real QPs return
        #: ENOMEM; a blocking post models the usual retry loop.  A slot
        #: is taken at post time and released when the completion lands.
        self.max_send_wr = max_send_wr
        self.wr_slots = Resource(kernel, capacity=max_send_wr)
        self.send_q = Store(kernel)
        self.recv_q = Store(kernel)
        self.state = "RESET"
        self.peer_hca: Optional[object] = None
        self.peer_qp_num: Optional[int] = None
        #: transport retry budget before a send completes with
        #: "transport-retry-exceeded-error" (IB: 3 bits, 0-7)
        self.retry_cnt = 7
        #: receiver-not-ready retry budget; 7 = retry forever (IB spec)
        self.rnr_retry = 7
        #: floor of the ack timeout before a retransmission fires
        self.ack_timeout_ns = 50_000.0

    def modify(self, new_state: str) -> None:
        """Transition the QP, enforcing the verbs state machine.

        Forward arcs follow :data:`QP_TRANSITIONS`; any state may be
        forced to ERROR or torn down to RESET (both idempotent).
        """
        if new_state not in QP_STATES:
            raise IBVerbsError(
                f"unknown QP state {new_state!r} (valid: {', '.join(QP_STATES)})"
            )
        if new_state in ("RESET", "ERROR"):
            self.state = new_state
            if new_state == "RESET":
                self.peer_hca = None
                self.peer_qp_num = None
            return
        if new_state not in QP_TRANSITIONS[self.state]:
            raise IBVerbsError(
                f"illegal QP {self.qp_num} transition "
                f"{self.state} -> {new_state}"
            )
        self.state = new_state

    def connect(self, peer_hca: object, peer_qp_num: int) -> None:
        """Walk a RESET QP through INIT and RTR to RTS, targeting a
        peer QP.  Reconnecting an armed QP is an error: real verbs
        require a reset first, and silently re-arming hid wiring bugs.
        """
        if self.state == "RTS":
            raise IBVerbsError(
                f"QP {self.qp_num} is already connected (RTS) to QP "
                f"{self.peer_qp_num}; reset() it before reconnecting"
            )
        if self.state != "RESET":
            raise IBVerbsError(
                f"connect() needs QP {self.qp_num} in RESET, "
                f"but it is in {self.state}"
            )
        self.peer_hca = peer_hca
        self.peer_qp_num = peer_qp_num
        for state in ("INIT", "RTR", "RTS"):
            self.modify(state)

    def reset(self) -> None:
        """Tear the QP down to RESET (clears the peer binding)."""
        self.modify("RESET")

    @property
    def connected(self) -> bool:
        return self.state == "RTS"
