"""InfiniBand substrate.

Models the host-channel-adapter stack the paper measures:

- :mod:`repro.ib.verbs` — the verbs surface: protection domains, memory
  regions, scatter/gather elements, work requests, queue pairs and
  completion queues.
- :mod:`repro.ib.att` — the adapter's address-translation-table cache,
  whose miss stalls the paper credits for the Xeon bandwidth gain.
- :mod:`repro.ib.bus` — PCI-Express / PCI-X / GX bus models including the
  offset-dependent access costs behind Fig 4.
- :mod:`repro.ib.link` — the IB reliable-connection link (MTU
  segmentation, per-packet cost, full-duplex bandwidth).
- :mod:`repro.ib.registration` — the three-step memory-registration
  pipeline (§3: pin, translate, upload to the NIC).
- :mod:`repro.ib.driver` — the OpenIB-like driver, with the paper's
  hugepage-awareness patch as a toggle.
- :mod:`repro.ib.hca` — the HCA engine: WQE fetch, SGE gather/scatter
  DMA, wire delivery and completion generation, as DES processes.
"""

from repro.ib.att import ATTCache, ATTConfig
from repro.ib.bus import BusConfig, BusModel, gx_bus, pci_express_x8, pci_x_133
from repro.ib.driver import OpenIBDriver
from repro.ib.hca import HCA, HCAConfig, Wire
from repro.ib.link import IBLink, LinkConfig
from repro.ib.registration import RegistrationCosts, RegistrationEngine
from repro.ib.verbs import (
    SGE,
    CompletionQueue,
    IBVerbsError,
    MemoryRegion,
    ProtectionDomain,
    QueuePair,
    RecvWR,
    SendWR,
    WorkCompletion,
)

__all__ = [
    "ATTCache",
    "ATTConfig",
    "BusConfig",
    "BusModel",
    "CompletionQueue",
    "HCA",
    "HCAConfig",
    "IBLink",
    "IBVerbsError",
    "LinkConfig",
    "MemoryRegion",
    "OpenIBDriver",
    "ProtectionDomain",
    "QueuePair",
    "RecvWR",
    "RegistrationCosts",
    "RegistrationEngine",
    "SGE",
    "SendWR",
    "Wire",
    "WorkCompletion",
    "gx_bus",
    "pci_express_x8",
    "pci_x_133",
]
