"""I/O bus models: PCI-Express, PCI-X and the IBM GX bus.

The bus is where three of the paper's observations live:

1. **DMA cost structure** — the HCA reads WQEs and gathers SGE data in
   fixed-size bursts; small transfers pay per-burst overheads, large ones
   approach the bus's streaming bandwidth.
2. **Offset sensitivity (Fig 4)** — "It appears that the memory access of
   the InfiniBand adapter or the underlying system I/O bus is optimized
   for certain offsets, e.g. at offset 64" (§4).  The paper reports the
   effect (≤8 % for 8–64 B buffers over offsets 0–128) without a
   mechanism, so we model it the same way they observed it: burst-
   boundary crossings cost an extra burst, sub-word misalignment costs a
   fixup, and offset ≡ 64 (mod 128) rides the adapter's preferred
   read-combining phase.
3. **Duplex** — PCI-X is a shared half-duplex bus (one transaction at a
   time, both directions contend); PCIe and GX have independent read and
   write channels.  This is why ATT stalls are hidden on the Opteron's
   PCIe system but visible on the Xeon's PCI-X system.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.engine.core import SimKernel
from repro.engine.resources import Resource


@dataclass(frozen=True)
class BusConfig:
    """Bus timing parameters.

    Attributes
    ----------
    name: human-readable bus name.
    bandwidth_mb_s: sustained streaming DMA bandwidth (payload).
    burst_bytes: DMA burst granularity.
    burst_ns: fixed cost per burst (arbitration + header).
    dma_setup_ns: fixed cost to start one DMA descriptor.
    read_latency_ns: round-trip latency of a single read (WQE fetch).
    mmio_write_ns: a CPU doorbell write (posted).
    mmio_read_ns: a CPU read across the bus (uncacheable).
    duplex: True when read and write channels are independent.
    unaligned_fixup_ns: extra cost when a DMA start is not 8-byte aligned.
    sweet_offset_bonus_ns: saving when the start offset ≡ 64 (mod 128).
    """

    name: str
    bandwidth_mb_s: float
    burst_bytes: int = 128
    burst_ns: float = 12.0
    dma_setup_ns: float = 140.0
    read_latency_ns: float = 280.0
    mmio_write_ns: float = 420.0
    mmio_read_ns: float = 550.0
    duplex: bool = True
    unaligned_fixup_ns: float = 170.0
    sweet_offset_bonus_ns: float = 180.0

    def __post_init__(self) -> None:
        if self.bandwidth_mb_s <= 0:
            raise ValueError("bus bandwidth must be positive")
        if self.burst_bytes <= 0 or self.burst_bytes & (self.burst_bytes - 1):
            raise ValueError("burst size must be a positive power of two")


def pci_express_x8() -> BusConfig:
    """PCIe 1.0 x8 (the Opteron system's Mellanox InfiniHost slot)."""
    return BusConfig(
        name="PCIe-x8",
        bandwidth_mb_s=1800.0,
        duplex=True,
    )


def pci_x_133() -> BusConfig:
    """PCI-X 64 bit / 133 MHz (the Xeon system's InfiniHost slot).

    Shared half-duplex bus; sustained DMA lands near 900 MB/s.
    """
    return BusConfig(
        name="PCI-X-133",
        bandwidth_mb_s=900.0,
        burst_ns=18.0,
        dma_setup_ns=180.0,
        read_latency_ns=380.0,
        mmio_write_ns=520.0,
        mmio_read_ns=700.0,
        duplex=False,
    )


def gx_bus() -> BusConfig:
    """IBM GX bus (System p, eHCA attaches directly)."""
    return BusConfig(
        name="GX",
        bandwidth_mb_s=2400.0,
        burst_ns=10.0,
        dma_setup_ns=120.0,
        read_latency_ns=240.0,
        mmio_write_ns=380.0,
        mmio_read_ns=500.0,
        duplex=True,
    )


class BusModel:
    """A bus instance: cost arithmetic plus DES channel resources.

    The read and write channels are :class:`~repro.engine.resources.
    Resource` objects; on a half-duplex bus they are the *same* resource,
    so concurrent senders and receivers serialise — exactly the PCI-X
    behaviour that exposes ATT stalls.
    """

    def __init__(self, kernel: SimKernel, config: BusConfig):
        self.kernel = kernel
        self.config = config
        self.read_channel = Resource(kernel, capacity=1)
        self.write_channel = (
            Resource(kernel, capacity=1) if config.duplex else self.read_channel
        )

    # -- cost arithmetic (pure, ns) -------------------------------------------
    def bursts_for(self, paddr: int, nbytes: int) -> int:
        """Bursts needed to cover ``[paddr, paddr + nbytes)``."""
        if nbytes <= 0:
            raise ValueError(f"nbytes must be positive, got {nbytes}")
        b = self.config.burst_bytes
        return (paddr % b + nbytes + b - 1) // b

    def offset_adjust_ns(self, paddr: int) -> float:
        """Start-address-dependent adjustment (the Fig 4 profile)."""
        adjust = 0.0
        if paddr % 8:
            adjust += self.config.unaligned_fixup_ns
        if paddr % 128 == 64:
            adjust -= self.config.sweet_offset_bonus_ns
        return adjust

    def dma_read_ns(self, paddr: int, nbytes: int) -> float:
        """One DMA read descriptor: setup + bursts + streaming time.

        The offset adjustment (the Fig 4 profile) can only shave a
        bounded fraction of the base cost — a sweet-spot start still has
        to arbitrate, burst and stream.
        """
        cfg = self.config
        base = cfg.dma_setup_ns
        base += self.bursts_for(paddr, nbytes) * cfg.burst_ns
        base += nbytes / cfg.bandwidth_mb_s * 1e3  # bytes / (MB/s) -> ns
        return max(0.5 * base, base + self.offset_adjust_ns(paddr))

    def dma_write_ns(self, paddr: int, nbytes: int) -> float:
        """One DMA write descriptor (posted writes are slightly cheaper)."""
        return max(
            0.25 * self.config.dma_setup_ns,
            self.dma_read_ns(paddr, nbytes) - 0.25 * self.config.dma_setup_ns,
        )

    def stream_ns(self, nbytes: int) -> float:
        """Pure streaming time for a bulk transfer at bus bandwidth."""
        if nbytes < 0:
            raise ValueError("negative byte count")
        return nbytes / self.config.bandwidth_mb_s * 1e3

    def wqe_fetch_ns(self, n_sges: int) -> float:
        """Fetching one WQE (64 B base + 16 B per SGE) from host memory."""
        wqe_bytes = 64 + 16 * max(0, n_sges)
        bursts = (wqe_bytes + self.config.burst_bytes - 1) // self.config.burst_bytes
        return self.config.read_latency_ns + bursts * self.config.burst_ns

    def doorbell_ns(self) -> float:
        """CPU ringing the HCA doorbell (posted MMIO write)."""
        return self.config.mmio_write_ns
