"""The host channel adapter: work-request processing as DES processes.

The §4 execution flow, step by step:

    "1. The consumer posts a send or receive work request.
     2. The network adapter transfers the specified data to the
        communication partner.
     3. After completion the adapter generates a completion queue entry.
     4. The consumer is notified about work completion by polling the
        completion queue or by an interrupt."

Step 1 is CPU work (:meth:`HCA.post_send` — WQE build + doorbell; the
paper measures it as a near-constant 230–950 TBR ticks).  Steps 2-3 are
the adapter pipeline (:meth:`HCA._handle_send`): WQE fetch over the bus,
per-SGE ATT translation and DMA gather, wire transfer, remote scatter,
CQE write and the RC acknowledgement.  Step 4 is :meth:`HCA.
wait_completion`.

Scatter/gather economics (§4): the per-WQE costs (doorbell, WQE fetch,
pipeline occupancy, completion) are paid once regardless of SGE count,
while each extra SGE only adds a small descriptor-parse + DMA-engine
cost — so 4 small SGEs cost ~14 % more than one, and 128 SGEs ~3× one,
as the paper measures in Fig 3.

Bus occupancy is modelled with real DES resources: the gather path holds
the bus read channel, the scatter path the write channel.  On a
half-duplex bus (PCI-X) these are the same resource, which is how ATT
stalls become visible in bandwidth exactly as §5.1 describes for the
Xeon system.

Event folding
-------------

On the clean path (no fault plan, no tracer, ``fastpath.fold_enabled()``)
the per-message generator processes above are replaced by equivalent
*callback chains*: the same bus holds at the same ticks, the same ATT
walks at the same points, the same delivery and completion instants —
but as a handful of scheduled callbacks instead of a spawned process
with a resume per ``yield``.  A folded send costs 3 kernel events where
the process form costs ~8; a folded receive costs 3 where the process
form costs ~7.  Uncontended resource grants are taken synchronously
(:meth:`repro.engine.resources.Resource.try_acquire`) and fire-and-
forget queue puts skip their acknowledgement event
(:meth:`repro.engine.resources.Store.put_nowait`).

Folding never changes a cost formula, so it is active on BOTH costing
paths and under the sanitizer (the sanitize hooks are synchronous calls
and run at the same model points).  Fault plans pin the process
machinery per-HCA (retransmission needs the watchdog/idempotence
bookkeeping interleaved with the pipeline), an active tracer pins it
per-message (the ``ib.tx``/``ib.rx`` spans wrap generator bodies), and
``REPRO_NO_FOLD=1`` / :func:`repro.fastpath.set_fold` pins it globally
so equivalence tests can diff the two machineries.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, replace
from typing import (Any, Callable, Dict, Generator, Optional, Sequence,
                    Set, Tuple)

from repro import fastpath, sanitize, trace
from repro.analysis.counters import CounterSet
from repro.engine.clock import TickClock
from repro.engine.core import NORMAL, Event, SimKernel
from repro.faults import FaultInjector
from repro.ib.att import ATTCache
from repro.ib.bus import BusModel
from repro.ib.link import IBLink
from repro.ib.registration import RegistrationEngine
from repro.ib.verbs import (
    SGE,
    CompletionQueue,
    IBVerbsError,
    MemoryRegion,
    ProtectionDomain,
    QueuePair,
    RecvWR,
    SendWR,
    WorkCompletion,
)
from repro.mem.address_space import AddressSpace

_seq = itertools.count(1)


@dataclass(frozen=True)
class HCAConfig:
    """Adapter-side fixed costs (ns)."""

    #: CPU cost to build a WQE (descriptor assembly in the send path)
    post_base_ns: float = 700.0
    #: CPU cost per SGE appended to a WQE
    post_per_sge_ns: float = 16.0
    #: DMA-engine cost per SGE beyond the first (descriptor parse + new
    #: gather stream; the engine fetches buffers concurrently, §4)
    sge_extra_ns: float = 60.0
    #: beyond this many SGEs the DMA engine's descriptor pipeline is full
    #: and the marginal per-SGE cost drops (the paper's observation that
    #: 128 SGEs cost only ~3x one SGE: "this overhead does not increase
    #: linearly")
    sge_pipeline_depth: int = 4
    #: marginal per-SGE cost once the descriptor pipeline is primed
    sge_extra_pipelined_ns: float = 10.0
    #: fetching/consuming one pre-posted receive WQE
    recv_wqe_ns: float = 160.0
    #: writing one CQE to host memory
    cqe_write_ns: float = 170.0
    #: CPU cost of one completion-queue poll
    poll_ns: float = 190.0
    #: fixed adapter pipeline cost per processed WQE
    process_ns: float = 380.0


@dataclass
class _Packet:
    """What travels on the wire between two HCAs.

    ``stream_ns`` is how long the message's data keeps streaming after
    the first byte arrives — the slower of the sender's gather and the
    wire serialization.  The receiver overlaps its scatter DMA with that
    stream, so its bus hold is ``max(stream_ns, scatter_ns)``; this is
    the mechanism that hides ATT stalls inside bus/link slack (Opteron/
    PCIe) but exposes them when the bus is the bottleneck (Xeon/PCI-X).
    """

    kind: str  # "send" | "rdma_write" | "ack"
    src_qp: int
    dst_qp: int
    seq: int
    wr_id: int
    nbytes: int
    payload: Any = None
    remote_addr: int = 0
    rkey: int = 0
    status: str = "success"
    stream_ns: float = 0.0
    #: set by fault injection: the payload fails the receiver's ICRC
    #: check and the whole message is discarded on arrival
    corrupt: bool = False


class Wire:
    """A point-to-point cable between two HCAs (both directions)."""

    def __init__(self, kernel: SimKernel):
        self.kernel = kernel
        self._ends: Dict[int, "HCA"] = {}

    def attach(self, hca: "HCA") -> None:
        """Connect one HCA end."""
        if len(self._ends) >= 2 and id(hca) not in self._ends:
            raise IBVerbsError("a wire has exactly two ends")
        self._ends[id(hca)] = hca

    def deliver(self, sender: "HCA", packet: _Packet, delay_ticks: int) -> None:
        """Schedule *packet* to arrive at the far end after *delay_ticks*.

        Arrival is a single scheduled callback, not a spawned process: a
        cable has no state to model between launch and landing, and one
        heap entry per packet instead of three (process start, timeout,
        process exit) is a measurable share of the event budget.
        """
        others = [h for key, h in self._ends.items() if key != id(sender)]
        if not others:
            raise IBVerbsError("wire has no far end attached")
        dest = others[0]

        def _arrive(_ev, dest=dest, packet=packet, wire=self):
            dest._on_arrival(packet, wire)

        ev = self.kernel.event()
        ev._triggered = True
        ev.callbacks.append(_arrive)
        self.kernel._schedule(ev, delay_ticks, NORMAL)


class HCA:
    """One adapter instance (see module docstring)."""

    def __init__(
        self,
        kernel: SimKernel,
        clock: TickClock,
        bus: BusModel,
        link: IBLink,
        att: ATTCache,
        reg_engine: RegistrationEngine,
        config: Optional[HCAConfig] = None,
        counters: Optional[CounterSet] = None,
        name: str = "hca",
        faults: Optional[FaultInjector] = None,
    ):
        self.kernel = kernel
        self.clock = clock
        self.bus = bus
        self.link = link
        self.att = att
        self.reg = reg_engine
        self.config = config if config is not None else HCAConfig()
        self.counters = counters if counters is not None else CounterSet()
        self.name = name
        #: fault injector, or None.  Kept None unless the plan is active
        #: so every fault hook below reduces to one ``is not None`` test
        #: on the fault-free path — fault machinery costs nothing off.
        self.faults = faults if (faults is not None and faults.active) else None
        #: inbound send/rdma_write seqs being processed right now (the
        #: window where a sender's retransmission means RNR, not loss)
        self._rx_inflight: Set[int] = set()
        #: inbound seqs fully processed, mapped to their ack status so a
        #: duplicate retransmission is re-acked, never re-executed
        self._rx_seen: Dict[int, str] = {}
        self._wires: Dict[int, Wire] = {}
        self._qps: Dict[int, QueuePair] = {}
        self._mrs_by_lkey: Dict[int, MemoryRegion] = {}
        self._mrs_by_rkey: Dict[int, MemoryRegion] = {}
        self._outstanding: Dict[int, Tuple[QueuePair, SendWR]] = {}
        #: payload objects landed by inbound RDMA writes, keyed by
        #: ``(rkey, target vaddr)`` — ranks sharing this HCA have separate
        #: address spaces whose layouts may coincide, so the vaddr alone
        #: is ambiguous; the rkey pins the region (drained by the
        #: rendezvous receiver)
        self.rdma_landed: Dict[tuple, Any] = {}
        #: payload objects a local process has exposed for remote RDMA
        #: reads, keyed by ``(rkey, vaddr)`` (set by the read-rendezvous
        #: sender, fetched by inbound read requests)
        self.rdma_exposed: Dict[tuple, Any] = {}

    # -- wiring -------------------------------------------------------------
    def attach_wire(self, peer: "HCA", wire: Wire) -> None:
        """Plug this HCA into a cable leading to *peer*."""
        wire.attach(self)
        self._wires[id(peer)] = wire

    def wire_to(self, peer: "HCA") -> Wire:
        """The cable towards *peer* (cables are created by Machine/Cluster
        wiring, see :func:`connect_hcas`)."""
        wire = self._wires.get(id(peer))
        if wire is None:
            raise IBVerbsError(f"{self.name} has no wire to {peer.name}")
        return wire

    @staticmethod
    def connect_pair(qp_a: QueuePair, hca_a: "HCA", qp_b: QueuePair, hca_b: "HCA") -> None:
        """Bring two QPs to RTS pointing at each other (the HCAs must
        already share a wire, see :func:`connect_hcas`)."""
        qp_a.connect(hca_b, qp_b.qp_num)
        qp_b.connect(hca_a, qp_a.qp_num)

    # -- memory registration ----------------------------------------------------
    def register_memory(
        self, aspace: AddressSpace, pd: ProtectionDomain, vaddr: int, length: int
    ) -> Generator:
        """Register a buffer (a timed CPU+bus operation).

        Use as ``mr = yield from hca.register_memory(...)``.
        """
        tracer = trace.active()
        if tracer is None:
            return (yield from self._register_impl(aspace, pd, vaddr, length))
        with tracer.span("ib.mr.register", track=self.name, bytes=length):
            return (yield from self._register_impl(aspace, pd, vaddr, length))

    def _register_impl(
        self, aspace: AddressSpace, pd: ProtectionDomain, vaddr: int, length: int
    ) -> Generator:
        mr, ns = self.reg.register(aspace, pd, vaddr, length)
        self._mrs_by_lkey[mr.lkey] = mr
        self._mrs_by_rkey[mr.rkey] = mr
        yield self.kernel.timeout(self.clock.ns_to_ticks(ns))
        return mr

    def deregister_memory(self, aspace: AddressSpace, mr: MemoryRegion) -> Generator:
        """Deregister *mr* (timed)."""
        tracer = trace.active()
        if tracer is None:
            yield from self._deregister_impl(aspace, mr)
            return
        with tracer.span("ib.mr.deregister", track=self.name, bytes=mr.length):
            yield from self._deregister_impl(aspace, mr)

    def _deregister_impl(self, aspace: AddressSpace, mr: MemoryRegion) -> Generator:
        ns = self.reg.deregister(aspace, mr)
        self._mrs_by_lkey.pop(mr.lkey, None)
        self._mrs_by_rkey.pop(mr.rkey, None)
        yield self.kernel.timeout(self.clock.ns_to_ticks(ns))

    def lookup_mr(self, lkey: int) -> MemoryRegion:
        """The MR registered under *lkey*."""
        mr = self._mrs_by_lkey.get(lkey)
        san = sanitize._active
        if san is not None and san.mr:
            # distinguishes a deregistered key from a never-valid one
            # before the generic verbs error below
            san.check_lkey(mr, lkey, "lookup_mr")
        if mr is None or not mr.registered:
            raise IBVerbsError(f"invalid lkey {lkey:#x}")
        return mr

    # -- QP lifecycle --------------------------------------------------------------
    def create_qp(
        self,
        pd: ProtectionDomain,
        send_cq: CompletionQueue,
        recv_cq: CompletionQueue,
        max_sge: int = 128,
        max_send_wr: int = 128,
    ) -> QueuePair:
        """Create a QP and start its send engine."""
        qp = QueuePair(self.kernel, pd, send_cq, recv_cq,
                       max_sge=max_sge, max_send_wr=max_send_wr)
        if self.faults is not None:
            plan = self.faults.plan
            qp.retry_cnt = plan.retry_cnt
            qp.rnr_retry = plan.rnr_retry
            if plan.ack_timeout_ns is not None:
                qp.ack_timeout_ns = plan.ack_timeout_ns
        self._qps[qp.qp_num] = qp
        if self.faults is not None:
            # retransmission needs the watchdog and idempotence handling
            # woven through the pipeline: keep the process machinery
            self.kernel.process(
                self._send_loop(qp), name=f"{self.name}-sq{qp.qp_num}"
            )
        else:
            self._tx_rearm(qp)
        return qp

    # -- posting (CPU side) -----------------------------------------------------------
    def post_send(self, qp: QueuePair, wr: SendWR) -> Generator:
        """Post a send WR: WQE build + doorbell (the paper's near-constant
        'post' cost), then hand off to the adapter."""
        tracer = trace.active()
        if tracer is None:
            yield from self._post_send_impl(qp, wr)
            return
        with tracer.span("ib.post_send", track=self.name, opcode=wr.opcode,
                         bytes=wr.total_bytes, sges=len(wr.sges)):
            yield from self._post_send_impl(qp, wr)

    def _post_send_impl(self, qp: QueuePair, wr: SendWR) -> Generator:
        if not qp.connected:
            raise IBVerbsError(
                f"post_send on QP {qp.qp_num} in state {qp.state} "
                "(RTS required)"
            )
        if len(wr.sges) > qp.max_sge:
            raise IBVerbsError(f"{len(wr.sges)} SGEs exceeds QP max of {qp.max_sge}")
        san = sanitize._active
        for sge in wr.sges:
            mr = self.lookup_mr(sge.lkey)
            if not mr.contains(sge.addr, sge.length):
                raise IBVerbsError(
                    f"SGE [{sge.addr:#x}+{sge.length}] outside MR {mr.mr_id}"
                )
            if san is not None and san.mr:
                san.check_dma(mr, sge.addr, sge.length, "post_send")
        ns = (
            self.config.post_base_ns
            + len(wr.sges) * self.config.post_per_sge_ns
            + self.bus.doorbell_ns()
        )
        self.counters.add("hca.post_send")
        if not qp.wr_slots.try_acquire():  # blocks while the queue is full
            yield qp.wr_slots.request()
        yield self.kernel.timeout(self.clock.ns_to_ticks(ns))
        qp.send_q.put_nowait(wr)

    def post_recv(self, qp: QueuePair, wr: RecvWR) -> Generator:
        """Post a receive WR (no doorbell on the fast path)."""
        san = sanitize._active
        for sge in wr.sges:
            mr = self.lookup_mr(sge.lkey)
            if not mr.contains(sge.addr, sge.length):
                raise IBVerbsError(
                    f"SGE [{sge.addr:#x}+{sge.length}] outside MR {mr.mr_id}"
                )
            if san is not None and san.mr:
                san.check_dma(mr, sge.addr, sge.length, "post_recv")
        ns = self.config.post_base_ns * 0.6 + len(wr.sges) * self.config.post_per_sge_ns
        self.counters.add("hca.post_recv")
        yield self.kernel.timeout(self.clock.ns_to_ticks(ns))
        qp.recv_q.put_nowait(wr)

    # -- completion consumption (CPU side) ------------------------------------------------
    def wait_completion(self, cq: CompletionQueue) -> Generator:
        """Block until a CQE is available, consume it (one poll cost)."""
        wc = cq.store.try_get()
        if wc is None:
            wc = yield cq.store.get()
        yield self.kernel.timeout(self.clock.ns_to_ticks(self.config.poll_ns))
        return wc

    def try_poll(self, cq: CompletionQueue) -> Optional[WorkCompletion]:
        """Non-blocking poll (untimed peek; benchmarks that care about
        poll cost use :meth:`wait_completion`)."""
        return cq.store.try_get()

    # -- adapter send pipeline ----------------------------------------------------------------
    def _send_loop(self, qp: QueuePair) -> Generator:
        while True:
            wr = yield qp.send_q.get()
            yield from self._handle_send(qp, wr)

    # -- folded send pipeline (see "Event folding" in the module docstring) --
    def _after(self, delay_ticks: int,
               callback: Callable[[Event], None]) -> None:
        """Schedule *callback* to run after *delay_ticks* (one event)."""
        ev = self.kernel.event()
        ev._triggered = True
        ev.callbacks.append(callback)
        self.kernel._schedule(ev, delay_ticks, NORMAL)

    def _tx_rearm(self, qp: QueuePair) -> None:
        """Arm the folded send engine: wait for the next posted WR."""
        ev = qp.send_q.get()
        ev.callbacks.append(lambda ev, qp=qp: self._tx_begin(qp, ev.value))

    def _tx_begin(self, qp: QueuePair, wr: SendWR) -> None:
        if (
            trace.active() is not None
            or not fastpath.fold_enabled()
            or not qp.connected
        ):
            # tracer spans wrap the generator body; flushes and debugging
            # take the process form too.  The process re-arms on exit so
            # the engine keeps running whichever machinery handled it.
            def _one(qp=qp, wr=wr):
                yield from self._handle_send(qp, wr)
                self._tx_rearm(qp)

            self.kernel.process(_one(), name=f"{self.name}-tx{qp.qp_num}")
            return
        # WQE fetch is a short exclusive bus read
        if self.bus.read_channel.try_acquire():
            self._tx_fetch(qp, wr)
        else:
            ev = self.bus.read_channel.request()
            ev.callbacks.append(
                lambda _ev, qp=qp, wr=wr: self._tx_fetch(qp, wr)
            )

    def _tx_fetch(self, qp: QueuePair, wr: SendWR) -> None:
        self._after(
            self.clock.ns_to_ticks(self.bus.wqe_fetch_ns(len(wr.sges))),
            lambda _ev, qp=qp, wr=wr: self._tx_launch(qp, wr),
        )

    def _tx_launch(self, qp: QueuePair, wr: SendWR) -> None:
        # mirrors the body of _handle_send_impl between its two bus
        # holds: same costs, same ATT walk point, same delivery instant
        cfg = self.config
        self.bus.read_channel.release()
        if wr.opcode == "rdma_read":
            gather_ns = 0.0
            ser_ns = self.link.serialization_ns(16)
        else:
            gather_ns = self._gather_ns(wr)
            ser_ns = self.link.serialization_ns(wr.total_bytes)
        stream_ns = max(gather_ns, ser_ns)
        seq = next(_seq)
        self._outstanding[seq] = (qp, wr)
        packet = _Packet(
            kind=wr.opcode,
            src_qp=qp.qp_num,
            dst_qp=qp.peer_qp_num,
            seq=seq,
            wr_id=wr.wr_id,
            nbytes=wr.total_bytes,
            payload=wr.payload,
            remote_addr=wr.remote_addr,
            rkey=wr.rkey,
            stream_ns=stream_ns,
        )
        self.counters.add("hca.tx_messages")
        if wr.opcode != "rdma_read":
            self.counters.add("hca.tx_bytes", wr.total_bytes)
        wire = self.wire_to(qp.peer_hca)
        self._deliver(
            wire,
            packet,
            self.clock.ns_to_ticks(cfg.process_ns + self.link.config.latency_ns),
        )
        gather_ticks = self.clock.ns_to_ticks(gather_ns)
        if self.bus.read_channel.try_acquire():
            self._tx_drain(qp, gather_ticks)
        else:
            ev = self.bus.read_channel.request()
            ev.callbacks.append(
                lambda _ev, qp=qp, t=gather_ticks: self._tx_drain(qp, t)
            )

    def _tx_drain(self, qp: QueuePair, gather_ticks: int) -> None:
        self._after(gather_ticks, lambda _ev, qp=qp: self._tx_done(qp))

    def _tx_done(self, qp: QueuePair) -> None:
        self.bus.read_channel.release()
        self._tx_rearm(qp)

    def _att_range_ns(self, mr: MemoryRegion, addr: int, nbytes: int) -> float:
        """ATT stall for a DMA over ``[addr, addr+nbytes)`` of *mr*.

        One bulk sweep on the fast path (the entry indices of a DMA are
        consecutive), a per-entry walk on the reference path — both drive
        the same LRU state and counters.
        """
        entries = mr.entries_for(addr, nbytes)
        if not entries:  # zero-byte DMA: no translation walked
            return 0.0
        tracer = trace.active()
        if tracer is not None:
            tracer.instant("ib.att.range", track=self.name,
                           entries=len(entries))
        if fastpath.enabled():
            _, misses = self.att.sweep_range(mr.mr_id, entries.start, len(entries))
            return misses * self.att.config.fetch_ns
        ns = 0.0
        for entry in entries:
            _, stall = self.att.access(mr.mr_id, entry)
            ns += stall
        return ns

    def _gather_ns(self, wr: SendWR) -> float:
        """Bus-side cost of gathering all SGEs of *wr* (incl. ATT).

        A zero-byte WR launches no data DMA: the message is header-only
        and its cost floor is the link's per-packet time (see
        :meth:`repro.ib.link.IBLink.serialization_ns`), identical on the
        fast and reference costing paths.
        """
        if wr.total_bytes == 0:
            return 0.0
        cfg = self.config
        ns = self.bus.config.dma_setup_ns
        for i, sge in enumerate(wr.sges):
            if sge.length == 0:
                continue
            mr = self.lookup_mr(sge.lkey)
            ns += self._att_range_ns(mr, sge.addr, sge.length)
            ns += self.bus.bursts_for(sge.addr, sge.length) * self.bus.config.burst_ns
            ns += self.bus.offset_adjust_ns(sge.addr)
            if i > 0:
                if i < cfg.sge_pipeline_depth:
                    ns += cfg.sge_extra_ns
                else:
                    ns += cfg.sge_extra_pipelined_ns
        ns += self.bus.stream_ns(wr.total_bytes)
        return max(0.0, ns)

    def _handle_send(self, qp: QueuePair, wr: SendWR) -> Generator:
        tracer = trace.active()
        if tracer is None:
            yield from self._handle_send_impl(qp, wr)
            return
        with tracer.span("ib.tx", track=self.name, opcode=wr.opcode,
                         bytes=wr.total_bytes, sges=len(wr.sges)):
            yield from self._handle_send_impl(qp, wr)

    def _handle_send_impl(self, qp: QueuePair, wr: SendWR) -> Generator:
        cfg = self.config
        if not qp.connected:
            # the QP left RTS (SQE/ERROR after retry exhaustion) while
            # this WR sat in the send queue: flush it with an error CQE,
            # as real RC QPs do for queued work in an error state
            yield from self._flush_send(qp, wr)
            return
        # WQE fetch is a short exclusive bus read
        yield self.bus.read_channel.request()
        try:
            yield self.kernel.timeout(
                self.clock.ns_to_ticks(self.bus.wqe_fetch_ns(len(wr.sges)))
            )
        finally:
            self.bus.read_channel.release()
        # data gather streams over the bus *while* the link serializes;
        # the wire carries the first bytes after pipeline + latency, and
        # the message keeps streaming for max(gather, serialization).
        # An RDMA-read WR carries no local data outbound: it is a small
        # request packet; the data streams back in the response.
        if wr.opcode == "rdma_read":
            gather_ns = 0.0
            ser_ns = self.link.serialization_ns(16)
        else:
            gather_ns = self._gather_ns(wr)
            ser_ns = self.link.serialization_ns(wr.total_bytes)
        stream_ns = max(gather_ns, ser_ns)
        seq = next(_seq)
        self._outstanding[seq] = (qp, wr)
        packet = _Packet(
            kind=wr.opcode,
            src_qp=qp.qp_num,
            dst_qp=qp.peer_qp_num,
            seq=seq,
            wr_id=wr.wr_id,
            nbytes=wr.total_bytes,
            payload=wr.payload,
            remote_addr=wr.remote_addr,
            rkey=wr.rkey,
            stream_ns=stream_ns,
        )
        self.counters.add("hca.tx_messages")
        if wr.opcode != "rdma_read":
            self.counters.add("hca.tx_bytes", wr.total_bytes)
        wire = self.wire_to(qp.peer_hca)
        self._deliver(
            wire,
            packet,
            self.clock.ns_to_ticks(cfg.process_ns + self.link.config.latency_ns),
        )
        if self.faults is not None:
            self.kernel.process(
                self._retry_watchdog(qp, packet, wire),
                name=f"{self.name}-watchdog-{packet.seq}",
            )
        # the send engine (and the bus read channel) stay busy for the
        # whole gather; the next WR on this QP starts after it
        yield self.bus.read_channel.request()
        try:
            yield self.kernel.timeout(self.clock.ns_to_ticks(gather_ns))
        finally:
            self.bus.read_channel.release()

    def _flush_send(self, qp: QueuePair, wr: SendWR) -> Generator:
        """Complete a queued WR with a flush error (QP not in RTS)."""
        if self.faults is not None:
            self.faults.counters.add("faults.qp.flushed")
        yield self.kernel.timeout(self.clock.ns_to_ticks(self.config.cqe_write_ns))
        qp.send_cq.store.put_nowait(
            WorkCompletion(
                wr_id=wr.wr_id,
                opcode=wr.opcode,
                byte_len=wr.total_bytes,
                status="work-request-flushed-error",
            )
        )
        qp.wr_slots.release()

    # -- fault injection & RC retransmission ---------------------------------
    def _deliver(self, wire: Wire, packet: _Packet, delay_ticks: int) -> None:
        """Put *packet* on *wire*, subject to injected loss/corruption.

        A dropped packet simply never arrives; a corrupted one arrives
        flagged and is discarded by the receiver's ICRC check.  Both are
        recovered by the sender's ack-timeout watchdog.
        """
        faults = self.faults
        if faults is not None:
            # acks and read *requests* are single small packets; the
            # read data rides in the response.  packets_for(0) is 1 — a
            # zero-byte message is still one header-only packet on the
            # wire, so it sees the same loss/corruption odds everywhere.
            if packet.kind not in ("ack", "rdma_read"):
                n_packets = self.link.packets_for(packet.nbytes)
            else:
                n_packets = 1
            if faults.message_dropped(n_packets):
                return
            if faults.message_corrupted(n_packets):
                packet = replace(packet, corrupt=True)
        wire.deliver(self, packet, delay_ticks)

    def _retry_watchdog(self, qp: QueuePair, packet: _Packet, wire: Wire) -> Generator:
        """Ack-timeout timer for one outbound message (runs only when
        fault injection is active).

        Sleeps for the QP's ack timeout (scaled so a clean exchange of
        this message always beats the timer), then: done if the ack
        arrived; an RNR wait if the receiver holds the message awaiting
        a receive WR (honouring ``rnr_retry``, where 7 = forever);
        otherwise a retransmission with exponential backoff, up to
        ``retry_cnt`` attempts before the send completes with a
        transport-retry-exceeded error CQE.
        """
        cfg = self.config
        link = self.link
        # floor: one full round trip of this message with margin — the
        # IB Local Ack Timeout is likewise quantized well above the RTT
        base_ns = max(
            qp.ack_timeout_ns,
            3.0
            * (
                cfg.process_ns
                + link.config.latency_ns
                + packet.stream_ns
                + link.ack_ns()
                + cfg.recv_wqe_ns
                + cfg.cqe_write_ns
            ),
        )
        base_ticks = max(1, self.clock.ns_to_ticks(base_ns))
        t0 = self.kernel.now
        attempts = 0
        rnr_waits = 0
        while True:
            yield self.kernel.timeout(base_ticks << min(attempts, 6))
            if packet.seq not in self._outstanding:
                # acked (or aborted elsewhere); record how long recovery
                # took if we actually had to retransmit
                if attempts:
                    self.faults.counters.add(
                        "faults.qp.recovery_ticks", self.kernel.now - t0
                    )
                return
            peer = qp.peer_hca
            if peer is not None and packet.seq in peer._rx_inflight:
                # delivered but waiting on a receive WR: the RNR NAK
                # path, governed by rnr_retry (7 = retry forever)
                self.faults.counters.add("faults.qp.rnr_naks")
                rnr_waits += 1
                if qp.rnr_retry != 7 and rnr_waits > qp.rnr_retry:
                    yield from self._abort_send(
                        qp, packet, "rnr-retry-exceeded-error"
                    )
                    return
                continue
            if attempts >= qp.retry_cnt:
                yield from self._abort_send(
                    qp, packet, "transport-retry-exceeded-error"
                )
                return
            attempts += 1
            self.faults.counters.add("faults.qp.retries")
            tracer = trace.active()
            if tracer is not None:
                tracer.instant("ib.qp.retry", track=self.name,
                               attempt=attempts, kind=packet.kind,
                               bytes=packet.nbytes)
            self._deliver(
                wire,
                packet,
                self.clock.ns_to_ticks(cfg.process_ns + link.config.latency_ns),
            )

    def _abort_send(self, qp: QueuePair, packet: _Packet, status: str) -> Generator:
        """Give up on an outbound message: error CQE, QP drops to SQE."""
        entry = self._outstanding.pop(packet.seq, None)
        if entry is None:
            return
        _, wr = entry
        self.faults.counters.add("faults.qp.retry_exhausted")
        tracer = trace.active()
        if tracer is not None:
            tracer.instant("ib.qp.abort", track=self.name, status=status,
                           kind=packet.kind, bytes=packet.nbytes)
        if qp.state == "RTS":
            qp.modify("SQE")
        yield self.kernel.timeout(self.clock.ns_to_ticks(self.config.cqe_write_ns))
        qp.send_cq.store.put_nowait(
            WorkCompletion(
                wr_id=wr.wr_id,
                opcode=wr.opcode,
                byte_len=wr.total_bytes,
                status=status,
            )
        )
        qp.wr_slots.release()

    # -- adapter receive pipeline ------------------------------------------------------------
    def _on_arrival(self, packet: _Packet, wire: Wire) -> None:
        if packet.corrupt:
            # failed the ICRC check: discard silently; the sender's
            # ack-timeout watchdog retransmits
            if self.faults is not None:
                self.faults.counters.add("faults.link.rejected")
            return
        if packet.kind == "ack" and self.faults is None:
            # a clean ack needs no receive pipeline: complete the send
            # after the CQE write, as one scheduled callback instead of a
            # spawned process (same instant, two fewer kernel events per
            # message; the fault path keeps the full duplicate handling)
            entry = self._outstanding.pop(packet.seq, None)
            if entry is None:
                raise IBVerbsError(f"ack for unknown sequence {packet.seq}")
            qp, wr = entry

            def _complete(_ev, qp=qp, wr=wr, status=packet.status):
                qp.send_cq.store.put_nowait(
                    WorkCompletion(
                        wr_id=wr.wr_id,
                        opcode=wr.opcode,
                        byte_len=wr.total_bytes,
                        status=status,
                    )
                )
                qp.wr_slots.release()

            self._after(
                self.clock.ns_to_ticks(self.config.cqe_write_ns), _complete
            )
            return
        if (
            self.faults is None
            and trace.active() is None
            and fastpath.fold_enabled()
        ):
            if packet.kind == "send":
                self._rx_send_begin(packet, wire)
                return
            if packet.kind == "rdma_write":
                self._rx_write_begin(packet, wire)
                return
        self.kernel.process(
            self._receive(packet, wire), name=f"{self.name}-rx-{packet.kind}"
        )

    def _receive(self, packet: _Packet, wire: Wire) -> Generator:
        if self.faults is not None and packet.kind in ("send", "rdma_write"):
            # retransmissions must be idempotent: a message being
            # processed is left alone (the sender sees RNR), a message
            # already processed is re-acked with its recorded status
            if packet.seq in self._rx_inflight:
                self.faults.counters.add("faults.qp.duplicates")
                return
            if packet.seq in self._rx_seen:
                self.faults.counters.add("faults.qp.duplicates")
                self._send_ack(packet, self._rx_seen[packet.seq], wire)
                return
            self._rx_inflight.add(packet.seq)
        tracer = trace.active()
        if tracer is None or packet.kind == "ack":
            yield from self._receive_dispatch(packet, wire)
            return
        with tracer.span("ib.rx", track=self.name, kind=packet.kind,
                         bytes=packet.nbytes):
            yield from self._receive_dispatch(packet, wire)

    def _receive_dispatch(self, packet: _Packet, wire: Wire) -> Generator:
        if packet.kind == "ack":
            yield from self._complete_send(packet)
        elif packet.kind == "send":
            yield from self._receive_send(packet, wire)
        elif packet.kind == "rdma_write":
            yield from self._receive_rdma_write(packet, wire)
        elif packet.kind == "rdma_read":
            yield from self._receive_read_request(packet, wire)
        elif packet.kind == "read_response":
            yield from self._receive_read_response(packet)
        else:  # pragma: no cover - defensive
            raise IBVerbsError(f"unknown packet kind {packet.kind!r}")

    def _complete_send(self, packet: _Packet) -> Generator:
        entry = self._outstanding.pop(packet.seq, None)
        if entry is None:
            if self.faults is not None:
                # a duplicate ack for a message already completed (or
                # aborted): expected under retransmission, drop it
                self.faults.counters.add("faults.qp.stale_acks")
                return
            raise IBVerbsError(f"ack for unknown sequence {packet.seq}")
        qp, wr = entry
        yield self.kernel.timeout(self.clock.ns_to_ticks(self.config.cqe_write_ns))
        qp.send_cq.store.put_nowait(
            WorkCompletion(
                wr_id=wr.wr_id,
                opcode=wr.opcode,
                byte_len=wr.total_bytes,
                status=packet.status,
            )
        )
        qp.wr_slots.release()

    def _scatter_ns(self, sges: Sequence[SGE], payload_bytes: int) -> float:
        """Bus-side cost of scattering an inbound message.

        Zero payload bytes scatter nothing (the header-only-message
        counterpart of :meth:`_gather_ns`).
        """
        if payload_bytes == 0:
            return 0.0
        ns = self.bus.config.dma_setup_ns
        remaining = payload_bytes
        for i, sge in enumerate(sges):
            if remaining <= 0:
                break
            use = min(sge.length, remaining)
            mr = self.lookup_mr(sge.lkey)
            ns += self._att_range_ns(mr, sge.addr, use)
            ns += self.bus.bursts_for(sge.addr, use) * self.bus.config.burst_ns
            ns += self.bus.offset_adjust_ns(sge.addr)
            if i > 0:
                if i < self.config.sge_pipeline_depth:
                    ns += self.config.sge_extra_ns
                else:
                    ns += self.config.sge_extra_pipelined_ns
            remaining -= use
        ns += self.bus.stream_ns(payload_bytes)
        return ns

    # -- folded receive pipeline (see "Event folding" in the module docstring) --
    def _rx_send_begin(self, packet: _Packet, wire: Wire) -> None:
        """Folded two-sided receive: same ticks as :meth:`_receive_send`."""
        qp = self._qps.get(packet.dst_qp)
        if qp is None:
            raise IBVerbsError(f"send targets unknown QP {packet.dst_qp}")
        recv_wr = qp.recv_q.try_get()
        if recv_wr is not None:
            self._rx_send_fetch(qp, recv_wr, packet, wire)
        else:
            # no posted receive yet: wait for one (the RNR-wait model)
            ev = qp.recv_q.get()
            ev.callbacks.append(
                lambda ev, qp=qp, packet=packet, wire=wire: self._rx_send_fetch(
                    qp, ev.value, packet, wire
                )
            )

    def _rx_send_fetch(
        self, qp: QueuePair, recv_wr: RecvWR, packet: _Packet, wire: Wire
    ) -> None:
        status = "success"
        if recv_wr.total_bytes < packet.nbytes:
            status = "local-length-error"
        self._after(
            self.clock.ns_to_ticks(self.config.recv_wqe_ns),
            lambda _ev: self._rx_send_grant(qp, recv_wr, packet, wire, status),
        )

    def _rx_send_grant(
        self, qp: QueuePair, recv_wr: RecvWR, packet: _Packet, wire: Wire,
        status: str,
    ) -> None:
        if self.bus.write_channel.try_acquire():
            self._rx_send_scatter(qp, recv_wr, packet, wire, status)
        else:
            ev = self.bus.write_channel.request()
            ev.callbacks.append(
                lambda _ev: self._rx_send_scatter(qp, recv_wr, packet, wire, status)
            )

    def _rx_send_scatter(
        self, qp: QueuePair, recv_wr: RecvWR, packet: _Packet, wire: Wire,
        status: str,
    ) -> None:
        # ATT walked at the grant instant, exactly as the process form
        scatter_ns = self._scatter_ns(
            recv_wr.sges, min(packet.nbytes, recv_wr.total_bytes)
        )
        ns = max(scatter_ns, packet.stream_ns) + self.config.cqe_write_ns
        self._after(
            self.clock.ns_to_ticks(ns),
            lambda _ev: self._rx_send_done(qp, recv_wr, packet, wire, status),
        )

    def _rx_send_done(
        self, qp: QueuePair, recv_wr: RecvWR, packet: _Packet, wire: Wire,
        status: str,
    ) -> None:
        self.bus.write_channel.release()
        self.counters.add("hca.rx_messages")
        self.counters.add("hca.rx_bytes", packet.nbytes)
        qp.recv_cq.store.put_nowait(
            WorkCompletion(
                wr_id=recv_wr.wr_id,
                opcode="recv",
                byte_len=packet.nbytes,
                status=status,
                payload=packet.payload,
            )
        )
        self._send_ack(packet, status, wire)

    def _rx_write_begin(self, packet: _Packet, wire: Wire) -> None:
        """Folded one-sided write: same ticks as :meth:`_receive_rdma_write`."""
        mr = self._mrs_by_rkey.get(packet.rkey)
        san = sanitize._active
        if san is not None and san.mr:
            san.check_rkey(mr, packet.rkey, packet.remote_addr,
                           packet.nbytes, "rdma_write.rx")
        if (
            mr is None
            or not mr.registered
            or not mr.contains(packet.remote_addr, packet.nbytes)
        ):
            self._send_ack(packet, "remote-access-error", wire)
            return
        if self.bus.write_channel.try_acquire():
            self._rx_write_scatter(mr, packet, wire)
        else:
            ev = self.bus.write_channel.request()
            ev.callbacks.append(
                lambda _ev: self._rx_write_scatter(mr, packet, wire)
            )

    def _rx_write_scatter(self, mr: MemoryRegion, packet: _Packet, wire: Wire) -> None:
        scatter_ns = self.bus.config.dma_setup_ns
        scatter_ns += self._att_range_ns(mr, packet.remote_addr, packet.nbytes)
        scatter_ns += self.bus.bursts_for(packet.remote_addr, packet.nbytes) * \
            self.bus.config.burst_ns
        scatter_ns += self.bus.stream_ns(packet.nbytes)
        ns = max(scatter_ns, packet.stream_ns)
        self._after(
            self.clock.ns_to_ticks(ns),
            lambda _ev: self._rx_write_done(packet, wire),
        )

    def _rx_write_done(self, packet: _Packet, wire: Wire) -> None:
        self.bus.write_channel.release()
        self.rdma_landed[(packet.rkey, packet.remote_addr)] = packet.payload
        self.counters.add("hca.rx_messages")
        self.counters.add("hca.rx_bytes", packet.nbytes)
        self._send_ack(packet, "success", wire)

    def _receive_send(self, packet: _Packet, wire: Wire) -> Generator:
        qp = self._qps.get(packet.dst_qp)
        if qp is None:
            raise IBVerbsError(f"send targets unknown QP {packet.dst_qp}")
        # RC semantics: without a posted receive the sender would see RNR
        # retries; we model it as waiting for the receive to be posted.
        recv_wr = yield qp.recv_q.get()
        status = "success"
        if recv_wr.total_bytes < packet.nbytes:
            status = "local-length-error"
        yield self.kernel.timeout(self.clock.ns_to_ticks(self.config.recv_wqe_ns))
        yield self.bus.write_channel.request()
        try:
            scatter_ns = self._scatter_ns(
                recv_wr.sges, min(packet.nbytes, recv_wr.total_bytes)
            )
            # the scatter overlaps the inbound stream; the bus is busy for
            # whichever is longer, plus the CQE write
            ns = max(scatter_ns, packet.stream_ns) + self.config.cqe_write_ns
            yield self.kernel.timeout(self.clock.ns_to_ticks(ns))
        finally:
            self.bus.write_channel.release()
        self.counters.add("hca.rx_messages")
        self.counters.add("hca.rx_bytes", packet.nbytes)
        qp.recv_cq.store.put_nowait(
            WorkCompletion(
                wr_id=recv_wr.wr_id,
                opcode="recv",
                byte_len=packet.nbytes,
                status=status,
                payload=packet.payload,
            )
        )
        self._rx_done(packet, status)
        self._send_ack(packet, status, wire)

    def _receive_rdma_write(self, packet: _Packet, wire: Wire) -> Generator:
        mr = self._mrs_by_rkey.get(packet.rkey)
        san = sanitize._active
        if san is not None and san.mr:
            # catch the use-after-dereg rkey here, at the faulting rx,
            # instead of quietly answering remote-access-error below
            san.check_rkey(mr, packet.rkey, packet.remote_addr,
                           packet.nbytes, "rdma_write.rx")
        status = "success"
        if mr is None or not mr.registered:
            status = "remote-access-error"
        elif not mr.contains(packet.remote_addr, packet.nbytes):
            status = "remote-access-error"
        if status == "success":
            yield self.bus.write_channel.request()
            try:
                scatter_ns = self.bus.config.dma_setup_ns
                scatter_ns += self._att_range_ns(
                    mr, packet.remote_addr, packet.nbytes
                )
                scatter_ns += self.bus.bursts_for(packet.remote_addr, packet.nbytes) * \
                    self.bus.config.burst_ns
                scatter_ns += self.bus.stream_ns(packet.nbytes)
                ns = max(scatter_ns, packet.stream_ns)
                yield self.kernel.timeout(self.clock.ns_to_ticks(ns))
            finally:
                self.bus.write_channel.release()
            self.rdma_landed[(packet.rkey, packet.remote_addr)] = packet.payload
            self.counters.add("hca.rx_messages")
            self.counters.add("hca.rx_bytes", packet.nbytes)
        self._rx_done(packet, status)
        self._send_ack(packet, status, wire)

    def _receive_read_request(self, packet: _Packet, wire: Wire) -> Generator:
        """Responder half of an RDMA read: gather the exposed region
        and stream it back as a read response."""
        mr = self._mrs_by_rkey.get(packet.rkey)
        san = sanitize._active
        if san is not None and san.mr:
            san.check_rkey(mr, packet.rkey, packet.remote_addr,
                           packet.nbytes, "rdma_read.rx")
        status = "success"
        if mr is None or not mr.registered or not mr.contains(
            packet.remote_addr, packet.nbytes
        ):
            status = "remote-access-error"
        gather_ns = 0.0
        if status == "success":
            gather_ns = self.bus.config.dma_setup_ns
            gather_ns += self._att_range_ns(mr, packet.remote_addr, packet.nbytes)
            gather_ns += self.bus.bursts_for(
                packet.remote_addr, packet.nbytes
            ) * self.bus.config.burst_ns
            gather_ns += self.bus.stream_ns(packet.nbytes)
            self.counters.add("hca.tx_bytes", packet.nbytes)
        payload = self.rdma_exposed.get((packet.rkey, packet.remote_addr))
        ser_ns = self.link.serialization_ns(packet.nbytes)
        # the response streams while the gather runs (same overlap as the
        # send path); the first bytes leave after pipeline + latency
        response = _Packet(
            kind="read_response",
            src_qp=packet.dst_qp,
            dst_qp=packet.src_qp,
            seq=packet.seq,
            wr_id=packet.wr_id,
            nbytes=packet.nbytes,
            payload=payload,
            status=status,
            stream_ns=max(gather_ns, ser_ns),
        )
        self._deliver(
            wire, response,
            self.clock.ns_to_ticks(
                self.config.process_ns + self.link.config.latency_ns
            ),
        )
        if status == "success":
            yield self.bus.read_channel.request()
            try:
                yield self.kernel.timeout(self.clock.ns_to_ticks(gather_ns))
            finally:
                self.bus.read_channel.release()

    def _receive_read_response(self, packet: _Packet) -> Generator:
        """Initiator half: scatter the returned data locally, complete."""
        entry = self._outstanding.pop(packet.seq, None)
        if entry is None:
            if self.faults is not None:
                # duplicate response from a retransmitted read request
                self.faults.counters.add("faults.qp.stale_acks")
                return
            raise IBVerbsError(f"read response for unknown seq {packet.seq}")
        qp, wr = entry
        if packet.status == "success":
            yield self.bus.write_channel.request()
            try:
                scatter_ns = self._scatter_ns(wr.sges, packet.nbytes)
                ns = max(scatter_ns, packet.stream_ns) + self.config.cqe_write_ns
                yield self.kernel.timeout(self.clock.ns_to_ticks(ns))
            finally:
                self.bus.write_channel.release()
            self.counters.add("hca.rx_messages")
            self.counters.add("hca.rx_bytes", packet.nbytes)
        qp.send_cq.store.put_nowait(
            WorkCompletion(
                wr_id=wr.wr_id,
                opcode="rdma_read",
                byte_len=packet.nbytes,
                status=packet.status,
                payload=packet.payload,
            )
        )
        qp.wr_slots.release()

    def _rx_done(self, packet: _Packet, status: str) -> None:
        """Record an inbound message as fully processed so a later
        retransmission of it is re-acked instead of re-executed."""
        if self.faults is not None:
            self._rx_inflight.discard(packet.seq)
            self._rx_seen[packet.seq] = status

    def _send_ack(self, packet: _Packet, status: str, wire: Wire) -> None:
        ack = _Packet(
            kind="ack",
            src_qp=packet.dst_qp,
            dst_qp=packet.src_qp,
            seq=packet.seq,
            wr_id=packet.wr_id,
            nbytes=0,
            status=status,
        )
        self._deliver(wire, ack, self.clock.ns_to_ticks(self.link.ack_ns()))
