"""The HCA's address-translation-table (ATT) cache.

Registered memory regions store their page translations in adapter
memory; the adapter keeps a small on-chip cache of recently used entries.
Every DMA access must translate its target page — a cached entry is free,
a miss stalls the DMA engine while the entry is fetched from adapter
memory (or host memory, depending on the design).

The paper's mechanism (§5.1, §6): with 4 KB translations a multi-megabyte
transfer touches a new entry every 4 KB and the cache thrashes; with the
patched driver sending 2 MB translations the working set shrinks 512×,
"less ATT misses on the adapter ... can also result in bigger network
bandwidth due to less dispatched stalls" — visible on the Xeon's PCI-X
system where the bus has no slack to hide the stalls.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from typing import Optional, Tuple

from repro import sanitize
from repro.analysis.counters import CounterSet


@dataclass(frozen=True)
class ATTConfig:
    """ATT cache geometry and miss cost.

    Attributes
    ----------
    entries: on-chip translation-cache entries (page-size agnostic).
    fetch_ns: stall to fetch one entry on a miss.
    """

    entries: int = 64
    fetch_ns: float = 250.0

    def __post_init__(self) -> None:
        if self.entries < 1:
            raise ValueError("ATT cache needs at least one entry")
        if self.fetch_ns < 0:
            raise ValueError("fetch cost cannot be negative")


class ATTCache:
    """Fully-associative LRU cache of translation entries.

    Keys are ``(mr_id, entry_index)`` pairs — an entry translates one
    *registered page* of one memory region, at whatever page size the
    driver uploaded.
    """

    def __init__(self, config: ATTConfig, counters: Optional[CounterSet] = None):
        self.config = config
        self.counters = counters if counters is not None else CounterSet()
        self._cache: OrderedDict = OrderedDict()

    def access(self, mr_id: int, entry_index: int) -> Tuple[bool, float]:
        """Translate through entry *entry_index* of region *mr_id*.

        Returns ``(hit, stall_ns)``.
        """
        san = sanitize._active
        if san is not None and san.mr:
            san.check_att(mr_id, entry_index, 1)
        key = (mr_id, entry_index)
        if key in self._cache:
            self._cache.move_to_end(key)
            self.counters.add("att.hit")
            return True, 0.0
        self.counters.add("att.miss")
        while len(self._cache) >= self.config.entries:
            self._cache.popitem(last=False)
        self._cache[key] = True
        return False, self.config.fetch_ns

    def sweep_range(self, mr_id: int, first_entry: int, n_entries: int) -> Tuple[int, int]:
        """Translate a sequential run of entries in one call.

        Exactly equivalent to per-entry :meth:`access` calls on
        ``(mr_id, first_entry) .. (mr_id, first_entry+n_entries-1)``:
        identical hit/miss totals and counters, identical final cache
        content and LRU order.  Returns ``(hits, misses)``; the stall is
        ``misses * config.fetch_ns``.
        """
        if n_entries <= 0:
            raise ValueError(f"n_entries must be positive, got {n_entries}")
        san = sanitize._active
        if san is not None and san.mr:
            san.check_att(mr_id, first_entry, n_entries)
        cache = self._cache
        capacity = self.config.entries
        end = first_entry + n_entries
        resident = 0
        if len(cache) <= n_entries:
            for mr, idx in cache:
                if mr == mr_id and first_entry <= idx < end:
                    resident += 1
        else:
            for idx in range(first_entry, end):
                if (mr_id, idx) in cache:
                    resident += 1
        if resident == 0:
            hits, misses = 0, n_entries
            if n_entries >= capacity:
                cache.clear()
                for idx in range(end - capacity, end):
                    cache[(mr_id, idx)] = True
            else:
                overflow = len(cache) + n_entries - capacity
                for _ in range(overflow if overflow > 0 else 0):
                    cache.popitem(last=False)
                for idx in range(first_entry, end):
                    cache[(mr_id, idx)] = True
        elif resident == n_entries:
            # all hits: nothing inserted, so nothing evicted
            hits, misses = n_entries, 0
            for idx in range(first_entry, end):
                cache.move_to_end((mr_id, idx))
        elif (
            resident == capacity
            and len(cache) == capacity
            and n_entries >= 2 * capacity
            and all(
                key == expect
                for key, expect in zip(
                    cache, ((mr_id, i) for i in range(end - capacity, end))
                )
            )
        ):
            # repeated long sweep: the cache holds exactly the last
            # `capacity` swept entries in sweep order, and evictions race
            # ahead of the cursor — all misses, final state unchanged
            # (see the matching case in repro.fastpath.lru_sweep)
            hits, misses = 0, n_entries
        else:
            hits = 0
            for idx in range(first_entry, end):
                key = (mr_id, idx)
                if key in cache:
                    cache.move_to_end(key)
                    hits += 1
                else:
                    while len(cache) >= capacity:
                        cache.popitem(last=False)
                    cache[key] = True
            misses = n_entries - hits
        if hits:
            self.counters.add("att.hit", hits)
        if misses:
            self.counters.add("att.miss", misses)
        return hits, misses

    def stream_stall_ns(self, mr_id: int, first_entry: int, n_entries: int) -> float:
        """Total stall for a sequential sweep over *n_entries* entries.

        Used by the HCA for large transfers: charges the exact per-entry
        hit/miss pattern through the stateful cache (cheap — entry counts
        are page counts, not byte counts).
        """
        if n_entries < 0:
            raise ValueError("negative entry count")
        total = 0.0
        for i in range(first_entry, first_entry + n_entries):
            _, ns = self.access(mr_id, i)
            total += ns
        return total

    def invalidate_region(self, mr_id: int) -> int:
        """Drop all cached entries of one region (deregistration).

        Returns the number of entries dropped.
        """
        doomed = [k for k in self._cache if k[0] == mr_id]
        for k in doomed:
            del self._cache[k]
        return len(doomed)

    @property
    def resident(self) -> int:
        """Live cached entries."""
        return len(self._cache)

    def flush(self) -> None:
        """Drop everything."""
        self._cache.clear()

    # -- checkpointing ------------------------------------------------------
    def dump_state(self) -> list:
        """Picklable snapshot: ``(mr_id, entry_index)`` keys in LRU
        order (oldest first)."""
        return [tuple(key) for key in self._cache]

    def load_state(self, state: list) -> None:
        """Restore a :meth:`dump_state` snapshot."""
        self._cache.clear()
        for key in state:
            self._cache[tuple(key)] = True
