"""Command-line interface: regenerate any of the paper's experiments.

::

    python -m repro list                 # what can be regenerated
    python -m repro fig3                 # Fig 3 (SGE sweep)
    python -m repro fig4                 # Fig 4 (offset sweep)
    python -m repro fig5                 # Fig 5 (IMB SendRecv, Opteron)
    python -m repro xeon                 # the §5.1 Xeon driver experiment
    python -m repro registration         # the 1 % registration table
    python -m repro fig6 [--class B]     # NAS improvements (default W)
    python -m repro tlb  [--class B]     # §5.2 TLB miss counts
    python -m repro abinit               # the allocator comparison
    python -m repro breakdown [--mb 4]   # per-component message costs
    python -m repro faults               # fault-injection demo + report
    python -m repro perf [--quick]       # fast-vs-reference perf harness
    python -m repro trace fig5 --trace-out t.json   # traced figure run
    python -m repro batch specs.json     # crash-tolerant batch runner

Each command prints the same rows/series the paper reports.  The heavier
NAS commands accept ``--class W|B|C`` (the benchmark suite uses C).

Every command accepts ``--no-fastpath`` (before or after the command
name) to force the reference per-element costing loops instead of the
batched fast paths — results are identical either way, only slower (see
``docs/performance.md``).  Every command likewise accepts ``--scheduler
heap|calendar`` (or the ``REPRO_SCHEDULER`` environment variable) to
select the event scheduler for every kernel in the run; the two produce
byte-identical output and differ only in dispatch cost.

``fig5``, ``pingpong`` and ``faults`` accept ``--fault-plan
key=value,...`` and ``--fault-seed N`` to run under injected faults
(see :mod:`repro.faults` and ``docs/fault_model.md``).  The plan may
also be a path to a JSON file of the same knobs.

``fig5``, ``fig6``, ``tlb`` and ``faults`` additionally accept
``--checkpoint-every N`` / ``--checkpoint-dir DIR`` (snapshot the run
ledger every N simulated ticks), ``--audit`` (run the cross-layer
invariant auditor after every unit) and ``--hang-timeout SECONDS`` (a
wall-clock watchdog that dumps a post-mortem and exits non-zero if the
event loop stalls).  ``repro resume <snapshot>`` re-runs a checkpointed
command, replaying completed units from the snapshot — see
``docs/checkpointing.md``.

``fig5``, ``fig6``, ``tlb`` and ``faults`` accept ``--trace`` (print the
per-phase counter-delta table after the run) and ``--trace-out FILE``
(write a Chrome/Perfetto ``trace_event`` JSON timeline); ``repro trace
<fig5|fig6|nas|faults>`` is the shorthand that runs a driver with
tracing on — see ``docs/observability.md``.

The same commands accept ``--sanitize[=heap,mr,tlb,counter]`` (default
``all``) to run under the shadow-state sanitizer of
:mod:`repro.sanitize`; ``repro sanitize <fig5|fig6|nas|faults>`` is the
shorthand, and the ``REPRO_SANITIZE`` environment variable enables the
same groups for any command.  A violation aborts the run with exit code
3 and a one-line report naming the rule and the faulting address/key —
see ``docs/static_analysis.md``.

``repro batch <specfile>`` runs a JSON list of experiment specs on a
supervised worker-process pool with a crash-safe job journal, per-job
timeouts, retry with exponential backoff, resume-from-snapshot crash
recovery, sha256-keyed result memoization and a seeded ``--chaos``
mode — see ``docs/batch_runner.md``.

Exit codes are a contract across every subcommand: 0 = clean run, 2 =
bad spec / failed preflight (bad flags, unreadable or corrupt
snapshot/specfile, unwritable output path), 3 = sanitizer violation;
the batch runner adds 1 = jobs failed permanently and 130 =
interrupted.
"""

from __future__ import annotations

import argparse
import contextlib
import os
import sys
from pathlib import Path
from typing import List, Optional

KB = 1024
MB = 1024 * 1024


def _ensure_dir(path: str, flag: str) -> None:
    """Create *path* (with parents) or exit with code 2 and a one-line
    error — never a traceback — when it cannot be created."""
    try:
        os.makedirs(path, exist_ok=True)
    except OSError as exc:
        print(f"error: {flag}: cannot create directory {path!r}: {exc}",
              file=sys.stderr)
        raise SystemExit(2)


def _ensure_parent_dir(path: str, flag: str) -> None:
    """Create *path*'s parent directory and verify *path* is writable,
    exiting with code 2 on failure (checked before the run starts, so a
    bad output path cannot waste a long simulation)."""
    parent = os.path.dirname(os.path.abspath(path))
    try:
        os.makedirs(parent, exist_ok=True)
        with open(path, "a"):
            pass
    except OSError as exc:
        print(f"error: {flag}: cannot write {path!r}: {exc}", file=sys.stderr)
        raise SystemExit(2)


def _cmd_fig3(args) -> None:
    from repro.analysis.report import Table
    from repro.workloads.verbs_micro import measure_send

    sizes = [1, 8, 32, 64, 128, 256, 512, 1024, 2048]
    counts = [1, 2, 4, 8]
    table = Table(["SGE size"] + [f"{n} SGEs" for n in counts],
                  title="Fig 3: work request duration [TBR ticks] (System p)")
    for size in sizes:
        table.add_row([size] + [
            measure_send(sges=n, sge_size=size).total_ticks for n in counts
        ])
    print(table.render())
    one = measure_send(sges=1, sge_size=64)
    many = measure_send(sges=128, sge_size=64)
    print(f"\npost: 1 SGE = {one.post_ticks} ticks, 128 SGEs = "
          f"{many.post_ticks} ticks ({many.post_ticks / one.post_ticks:.2f}x; "
          f"the paper: 'only three times higher')")


def _cmd_fig4(args) -> None:
    from repro.analysis.report import Table
    from repro.workloads.verbs_micro import measure_send

    offsets = list(range(0, 129, 8))
    sizes = [8, 16, 32, 64]
    table = Table(["offset"] + [f"{s} B" for s in sizes],
                  title="Fig 4: duration vs in-page offset [TBR ticks]")
    for off in offsets:
        table.add_row([off] + [
            measure_send(sges=1, sge_size=s, offset=off).total_ticks
            for s in sizes
        ])
    print(table.render())


def _parse_fault_plan(args):
    """The FaultPlan from ``--fault-plan``/``--fault-seed``, or None.

    The spec is either the inline ``key=value,...`` form or a path to a
    JSON file holding the same knobs as an object.
    """
    from repro.faults import FaultPlan

    spec = getattr(args, "fault_plan", None)
    if spec is None:
        return None
    seed = getattr(args, "fault_seed", 0)
    try:
        if spec.endswith(".json") or os.path.sep in spec or os.path.isfile(spec):
            return FaultPlan.from_file(spec, seed=seed)
        return FaultPlan.from_spec(spec, seed=seed)
    except ValueError as exc:
        print(f"error: --fault-plan: {exc}", file=sys.stderr)
        raise SystemExit(2)


@contextlib.contextmanager
def _harness(args):
    """Per-run checkpoint ledger plus the optional hang watchdog.

    Yields a :class:`repro.checkpoint.RunCheckpointer` (a passthrough
    when no checkpoint flags were given).
    """
    from repro.checkpoint import HangWatchdog, RunCheckpointer

    ckpt = RunCheckpointer(
        command=args.command,
        argv=getattr(args, "_argv", []),
        directory=getattr(args, "checkpoint_dir", None),
        every_ticks=getattr(args, "checkpoint_every", None),
        audit=getattr(args, "audit", False),
        preloaded_units=getattr(args, "_resume_units", None),
    )
    watchdog = None
    timeout = getattr(args, "hang_timeout", None)
    if timeout:
        watchdog = HangWatchdog(
            timeout,
            snapshot_dir=getattr(args, "checkpoint_dir", None) or "checkpoints",
        )
        watchdog.start()
    try:
        yield ckpt
    finally:
        if watchdog is not None:
            watchdog.stop()


def _cmd_fig5(args) -> None:
    from repro.analysis.report import Table
    from repro.systems import presets
    from repro.workloads.imb import SendRecvBenchmark

    sizes = [1 * KB, 4 * KB, 8 * KB, 16 * KB, 64 * KB, 256 * KB, 1 * MB,
             4 * MB]
    bench = SendRecvBenchmark(presets.opteron_infinihost_pcie)
    plan = _parse_fault_plan(args)
    curves = {
        "small pages": (False, True),
        "hugepages": (True, True),
        "small, no lazy dereg": (False, False),
        "huge, no lazy dereg": (True, False),
    }
    results = {}
    with _harness(args) as ckpt:
        for label, (hp, lazy) in curves.items():
            def unit(hp=hp, lazy=lazy):
                res = bench.run(sizes, hugepages=hp, lazy_dereg=lazy,
                                fault_plan=plan)
                cluster = bench.last_cluster
                return res, cluster.kernel.now, cluster
            results[label] = ckpt.run_unit(f"fig5:{label}", unit)
    title = "Fig 5: IMB SendRecv bandwidth [MB/s] (AMD Opteron)"
    if plan is not None:
        title += f" under faults: {args.fault_plan}"
    table = Table(["size [KB]"] + list(curves), title=title)
    for size in sizes:
        table.add_row([size // KB] + [results[l].bandwidth_at(size)
                                      for l in curves])
    print(table.render())


def _cmd_xeon(args) -> None:
    from repro.analysis.report import Table
    from repro.systems import presets
    from repro.workloads.imb import SendRecvBenchmark

    sizes = [256 * KB, 1 * MB, 4 * MB]
    bench = SendRecvBenchmark(presets.xeon_infinihost_pcix)
    stock = bench.run(sizes, hugepages=True, lazy_dereg=True,
                      driver_hugepage_aware=False)
    patched = bench.run(sizes, hugepages=True, lazy_dereg=True,
                        driver_hugepage_aware=True)
    table = Table(["size [KB]", "stock driver", "patched driver", "gain %"],
                  title="Xeon/PCI-X: hugepage buffers, OpenIB driver patch")
    for size in sizes:
        a, b = stock.bandwidth_at(size), patched.bandwidth_at(size)
        table.add_row([size // KB, a, b, (b - a) / a * 100])
    print(table.render())


def _cmd_registration(args) -> None:
    from repro.analysis.report import Table
    from repro.engine import SimKernel
    from repro.ib.verbs import ProtectionDomain
    from repro.mem.physical import PAGE_2M, PAGE_4K
    from repro.systems import Machine, presets

    machine = Machine(SimKernel(), presets.opteron_infinihost_pcie(
        hugepages=256))
    proc = machine.new_process()
    pd = ProtectionDomain.fresh()
    table = Table(["size [KB]", "4K pages [us]", "2M pages [us]", "ratio %"],
                  title="Registration cost (patched driver)")
    for size in (64 * KB, 1 * MB, 4 * MB, 16 * MB, 64 * MB):
        costs = {}
        for page_size, label in ((PAGE_4K, "4k"), (PAGE_2M, "2m")):
            vma = proc.aspace.mmap(size, page_size=page_size)
            mr, ns = machine.reg_engine.register(proc.aspace, pd, vma.start,
                                                 size)
            costs[label] = ns
            machine.reg_engine.deregister(proc.aspace, mr)
            proc.aspace.munmap(vma.start)
        table.add_row([size // KB, costs["4k"] / 1000, costs["2m"] / 1000,
                       costs["2m"] / costs["4k"] * 100])
    print(table.render())


def _cmd_fig6(args) -> None:
    from repro.analysis.report import Table
    from repro.systems import presets
    from repro.workloads.nas import KERNELS
    from repro.workloads.nas.common import compare_hugepages

    table = Table(["kernel", "comm %", "other %", "overall %", "TLB x"],
                  title=f"Fig 6: NAS class {args.klass}, AMD Opteron, "
                        "2 nodes x 4 ranks")
    with _harness(args) as ckpt:
        for name, prog in KERNELS.items():
            def unit(prog=prog):
                sink = []
                c = compare_hugepages(prog, presets.opteron_infinihost_pcie(),
                                      klass=args.klass, nas_hugepage_pool=720,
                                      cluster_sink=sink)
                return c, sum(cl.kernel.now for cl in sink), sink
            c = ckpt.run_unit(f"fig6:{name}:{args.klass}", unit)
            table.add_row([name, c.comm_improvement_pct,
                           c.other_improvement_pct,
                           c.overall_improvement_pct, c.tlb_miss_ratio])
            print(f"  {name} done", file=sys.stderr)
    print(table.render())


def _cmd_tlb(args) -> None:
    from repro.analysis.report import Table
    from repro.systems import presets
    from repro.workloads.nas import KERNELS
    from repro.workloads.nas.common import compare_hugepages

    table = Table(["kernel", "misses 4K run", "misses hugepage run", "ratio"],
                  title=f"§5.2 TLB misses, NAS class {args.klass} (Opteron)")
    with _harness(args) as ckpt:
        for name, prog in KERNELS.items():
            def unit(prog=prog):
                sink = []
                c = compare_hugepages(prog, presets.opteron_infinihost_pcie(),
                                      klass=args.klass, nas_hugepage_pool=720,
                                      cluster_sink=sink)
                return c, sum(cl.kernel.now for cl in sink), sink
            c = ckpt.run_unit(f"tlb:{name}:{args.klass}", unit)
            table.add_row([name, c.small.tlb_misses_total,
                           c.huge.tlb_misses_total, c.tlb_miss_ratio])
            print(f"  {name} done", file=sys.stderr)
    print(table.render())


def _cmd_abinit(args) -> None:
    from repro.analysis.report import Table
    from repro.systems import presets
    from repro.workloads.abinit import compare_allocators

    app = compare_allocators(presets.opteron_infinihost_pcie)
    table = Table(["allocator", "runtime [ms]", "alloc time [ms]",
                   "alloc share %"],
                  title="Abinit-like run: libc vs the hugepage library")
    for name, r in app.items():
        table.add_row([name, r.total_ns / 1e6, r.alloc_ns / 1e6,
                       r.alloc_fraction * 100])
    print(table.render())
    libc, lib = app["libc"], app["hugepage_lib"]
    print(f"\nallocator speedup: {libc.alloc_ns / lib.alloc_ns:.1f}x; "
          f"runtime saving from allocator time alone: "
          f"{(libc.alloc_ns - lib.alloc_ns) / libc.total_ns * 100:.1f}%")


def _cmd_pingpong(args) -> None:
    from repro.analysis.report import Table
    from repro.systems import presets
    from repro.workloads.imb import PingPongBenchmark

    sizes = [64, 1 * KB, 8 * KB, 64 * KB, 1 * MB]
    bench = PingPongBenchmark(presets.opteron_infinihost_pcie)
    plan = _parse_fault_plan(args)
    small = bench.run(sizes, hugepages=False, fault_plan=plan)
    huge = bench.run(sizes, hugepages=True, fault_plan=plan)
    table = Table(
        ["size [B]", "4K pages [us]", "2M pages [us]"],
        title="IMB PingPong half-RTT latency (Opteron)",
    )
    for i, size in enumerate(sizes):
        table.add_row([size, small.rows[i].latency_us, huge.rows[i].latency_us])
    print(table.render())


def _cmd_breakdown(args) -> None:
    from repro.analysis.breakdown import breakdown_rdma_message
    from repro.analysis.report import Table
    from repro.mem.physical import PAGE_2M, PAGE_4K
    from repro.systems import presets

    size = int(args.mb * MB)
    spec = presets.opteron_infinihost_pcie()
    table = Table(["config", "reg [us]", "gather [us]", "wire [us]",
                   "scatter [us]", "pipeline [us]"],
                  title=f"{args.mb} MB message breakdown (Opteron)")
    for label, ps, cached in (("4K cold", PAGE_4K, False),
                              ("2M cold", PAGE_2M, False),
                              ("4K cached", PAGE_4K, True),
                              ("2M cached", PAGE_2M, True)):
        b = breakdown_rdma_message(spec, size, ps, registration_cached=cached)
        table.add_row([label, b.registration_ns / 1000, b.gather_ns / 1000,
                       b.wire_ns / 1000, b.scatter_ns / 1000,
                       b.critical_path_ns / 1000])
    print(table.render())


def _cmd_faults(args) -> None:
    """Demo: a rendezvous workload over a lossy link, with and without
    faults, plus the degradation report (the ISSUE's acceptance demo)."""
    from repro.analysis.report import degradation_report
    from repro.core.placement import BufferPlacer, PlacementPolicy
    from repro.faults import MPITransportError
    from repro.mpi.api import MPIConfig, MPIWorld
    from repro.systems import presets
    from repro.systems.machine import Cluster

    n_msgs, size = 8, 64 * KB
    expected = [("msg", i) for i in range(n_msgs)]

    def program(comm):
        placer = BufferPlacer(comm.proc)
        buf = placer.place(size, PlacementPolicy.SMALL_PAGES, offset=0)
        if comm.rank == 0:
            for i in range(n_msgs):
                yield from comm.send(1, 10 + i, size, addr=buf.addr,
                                     payload=("msg", i))
            return None
        got = []
        for i in range(n_msgs):
            payload, *_ = yield from comm.recv(0, 10 + i, addr=buf.addr)
            got.append(payload)
        return got

    def run(plan):
        cluster = Cluster(presets.opteron_infinihost_pcie(), n_nodes=2,
                          fault_plan=plan)
        world = MPIWorld(cluster, ppn=1, config=MPIConfig())
        results = world.run(program)
        # app_ticks, not kernel.now: trailing watchdog timers keep the
        # kernel busy after the ranks have finished
        return cluster, results, max(r.app_ticks for r in results)

    plan = _parse_fault_plan(args)
    # resumed runs replay from the ledger without a cluster, so the
    # clock comes from the spec, not a live run
    from repro.engine.clock import TickClock

    clock = TickClock(presets.opteron_infinihost_pcie().ticks_per_us)
    with _harness(args) as ckpt:
        def baseline_unit():
            cluster, _results, ticks = run(None)
            return {"ticks": ticks}, ticks, cluster

        base_ticks = ckpt.run_unit("faults:baseline", baseline_unit)["ticks"]
        print(f"workload: {n_msgs} x {size // KB} KB rendezvous transfers, "
              f"rank 0 -> rank 1")
        print(f"fault plan: {args.fault_plan} (seed {args.fault_seed})")
        print(f"fault-free time: {clock.ticks_to_us(base_ticks):.1f} us")

        def faulted_unit():
            cluster, results, ticks = run(plan)
            return {"ticks": ticks, "got": results[1].value,
                    "counters": cluster.aggregate_counters()}, ticks, cluster

        try:
            faulted = ckpt.run_unit("faults:faulted", faulted_unit)
        except MPITransportError as exc:
            # the plan's retry budget was exhausted: a legal, clean outcome
            print(f"with faults:     ABORTED ({exc})")
            raise SystemExit(1)
    ok = faulted["got"] == expected
    ticks = faulted["ticks"]
    print(f"with faults:     {clock.ticks_to_us(ticks):.1f} us "
          f"({ticks / base_ticks:.2f}x)")
    print("payload integrity: "
          + ("OK, every message correct" if ok else "FAILED"))
    print()
    print(degradation_report(faulted["counters"], clock=clock))
    if not ok:
        raise SystemExit(1)


def _cmd_perf(args) -> None:
    from repro.perf import run_perf

    code = run_perf(quick=args.quick, out=args.out, compare=args.compare,
                    only=args.only, max_slowdown=args.max_slowdown,
                    trace_overhead=args.trace_overhead,
                    sanitize_overhead=args.sanitize_overhead,
                    scheduler_sweep=args.scheduler_sweep,
                    sched_out=args.sched_out)
    if code:
        raise SystemExit(code)


def _resume_error(message: str) -> "SystemExit":
    """A friendly exit-2 resume error (bad/corrupt snapshot = bad spec)."""
    print(f"error: resume: {message}", file=sys.stderr)
    return SystemExit(2)


def _cmd_resume(args) -> None:
    """Resume a checkpointed run: re-parse the snapshot's argv and
    dispatch its command with the unit ledger preloaded — completed
    units replay from the snapshot instead of re-simulating.

    Every snapshot problem — missing file, truncated or corrupt body,
    unpicklable payload, a ledger missing its fields — is reported as a
    one-line exit-2 error, never a traceback."""
    from repro.checkpoint import CheckpointError, read_snapshot

    try:
        _manifest, payload = read_snapshot(args.snapshot)
    except CheckpointError as exc:
        raise _resume_error(str(exc))
    if not isinstance(payload, dict) or payload.get("kind") != "run-ledger":
        raise _resume_error(
            f"{args.snapshot!r} is a "
            f"{payload.get('kind', 'unknown') if isinstance(payload, dict) else 'unknown'!r} "
            "snapshot, not a run ledger (post-mortem cluster snapshots are "
            "forensic; load them with repro.checkpoint.read_snapshot)")
    command = payload.get("command")
    if command not in COMMANDS:
        raise _resume_error(f"snapshot names unknown command {command!r}")
    if not isinstance(payload.get("argv"), list) \
            or not isinstance(payload.get("units"), dict):
        raise _resume_error(
            f"{args.snapshot!r} is missing its argv/unit ledger "
            "(corrupt or hand-edited run-ledger snapshot)")
    sub_args = _build_parser().parse_args(payload["argv"])
    # a `repro trace/sanitize <target>` run checkpoints under its target
    resolved = sub_args.command
    if resolved in ("trace", "sanitize"):
        resolved = "fig6" if sub_args.target == "nas" else sub_args.target
    if resolved != command:
        raise _resume_error("snapshot argv does not match its command")
    sub_args._argv = list(payload["argv"])
    sub_args._resume_units = payload["units"]
    if getattr(sub_args, "no_fastpath", False):
        from repro import fastpath

        fastpath.set_enabled(False)
    _dispatch(sub_args)


def _cmd_batch(args) -> None:
    """Run a specfile of experiment jobs under the crash-tolerant batch
    runner (``repro batch specs.json``) — see ``docs/batch_runner.md``."""
    from repro.batch import (BatchError, BatchSupervisor, SpecError,
                             load_specfile, parse_chaos)

    try:
        specs = load_specfile(args.specfile)
    except SpecError as exc:
        print(f"error: batch: {exc}", file=sys.stderr)
        raise SystemExit(2)
    chaos = None
    if args.chaos:
        try:
            chaos = parse_chaos(args.chaos, seed=args.chaos_seed)
        except ValueError as exc:
            print(f"error: --chaos: {exc}", file=sys.stderr)
            raise SystemExit(2)
    _ensure_dir(args.out_dir, "--out-dir")
    trace_out = getattr(args, "batch_trace_out", None)
    if trace_out:
        _ensure_parent_dir(trace_out, "--trace-out")
    try:
        supervisor = BatchSupervisor(
            specs, args.out_dir, workers=args.jobs, timeout=args.timeout,
            retries=args.retries, backoff=args.backoff, chaos=chaos,
            resume=args.resume, trace_out=trace_out)
        code = supervisor.run()
    except BatchError as exc:
        print(f"error: batch: {exc}", file=sys.stderr)
        raise SystemExit(2)
    if code:
        raise SystemExit(code)


def _cmd_serve(args) -> None:
    """Run the crash-tolerant experiment service (``repro serve``) —
    see ``docs/serving.md``."""
    import asyncio

    from repro.batch import parse_chaos
    from repro.serve import ExperimentService, ServeError
    from repro.serve.http import run_server

    chaos = None
    if args.chaos:
        try:
            chaos = parse_chaos(args.chaos, seed=args.chaos_seed)
        except ValueError as exc:
            print(f"error: --chaos: {exc}", file=sys.stderr)
            raise SystemExit(2)
    _ensure_dir(args.out_dir, "--out-dir")
    try:
        service = ExperimentService(
            args.out_dir, workers=args.workers, queue_cap=args.queue_cap,
            client_cap=args.client_cap, retries=args.retries,
            backoff=args.backoff, retry_seed=args.retry_seed,
            timeout=args.timeout, drain_timeout=args.drain_timeout,
            chaos=chaos, resume=args.resume, stream=sys.stderr)
        code = asyncio.run(run_server(service, args.host, args.port,
                                      stream=sys.stderr))
    except ServeError as exc:
        print(f"error: serve: {exc}", file=sys.stderr)
        raise SystemExit(2)
    if code:
        raise SystemExit(code)


def _cmd_lint(args) -> None:
    """Run the determinism lint (``repro lint``): the per-line detlint
    rules plus the simlint whole-program passes, against ``src/repro``
    by default.  Exit 0 clean, 1 findings, 2 bad invocation — the same
    contract as ``python tools/simlint``."""
    root = Path(__file__).resolve().parents[2]
    tools = root / "tools"
    if not (tools / "simlint" / "__init__.py").exists():
        print("error: lint: tools/simlint not found (repro lint runs "
              "from a source checkout)", file=sys.stderr)
        raise SystemExit(2)
    if str(tools) not in sys.path:
        sys.path.insert(0, str(tools))
    from simlint.cli import main as simlint_main

    argv = list(args.lint_paths) or [str(root / "src" / "repro")]
    argv += ["--format", args.lint_format]
    rc = simlint_main(argv)
    if rc == 1:
        raise SystemExit(1)
    if rc:
        print("error: lint: invalid invocation (see messages above)",
              file=sys.stderr)
        raise SystemExit(2)


def _cmd_trace(args) -> None:
    """Run a figure driver with tracing on (``repro trace fig5``);
    ``nas`` is an alias for ``fig6``."""
    args.command = "fig6" if args.target == "nas" else args.target
    if args.command == "faults" and args.fault_plan is None:
        args.fault_plan = "link_loss=0.01"
    _dispatch(args)


def _cmd_sanitize(args) -> None:
    """Run a figure driver with the shadow-state sanitizer on
    (``repro sanitize fig5``); ``nas`` is an alias for ``fig6``."""
    args.command = "fig6" if args.target == "nas" else args.target
    if getattr(args, "sanitize", None) is None:
        args.sanitize = "all"
    if args.command == "faults" and getattr(args, "fault_plan", None) is None:
        args.fault_plan = "link_loss=0.01"
    _dispatch(args)


def _make_sanitizer(args):
    """The :class:`repro.sanitize.Sanitizer` requested by ``--sanitize``
    or ``REPRO_SANITIZE``, or None.  A bad group spec exits with code 2."""
    spec = getattr(args, "sanitize", None)
    if spec is None:
        spec = os.environ.get("REPRO_SANITIZE") or None
    if spec is None:
        return None
    from repro import sanitize as sanitize_mod

    try:
        return sanitize_mod.Sanitizer(sanitize_mod.parse_rules(spec))
    except ValueError as exc:
        print(f"error: --sanitize: {exc}", file=sys.stderr)
        raise SystemExit(2)


def _write_trace(args, tracer, out: Optional[str]) -> None:
    """Write/print a finished tracer's outputs (shared by the clean and
    the sanitizer-violation exits, so a violating run still leaves the
    trace timeline its violation event links into)."""
    if out:
        tracer.write(out)
        print(f"trace: wrote {out} ({len(tracer.events)} events)",
              file=sys.stderr)
    if getattr(args, "trace", False):
        from repro.analysis.breakdown import phase_delta_table

        print()
        print(phase_delta_table(tracer))


def _dispatch(args) -> None:
    """Dispatch one parsed command: output-path preflight, then the
    command itself, wrapped in a capturing tracer when ``--trace`` /
    ``--trace-out`` ask for one and a capturing sanitizer when
    ``--sanitize`` / ``REPRO_SANITIZE`` ask for one.  Shared by
    :func:`main` and the ``resume`` / ``trace`` / ``sanitize``
    re-dispatch paths, so a resumed traced run traces exactly like the
    original."""
    fn = COMMANDS[args.command][0]
    if args.command in ("trace", "resume", "sanitize"):
        # all three re-enter _dispatch themselves with the target command
        fn(args)
        return
    ckpt_dir = getattr(args, "checkpoint_dir", None)
    if ckpt_dir:
        _ensure_dir(ckpt_dir, "--checkpoint-dir")
    sanitizer = _make_sanitizer(args)
    out = getattr(args, "trace_out", None)
    tracing = bool(out or getattr(args, "trace", False))
    if sanitizer is None and not tracing:
        fn(args)
        return
    tracer = None
    with contextlib.ExitStack() as stack:
        if sanitizer is not None:
            from repro import sanitize as sanitize_mod

            stack.enter_context(sanitize_mod.capturing(sanitizer))
        if tracing:
            from repro import trace as trace_mod

            if out:
                _ensure_parent_dir(out, "--trace-out")
            tracer = trace_mod.Tracer()
            stack.enter_context(trace_mod.capturing(tracer))
        try:
            fn(args)
        except Exception as exc:
            from repro import sanitize as sanitize_mod

            if not isinstance(exc, sanitize_mod.SanitizerError):
                raise
            # keep the timeline: its last event is this violation
            if tracer is not None:
                _write_trace(args, tracer, out)
            print(f"error: {exc}", file=sys.stderr)
            raise SystemExit(3)
        if tracer is not None:
            tracer.flush()
    if sanitizer is not None:
        # stderr, so sanitized stdout stays byte-identical to a plain run
        print(sanitizer.report(), file=sys.stderr)
    if tracer is not None:
        _write_trace(args, tracer, out)


COMMANDS = {
    "fig3": (_cmd_fig3, "Fig 3: SGE-count/size sweep (verbs level)"),
    "fig4": (_cmd_fig4, "Fig 4: in-page offset sweep"),
    "fig5": (_cmd_fig5, "Fig 5: IMB SendRecv, 4 curves (Opteron)"),
    "xeon": (_cmd_xeon, "§5.1: the Xeon driver-patch experiment"),
    "registration": (_cmd_registration, "registration cost, 4K vs 2M"),
    "fig6": (_cmd_fig6, "Fig 6: NAS hugepage improvements"),
    "tlb": (_cmd_tlb, "§5.2: TLB miss counts"),
    "abinit": (_cmd_abinit, "§2/§3.2: the allocator comparison"),
    "pingpong": (_cmd_pingpong, "IMB PingPong latency view (companion)"),
    "breakdown": (_cmd_breakdown, "per-component message cost analysis"),
    "faults": (_cmd_faults, "fault-injection demo: lossy link + report"),
    "perf": (_cmd_perf, "time fast vs reference paths, track BENCH_PR2.json"),
    "resume": (_cmd_resume, "resume a checkpointed run from a snapshot"),
    "trace": (_cmd_trace, "run a figure driver with tracing on"),
    "sanitize": (_cmd_sanitize, "run a figure driver under the sanitizer"),
    "batch": (_cmd_batch, "crash-tolerant batch runner for a JSON specfile"),
    "serve": (_cmd_serve, "crash-tolerant HTTP experiment service"),
    "lint": (_cmd_lint, "determinism lint: detlint rules + simlint passes"),
}


def _build_parser() -> argparse.ArgumentParser:
    """The full CLI parser (shared by main() and ``repro resume``)."""
    # --no-fastpath is accepted both before and after the command name;
    # SUPPRESS keeps a subparser's default from clobbering a value the
    # main parser already set
    common = argparse.ArgumentParser(add_help=False)
    common.add_argument("--no-fastpath", dest="no_fastpath",
                        action="store_true", default=argparse.SUPPRESS,
                        help="use the reference per-element costing loops "
                             "instead of the batched fast paths")
    common.add_argument("--scheduler", dest="scheduler",
                        choices=["heap", "calendar"],
                        default=argparse.SUPPRESS,
                        help="event scheduler for every SimKernel in the run "
                             "(default: $REPRO_SCHEDULER or heap); both "
                             "produce byte-identical output")
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Regenerate the paper's tables and figures.",
        parents=[common],
    )
    sub = parser.add_subparsers(dest="command")
    sub.add_parser("list", help="list available experiments", parents=[common])
    for name, (_fn, help_text) in COMMANDS.items():
        p = sub.add_parser(name, help=help_text, parents=[common])
        if name == "trace":
            p.add_argument("target", choices=["fig5", "fig6", "nas", "faults"],
                           help="the driver to run traced (nas = fig6)")
            p.add_argument("--trace-out", dest="trace_out",
                           default="trace.json", metavar="FILE",
                           help="Chrome trace_event JSON output file "
                                "(default trace.json)")
        if name == "sanitize":
            p.add_argument("target", choices=["fig5", "fig6", "nas", "faults"],
                           help="the driver to run sanitized (nas = fig6)")
        if name in ("fig6", "tlb", "trace", "sanitize"):
            p.add_argument("--class", dest="klass", default="W",
                           choices=["W", "B", "C"],
                           help="NAS problem class (default W; the paper "
                                "uses C)")
        if name == "breakdown":
            p.add_argument("--mb", type=float, default=4.0,
                           help="message size in MB")
        if name == "lint":
            p.add_argument("lint_paths", nargs="*", default=[],
                           metavar="PATH",
                           help="files or package directories to lint "
                                "(default: this checkout's src/repro)")
            p.add_argument("--format", dest="lint_format",
                           choices=["text", "json"], default="text",
                           help="finding output format (default: text)")
        if name in ("fig5", "pingpong", "faults", "trace", "sanitize"):
            default_plan = "link_loss=0.01" if name == "faults" else None
            p.add_argument("--fault-plan", dest="fault_plan",
                           default=default_plan, metavar="SPEC",
                           help="fault plan: inline key=value,... spec or a "
                                "path to a JSON plan file (see repro.faults)")
            p.add_argument("--fault-seed", dest="fault_seed", type=int,
                           default=0, help="fault injector RNG seed")
        if name in ("fig5", "fig6", "tlb", "faults"):
            p.add_argument("--trace", action="store_true",
                           help="trace the run; print the per-phase "
                                "counter-delta table after the output")
            p.add_argument("--trace-out", dest="trace_out", default=None,
                           metavar="FILE",
                           help="write the run's Chrome trace_event JSON "
                                "timeline to FILE (implies tracing)")
        if name in ("fig5", "fig6", "tlb", "faults", "trace", "sanitize"):
            p.add_argument("--sanitize", dest="sanitize", nargs="?",
                           const="all", default=None, metavar="GROUPS",
                           help="run under the shadow-state sanitizer; "
                                "GROUPS is a comma list of heap,mr,tlb,"
                                "counter (default: all)")
        if name in ("fig5", "fig6", "tlb", "faults", "trace"):
            p.add_argument("--checkpoint-every", dest="checkpoint_every",
                           type=int, default=None, metavar="TICKS",
                           help="snapshot the run ledger every N simulated "
                                "ticks (0 = after every unit)")
            p.add_argument("--checkpoint-dir", dest="checkpoint_dir",
                           default=None, metavar="DIR",
                           help="snapshot directory (default: checkpoints)")
            p.add_argument("--audit", action="store_true",
                           help="run the cross-layer invariant auditor after "
                                "every unit")
            p.add_argument("--hang-timeout", dest="hang_timeout", type=float,
                           default=None, metavar="SECONDS",
                           help="watchdog: dump a post-mortem and exit 2 if "
                                "the event loop makes no progress for this "
                                "many wall seconds")
        if name == "resume":
            p.add_argument("snapshot",
                           help="snapshot file written by --checkpoint-every "
                                "(e.g. checkpoints/latest.snap)")
        if name == "batch":
            p.add_argument("specfile",
                           help="JSON specfile: a list of {id, command, "
                                "args, timeout} job objects (see "
                                "docs/batch_runner.md)")
            p.add_argument("--out-dir", dest="out_dir", default="batch_out",
                           metavar="DIR",
                           help="batch work directory: job journal, per-job "
                                "dirs, memoized results (default batch_out)")
            p.add_argument("--jobs", type=int, default=2, metavar="N",
                           help="worker pool size (default 2)")
            p.add_argument("--timeout", type=float, default=None,
                           metavar="SECONDS",
                           help="per-job wall-clock budget; an overdue "
                                "worker is SIGKILLed and the job retried "
                                "(specs may override per job)")
            p.add_argument("--retries", type=int, default=2, metavar="N",
                           help="retry budget per job after a crash/"
                                "timeout/failure (default 2)")
            p.add_argument("--backoff", type=float, default=0.25,
                           metavar="SECONDS",
                           help="base retry delay; doubles per attempt "
                                "(default 0.25)")
            p.add_argument("--chaos", default=None, metavar="SPEC",
                           help="seeded fault injection for the runner "
                                "itself: kill-worker:p=P and/or stall:p=P "
                                "(comma-separated)")
            p.add_argument("--chaos-seed", dest="chaos_seed", type=int,
                           default=0, help="chaos decision seed")
            p.add_argument("--resume", action="store_true",
                           help="continue an interrupted batch from its "
                                "journal; completed jobs are served from "
                                "the memo cache")
            p.add_argument("--trace-out", dest="batch_trace_out",
                           default=None, metavar="FILE",
                           help="trace every job and merge the per-job "
                                "timelines into one Chrome trace file")
        if name == "serve":
            p.add_argument("--host", default="127.0.0.1",
                           help="bind address (default 127.0.0.1)")
            p.add_argument("--port", type=int, default=0, metavar="N",
                           help="bind port; 0 picks an ephemeral port and "
                                "writes it to <out-dir>/serve.addr "
                                "(default 0)")
            p.add_argument("--workers", type=int, default=2, metavar="K",
                           help="worker pool size (default 2)")
            p.add_argument("--out-dir", dest="out_dir", default="serve_out",
                           metavar="DIR",
                           help="service work directory: serve journal, "
                                "per-job dirs, memoized results "
                                "(default serve_out)")
            p.add_argument("--queue-cap", dest="queue_cap", type=int,
                           default=64, metavar="N",
                           help="max jobs in flight before admissions get "
                                "429 + Retry-After (default 64)")
            p.add_argument("--client-cap", dest="client_cap", type=int,
                           default=8, metavar="N",
                           help="max in-flight jobs per X-Client identity "
                                "(default 8)")
            p.add_argument("--timeout", type=float, default=None,
                           metavar="SECONDS",
                           help="default per-job wall-clock budget "
                                "(specs and deadlines may tighten it)")
            p.add_argument("--retries", type=int, default=2, metavar="N",
                           help="retry budget per job for crashes/timeouts/"
                                "transient failures; deterministic exit-2 "
                                "failures never retry (default 2)")
            p.add_argument("--backoff", type=float, default=0.25,
                           metavar="SECONDS",
                           help="full-jitter retry base: delay is uniform "
                                "over [0, backoff * 2^attempt] "
                                "(default 0.25)")
            p.add_argument("--retry-seed", dest="retry_seed", type=int,
                           default=0,
                           help="seed for the jittered backoff RNG")
            p.add_argument("--drain-timeout", dest="drain_timeout",
                           type=float, default=30.0, metavar="SECONDS",
                           help="graceful-drain budget after SIGTERM/SIGINT; "
                                "stragglers are killed and re-queue on the "
                                "next start (default 30)")
            p.add_argument("--chaos", default=None, metavar="SPEC",
                           help="seeded fault injection for the service's "
                                "workers: kill-worker:p=P and/or stall:p=P")
            p.add_argument("--chaos-seed", dest="chaos_seed", type=int,
                           default=0, help="chaos decision seed")
            p.add_argument("--resume", action="store_true",
                           help="replay an existing serve journal: done "
                                "jobs stay done, interrupted jobs re-queue "
                                "(from their snapshots), expired jobs are "
                                "rejected")
        if name == "perf":
            p.add_argument("--quick", action="store_true",
                           help="smaller sweeps (the CI smoke configuration)")
            p.add_argument("--out", default="BENCH_PR2.json",
                           help="JSON results file to merge into "
                                "(default BENCH_PR2.json)")
            p.add_argument("--compare", default=None, metavar="BASELINE",
                           help="fail if fig5's speedup regresses >20%% vs "
                                "this baseline's same-mode entry")
            p.add_argument("--only", action="append", default=None,
                           metavar="NAME",
                           help="run only the named benchmark (repeatable)")
            p.add_argument("--max-slowdown", dest="max_slowdown", type=float,
                           default=None, metavar="FRACTION",
                           help="with --compare: also fail if fig5's "
                                "absolute fast-path time exceeds the "
                                "baseline's by this fraction (e.g. 0.05; "
                                "same-machine baselines only)")
            p.add_argument("--trace-overhead", dest="trace_overhead",
                           action="store_true",
                           help="also time fig5 with tracing off vs on and "
                                "report the enabled-mode overhead")
            p.add_argument("--sanitize-overhead", dest="sanitize_overhead",
                           action="store_true",
                           help="also time fig5 with the sanitizer off vs "
                                "on and report the enabled-mode overhead")
            p.add_argument("--scheduler-sweep", dest="scheduler_sweep",
                           action="store_true",
                           help="instead of the fast-vs-reference harness, "
                                "time the train and fig5 under both "
                                "schedulers plus the delivery fold on/off, "
                                "require identical payloads, gate the "
                                "heap/calendar timing ratio, and write "
                                "BENCH_PR9.json")
            p.add_argument("--sched-out", dest="sched_out",
                           default="BENCH_PR9.json",
                           help="JSON results file for --scheduler-sweep "
                                "(default BENCH_PR9.json)")
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; returns a process exit code."""
    parser = _build_parser()
    args = parser.parse_args(argv)
    # the raw argv is recorded in checkpoint manifests so `repro resume`
    # can re-dispatch the identical command
    args._argv = list(argv) if argv is not None else list(sys.argv[1:])
    if getattr(args, "no_fastpath", False):
        from repro import fastpath

        fastpath.set_enabled(False)
    scheduler = getattr(args, "scheduler",
                        os.environ.get("REPRO_SCHEDULER") or None)
    if scheduler is not None:
        from repro.engine import core as engine_core

        try:
            engine_core.set_default_scheduler(scheduler)
        except ValueError as exc:
            print(f"error: --scheduler: {exc}", file=sys.stderr)
            return 2
    if args.command in (None, "list"):
        for name, (_fn, help_text) in COMMANDS.items():
            print(f"  {name:<14} {help_text}")
        return 0
    _dispatch(args)
    return 0


if __name__ == "__main__":
    sys.exit(main())
