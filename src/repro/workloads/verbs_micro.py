"""The §4 verbs-level microbenchmark (Figs 3 and 4).

    "We implemented a test case that measures the duration of send and
     receive operations over OpenIB between two dedicated systems in
     terms of reliable connection based on the following parameters:
     offset ... sge_size ... sges ...  For each combination of those
     parameters this test case measures the elapsed time in time base
     register (TBR) ticks for post and poll operations separately.  The
     post operation covers step 1, while the poll operation measures
     steps 2-4."

Layout matches the paper: each SGE's data buffer starts *offset* bytes
into its own memory page, and the total message size is
``sges × sge_size``.  Ran on the System p preset by default (the paper
used "two IBM low-end System p with IBM InfiniBand eHCA").
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Tuple

from repro.ib.hca import HCA
from repro.ib.verbs import SGE, CompletionQueue, ProtectionDomain, RecvWR, SendWR
from repro.mem.physical import PAGE_4K
from repro.systems.machine import Cluster, MachineSpec
from repro.systems import presets


@dataclass(frozen=True)
class WorkRequestTiming:
    """Measured post and poll durations (TBR ticks) for one parameter
    combination, in the steady state (warm caches)."""

    sges: int
    sge_size: int
    offset: int
    post_ticks: int
    poll_ticks: int

    @property
    def total_ticks(self) -> int:
        """Post + poll: one work request end to end."""
        return self.post_ticks + self.poll_ticks


def measure_send(
    spec: Optional[MachineSpec] = None,
    sges: int = 1,
    sge_size: int = 64,
    offset: int = 0,
    repeats: int = 4,
) -> WorkRequestTiming:
    """Measure one (sges, sge_size, offset) combination.

    Buffers are registered up front (the test isolates work-request
    costs, not registration); *repeats* iterations warm the ATT and the
    last iteration is reported.
    """
    if sges < 1 or sge_size < 1:
        raise ValueError("need at least one SGE of at least one byte")
    if not 0 <= offset < PAGE_4K:
        raise ValueError(f"offset {offset} outside the first page")
    if spec is None:
        spec = presets.systemp_ehca()
    cluster = Cluster(spec, n_nodes=2)
    k = cluster.kernel
    node_a, node_b = cluster.nodes
    proc_a = node_a.new_process("sender")
    proc_b = node_b.new_process("receiver")

    # one page-aligned slot per SGE so each element starts `offset` into
    # its own page (slots widen for elements bigger than a page)
    stride = ((offset + sge_size + PAGE_4K - 1) // PAGE_4K) * PAGE_4K
    span = sges * stride + PAGE_4K
    buf_a = proc_a.aspace.mmap(span, name="sge-src").start
    buf_b = proc_b.aspace.mmap(span, name="sge-dst").start

    pd_a, pd_b = ProtectionDomain.fresh(), ProtectionDomain.fresh()
    scq = CompletionQueue(k)
    rcq_a = CompletionQueue(k)
    scq_b = CompletionQueue(k)
    rcq = CompletionQueue(k)
    qp_a = node_a.hca.create_qp(pd_a, scq, rcq_a)
    qp_b = node_b.hca.create_qp(pd_b, scq_b, rcq)
    HCA.connect_pair(qp_a, node_a.hca, qp_b, node_b.hca)

    out: Dict[str, int] = {}

    def sge_list(base: int, lkey: int) -> List[SGE]:
        return [
            SGE(addr=base + i * stride + offset, length=sge_size, lkey=lkey)
            for i in range(sges)
        ]

    def receiver():
        mr = yield from node_b.hca.register_memory(proc_b.aspace, pd_b, buf_b, span)
        for _ in range(repeats):
            yield from node_b.hca.post_recv(
                qp_b, RecvWR(wr_id=7, sges=sge_list(buf_b, mr.lkey))
            )
            yield from node_b.hca.wait_completion(rcq)

    def sender():
        mr = yield from node_a.hca.register_memory(proc_a.aspace, pd_a, buf_a, span)
        for i in range(repeats):
            t0 = k.now
            yield from node_a.hca.post_send(
                qp_a, SendWR(wr_id=i, sges=sge_list(buf_a, mr.lkey))
            )
            t1 = k.now
            yield from node_a.hca.wait_completion(scq)
            t2 = k.now
            out["post"] = t1 - t0
            out["poll"] = t2 - t1

    k.process(receiver())
    k.process(sender())
    k.run()
    return WorkRequestTiming(
        sges=sges,
        sge_size=sge_size,
        offset=offset,
        post_ticks=out["post"],
        poll_ticks=out["poll"],
    )


def sweep_sges(
    sge_counts: List[int],
    sge_sizes: List[int],
    spec_factory: Callable[[], MachineSpec] = presets.systemp_ehca,
) -> Dict[Tuple[int, int], WorkRequestTiming]:
    """Fig 3's sweep: work-request duration over (sges, sge_size)."""
    results = {}
    for n in sge_counts:
        for size in sge_sizes:
            results[(n, size)] = measure_send(spec_factory(), sges=n, sge_size=size)
    return results


def sweep_offsets(
    buffer_sizes: List[int],
    offsets: List[int],
    spec_factory: Callable[[], MachineSpec] = presets.systemp_ehca,
) -> Dict[Tuple[int, int], WorkRequestTiming]:
    """Fig 4's sweep: 1-SGE work-request duration over (size, offset)."""
    results = {}
    for size in buffer_sizes:
        for off in offsets:
            results[(size, off)] = measure_send(
                spec_factory(), sges=1, sge_size=size, offset=off
            )
    return results
