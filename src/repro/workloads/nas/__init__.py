"""Mini NAS parallel benchmarks: CG, EP, IS, LU, MG (Fig 6).

Each kernel module provides ``program(comm, klass)`` — a rank program
reproducing the original kernel's *communication pattern and byte
volumes* (class-scaled) and its *memory-access personality* (streaming /
multi-region rotation / random scatter phases over really-allocated
buffers), while carrying real miniature numpy data through the simulated
MPI so the run's numerical result is verified.

:func:`repro.workloads.nas.common.run_nas` runs a kernel on a cluster
with or without the preloaded hugepage library and returns the mpiP-style
communication/computation split plus PAPI-style TLB counters.
"""

from repro.workloads.nas.common import NASRunResult, compare_hugepages, run_nas
from repro.workloads.nas import cg, ep, ft, is_, lu, mg

#: the five kernels the paper evaluates (Fig 6)
KERNELS = {
    "CG": cg.program,
    "EP": ep.program,
    "IS": is_.program,
    "LU": lu.program,
    "MG": mg.program,
}

#: kernels beyond the paper's evaluation (run them the same way; they
#: just do not appear in the Fig 6 reproduction)
EXTENSION_KERNELS = {
    "FT": ft.program,
}

__all__ = ["EXTENSION_KERNELS", "KERNELS", "NASRunResult", "cg",
           "compare_hugepages", "ep", "ft", "is_", "lu", "mg", "run_nas"]
