"""NAS MG: multigrid V-cycles with nearest-neighbour halo exchange.

Communication: halo exchanges at *every grid level* — large faces at the
fine level (hundreds of KB for class C) but rapidly shrinking towards
the coarse levels where messages are small and go eager.  That mix is
why MG's communication benefit from hugepages stays below the 8 % the
other kernels show (Fig 6): only the fine-level rendezvous traffic sees
the registration savings.

Memory personality: per-level streams over the grid hierarchy (one
stream at a time; prefetch-friendly, no hugepage TLB pressure) plus a
moderate stencil rotation between the ``u``/``v``/``r`` arrays.

Functional payload: a real 1D two-grid V-cycle (damped Jacobi smoothing,
full-weighting restriction, linear prolongation) on a distributed
Poisson problem, verified by residual-norm reduction.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Generator, List

import numpy as np

from repro.workloads.nas.common import KB, MB


@dataclass(frozen=True)
class MGParams:
    """Per-class scaling."""

    cycles: int
    levels: int
    fine_halo_bytes: int   # fine-level face size (halves per level)
    grid_mb: int           # fine-level per-rank grid (halves per level)
    points_mini: int       # functional fine-grid points per rank


CLASSES: Dict[str, MGParams] = {
    "W": MGParams(cycles=4, levels=3, fine_halo_bytes=64 * KB, grid_mb=4,
                  points_mini=64),
    "B": MGParams(cycles=20, levels=5, fine_halo_bytes=128 * KB, grid_mb=16,
                  points_mini=64),
    "C": MGParams(cycles=20, levels=6, fine_halo_bytes=256 * KB, grid_mb=28,
                  points_mini=64),
}


def program(comm, klass: str = "W") -> Generator:
    """MG rank program; returns ``{"verified": bool, ...}``."""
    p = CLASSES[klass]
    proc = comm.proc
    n, rank = comm.size, comm.rank
    left = rank - 1 if rank > 0 else None
    right = rank + 1 if rank < n - 1 else None

    # grid hierarchy through the active allocator (level sizes halve);
    # three arrays per level (u, v, r) like the original
    grids: List[int] = []
    grid_bytes: List[int] = []
    stencil_regions: List[tuple] = []
    for level in range(p.levels):
        nbytes = max(64 * KB, (p.grid_mb * MB) >> level)
        grids.append(proc.malloc(nbytes))
        grid_bytes.append(nbytes)
        for _ in range(2):  # v and r companions of u
            stencil_regions.append((proc.malloc(nbytes), nbytes))
        stencil_regions.append((grids[-1], nbytes))

    # functional 1D Poisson problem: -u'' = f, u(0)=u(1)=0
    m = p.points_mini
    h = 1.0 / (n * m + 1)
    xs = (np.arange(rank * m, (rank + 1) * m) + 1) * h
    f = np.sin(np.pi * xs)
    u = np.zeros(m)

    # distinct receive targets per side: two concurrent inbound RDMA
    # writes must not land at the same (rkey, address)
    recv_slot_l = grids[0]
    recv_slot_r = grids[0] + grid_bytes[0] // 2

    def halo_exchange(vec, tag_base, size_bytes):
        """Exchange boundary values with both neighbours; returns
        (left_ghost, right_ghost).  Timed as MPI_Halo in the profiler."""
        t0 = comm.kernel.now
        lg = rg = 0.0
        ops = []
        if right is not None:
            ops.append(comm.kernel.process(comm.endpoint.send(
                right, tag_base, size_bytes, addr=grids[1],
                payload=float(vec[-1]))))
        if left is not None:
            ops.append(comm.kernel.process(comm.endpoint.send(
                left, tag_base + 1, size_bytes, addr=grids[1],
                payload=float(vec[0]))))
        recvs = []
        if left is not None:
            recvs.append(("L", comm.kernel.process(
                comm.endpoint.recv(left, tag_base, recv_slot_l))))
        if right is not None:
            recvs.append(("R", comm.kernel.process(
                comm.endpoint.recv(right, tag_base + 1, recv_slot_r))))
        results = yield comm.kernel.all_of([pr for _, pr in recvs] + ops)
        for (side, _), res in zip(recvs, results):
            if side == "L":
                lg = res[0]
            else:
                rg = res[0]
        comm.profiler.record("MPI_Halo", comm.kernel.now - t0, 2 * size_bytes)
        return lg, rg

    def residual_norm(u_vec, lg, rg):
        um = np.concatenate([[lg], u_vec, [rg]])
        r = f - (-(um[:-2] - 2 * um[1:-1] + um[2:]) / (h * h))
        return float(r @ r)

    lg, rg = yield from halo_exchange(u, 100, p.fine_halo_bytes)
    rho0 = yield from comm.allreduce(8, value=residual_norm(u, lg, rg))

    smooth_steps = 0
    tag = 200
    for _cycle in range(p.cycles):
        # V-cycle down and up: streams + halos per level
        for level in range(p.levels):
            cost = proc.engine.stream(grids[level], grid_bytes[level])
            yield from comm.compute(cost)
            halo = max(1 * KB, p.fine_halo_bytes >> level)
            yield from halo_exchange(u, tag, halo)
            tag += 2
        for level in reversed(range(p.levels)):
            cost = proc.engine.stream(grids[level], grid_bytes[level])
            yield from comm.compute(cost)
        # stencil transitions touch u/v/r across all levels in rotation
        # (work scales with the fine-grid size)
        cost = proc.engine.rotate(stencil_regions, 1500 * p.grid_mb, 512)
        yield from comm.compute(cost)

        # functional smoothing sweeps with real halo data
        for _ in range(3):
            lg, rg = yield from halo_exchange(u, tag, 1 * KB)
            tag += 2
            um = np.concatenate([[lg], u, [rg]])
            u = um[1:-1] + 0.6 * (h * h * f + um[:-2] - 2 * um[1:-1] + um[2:]) / 2.0
            smooth_steps += 1

    lg, rg = yield from halo_exchange(u, tag, p.fine_halo_bytes)
    rho_final = yield from comm.allreduce(8, value=residual_norm(u, lg, rg))

    # verification: the distributed smoother must match a sequential
    # reference of the same sweeps exactly (this checks the halo data,
    # which is what the distribution can get wrong)
    slices = yield from comm.allgather(m * 8, value=u)
    verified = True
    if rank == 0:
        u_ref = np.zeros(n * m)
        xs_all = (np.arange(n * m) + 1) * h
        f_all = np.sin(np.pi * xs_all)
        for _ in range(smooth_steps):
            um = np.concatenate([[0.0], u_ref, [0.0]])
            u_ref = um[1:-1] + 0.6 * (
                h * h * f_all + um[:-2] - 2 * um[1:-1] + um[2:]
            ) / 2.0
        verified = bool(np.allclose(np.concatenate(slices), u_ref))
    verified = yield from comm.bcast(0, 1, payload=verified)
    reduction = rho_final / rho0 if rho0 else 1.0
    return {"verified": bool(verified), "residual_reduction": reduction}


program.kernel_name = "MG"
