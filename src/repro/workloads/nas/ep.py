"""NAS EP: embarrassingly parallel gaussian-pair generation.

Almost no communication (a handful of final reductions), so EP's Fig 6
behaviour is dominated by computation.  Its memory personality is the
interesting part: the inner loop touches *many distinct small tables*
(per-annulus counters, scratch blocks, the multiplier tables) in
rotation — more concurrent regions than the Opteron's **8** hugepage TLB
entries, so preloading the library multiplies TLB misses "up to eight
times" (§5.2) even while the long sequential sweeps over the random-pair
buffer get faster from hugepage physical contiguity.

Functional payload: real Marsaglia-style pair acceptance counting with
numpy, reduced across ranks and verified against a locally recomputed
reference.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Generator, List

import numpy as np

from repro.workloads.nas.common import KB, MB


@dataclass(frozen=True)
class EPParams:
    """Per-class scaling."""

    blocks: int          # outer blocks (each = one timed compute phase)
    pair_buffer_mb: int  # streamed random-number buffer
    tables: int          # distinct scratch/counter regions in rotation
    table_kb: int
    rotate_switches: int
    pairs_mini: int      # real pairs generated per block for verification


CLASSES: Dict[str, EPParams] = {
    "W": EPParams(blocks=4, pair_buffer_mb=4, tables=16, table_kb=64,
                  rotate_switches=13_000, pairs_mini=4_000),
    "B": EPParams(blocks=12, pair_buffer_mb=12, tables=16, table_kb=64,
                  rotate_switches=65_000, pairs_mini=8_000),
    "C": EPParams(blocks=24, pair_buffer_mb=16, tables=16, table_kb=64,
                  rotate_switches=85_000, pairs_mini=10_000),
}


def program(comm, klass: str = "W") -> Generator:
    """EP rank program; returns ``{"verified": bool, ...}``."""
    p = CLASSES[klass]
    proc = comm.proc

    pair_buffer = proc.malloc(int(p.pair_buffer_mb * MB * 1.1) + 4096)
    tables: List[int] = [proc.malloc(p.table_kb * KB) for _ in range(p.tables)]

    counts = np.zeros(10, dtype=np.int64)
    sx = sy = 0.0

    # the original deals seed blocks unevenly; the last rank sweeps ~10 %
    # more (this imbalance is what the final reductions wait out)
    imbalance = 1.0 + 0.1 * comm.rank / max(1, comm.size - 1)

    for block in range(p.blocks):
        # compute personality: long sweep + many-table rotation
        cost = proc.engine.stream(pair_buffer, int(p.pair_buffer_mb * MB * imbalance))
        cost = cost + proc.engine.rotate(
            [(t, p.table_kb * KB) for t in tables], p.rotate_switches, 256
        )
        yield from comm.compute(cost)

        # real gaussian-pair work (seeded per rank and block)
        rng = np.random.default_rng(777 + comm.rank * 1000 + block)
        u = rng.uniform(-1.0, 1.0, size=(p.pairs_mini, 2))
        t = np.sum(u * u, axis=1)
        accept = t <= 1.0
        tt = t[accept]
        factor = np.sqrt(-2.0 * np.log(tt) / tt)
        gx = u[accept, 0] * factor
        gy = u[accept, 1] * factor
        sx += float(gx.sum())
        sy += float(gy.sum())
        mag = np.maximum(np.abs(gx), np.abs(gy)).astype(np.int64)
        counts += np.bincount(np.minimum(mag, 9), minlength=10)

    # final reductions: the only communication EP does
    total_counts = yield from comm.allreduce(
        80, value=counts, op=lambda a, b: a + b
    )
    total_sx = yield from comm.allreduce(8, value=sx)
    total_sy = yield from comm.allreduce(8, value=sy)

    # verification: recompute the global reference locally (cheap)
    ref_counts = np.zeros(10, dtype=np.int64)
    ref_sx = ref_sy = 0.0
    for r in range(comm.size):
        for block in range(p.blocks):
            rng = np.random.default_rng(777 + r * 1000 + block)
            u = rng.uniform(-1.0, 1.0, size=(p.pairs_mini, 2))
            t = np.sum(u * u, axis=1)
            accept = t <= 1.0
            tt = t[accept]
            factor = np.sqrt(-2.0 * np.log(tt) / tt)
            gx = u[accept, 0] * factor
            gy = u[accept, 1] * factor
            ref_sx += float(gx.sum())
            ref_sy += float(gy.sum())
            mag = np.maximum(np.abs(gx), np.abs(gy)).astype(np.int64)
            ref_counts += np.bincount(np.minimum(mag, 9), minlength=10)

    verified = bool(
        np.array_equal(total_counts, ref_counts)
        and abs(total_sx - ref_sx) < 1e-6
        and abs(total_sy - ref_sy) < 1e-6
    )
    return {"verified": verified, "gaussian_pairs": int(total_counts.sum())}


program.kernel_name = "EP"
