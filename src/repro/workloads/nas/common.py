"""Shared infrastructure for the mini NAS kernels.

The paper's Fig 6 setup: "We benchmarked 2 nodes with 4 processes each,
so that we had an overall process count of 8. ... we did not only
preload our library for hugepage tests ..." — :func:`run_nas` reproduces
exactly that: 2 nodes × ppn ranks, optionally preloading the hugepage
library onto every rank before the kernel starts, mpiP-style profiling,
and PAPI-style counter collection.

Modelling notes (also recorded in DESIGN.md):

- Each kernel allocates its large arrays through the rank's *active
  allocator* (``proc.malloc``), so the hugepage library's placement
  policy — not the benchmark — decides page sizes.
- Per-iteration temporaries are malloc'd and freed every iteration, the
  Fortran workspace churn of the originals.  Under libc these cycle
  through ``mmap``/``munmap`` (invalidating the MPI registration cache);
  under the hugepage library the same virtual range is reused and cached
  registrations stay warm — the paper's "more effective memory
  registration" channel for communication improvement.
- Compute phases run on the timed memory-access engine against the
  really-allocated addresses; per-kernel phase mixes (stream vs rotation
  vs random) encode each kernel's access personality and drive both the
  prefetch benefit and the §5.2 TLB-miss behaviour.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Callable, Optional

from repro.core.library import preload_hugepage_library
from repro.faults import FaultPlan
from repro.mpi.api import MPIConfig, MPIWorld
from repro.systems.machine import Cluster, MachineSpec

MB = 1024 * 1024
KB = 1024


@dataclass
class NASRunResult:
    """Aggregated outcome of one kernel run on one configuration."""

    kernel: str
    klass: str
    machine: str
    hugepages: bool
    #: slowest rank's wall ticks (the job's runtime)
    total_ticks: int
    #: mean per-rank MPI time
    comm_ticks: float
    #: mean per-rank non-MPI time
    compute_ticks: float
    #: every rank's numerical check passed
    verified: bool
    #: aggregate data TLB misses (4 KB / 2 MB arrays)
    tlb_misses_4k: int
    tlb_misses_2m: int
    #: aggregate registration-cache behaviour
    regcache_hits: int
    regcache_misses: int

    @property
    def tlb_misses_total(self) -> int:
        """All data TLB misses, both page sizes."""
        return self.tlb_misses_4k + self.tlb_misses_2m


def run_nas(
    program: Callable,
    spec: MachineSpec,
    hugepages: bool,
    klass: str = "W",
    ppn: int = 4,
    n_nodes: int = 2,
    lazy_dereg: bool = True,
    nas_hugepage_pool: Optional[int] = None,
    cluster_sink: Optional[list] = None,
    fault_plan: Optional[FaultPlan] = None,
) -> NASRunResult:
    """Run one NAS kernel program under one placement configuration.

    *program* is a kernel module's ``program(comm, klass)``; it must
    return a dict containing at least ``verified`` (bool).
    *cluster_sink*, when given, receives the finished cluster (the
    checkpoint/audit harness reads its tick count and invariants; the
    result dataclass itself stays plain and picklable).
    """
    if nas_hugepage_pool is not None:
        spec = replace(spec, hugepages=nas_hugepage_pool)
    cluster = Cluster(spec, n_nodes=n_nodes, fault_plan=fault_plan)
    world = MPIWorld(cluster, ppn=ppn, config=MPIConfig(lazy_dereg=lazy_dereg))

    def rank_program(comm):
        if hugepages:
            preload_hugepage_library(comm.proc)
        return (yield from program(comm, klass))

    results = world.run(rank_program)
    if cluster_sink is not None:
        cluster_sink.append(cluster)
    verified = all(r.value.get("verified", False) for r in results)
    counters = cluster.aggregate_counters()
    name = getattr(program, "kernel_name", program.__module__.rsplit(".", 1)[-1])
    return NASRunResult(
        kernel=name.upper().strip("_"),
        klass=klass,
        machine=spec.name,
        hugepages=hugepages,
        total_ticks=max(r.app_ticks for r in results),
        comm_ticks=sum(r.profiler.comm_ticks for r in results) / len(results),
        compute_ticks=sum(r.profiler.compute_ticks for r in results) / len(results),
        verified=verified,
        tlb_misses_4k=counters.get("tlb.4k.miss", 0),
        tlb_misses_2m=counters.get("tlb.2m.miss", 0),
        regcache_hits=counters.get("regcache.hit", 0),
        regcache_misses=counters.get("regcache.miss", 0),
    )


@dataclass
class HugepageComparison:
    """Small-pages vs hugepages, the Fig 6 decomposition for one kernel."""

    kernel: str
    machine: str
    small: NASRunResult
    huge: NASRunResult

    @property
    def comm_improvement_pct(self) -> float:
        """Communication-time improvement (positive = hugepages faster)."""
        if self.small.comm_ticks == 0:
            return 0.0
        return (1.0 - self.huge.comm_ticks / self.small.comm_ticks) * 100.0

    @property
    def other_improvement_pct(self) -> float:
        """Computation-time ('other') improvement."""
        if self.small.compute_ticks == 0:
            return 0.0
        return (1.0 - self.huge.compute_ticks / self.small.compute_ticks) * 100.0

    @property
    def overall_improvement_pct(self) -> float:
        """Total-runtime improvement."""
        return (1.0 - self.huge.total_ticks / self.small.total_ticks) * 100.0

    @property
    def tlb_miss_ratio(self) -> float:
        """TLB misses with hugepages relative to small pages (>1 = more
        misses with hugepages, the §5.2 observation)."""
        if self.small.tlb_misses_total == 0:
            return float("inf")
        return self.huge.tlb_misses_total / self.small.tlb_misses_total


def compare_hugepages(
    program: Callable,
    spec: MachineSpec,
    klass: str = "W",
    ppn: int = 4,
    n_nodes: int = 2,
    nas_hugepage_pool: Optional[int] = None,
    cluster_sink: Optional[list] = None,
    fault_plan: Optional[FaultPlan] = None,
) -> HugepageComparison:
    """Run one kernel twice (small pages, then the preloaded library)
    on fresh identical clusters and decompose the improvement."""
    small = run_nas(program, spec, hugepages=False, klass=klass, ppn=ppn,
                    n_nodes=n_nodes, nas_hugepage_pool=nas_hugepage_pool,
                    cluster_sink=cluster_sink, fault_plan=fault_plan)
    huge = run_nas(program, spec, hugepages=True, klass=klass, ppn=ppn,
                   n_nodes=n_nodes, nas_hugepage_pool=nas_hugepage_pool,
                   cluster_sink=cluster_sink, fault_plan=fault_plan)
    if not (small.verified and huge.verified):
        raise RuntimeError(f"{small.kernel}: numerical verification failed")
    return HugepageComparison(
        kernel=small.kernel, machine=spec.name, small=small, huge=huge
    )
