"""NAS IS: integer sort (bucketed key exchange).

Communication: each ranking iteration redistributes the key population
with a large alltoallv (class C moves several MB between every rank
pair) — the heaviest communication of the suite.

Memory personality: the bucket-scatter loop writes into *many* distinct
bucket regions in rotation, far more than the 8 hugepage TLB entries, so
IS is the kernel where the hugepage TLB penalty outweighs the prefetch
gains — the paper's Fig 6 shows IS as the only benchmark whose *overall*
time got worse with hugepages.

Functional payload: a real distributed bucket sort of random ints,
verified by global order across rank boundaries and element conservation.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Generator, List

import numpy as np

from repro.workloads.nas.common import KB, MB


@dataclass(frozen=True)
class ISParams:
    """Per-class scaling."""

    iterations: int
    a2a_bytes_per_peer: int  # alltoallv bytes to each other rank
    key_array_mb: int        # streamed key array
    buckets: int             # distinct bucket regions (rotation width)
    bucket_kb: int
    scatter_switches: int    # bucket-scatter bursts per iteration
    bucket_array_mb: int     # big bucket array hit with a pow2 stride
    strided_accesses: int    # strided writes per iteration
    keys_mini: int           # real keys per rank
    key_range_mini: int


CLASSES: Dict[str, ISParams] = {
    "W": ISParams(iterations=3, a2a_bytes_per_peer=128 * KB, key_array_mb=4,
                  buckets=24, bucket_kb=128, scatter_switches=4_000,
                  bucket_array_mb=8, strided_accesses=2_500,
                  keys_mini=4_000, key_range_mini=1 << 16),
    "B": ISParams(iterations=10, a2a_bytes_per_peer=2 * MB, key_array_mb=16,
                  buckets=24, bucket_kb=256, scatter_switches=20_000,
                  bucket_array_mb=16, strided_accesses=12_000,
                  keys_mini=8_000, key_range_mini=1 << 19),
    "C": ISParams(iterations=10, a2a_bytes_per_peer=8 * MB, key_array_mb=32,
                  buckets=32, bucket_kb=256, scatter_switches=40_000,
                  bucket_array_mb=32, strided_accesses=25_000,
                  keys_mini=10_000, key_range_mini=1 << 19),
}


def program(comm, klass: str = "W") -> Generator:
    """IS rank program; returns ``{"verified": bool, ...}``."""
    p = CLASSES[klass]
    proc = comm.proc
    n, rank = comm.size, comm.rank

    key_array = proc.malloc(p.key_array_mb * MB)
    buckets: List[int] = [proc.malloc(p.bucket_kb * KB) for _ in range(p.buckets)]
    bucket_array = proc.malloc(p.bucket_array_mb * MB)

    rng = np.random.default_rng(5150 + rank)
    keys = rng.integers(0, p.key_range_mini, size=p.keys_mini, dtype=np.int64)
    splitter = p.key_range_mini // n  # uniform keys: fixed splitters

    # the key redistribution buffers are persistent arrays in the
    # original (so IS gets no registration-churn benefit; its hugepage
    # story is purely the computation-side pathology)
    temp = proc.malloc(max(64 * KB, p.a2a_bytes_per_peer))

    sorted_keys = None
    for _ in range(p.iterations):
        # compute: key sweep + bucket rotation + pow2-strided scatter
        # into the big bucket array (the hugepage page-colouring
        # pathology: conflict misses when frames are contiguous)
        cost = proc.engine.stream(key_array, p.key_array_mb * MB)
        cost = cost + proc.engine.rotate(
            [(b, p.bucket_kb * KB) for b in buckets], p.scatter_switches, 128
        )
        cost = cost + proc.engine.strided(
            bucket_array, p.bucket_array_mb * MB, 256 * KB, p.strided_accesses
        )
        yield from comm.compute(cost)

        # real bucketing
        dest_of = np.minimum(keys // splitter, n - 1)
        outgoing = [keys[dest_of == d] for d in range(n)]

        sizes = [p.a2a_bytes_per_peer if d != rank else 0 for d in range(n)]
        incoming = yield from comm.alltoallv(
            sizes,
            payloads=outgoing,
            addrs=[temp] * n,
            recv_addrs=[temp] * n,
        )

        mine = np.concatenate([arr for arr in incoming if arr is not None])
        sorted_keys = np.sort(mine)

    # verification: local order, rank-boundary order, conservation
    lo = float(sorted_keys[0]) if sorted_keys.size else float("inf")
    hi = float(sorted_keys[-1]) if sorted_keys.size else float("-inf")
    boundaries = yield from comm.allgather(16, value=(lo, hi))
    count_total = yield from comm.allreduce(8, value=int(sorted_keys.size))

    ordered = bool(np.all(np.diff(sorted_keys) >= 0))
    cross_ok = all(
        boundaries[i][1] <= boundaries[i + 1][0]
        for i in range(n - 1)
        if boundaries[i][1] != float("-inf") and boundaries[i + 1][0] != float("inf")
    )
    conserved = count_total == p.keys_mini * n
    in_range = bool(
        sorted_keys.size == 0
        or (rank == n - 1 or hi < (rank + 1) * splitter or rank == n - 1)
    )
    verified = ordered and cross_ok and conserved and in_range
    return {"verified": bool(verified), "keys_held": int(sorted_keys.size)}


program.kernel_name = "IS"
