"""NAS CG: conjugate gradient with an irregular sparse matrix.

Communication pattern (per CG iteration): large vector exchanges for the
distributed matvec plus two scalar allreduces for the dot products.  The
original exchanges run over a 2D processor grid transpose; we use a ring
allgather of the direction vector — the same per-iteration byte volume
and large-message character (class C moves ~600 KB per exchange, well
into the RDMA-rendezvous regime where registration matters).

Memory personality: streaming the sparse-matrix slab (row-major sweeps —
prefetch-friendly, hugepages help), rotation over the handful of CG
vectors (few streams: fits even the small hugepage TLB array), and the
irregular gather of ``x[col_index]`` (random within the vector region).

Functional payload: a real distributed CG solve of a small SPD system
(``A = M^T M + n·I``), verified by the residual-norm reduction.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Generator

import numpy as np

from repro.workloads.nas.common import KB, MB


@dataclass(frozen=True)
class CGParams:
    """Per-class scaling of the timed loop."""

    iterations: int
    exchange_bytes: int  # vector-exchange size per allgather step
    matrix_mb: int       # per-rank sparse-slab stream per iteration
    vector_kb: int       # size of each CG vector region
    gather_accesses: int  # irregular x[] gathers per iteration
    temp_mb: int         # per-iteration workspace (malloc/free churn)
    n_mini: int          # functional system size (global)


CLASSES: Dict[str, CGParams] = {
    "W": CGParams(iterations=6, exchange_bytes=80 * KB, matrix_mb=2,
                  vector_kb=256, gather_accesses=20_000, temp_mb=2, n_mini=128),
    "B": CGParams(iterations=25, exchange_bytes=300 * KB, matrix_mb=18,
                  vector_kb=600, gather_accesses=150_000, temp_mb=4, n_mini=192),
    "C": CGParams(iterations=75, exchange_bytes=600 * KB, matrix_mb=50,
                  vector_kb=1200, gather_accesses=400_000, temp_mb=8, n_mini=256),
}


def program(comm, klass: str = "W") -> Generator:
    """CG rank program; returns ``{"verified": bool, ...}``."""
    p = CLASSES[klass]
    proc = comm.proc
    n, rank = comm.size, comm.rank
    rows = p.n_mini // n

    # -- functional setup: the same SPD system on every rank ------------
    rng = np.random.default_rng(20061)
    m = rng.standard_normal((p.n_mini, p.n_mini))
    a_full = m.T @ m + p.n_mini * np.eye(p.n_mini)
    a_rows = a_full[rank * rows:(rank + 1) * rows]
    b_local = np.ones(rows)

    # -- timed arrays through the active allocator -----------------------
    matrix_slab = proc.malloc(p.matrix_mb * MB)
    vectors = [proc.malloc(p.vector_kb * KB) for _ in range(5)]
    # column-index blocks: together with the vectors these put more
    # concurrent regions in play than the hugepage TLB has entries
    index_blocks = [proc.malloc(256 * KB) for _ in range(8)]
    x_region = vectors[0]

    # -- CG state ---------------------------------------------------------
    x = np.zeros(rows)
    r = b_local.copy()
    direction = r.copy()
    rho = None
    rho0 = None

    transpose_partner = rank ^ (n // 2) if n > 1 else rank

    for it in range(p.iterations):
        # compute: matvec personality
        cost = proc.engine.stream(matrix_slab, p.matrix_mb * MB)
        cost = cost + proc.engine.rotate(
            [(v, p.vector_kb * KB) for v in vectors]
            + [(b, 256 * KB) for b in index_blocks],
            max(8000, 500 * p.matrix_mb), 512,
        )
        cost = cost + proc.engine.random(
            x_region, p.vector_kb * KB, p.gather_accesses
        )
        yield from comm.compute(cost)

        # per-iteration workspace churn (Fortran scoped temporaries)
        temp = proc.malloc(n * p.exchange_bytes + p.temp_mb * MB)
        xpose = proc.malloc(2 * p.exchange_bytes + 8192)

        # the 2D-grid transpose exchange with the opposite half
        if transpose_partner != rank:
            yield from comm.sendrecv(
                transpose_partner, 4200 + it, p.exchange_bytes,
                source=transpose_partner, recvtag=4200 + it,
                send_addr=xpose, recv_addr=xpose + p.exchange_bytes + 4096,
                payload=None,
            )

        # rho = r . r (global)
        rho_local = float(r @ r)
        rho = yield from comm.allreduce(8, value=rho_local)
        if rho0 is None:
            rho0 = rho

        # exchange direction vector, then local matvec
        parts = yield from comm.allgather(
            p.exchange_bytes, value=direction, addr=temp
        )
        p_full = np.concatenate(parts)
        q = a_rows @ p_full

        # alpha = rho / (p . q) (global)
        pq_local = float(direction @ q)
        pq = yield from comm.allreduce(8, value=pq_local)
        alpha = rho / pq
        x = x + alpha * direction
        r = r - alpha * q

        rho_new_local = float(r @ r)
        rho_new = yield from comm.allreduce(8, value=rho_new_local)
        beta = rho_new / rho
        direction = r + beta * direction
        final_rho = rho_new

        proc.free(xpose)
        proc.free(temp)

    # converged? class W runs few iterations, so check the reduction
    reduction = final_rho / rho0 if rho0 else 0.0
    verified = bool(rho0 > 0 and reduction < 1e-4)
    return {"verified": verified, "residual_reduction": reduction}


program.kernel_name = "CG"
