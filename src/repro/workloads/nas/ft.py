"""NAS FT: 3D FFT — an *extension* kernel (not in the paper's Fig 6).

FT is the NPB kernel the paper did not run, and the most interesting
one it left out: its transpose-based communication sends the largest
alltoall volumes of the suite (maximal registration sensitivity), while
its local transposes walk power-of-two strides (the same page-colouring
pathology as IS) over buffers it also streams heavily.  Hugepages pull
FT in both directions at once — which is why it is worth simulating.

Functional payload: a real distributed 2D FFT round trip.  Each rank
owns a row block; forward FFT along rows, transpose via alltoall with
real numpy blocks, FFT along (now local) columns — then the inverse of
both, and the result must equal the input.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Generator

import numpy as np

from repro.workloads.nas.common import KB, MB


@dataclass(frozen=True)
class FTParams:
    """Per-class scaling."""

    iterations: int
    a2a_bytes_per_peer: int   # transpose volume to each peer per step
    grid_mb: int              # streamed grid array (u, v: two of them)
    transpose_stride: int     # local-transpose stride (power of two)
    strided_accesses: int
    n_mini: int               # functional FFT grid edge (per the world)


CLASSES: Dict[str, FTParams] = {
    "W": FTParams(iterations=3, a2a_bytes_per_peer=256 * KB, grid_mb=6,
                  transpose_stride=128 * KB, strided_accesses=3_000,
                  n_mini=32),
    "B": FTParams(iterations=10, a2a_bytes_per_peer=4 * MB, grid_mb=20,
                  transpose_stride=256 * KB, strided_accesses=15_000,
                  n_mini=32),
    "C": FTParams(iterations=15, a2a_bytes_per_peer=8 * MB, grid_mb=40,
                  transpose_stride=256 * KB, strided_accesses=30_000,
                  n_mini=64),
}


def program(comm, klass: str = "W") -> Generator:
    """FT rank program; returns ``{"verified": bool, ...}``."""
    p = CLASSES[klass]
    proc = comm.proc
    n, rank = comm.size, comm.rank
    rows = p.n_mini // n

    # timed arrays: two grid copies (u and its transform)
    grid_u = proc.malloc(p.grid_mb * MB)
    grid_v = proc.malloc(p.grid_mb * MB)

    # functional: this rank's row block of a random complex field
    rng = np.random.default_rng(4242)  # same field everywhere
    field = rng.standard_normal((p.n_mini, p.n_mini)) \
        + 1j * rng.standard_normal((p.n_mini, p.n_mini))
    mine = field[rank * rows:(rank + 1) * rows].copy()
    original = mine.copy()

    def distributed_transpose(block, tag_epoch):
        """Alltoall the row block into a column block (timed, real data)."""
        pieces = [block[:, d * rows:(d + 1) * rows].copy() for d in range(n)]
        temp = proc.malloc(max(64 * KB, p.a2a_bytes_per_peer))
        sizes = [p.a2a_bytes_per_peer if d != rank else 0 for d in range(n)]
        incoming = yield from comm.alltoallv(
            sizes, payloads=pieces, addrs=[temp] * n, recv_addrs=[temp] * n,
        )
        proc.free(temp)
        return np.hstack([incoming[s].T for s in range(n)])

    for it in range(p.iterations):
        # compute: stream both grids + the pow2-strided local transpose
        cost = proc.engine.stream(grid_u, p.grid_mb * MB)
        cost = cost + proc.engine.stream(grid_v, p.grid_mb * MB, write=True)
        cost = cost + proc.engine.strided(
            grid_v, p.grid_mb * MB, p.transpose_stride, p.strided_accesses
        )
        yield from comm.compute(cost)

        # functional forward transform: rows, transpose, columns
        mine = np.fft.fft(mine, axis=1)
        mine = yield from distributed_transpose(mine, it)
        mine = np.fft.fft(mine, axis=1)

        # inverse immediately (the NPB evolve step is a phase factor;
        # the round trip is the communication-equivalent workload)
        mine = np.fft.ifft(mine, axis=1)
        mine = yield from distributed_transpose(mine, it)
        mine = np.fft.ifft(mine, axis=1)

    verified = bool(np.allclose(mine, original, atol=1e-8))
    ok = yield from comm.allreduce(1, value=verified,
                                   op=lambda a, b: bool(a) and bool(b))
    checksum = complex(mine.sum())
    return {"verified": bool(ok), "checksum": (checksum.real, checksum.imag)}


program.kernel_name = "FT"
