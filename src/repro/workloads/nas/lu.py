"""NAS LU: a pipelined wavefront solver (SSOR).

Communication: the wavefront pipelines many *medium* messages — each
sweep step sends boundary slabs (tens of KB, class C ≈ 40 KB) to the
south/east neighbours of a 2D rank grid.  These sit right in the RDMA
rendezvous regime, so registration efficiency shows directly in the
communication time.

Memory personality: LU sweeps a *small number* of large arrays in long
regular streams — at most four concurrent streams, which fit even the
8-entry hugepage TLB array.  This is the kernel the paper singles out in
§5.2: TLB misses did **not** increase with hugepages ("except for LU"),
while the prefetcher benefits fully.

Functional payload: a real 2D recurrence (``v[i,j] = v[i-1,j] + v[i,j-1]
+ a[i,j]``) computed by wavefront pipelining across the rank grid and
verified against a sequentially computed reference.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Generator

import numpy as np

from repro.workloads.nas.common import KB, MB


@dataclass(frozen=True)
class LUParams:
    """Per-class scaling."""

    steps: int            # wavefront sweeps (time steps)
    boundary_bytes: int   # south/east slab size per step
    field_mb: int         # per-rank field arrays (4 of them)
    block_mini: int       # functional local block edge


CLASSES: Dict[str, LUParams] = {
    "W": LUParams(steps=8, boundary_bytes=24 * KB, field_mb=4, block_mini=12),
    "B": LUParams(steps=60, boundary_bytes=40 * KB, field_mb=12, block_mini=16),
    "C": LUParams(steps=150, boundary_bytes=40 * KB, field_mb=24, block_mini=16),
}


def _grid_shape(n: int):
    """A px x py factorisation of the world size (px >= py)."""
    px = int(np.sqrt(n))
    while n % px:
        px -= 1
    return max(px, n // px), min(px, n // px)


def program(comm, klass: str = "W") -> Generator:
    """LU rank program; returns ``{"verified": bool, ...}``."""
    p = CLASSES[klass]
    proc = comm.proc
    n, rank = comm.size, comm.rank
    px, py = _grid_shape(n)
    ix, iy = rank % px, rank // px
    west = rank - 1 if ix > 0 else None
    east = rank + 1 if ix < px - 1 else None
    north = rank - px if iy > 0 else None
    south = rank + px if iy < py - 1 else None

    # four field arrays: few long streams (fits the hugepage TLB)
    fields = [proc.malloc(p.field_mb * MB) for _ in range(4)]

    # functional block: same global a on every rank, sliced locally
    bm = p.block_mini
    rng = np.random.default_rng(31337)
    a_global = rng.uniform(0.0, 1.0, size=(py * bm, px * bm))
    a_local = a_global[iy * bm:(iy + 1) * bm, ix * bm:(ix + 1) * bm]

    v_local = None
    for step in range(p.steps):
        # wavefront receive: top row from north, left column from west
        top = np.zeros(bm)
        left = np.zeros(bm)
        if north is not None:
            payload, _, _, _ = yield from comm.recv(north, 900_000 + 2 * step, addr=fields[2])
            top = payload
        if west is not None:
            payload, _, _, _ = yield from comm.recv(west, 900_001 + 2 * step, addr=fields[3])
            left = payload

        # compute: a few long streams over the field arrays
        cost = proc.engine.stream(fields[0], p.field_mb * MB)
        for f in fields[1:]:
            cost = cost + proc.engine.stream(f, p.field_mb * MB // 2)
        yield from comm.compute(cost)

        # real recurrence with halo boundary conditions
        v_local = np.zeros((bm, bm))
        for i in range(bm):
            for j in range(bm):
                up = v_local[i - 1, j] if i > 0 else top[j]
                lf = v_local[i, j - 1] if j > 0 else left[i]
                v_local[i, j] = up + lf + a_local[i, j]

        # wavefront send: bottom row south, right column east
        if south is not None:
            yield from comm.send(south, 900_000 + 2 * step, p.boundary_bytes,
                                 addr=fields[0], payload=v_local[-1, :].copy())
        if east is not None:
            yield from comm.send(east, 900_001 + 2 * step, p.boundary_bytes,
                                 addr=fields[1], payload=v_local[:, -1].copy())

    # verification at the last-corner rank: sequential reference
    verified = True
    if rank == n - 1:
        ref = np.zeros((py * bm, px * bm))
        for i in range(py * bm):
            for j in range(px * bm):
                up = ref[i - 1, j] if i > 0 else 0.0
                lf = ref[i, j - 1] if j > 0 else 0.0
                ref[i, j] = up + lf + a_global[i, j]
        expected = ref[iy * bm:(iy + 1) * bm, ix * bm:(ix + 1) * bm]
        verified = bool(np.allclose(v_local, expected))
    ok = yield from comm.allreduce(1, value=bool(verified),
                                   op=lambda x, y: bool(x) and bool(y))
    return {"verified": bool(ok), "corner": float(v_local[-1, -1])}


program.kernel_name = "LU"
