"""A verbs-level message train: the event-kernel benchmark.

The figure drivers are dominated by host-side cost modelling (per-page
copies, TLB walks); this driver is the opposite regime — the one the
paper's §4 pipeline actually lives in.  One QP pushes a *train* of
back-to-back messages through the full adapter pipeline (post, WQE
fetch, gather, wire, scatter, CQE, ack) with a bounded completion
window, so nearly all simulation work is event-kernel work: scheduling,
dispatch, resource grants, completions.  ``repro perf`` times it as the
``train`` benchmark; the scheduler-regression gate in CI runs it under
both schedulers.

The driver also carries the closed-form model it is pinned against:
with ``window=1`` the steady-state per-message period is a pure sum of
pipeline stages (every stage tick-rounded exactly as the DES rounds it,
the wire part through :meth:`repro.ib.link.IBLink.train_ns`), and
``tests/test_wire_train.py`` asserts the simulated train matches it
tick-exactly.  That is the contract that lets the folded delivery path
(see "Event folding" in :mod:`repro.ib.hca`) claim analytic costing:
the DES, the fold, and the closed form all agree.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Optional

from repro.ib.hca import HCA
from repro.ib.verbs import SGE, CompletionQueue, ProtectionDomain, RecvWR, SendWR
from repro.mem.physical import PAGE_4K
from repro.systems import presets
from repro.systems.machine import Cluster, MachineSpec


@dataclass(frozen=True)
class TrainResult:
    """One message train, end to end."""

    msg_bytes: int
    count: int
    window: int
    #: first post to last send completion (sender clock)
    total_ticks: int
    #: closed-form steady-state period per message for ``window=1``
    #: (meaningful only in that mode; see :func:`analytic_period_ticks`)
    analytic_period_ticks: int
    tx_messages: int
    rx_messages: int

    @property
    def ticks_per_msg(self) -> float:
        """Mean per-message cost over the train."""
        return self.total_ticks / self.count if self.count else 0.0


def analytic_period_ticks(
    hca_a: HCA, hca_b: HCA, msg_bytes: int, src_addr: int, dst_addr: int
) -> int:
    """Closed-form steady-state period of a ``window=1`` train.

    With one message in flight the pipeline is strictly sequential, so
    the period is the sum of its stages, each rounded to ticks exactly
    where the DES rounds it (one ``ns_to_ticks`` per ``timeout``):
    post + doorbell, WQE fetch, pipeline + first-byte latency, receive
    WQE fetch, ``max(scatter, stream)`` + CQE write, the ack's flight,
    the sender-side CQE write, and the completion poll.  Assumes warm
    ATTs (every message of the train after the first; the first pays the
    cold-miss stalls, which is why the pin in ``tests/test_wire_train``
    compares train *differences*).
    """
    cfg = hca_a.config
    clock = hca_a.clock
    bus_a, bus_b = hca_a.bus, hca_b.bus
    link = hca_a.link

    post_ns = cfg.post_base_ns + cfg.post_per_sge_ns + bus_a.doorbell_ns()
    gather_ns = (
        bus_a.config.dma_setup_ns
        + bus_a.bursts_for(src_addr, msg_bytes) * bus_a.config.burst_ns
        + bus_a.offset_adjust_ns(src_addr)
        + bus_a.stream_ns(msg_bytes)
    )
    # the wire half of the train: IBLink.train_ns(b, 1) per message
    stream_ns = max(gather_ns, link.train_ns(msg_bytes, 1))
    scatter_ns = (
        bus_b.config.dma_setup_ns
        + bus_b.bursts_for(dst_addr, msg_bytes) * bus_b.config.burst_ns
        + bus_b.offset_adjust_ns(dst_addr)
        + bus_b.stream_ns(msg_bytes)
    )
    return (
        clock.ns_to_ticks(post_ns)
        + clock.ns_to_ticks(bus_a.wqe_fetch_ns(1))
        + clock.ns_to_ticks(cfg.process_ns + link.config.latency_ns)
        + clock.ns_to_ticks(cfg.recv_wqe_ns)
        + clock.ns_to_ticks(max(scatter_ns, stream_ns) + cfg.cqe_write_ns)
        + clock.ns_to_ticks(link.ack_ns())
        + clock.ns_to_ticks(cfg.cqe_write_ns)
        + clock.ns_to_ticks(cfg.poll_ns)
    )


def run_train(
    spec_factory: Optional[Callable[[], MachineSpec]] = None,
    msg_bytes: int = 1024,
    count: int = 1000,
    window: int = 16,
) -> TrainResult:
    """Drive one message train on a fresh 2-node cluster.

    The sender keeps up to *window* sends outstanding; the receiver
    pre-posts *window* receives and re-posts as completions drain.
    """
    if msg_bytes < 1 or count < 1 or window < 1:
        raise ValueError("msg_bytes, count and window must be >= 1")
    spec = (spec_factory or presets.opteron_infinihost_pcie)()
    cluster = Cluster(spec, n_nodes=2)
    k = cluster.kernel
    node_a, node_b = cluster.nodes
    proc_a = node_a.new_process("train-tx")
    proc_b = node_b.new_process("train-rx")

    span = ((msg_bytes + PAGE_4K - 1) // PAGE_4K) * PAGE_4K + PAGE_4K
    buf_a = proc_a.aspace.mmap(span, name="train-src").start
    buf_b = proc_b.aspace.mmap(span, name="train-dst").start

    pd_a, pd_b = ProtectionDomain.fresh(), ProtectionDomain.fresh()
    scq = CompletionQueue(k)
    rcq_a = CompletionQueue(k)
    scq_b = CompletionQueue(k)
    rcq = CompletionQueue(k)
    qp_a = node_a.hca.create_qp(pd_a, scq, rcq_a)
    qp_b = node_b.hca.create_qp(pd_b, scq_b, rcq)
    HCA.connect_pair(qp_a, node_a.hca, qp_b, node_b.hca)

    out: Dict[str, int] = {}

    def receiver():
        mr = yield from node_b.hca.register_memory(proc_b.aspace, pd_b, buf_b, span)
        sges = [SGE(addr=buf_b, length=msg_bytes, lkey=mr.lkey)]
        posted = min(window, count)
        for i in range(posted):
            yield from node_b.hca.post_recv(qp_b, RecvWR(wr_id=i, sges=sges))
        for _ in range(count):
            yield from node_b.hca.wait_completion(rcq)
            if posted < count:
                yield from node_b.hca.post_recv(
                    qp_b, RecvWR(wr_id=posted, sges=sges)
                )
                posted += 1

    def sender():
        mr = yield from node_a.hca.register_memory(proc_a.aspace, pd_a, buf_a, span)
        sges = [SGE(addr=buf_a, length=msg_bytes, lkey=mr.lkey)]
        t0 = k.now
        inflight = 0
        for i in range(count):
            yield from node_a.hca.post_send(qp_a, SendWR(wr_id=i, sges=sges))
            inflight += 1
            if inflight >= window:
                yield from node_a.hca.wait_completion(scq)
                inflight -= 1
        while inflight:
            yield from node_a.hca.wait_completion(scq)
            inflight -= 1
        out["ticks"] = k.now - t0

    k.process(receiver(), name="train-rx")
    k.process(sender(), name="train-tx")
    k.run()
    return TrainResult(
        msg_bytes=msg_bytes,
        count=count,
        window=window,
        total_ticks=out["ticks"],
        analytic_period_ticks=analytic_period_ticks(
            node_a.hca, node_b.hca, msg_bytes, buf_a, buf_b
        ),
        tx_messages=int(node_a.hca.counters.get("hca.tx_messages", 0)),
        rx_messages=int(node_b.hca.counters.get("hca.rx_messages", 0)),
    )
