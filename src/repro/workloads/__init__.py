"""Workloads: the benchmarks the paper evaluates with.

- :mod:`repro.workloads.imb` — Intel MPI Benchmarks SendRecv (Fig 5).
- :mod:`repro.workloads.nas` — mini NAS parallel benchmarks CG/EP/IS/LU/MG
  (Fig 6 and the TLB-miss measurements).
- :mod:`repro.workloads.abinit` — the Abinit-like allocation workload
  (the §2 allocator comparison and §3.2 runtime claim).
"""

from repro.workloads.imb import (
    IMBResult,
    IMBRow,
    PingPongBenchmark,
    SendRecvBenchmark,
)

__all__ = ["IMBResult", "IMBRow", "PingPongBenchmark", "SendRecvBenchmark"]
