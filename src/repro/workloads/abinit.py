"""The Abinit-like application workload (§2 / §3.2 item 2).

The paper's two allocator claims:

- "For some instrumented applications we measured allocation benefits of
  up to 10 times with our library (e.g. for Abinit)" (§2);
- "With Abinit, the time consumption of allocation/deallocation
  functions is significantly lower with our library compared to the libc
  allocator and it improved application runtime by 1.5 %" (§3.2).

The first is pure allocator time (see :mod:`repro.alloc.traces`); the
second needs allocator time in *application context* — this module runs
the allocation trace interleaved with compute phases over the allocated
arrays, so allocator time, placement-dependent compute time and total
runtime can all be reported for any allocator choice.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List

from repro.alloc.traces import MB, abinit_like_trace
from repro.core.library import preload_hugepage_library
from repro.systems.machine import Machine, MachineSpec
from repro.engine.core import SimKernel


@dataclass
class AbinitResult:
    """Simulated outcome of one Abinit-like run."""

    allocator: str
    total_ns: float
    alloc_ns: float
    compute_ns: float

    @property
    def alloc_fraction(self) -> float:
        """Share of runtime spent inside the allocator."""
        return self.alloc_ns / self.total_ns if self.total_ns else 0.0


def run_abinit(
    spec: MachineSpec,
    hugepages: bool,
    iterations: int = 12,
    compute_passes: int = 2,
    seed: int = 42,
) -> AbinitResult:
    """Run the Abinit-like SCF loop on a fresh machine.

    Per SCF iteration: allocate the work arrays (large wavefunction
    temporaries, medium scratch, small objects), run *compute_passes*
    streaming sweeps over the large arrays (FFT-like passes), free the
    scope.  With ``hugepages=True`` the paper's library is preloaded;
    placement then also changes the compute time through the prefetcher,
    which is how allocator choice shows up as total-runtime improvement.
    """
    kernel = SimKernel()
    machine = Machine(kernel, spec)
    proc = machine.new_process("abinit")
    if hugepages:
        preload_hugepage_library(proc)

    trace = abinit_like_trace(iterations=iterations, seed=seed)
    # replay the trace manually so compute runs inside each iteration
    pointers: Dict[int, int] = {}
    sizes: Dict[int, int] = {}
    alloc_ns = 0.0
    compute_ns = 0.0
    live_large: List[int] = []

    stats = proc.allocator.stats
    for op in trace:
        if op.op == "malloc":
            before = stats.total_ns
            pointers[op.handle] = proc.malloc(op.size)
            sizes[op.handle] = op.size
            alloc_ns += stats.total_ns - before
            if op.size >= 1 * MB:
                live_large.append(op.handle)
        else:
            if op.handle in live_large:
                # end of scope approaching: run the FFT-like sweeps over
                # every live large array before tearing the scope down
                if live_large and op.handle == live_large[-1]:
                    for _ in range(compute_passes):
                        for h in live_large:
                            cost = proc.engine.stream(pointers[h], sizes[h])
                            compute_ns += cost.ns
                live_large.remove(op.handle)
            before = stats.total_ns
            proc.free(pointers.pop(op.handle))
            sizes.pop(op.handle)
            alloc_ns += stats.total_ns - before
    return AbinitResult(
        allocator=proc.allocator.name,
        total_ns=alloc_ns + compute_ns,
        alloc_ns=alloc_ns,
        compute_ns=compute_ns,
    )


def compare_allocators(
    spec_factory: Callable[[], MachineSpec],
    iterations: int = 12,
) -> Dict[str, AbinitResult]:
    """libc vs the hugepage library on identical machines/traces."""
    return {
        "libc": run_abinit(spec_factory(), hugepages=False, iterations=iterations),
        "hugepage_lib": run_abinit(spec_factory(), hugepages=True,
                                   iterations=iterations),
    }
