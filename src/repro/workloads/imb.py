"""The Intel MPI Benchmarks *SendRecv* test (Fig 5).

    "we used the SendRecv test of the IMB and measured network bandwidth.
     We analysed two cases: One time we activated lazy deregistration and
     only measured the time for sending and receiving a message over
     InfiniBand.  Another time we deactivated this feature so that we
     additionally measured memory registration overhead for each test."
     (§5.1)

IMB SendRecv forms a ring: every rank sends to its right neighbour while
receiving from its left, so each rank moves ``2 × size`` bytes per
iteration and the reported bandwidth is ``2 × size / t`` (which is why
the paper's peak approaches 1750 MB/s on a ~940 MB/s link).

The benchmark reuses one pair of buffers across iterations, exactly like
IMB — this is what makes the lazy-deregistration cache effective after
the first iteration, and what makes deactivating it so expensive.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, List, Optional

from repro.core.placement import BufferPlacer, PlacementPolicy
from repro.faults import FaultPlan
from repro.mpi.api import MPIConfig, MPIWorld
from repro.systems.machine import Cluster, MachineSpec


@dataclass
class IMBRow:
    """One message size's result."""

    size: int
    ticks_per_iter: float
    latency_us: float
    bandwidth_mb_s: float


@dataclass
class IMBResult:
    """A full SendRecv sweep under one configuration."""

    machine: str
    hugepages: bool
    lazy_dereg: bool
    driver_hugepage_aware: bool
    rows: List[IMBRow] = field(default_factory=list)

    def bandwidth_at(self, size: int) -> float:
        """Bandwidth for an exact message size."""
        for row in self.rows:
            if row.size == size:
                return row.bandwidth_mb_s
        raise KeyError(f"no row for size {size}")


class PingPongBenchmark:
    """IMB PingPong: one-way latency / unidirectional bandwidth.

    Not in the paper's figures, but the standard companion view of the
    same placement effects: half round-trip time per size, so the small-
    message regime (where §4's offsets and SGE costs live) is visible in
    microseconds rather than MB/s.
    """

    def __init__(self, spec_factory: Callable[[], MachineSpec]):
        self.spec_factory = spec_factory
        #: the cluster of the most recent :meth:`run` (checkpoint/audit
        #: harnesses read its final tick count and invariants)
        self.last_cluster: Optional[Cluster] = None

    def run(
        self,
        sizes: List[int],
        hugepages: bool,
        lazy_dereg: bool = True,
        driver_hugepage_aware: Optional[bool] = None,
        iterations: int = 4,
        warmup: int = 1,
        fault_plan: Optional[FaultPlan] = None,
    ) -> IMBResult:
        """One PingPong sweep on a fresh 2-node cluster."""
        if not sizes or min(sizes) < 1:
            raise ValueError("sizes must be positive")
        spec = self.spec_factory()
        if driver_hugepage_aware is not None:
            spec = spec.with_driver(driver_hugepage_aware)
        cluster = Cluster(spec, n_nodes=2, fault_plan=fault_plan)
        world = MPIWorld(cluster, ppn=1, config=MPIConfig(lazy_dereg=lazy_dereg))
        policy = PlacementPolicy.HUGE_PAGES if hugepages else PlacementPolicy.SMALL_PAGES
        max_size = max(sizes)
        timings = {}

        def program(comm):
            placer = BufferPlacer(comm.proc)
            buf = placer.place(max_size, policy, offset=0)
            other = 1 - comm.rank
            for size in sizes:
                for i in range(warmup + iterations):
                    if i == warmup and comm.rank == 0:
                        t0 = comm.kernel.now
                    if comm.rank == 0:
                        yield from comm.send(other, 42, size, addr=buf.addr)
                        yield from comm.recv(other, 43, addr=buf.addr)
                    else:
                        yield from comm.recv(0, 42, addr=buf.addr)
                        yield from comm.send(other, 43, size, addr=buf.addr)
                if comm.rank == 0:
                    # PingPong reports half the round trip
                    timings[size] = (comm.kernel.now - t0) / iterations / 2
            return None

        world.run(program)
        self.last_cluster = cluster
        clock = cluster.clock
        result = IMBResult(
            machine=spec.name,
            hugepages=hugepages,
            lazy_dereg=lazy_dereg,
            driver_hugepage_aware=spec.hugepage_aware_driver,
        )
        for size in sizes:
            ticks = timings[size]
            result.rows.append(
                IMBRow(
                    size=size,
                    ticks_per_iter=ticks,
                    latency_us=clock.ticks_to_us(int(ticks)),
                    bandwidth_mb_s=clock.bandwidth_mb_s(size, max(1, int(ticks))),
                )
            )
        return result


class SendRecvBenchmark:
    """Runs IMB SendRecv sweeps over fresh 2-node clusters."""

    def __init__(self, spec_factory: Callable[[], MachineSpec], n_nodes: int = 2):
        if n_nodes != 2:
            raise ValueError("IMB SendRecv reproduction runs on 2 nodes")
        self.spec_factory = spec_factory
        self.n_nodes = n_nodes
        #: the cluster of the most recent :meth:`run` (checkpoint/audit
        #: harnesses read its final tick count and invariants)
        self.last_cluster: Optional[Cluster] = None

    def run(
        self,
        sizes: List[int],
        hugepages: bool,
        lazy_dereg: bool,
        driver_hugepage_aware: Optional[bool] = None,
        iterations: int = 4,
        warmup: int = 1,
        fault_plan: Optional[FaultPlan] = None,
    ) -> IMBResult:
        """One sweep: a fresh cluster, one buffer placement, one
        registration-cache mode, all *sizes*."""
        if not sizes or min(sizes) < 1:
            raise ValueError("sizes must be positive")
        spec = self.spec_factory()
        if driver_hugepage_aware is not None:
            spec = spec.with_driver(driver_hugepage_aware)
        cluster = Cluster(spec, n_nodes=self.n_nodes, fault_plan=fault_plan)
        world = MPIWorld(cluster, ppn=1, config=MPIConfig(lazy_dereg=lazy_dereg))
        policy = PlacementPolicy.HUGE_PAGES if hugepages else PlacementPolicy.SMALL_PAGES
        max_size = max(sizes)
        timings = {}

        def program(comm):
            placer = BufferPlacer(comm.proc)
            send_buf = placer.place(max_size, policy, offset=0)
            recv_buf = placer.place(max_size, policy, offset=0)
            right = (comm.rank + 1) % comm.size
            left = (comm.rank - 1) % comm.size
            for size in sizes:
                for i in range(warmup + iterations):
                    if i == warmup:
                        t0 = comm.kernel.now
                    yield from comm.sendrecv(
                        right, 77, size,
                        source=left, recvtag=77,
                        send_addr=send_buf.addr, recv_addr=recv_buf.addr,
                    )
                if comm.rank == 0:
                    timings[size] = (comm.kernel.now - t0) / iterations
            return None

        world.run(program)
        self.last_cluster = cluster
        clock = cluster.clock
        result = IMBResult(
            machine=spec.name,
            hugepages=hugepages,
            lazy_dereg=lazy_dereg,
            driver_hugepage_aware=spec.hugepage_aware_driver,
        )
        for size in sizes:
            ticks = timings[size]
            result.rows.append(
                IMBRow(
                    size=size,
                    ticks_per_iter=ticks,
                    latency_us=clock.ticks_to_us(int(ticks)),
                    # IMB SendRecv counts both directions
                    bandwidth_mb_s=clock.bandwidth_mb_s(2 * size, max(1, int(ticks))),
                )
            )
        return result
