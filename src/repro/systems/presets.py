"""Presets for the paper's three test systems (§5):

- "AMD Opteron system with Mellanox InfiniHost on PCI-Express, 2 GB RAM,
  2 dual-core processors (2.2 GHz)"
- "Intel Xeon system with Mellanox InfiniHost on PCI-X, 2 GB RAM,
  2 hyperthreading processors (2.4 GHz)"
- "IBM low-end System p with IBM InfiniBand eHCA on GX bus, 16 GB RAM,
  8 processors (1.65 GHz)"

Numbers are era-plausible: TLB geometries from the respective
microarchitectures (the Opteron's 544 vs 8 entry asymmetry is quoted in
the paper itself, §2), bus bandwidths from the slot types, IB 4x SDR
payload rates.  The System p time base runs at CPU/8 (1.65 GHz → 206.25
ticks/µs), which is the unit of the paper's Figs 3-4.

One modelling substitution: POWER5 Linux hugepages are 16 MB, but the
simulation uses a single 2 MB hugepage size everywhere — the paper's
effects depend on the *ratio* of page sizes and on entry counts, not the
absolute hugepage size, and a uniform size keeps the allocators and the
driver simple.  (Recorded in DESIGN.md.)
"""

from __future__ import annotations

from repro.alloc.base import AllocatorCostModel
from repro.ib.att import ATTConfig
from repro.ib.bus import gx_bus, pci_express_x8, pci_x_133
from repro.ib.hca import HCAConfig
from repro.ib.link import LinkConfig
from repro.ib.registration import RegistrationCosts
from repro.mem.cache import CacheConfig
from repro.mem.tlb import TLBConfig
from repro.systems.machine import MB, MachineSpec


def opteron_infinihost_pcie(
    hugepages: int = 512, hugepage_aware_driver: bool = True
) -> MachineSpec:
    """The AMD Opteron + Mellanox InfiniHost / PCIe node.

    PCIe x8 gives the bus ample slack over the 4x SDR link, so ATT
    stalls hide inside the transfer — the §5.1 observation that hugepages
    did *not* raise bandwidth here once lazy deregistration was on.
    """
    return MachineSpec(
        name="opteron",
        ticks_per_us=200.0,  # 2.2 GHz TSC scaled; absolute ticks unused here
        mem_bytes=2048 * MB,
        hugepages=hugepages,
        cores=4,
        tlb=TLBConfig(entries_4k=544, entries_2m=8, walk_ns_per_level=10.0),
        cache=CacheConfig(capacity_bytes=1 * MB),
        bus=pci_express_x8(),
        link=LinkConfig(payload_mb_s=940.0),
        att=ATTConfig(entries=64, fetch_ns=250.0),
        hca=HCAConfig(),
        reg_costs=RegistrationCosts(),
        alloc_costs=AllocatorCostModel(),
        hugepage_aware_driver=hugepage_aware_driver,
    )


def xeon_infinihost_pcix(
    hugepages: int = 512, hugepage_aware_driver: bool = False
) -> MachineSpec:
    """The Intel Xeon + Mellanox InfiniHost / PCI-X node.

    The shared half-duplex PCI-X bus runs slightly below the link rate,
    so every ATT stall lands on the critical path — the system where the
    paper measured "bandwidth with 2 MB pages increased up to 6 %" once
    the patched driver uploaded hugepage translations.

    The driver defaults to *unpatched* here because that is the baseline
    of the §5.1 Xeon experiment; flip with ``hugepage_aware_driver=True``.
    """
    return MachineSpec(
        name="xeon",
        ticks_per_us=200.0,
        mem_bytes=2048 * MB,
        hugepages=hugepages,
        cores=4,  # 2 sockets x 2 hyperthreads
        tlb=TLBConfig(entries_4k=128, entries_2m=8, walk_ns_per_level=13.0),
        cache=CacheConfig(capacity_bytes=512 * 1024),
        bus=pci_x_133(),
        link=LinkConfig(payload_mb_s=940.0),
        att=ATTConfig(entries=64, fetch_ns=250.0),
        hca=HCAConfig(),
        reg_costs=RegistrationCosts(),
        alloc_costs=AllocatorCostModel(),
        hugepage_aware_driver=hugepage_aware_driver,
    )


def systemp_ehca(
    hugepages: int = 2048, hugepage_aware_driver: bool = True
) -> MachineSpec:
    """The IBM low-end System p + eHCA / GX node.

    16 GB of RAM, 8 cores, and the time base register the paper's Figs
    3-4 are measured in (CPU/8 = 206.25 ticks/µs).  The GX bus attaches
    the eHCA directly to the memory fabric.
    """
    return MachineSpec(
        name="systemp",
        ticks_per_us=206.25,
        mem_bytes=16 * 1024 * MB,
        hugepages=hugepages,
        cores=8,
        tlb=TLBConfig(entries_4k=1024, entries_2m=16, walk_ns_per_level=9.0),
        cache=CacheConfig(capacity_bytes=1920 * 1024),
        bus=gx_bus(),
        link=LinkConfig(payload_mb_s=940.0),
        att=ATTConfig(entries=128, fetch_ns=220.0),
        hca=HCAConfig(),
        reg_costs=RegistrationCosts(),
        alloc_costs=AllocatorCostModel(),
        hugepage_aware_driver=hugepage_aware_driver,
    )


ALL_PRESETS = {
    "opteron": opteron_infinihost_pcie,
    "xeon": xeon_infinihost_pcix,
    "systemp": systemp_ehca,
}
