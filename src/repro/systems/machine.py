"""Machines, OS processes and clusters: wiring the substrates together.

A :class:`Machine` is one cluster node: physical memory with a hugepage
pool, an I/O bus, an HCA (with ATT cache, registration engine and driver)
and a tick clock — everything shared by the processes on that node.

An :class:`OSProcess` is one MPI rank's worth of OS state: a private
address space, a private TLB/cache/access-engine (each rank runs pinned
to its own core on the paper's 2- and 4-core nodes) and its allocator
stack (libc by default; the hugepage library is "preloaded" by the
:mod:`repro.core.library` facade).

A :class:`Cluster` is N machines joined by point-to-point IB wires on one
shared simulation kernel.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict, List, Optional

from repro.alloc.base import AllocatorCostModel
from repro.alloc.libc import LibcAllocator
from repro.analysis.counters import CounterSet
from repro.engine.clock import TickClock
from repro.engine.core import SimKernel
from repro.faults import FaultInjector, FaultPlan
from repro.ib.att import ATTCache, ATTConfig
from repro.ib.bus import BusConfig, BusModel, pci_express_x8
from repro.ib.driver import OpenIBDriver
from repro.ib.hca import HCA, HCAConfig, Wire
from repro.ib.link import IBLink, LinkConfig
from repro.ib.registration import RegistrationCosts, RegistrationEngine
from repro.mem.access import MemoryAccessEngine
from repro.mem.address_space import AddressSpace
from repro.mem.cache import CacheConfig
from repro.mem.hugetlbfs import HugeTLBfs
from repro.mem.physical import PhysicalMemory
from repro.mem.tlb import TLBConfig

MB = 1024 * 1024


@dataclass(frozen=True)
class MachineSpec:
    """Full parameterisation of one node type."""

    name: str
    ticks_per_us: float = 200.0
    mem_bytes: int = 2048 * MB
    hugepages: int = 512
    fragmentation: float = 1.0
    seed: int = 2006
    cores: int = 4
    tlb: TLBConfig = field(default_factory=TLBConfig)
    cache: CacheConfig = field(default_factory=CacheConfig)
    bus: BusConfig = field(default_factory=pci_express_x8)
    link: LinkConfig = field(default_factory=LinkConfig)
    att: ATTConfig = field(default_factory=ATTConfig)
    hca: HCAConfig = field(default_factory=HCAConfig)
    reg_costs: RegistrationCosts = field(default_factory=RegistrationCosts)
    alloc_costs: AllocatorCostModel = field(default_factory=AllocatorCostModel)
    hugepage_aware_driver: bool = True

    def with_driver(self, hugepage_aware: bool) -> "MachineSpec":
        """A copy with the driver patch toggled (the Xeon experiment)."""
        return replace(self, hugepage_aware_driver=hugepage_aware)


class OSProcess:
    """One process (MPI rank) on a machine."""

    def __init__(self, machine: "Machine", name: str = "proc"):
        self.machine = machine
        self.name = name
        self.counters = CounterSet()
        spec = machine.spec
        self.aspace = AddressSpace(machine.physical, machine.hugetlbfs)
        self.engine = MemoryAccessEngine(
            self.aspace, spec.tlb, spec.cache, machine.clock, self.counters
        )
        self.libc = LibcAllocator(
            self.aspace, cost_model=spec.alloc_costs, counters=self.counters
        )
        #: the active allocator; the hugepage-library facade replaces it
        self.allocator = self.libc

    def malloc(self, size: int) -> int:
        """Allocate through the active allocator."""
        return self.allocator.malloc(size)

    def free(self, vaddr: int) -> None:
        """Free through the active allocator.

        Registration-cache safety comes from the address space's
        ``unmap_hooks``: a free that unmaps (libc's mmap path, heap trim)
        invalidates cached registrations; a free that keeps the mapping
        (the hugepage library's) leaves them valid.
        """
        self.allocator.free(vaddr)

    def fork(self, name: Optional[str] = None) -> "OSProcess":
        """Fork this process: the child gets a Copy-on-Write clone of
        the address space (see :meth:`AddressSpace.fork`) and fresh
        per-core machinery (TLB, cache, counters).

        Allocator metadata is *not* cloned (a simulated child is a new
        program image working over inherited memory); the child must
        allocate its own buffers and may only read-or-CoW-write the
        inherited ranges.
        """
        child = OSProcess.__new__(OSProcess)
        child.machine = self.machine
        child.name = name or f"{self.name}-child"
        child.counters = CounterSet()
        spec = self.machine.spec
        child.aspace = self.aspace.fork()
        child.engine = MemoryAccessEngine(
            child.aspace, spec.tlb, spec.cache, self.machine.clock,
            child.counters
        )
        child.libc = LibcAllocator(
            child.aspace, cost_model=spec.alloc_costs, counters=child.counters
        )
        child.allocator = child.libc
        self.machine._procs.append(child)
        return child

    def destroy(self) -> None:
        """Tear the process down, releasing its memory."""
        self.aspace.destroy()


class Machine:
    """One cluster node (see module docstring)."""

    def __init__(self, kernel: SimKernel, spec: MachineSpec,
                 name: Optional[str] = None,
                 faults: Optional[FaultInjector] = None):
        self.kernel = kernel
        self.spec = spec
        self.name = name if name is not None else spec.name
        self.clock = TickClock(spec.ticks_per_us)
        self.counters = CounterSet()
        self.faults = faults if (faults is not None and faults.active) else None
        self.physical = PhysicalMemory(
            spec.mem_bytes,
            hugepages=spec.hugepages,
            fragmentation=spec.fragmentation,
            seed=spec.seed,
        )
        self.hugetlbfs = HugeTLBfs(self.physical, faults=self.faults)
        self.bus = BusModel(kernel, spec.bus)
        self.att = ATTCache(spec.att, self.counters)
        self.driver = OpenIBDriver(hugepage_aware=spec.hugepage_aware_driver)
        self.reg_engine = RegistrationEngine(
            self.driver, self.att, spec.reg_costs, self.counters,
            faults=self.faults,
        )
        self.link = IBLink(spec.link)
        self.hca = HCA(
            kernel,
            self.clock,
            self.bus,
            self.link,
            self.att,
            self.reg_engine,
            config=spec.hca,
            counters=self.counters,
            name=f"{self.name}-hca",
            faults=self.faults,
        )
        self._procs: List[OSProcess] = []

    def new_process(self, name: Optional[str] = None) -> OSProcess:
        """Spawn an OS process (an MPI rank's worth of state)."""
        proc = OSProcess(self, name or f"{self.name}-p{len(self._procs)}")
        self._procs.append(proc)
        return proc

    @property
    def processes(self) -> List[OSProcess]:
        """Processes spawned on this node."""
        return list(self._procs)


def connect_hcas(hca_a: HCA, hca_b: HCA, kernel: SimKernel) -> Wire:
    """Run one cable between two HCAs (both directions)."""
    wire = Wire(kernel)
    hca_a.attach_wire(hca_b, wire)
    hca_b.attach_wire(hca_a, wire)
    return wire


class Cluster:
    """N machines of one spec, fully wired, on one kernel."""

    def __init__(self, spec: MachineSpec, n_nodes: int = 2,
                 kernel: Optional[SimKernel] = None,
                 fault_plan: Optional[FaultPlan] = None):
        if n_nodes < 1:
            raise ValueError("a cluster needs at least one node")
        self.kernel = kernel if kernel is not None else SimKernel()
        self.spec = spec
        # one injector for the whole cluster: all fault decisions come
        # from a single seeded stream, and a zero plan attaches nothing
        self.faults: Optional[FaultInjector] = None
        if fault_plan is not None and fault_plan.active:
            self.faults = FaultInjector(fault_plan)
        self.nodes: List[Machine] = [
            Machine(self.kernel, spec, name=f"{spec.name}-n{i}",
                    faults=self.faults)
            for i in range(n_nodes)
        ]
        self.wires: Dict[tuple, Wire] = {}
        for i in range(n_nodes):
            for j in range(i + 1, n_nodes):
                self.wires[(i, j)] = connect_hcas(
                    self.nodes[i].hca, self.nodes[j].hca, self.kernel
                )
        # weak registration so the hang watchdog can find live clusters
        # for its post-mortem snapshot (function-local import: checkpoint
        # builds clusters during restore)
        from repro.checkpoint import note_cluster

        note_cluster(self)
        # re-key the installed tracer (if any) to this cluster's clock
        # and counters; a no-op when tracing is disabled
        from repro import trace

        trace.attach_cluster(self)

    @property
    def clock(self) -> TickClock:
        """The (shared) tick clock."""
        return self.nodes[0].clock

    def aggregate_counters(self) -> Dict[str, int]:
        """Sum of machine + process + fault counters across the cluster,
        keyed in sorted order (reports diff cleanly across runs)."""
        total: Dict[str, int] = {}
        for node in self.nodes:
            for name, value in node.counters.snapshot().items():
                total[name] = total.get(name, 0) + value
            for proc in node.processes:
                for name, value in proc.counters.snapshot().items():
                    total[name] = total.get(name, 0) + value
        if self.faults is not None:
            for name, value in self.faults.counters.snapshot().items():
                total[name] = total.get(name, 0) + value
        return dict(sorted(total.items()))
