"""Machine models and presets for the paper's three test systems."""

from repro.systems.machine import Cluster, Machine, MachineSpec, OSProcess, connect_hcas
from repro.systems import presets

__all__ = [
    "Cluster",
    "Machine",
    "MachineSpec",
    "OSProcess",
    "connect_hcas",
    "presets",
]
