"""Deterministic fault injection: the failure modes a real deployment hits.

The paper's value proposition is *transparent degradation*: the preload
library and driver patch keep working when resources run out.  Production
InfiniBand stacks spend most of their engineering budget on the error
paths this module exercises — lossy links recovered by RC
retransmission, registration failures, and hugepage pools eaten by
other processes mid-run.

A :class:`FaultPlan` describes *what* to inject; a :class:`FaultInjector`
holds the plan plus an explicit ``random.Random(seed)`` and decides, per
event, whether a fault fires.  Every decision is drawn from that one
seeded stream in deterministic simulation order, so two runs with the
same plan are bit-identical — fault injection composes with the
repository's determinism guarantee instead of breaking it.

Zero-cost when off: components hold ``faults = None`` unless an *active*
injector (a plan with at least one nonzero knob) is attached, so the
fault machinery never touches the hot path of a fault-free simulation —
results with an empty plan are bit-identical to results without one.

Injection sites (each component guards with ``if self.faults is not
None``):

====================================  ===================================
site                                  plan knobs
====================================  ===================================
:class:`repro.ib.hca.HCA` wire        ``link_loss`` / ``link_corrupt``
  deliveries (per MTU packet)
:class:`repro.ib.registration.        ``reg_transient`` / ``reg_permanent``
  RegistrationEngine.register`
:class:`repro.mem.hugetlbfs.          ``hugepage_deplete_after``
  HugeTLBfs.acquire`
====================================  ===================================

Recovery (retransmission, backoff, regcache retries, allocator fallback)
is implemented in the owning layers; this module only decides *when*
something breaks and counts it under the ``faults.*`` namespace.
"""

from __future__ import annotations

import json
import random
from dataclasses import dataclass, fields, replace
from typing import Mapping, Optional

from repro.analysis.counters import CounterSet


class FaultError(Exception):
    """Base class for injected-fault error surfaces."""


class RegistrationFaultError(FaultError):
    """A memory registration failed (injected)."""


class TransientRegistrationError(RegistrationFaultError):
    """A registration failure that a retry may recover from (the driver
    analogue of a momentary pin/DMA-mapping shortage)."""


class PermanentRegistrationError(RegistrationFaultError):
    """A registration failure no retry will fix (adapter translation
    table permanently out of entries)."""


class MPITransportError(FaultError, RuntimeError):
    """A message-layer operation aborted on an unrecoverable transport
    error (e.g. a send whose QP exhausted its retry budget).

    Subclasses :class:`RuntimeError` so callers that handled the old
    generic send-failure error keep working.
    """


@dataclass(frozen=True)
class FaultPlan:
    """What to inject.  All knobs default to *off*; a default-constructed
    plan is inert (``active`` is False) and injects nothing.

    Attributes
    ----------
    seed:
        Seed of the injector's private ``random.Random``; the only source
        of randomness in the fault subsystem.
    link_loss:
        Per-MTU-packet probability that a wire message is lost.  A
        message of *n* packets is dropped with ``1 - (1-p)**n`` — one
        lost packet kills the whole transfer attempt, as it does for an
        IB RC message before retransmission.
    link_corrupt:
        Per-MTU-packet probability of payload corruption.  A corrupted
        message still occupies the wire but fails the receiver's ICRC
        check and is discarded there (recovered, like loss, by the
        sender's ack-timeout retransmission).
    reg_transient:
        Per-call probability that memory registration fails with
        :class:`TransientRegistrationError` (retryable).
    reg_permanent:
        Per-call probability of :class:`PermanentRegistrationError`
        (not retryable).
    hugepage_deplete_after:
        After this many successful :meth:`~repro.mem.hugetlbfs.
        HugeTLBfs.acquire` calls (cluster-wide), the hugepage pool is
        treated as seized by other processes: every later request raises
        :class:`~repro.mem.hugetlbfs.HugePagePoolExhausted`, and the
        hugepage library degrades to base-page placement.
    retry_cnt:
        IB QP transport retry budget applied to QPs created while the
        plan is active (IB spec: a 3-bit counter, 0-7).
    rnr_retry:
        IB receiver-not-ready retry budget; **7 means retry forever**,
        exactly as the IB spec defines it.
    ack_timeout_ns:
        Floor for the ack-timeout before a retransmission (the IB
        Local Ack Timeout, spec-encoded as ``4.096 us * 2**exp``).  None
        keeps each QP's default; the HCA additionally scales the timeout
        with the in-flight message's streaming time.
    """

    seed: int = 0
    link_loss: float = 0.0
    link_corrupt: float = 0.0
    reg_transient: float = 0.0
    reg_permanent: float = 0.0
    hugepage_deplete_after: Optional[int] = None
    retry_cnt: int = 7
    rnr_retry: int = 7
    ack_timeout_ns: Optional[float] = None

    def __post_init__(self):
        for knob in ("link_loss", "link_corrupt", "reg_transient",
                     "reg_permanent"):
            p = getattr(self, knob)
            if not 0.0 <= p <= 1.0:
                raise ValueError(f"{knob} must be a probability, got {p}")
        if self.hugepage_deplete_after is not None and \
                self.hugepage_deplete_after < 0:
            raise ValueError("hugepage_deplete_after must be >= 0")
        if not 0 <= self.retry_cnt:
            raise ValueError("retry_cnt must be >= 0")
        if not 0 <= self.rnr_retry <= 7:
            raise ValueError("rnr_retry must be in 0..7 (7 = infinite)")

    @property
    def active(self) -> bool:
        """True if any fault mode is configured (an inert plan costs
        nothing: components treat it exactly like no plan at all)."""
        return (
            self.link_loss > 0.0
            or self.link_corrupt > 0.0
            or self.reg_transient > 0.0
            or self.reg_permanent > 0.0
            or self.hugepage_deplete_after is not None
        )

    @classmethod
    def from_spec(cls, spec: str, seed: int = 0) -> "FaultPlan":
        """Parse a CLI plan spec: comma-separated ``key=value`` pairs.

        >>> FaultPlan.from_spec("link_loss=0.01,retry_cnt=5", seed=7).link_loss
        0.01
        """
        kwargs = {"seed": seed}
        valid = {f.name: f for f in fields(cls)}
        for part in filter(None, (p.strip() for p in spec.split(","))):
            if "=" not in part:
                raise ValueError(f"malformed fault spec item {part!r} "
                                 "(expected key=value)")
            key, _, value = part.partition("=")
            key = key.strip()
            if key not in valid:
                raise ValueError(
                    f"unknown fault knob {key!r}; valid: "
                    f"{', '.join(sorted(valid))}"
                )
            if key in ("retry_cnt", "rnr_retry", "seed",
                       "hugepage_deplete_after"):
                kwargs[key] = int(value)
            else:
                kwargs[key] = float(value)
        return cls(**kwargs)

    #: knobs parsed as integers (everything else is a float probability)
    _INT_KNOBS = ("retry_cnt", "rnr_retry", "seed", "hugepage_deplete_after")
    #: knobs for which JSON ``null`` / Python None is a legal value
    _OPTIONAL_KNOBS = ("hugepage_deplete_after", "ack_timeout_ns")

    @classmethod
    def from_mapping(cls, mapping: Mapping, seed: int = 0) -> "FaultPlan":
        """Build a plan from a decoded mapping (e.g. a JSON plan file).

        Same knob names and validation as :meth:`from_spec`; a ``seed``
        key in the mapping overrides the *seed* argument.  Raises
        :class:`ValueError` on unknown knobs or non-numeric values so
        callers share one error surface with the inline-spec parser.
        """
        if not isinstance(mapping, Mapping):
            raise ValueError(
                f"fault plan must be a JSON object of key=value knobs, "
                f"got {type(mapping).__name__}"
            )
        kwargs = {"seed": seed}
        valid = {f.name for f in fields(cls)}
        for key, value in mapping.items():
            if key not in valid:
                raise ValueError(
                    f"unknown fault knob {key!r}; valid: "
                    f"{', '.join(sorted(valid))}"
                )
            if value is None and key in cls._OPTIONAL_KNOBS:
                kwargs[key] = None
                continue
            if isinstance(value, bool) or not isinstance(value, (int, float)):
                raise ValueError(
                    f"fault knob {key!r} needs a number, got {value!r}"
                )
            kwargs[key] = int(value) if key in cls._INT_KNOBS else float(value)
        return cls(**kwargs)

    @classmethod
    def from_file(cls, path: str, seed: int = 0) -> "FaultPlan":
        """Load a plan from a JSON file: an object of knob/value pairs.

        Every failure mode (unreadable file, malformed JSON, bad knobs)
        raises :class:`ValueError` so the CLI's ``--fault-plan`` error
        path handles files and inline specs identically.
        """
        try:
            with open(path) as fh:
                doc = json.load(fh)
        except OSError as exc:
            raise ValueError(f"cannot read fault plan file {path!r}: {exc}")
        except ValueError as exc:
            raise ValueError(f"fault plan file {path!r} is not valid JSON: {exc}")
        return cls.from_mapping(doc, seed=seed)

    def with_seed(self, seed: int) -> "FaultPlan":
        """A copy of this plan under a different seed."""
        return replace(self, seed=seed)


class FaultInjector:
    """The decision engine: one seeded RNG stream, one counter set.

    Share a single injector across a cluster (the
    :class:`~repro.systems.machine.Cluster` constructor does) so all
    fault decisions come from one deterministic stream.
    """

    def __init__(self, plan: FaultPlan,
                 counters: Optional[CounterSet] = None):
        self.plan = plan
        self.rng = random.Random(plan.seed)
        self.counters = counters if counters is not None else CounterSet()
        self._hugepage_acquires = 0

    @property
    def active(self) -> bool:
        """Mirror of :attr:`FaultPlan.active`."""
        return self.plan.active

    # -- link faults --------------------------------------------------------
    def message_dropped(self, n_packets: int) -> bool:
        """Decide whether a wire message of *n_packets* MTU packets is
        lost (any one packet lost kills the message)."""
        p = self.plan.link_loss
        if p <= 0.0:
            return False
        survive = (1.0 - p) ** max(1, n_packets)
        if self.rng.random() < 1.0 - survive:
            self.counters.add("faults.link.dropped")
            return True
        return False

    def message_corrupted(self, n_packets: int) -> bool:
        """Decide whether a (delivered) message arrives corrupted and
        will fail the receiver's ICRC check."""
        p = self.plan.link_corrupt
        if p <= 0.0:
            return False
        clean = (1.0 - p) ** max(1, n_packets)
        if self.rng.random() < 1.0 - clean:
            self.counters.add("faults.link.corrupted")
            return True
        return False

    # -- registration faults ------------------------------------------------
    def registration_outcome(self) -> Optional[str]:
        """``"transient"``, ``"permanent"`` or None for one registration
        attempt."""
        plan = self.plan
        if plan.reg_permanent > 0.0 and self.rng.random() < plan.reg_permanent:
            self.counters.add("faults.reg.permanent")
            return "permanent"
        if plan.reg_transient > 0.0 and self.rng.random() < plan.reg_transient:
            self.counters.add("faults.reg.transient")
            return "transient"
        return None

    # -- hugepage pool faults -----------------------------------------------
    def hugepage_request_denied(self) -> bool:
        """Decide whether a hugetlbfs acquire is denied because the pool
        has been depleted mid-run (models other processes draining
        ``nr_hugepages``; permanent once it happens)."""
        limit = self.plan.hugepage_deplete_after
        if limit is None:
            return False
        if self._hugepage_acquires >= limit:
            self.counters.add("faults.mem.hugepage_denied")
            return True
        self._hugepage_acquires += 1
        return False
