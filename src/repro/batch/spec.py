"""Batch specfile parsing and sha256 job keys.

A specfile is JSON: either a list of job objects or ``{"jobs": [...]}``.
Each job object names a figure driver and its argument config::

    [
      {"command": "fig5", "args": ["--fault-seed", "3"]},
      {"id": "faults-7", "command": "faults",
       "args": ["--fault-plan", "link_loss=0.02", "--fault-seed", "7"],
       "timeout": 120.0}
    ]

``id`` defaults to ``job-NNN-<command>`` and must be unique; ``args``
is the driver's own CLI argument list; ``timeout`` overrides the batch
per-job wall-clock timeout.  The memo key — :func:`job_key` — is the
sha256 of the canonical ``(command, args)`` JSON: because every run is
a pure function of its arguments, byte-identical keys mean
byte-identical stdout, so the key doubles as the result-cache address.
"""

from __future__ import annotations

import hashlib
import json
import os
from dataclasses import dataclass, field
from typing import Any, List, Optional

#: commands that may appear in a specfile: every experiment driver, but
#: not the meta commands (nested batches/servers, resume bookkeeping,
#: the wall-clock perf harness)
_DENIED_COMMANDS = {"batch", "serve", "resume", "perf", "list"}


class SpecError(Exception):
    """Raised for an unreadable or invalid specfile (CLI exit 2)."""


@dataclass(frozen=True)
class JobSpec:
    """One experiment: a figure driver plus its argument config."""

    id: str
    command: str
    args: List[str] = field(default_factory=list)
    timeout: Optional[float] = None

    @property
    def argv(self) -> List[str]:
        return [self.command, *self.args]


def job_key(spec: JobSpec) -> str:
    """The sha256 memo key of *spec*'s experiment config.

    Only ``(command, args)`` enter the hash — the id is a label and the
    timeout is a runner knob; neither changes the simulated result.
    """
    canon = json.dumps({"command": spec.command, "args": list(spec.args)},
                       sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(canon.encode("utf-8")).hexdigest()


def _known_commands() -> set:
    # lazy: repro.cli imports repro.batch inside its command function,
    # so importing it here at call time cannot form a cycle
    from repro.cli import COMMANDS

    return set(COMMANDS)


def _parse_job(obj: Any, index: int) -> JobSpec:
    where = f"job {index}"
    if not isinstance(obj, dict):
        raise SpecError(f"{where}: expected an object, got {type(obj).__name__}")
    unknown = set(obj) - {"id", "command", "args", "timeout"}
    if unknown:
        raise SpecError(f"{where}: unknown key(s) {sorted(unknown)} "
                        "(expected id, command, args, timeout)")
    command = obj.get("command")
    if not isinstance(command, str) or not command:
        raise SpecError(f"{where}: 'command' must be a non-empty string")
    if command in _DENIED_COMMANDS:
        raise SpecError(f"{where}: command {command!r} cannot run inside a "
                        "batch (meta command)")
    if command not in _known_commands():
        raise SpecError(f"{where}: unknown command {command!r}")
    args = obj.get("args", [])
    if not isinstance(args, list) or not all(isinstance(a, str) for a in args):
        raise SpecError(f"{where}: 'args' must be a list of strings")
    timeout = obj.get("timeout")
    if timeout is not None:
        if not isinstance(timeout, (int, float)) or timeout <= 0:
            raise SpecError(f"{where}: 'timeout' must be a positive number")
        timeout = float(timeout)
    job_id = obj.get("id", f"job-{index:03d}-{command}")
    if not isinstance(job_id, str) or not job_id:
        raise SpecError(f"{where}: 'id' must be a non-empty string")
    if os.sep in job_id or job_id in (".", ".."):
        raise SpecError(f"{where}: 'id' {job_id!r} must be a plain name "
                        "(it names the job's work directory)")
    return JobSpec(id=job_id, command=command, args=list(args), timeout=timeout)


def parse_jobs_doc(doc: Any, where: str = "spec",
                   next_index: int = 0) -> List[JobSpec]:
    """Parse an already-decoded spec document (the shared core of
    :func:`load_specfile` and the ``repro serve`` HTTP body parser).

    *doc* is a single job object, a list of them, or ``{"jobs":
    [...]}``; *next_index* seeds the default-id counter so a server
    admitting jobs one request at a time still mints unique default
    ids.  Raises :class:`SpecError` on any problem.
    """
    if isinstance(doc, dict) and "command" in doc:
        doc = [doc]
    elif isinstance(doc, dict):
        if set(doc) != {"jobs"}:
            raise SpecError(f"{where}: top-level object must have "
                            "exactly one key, 'jobs' (or be a single job)")
        doc = doc["jobs"]
    if not isinstance(doc, list):
        raise SpecError(f"{where}: expected a JSON list of job "
                        "objects (or {{'jobs': [...]}})")
    if not doc:
        raise SpecError(f"{where}: no jobs")
    specs = [_parse_job(obj, next_index + i) for i, obj in enumerate(doc)]
    seen = set()
    for spec in specs:
        if spec.id in seen:
            raise SpecError(f"duplicate job id {spec.id!r}")
        seen.add(spec.id)
    return specs


def load_specfile(path: str) -> List[JobSpec]:
    """Parse *path*; raises :class:`SpecError` with a friendly message
    on any problem (the CLI converts that to exit code 2)."""
    try:
        with open(path, encoding="utf-8") as fh:
            doc = json.load(fh)
    except OSError as exc:
        raise SpecError(f"cannot read specfile {path!r}: {exc}")
    except ValueError as exc:
        raise SpecError(f"specfile {path!r} is not valid JSON: {exc}")
    return parse_jobs_doc(doc, where=f"specfile {path!r}")
