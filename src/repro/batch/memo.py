"""The sha256-keyed result memo cache.

Determinism makes memoization *exact*: a job's stdout is a pure
function of its ``(command, args)`` config, so the sha256 of that
config (:func:`repro.batch.spec.job_key`) addresses its result bytes.
Results live under ``<out-dir>/results/<key>.out`` and are published
atomically — a half-written result can never be served, and two
concurrent publishers of the same key (a re-queued duplicate racing a
crash-recovered original) simply replace each other with identical
bytes.

Lookups do not trust the cache blindly: every ``<key>.out`` is
published with a ``<key>.sha256`` sidecar holding the digest of its
bytes, and :meth:`MemoCache.lookup` re-hashes the file on every hit.
A truncated, tampered or sidecar-less result is treated as a miss
(the job simply re-runs and re-publishes) and counted under
``memo.corrupt`` — so a single flipped bit on disk degrades to one
redundant re-run instead of being served forever.
"""

from __future__ import annotations

import hashlib
import os
from typing import Any, Optional


class MemoCache:
    """Filesystem result cache under ``<root>/results``.

    Pass a :class:`repro.analysis.counters.CounterSet` (or anything
    with an ``add(name)`` method) as *counters* to have cache health
    observable: ``memo.hit``, ``memo.miss`` and ``memo.corrupt``.
    """

    def __init__(self, root: str, counters: Optional[Any] = None):
        self.directory = os.path.join(root, "results")
        self.counters = counters
        os.makedirs(self.directory, exist_ok=True)

    def _count(self, name: str) -> None:
        if self.counters is not None:
            self.counters.add(name)

    def result_path(self, key: str) -> str:
        """Where *key*'s result bytes live (whether or not present)."""
        return os.path.join(self.directory, f"{key}.out")

    def digest_path(self, key: str) -> str:
        """Where *key*'s sha256 sidecar lives."""
        return os.path.join(self.directory, f"{key}.sha256")

    def lookup(self, key: str) -> Optional[str]:
        """The *verified* published result path for *key*, or None.

        Verification re-hashes the result bytes against the sidecar; a
        missing sidecar or a digest mismatch is a miss (counted as
        ``memo.corrupt``), never a served result.
        """
        path = self.result_path(key)
        if not os.path.exists(path):
            self._count("memo.miss")
            return None
        try:
            with open(path, "rb") as fh:
                digest = hashlib.sha256(fh.read()).hexdigest()
            with open(self.digest_path(key), encoding="utf-8") as fh:
                recorded = fh.read().strip()
        except OSError:
            self._count("memo.corrupt")
            return None
        if digest != recorded:
            self._count("memo.corrupt")
            return None
        self._count("memo.hit")
        return path

    def publish(self, key: str, stdout_path: str) -> str:
        """Atomically publish the bytes of *stdout_path* under *key*.

        The result file lands before its sidecar: a crash between the
        two writes leaves a sidecar-less result, which :meth:`lookup`
        treats as a miss — the retry republishes identical bytes.
        """
        from repro.util import atomic_write

        with open(stdout_path, "rb") as fh:
            data = fh.read()
        path = self.result_path(key)
        atomic_write(path, data, prefix=".result-")
        atomic_write(self.digest_path(key),
                     hashlib.sha256(data).hexdigest() + "\n",
                     prefix=".result-")
        return path
