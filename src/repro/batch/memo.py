"""The sha256-keyed result memo cache.

Determinism makes memoization *exact*: a job's stdout is a pure
function of its ``(command, args)`` config, so the sha256 of that
config (:func:`repro.batch.spec.job_key`) addresses its result bytes.
Results live under ``<out-dir>/results/<key>.out`` and are published
atomically — a half-written result can never be served, and two
concurrent publishers of the same key (a re-queued duplicate racing a
crash-recovered original) simply replace each other with identical
bytes.
"""

from __future__ import annotations

import os
from typing import Optional

from repro.util import atomic_write


class MemoCache:
    """Filesystem result cache under ``<root>/results``."""

    def __init__(self, root: str):
        self.directory = os.path.join(root, "results")
        os.makedirs(self.directory, exist_ok=True)

    def result_path(self, key: str) -> str:
        """Where *key*'s result bytes live (whether or not present)."""
        return os.path.join(self.directory, f"{key}.out")

    def lookup(self, key: str) -> Optional[str]:
        """The published result path for *key*, or None."""
        path = self.result_path(key)
        return path if os.path.exists(path) else None

    def publish(self, key: str, stdout_path: str) -> str:
        """Atomically publish the bytes of *stdout_path* under *key*."""
        with open(stdout_path, "rb") as fh:
            data = fh.read()
        path = self.result_path(key)
        atomic_write(path, data, prefix=".result-")
        return path
