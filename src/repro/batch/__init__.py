"""Crash-tolerant batch experiment runner (``repro batch``).

The paper's placement results come from sweeping many (figure,
allocator, size, seed) configurations; at that scale the runner itself
must degrade gracefully — a SIGKILLed worker, a wedged event loop or a
Ctrl-C must never cost completed work.  This package is that layer:

:mod:`repro.batch.spec`
    Parses the JSON specfile (a list of experiment specs: figure
    driver + argument config) and derives each job's sha256 memo key.
:mod:`repro.batch.journal`
    The append-only write-ahead job journal (``jobs.jsonl``): every
    state transition (queued → running → done/failed/killed) is an
    fsynced JSON line, a torn final line from a crash is tolerated on
    replay, and ``--resume`` compacts and continues the journal.
:mod:`repro.batch.memo`
    The sha256-keyed result cache: determinism makes (command, args)
    an exact cache key, so a re-run of the same spec is served from
    ``results/<key>.out`` without simulating.
:mod:`repro.batch.worker`
    The per-job worker process: runs one ``repro`` command with
    checkpointing injected, captures stdout/stderr, and hosts the
    seeded chaos actions (self-SIGKILL / stall at a snapshot
    boundary) that exercise the recovery path deterministically.
:mod:`repro.batch.supervisor`
    The supervision loop: a bounded pool of worker processes, per-job
    wall-clock timeouts, bounded retry with exponential backoff,
    crash isolation (a dead worker is respawned and its job resumed
    from its last ``repro.checkpoint`` snapshot), graceful SIGINT
    shutdown that flushes the journal, and the batch degradation
    report.

See ``docs/batch_runner.md`` for the spec format, journal schema and
crash-recovery guarantees.  The same substrate — journal, memo cache,
worker, chaos, failure classification — backs the long-lived
``repro serve`` experiment service (:mod:`repro.serve`,
``docs/serving.md``).
"""

from repro.batch.chaos import ChaosPlan, parse_chaos
from repro.batch.journal import (CompactingJournal, Journal, JournalError,
                                 fold_jobs, read_journal)
from repro.batch.memo import MemoCache
from repro.batch.spec import (JobSpec, SpecError, job_key, load_specfile,
                              parse_jobs_doc)
from repro.batch.supervisor import BatchError, BatchSupervisor, classify_exit

__all__ = [
    "BatchError",
    "BatchSupervisor",
    "ChaosPlan",
    "CompactingJournal",
    "Journal",
    "JournalError",
    "JobSpec",
    "MemoCache",
    "SpecError",
    "classify_exit",
    "fold_jobs",
    "job_key",
    "load_specfile",
    "parse_chaos",
    "parse_jobs_doc",
]
