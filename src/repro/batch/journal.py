"""The append-only batch job journal (``jobs.jsonl``).

Every job state transition is one JSON line, appended and fsynced
before the transition's side effects happen — a write-ahead log.  The
journal is the batch's single source of truth for recovery:

* A crash of the *supervisor* can tear at most the final line (the
  append is a single small write, but the fsync may not have landed);
  :func:`read_journal` tolerates exactly that — a truncated last line
  is dropped — while corruption anywhere else raises
  :class:`JournalError`.
* ``repro batch --resume`` folds the journal (:func:`fold_jobs`):
  jobs recorded ``done`` whose result files still exist are served
  from the memo cache without re-running; jobs caught ``running`` by
  the crash and jobs that had ``failed`` are re-queued with a fresh
  retry budget.
* On resume the journal is *compacted*: the surviving ``done`` records
  are rewritten through :func:`repro.util.atomic_write` and the file
  then continues to append — so journals stay O(jobs), not O(crashes).

A *batch* compacts once, at resume time, because a batch has a finite
job list.  A long-lived consumer — the ``repro serve`` experiment
service, whose journal must survive weeks of traffic — instead uses
:class:`CompactingJournal`, which folds itself in place every N appends
(fold → :func:`compact` → continue appending), so a killed server
replays O(live jobs), not O(everything it ever ran).

Records carry no wall-clock timestamps: attempt ordinals order a job's
own history, and keeping host time out of the journal keeps
``repro.batch`` clean under the determinism lint's ``wallclock`` rule.
(``repro serve`` records *do* carry wall-clock request deadlines — the
service is the documented escape hatch; see ``docs/serving.md``.)
"""

from __future__ import annotations

import json
import os
from typing import Any, Callable, Dict, List, Optional, Tuple

from repro.util import atomic_write

#: journal schema tag, recorded in the batch-start line
SCHEMA = "repro-batch-journal/1"


class JournalError(Exception):
    """Raised for a corrupt (non-tail) journal record."""


class Journal:
    """Append-side handle: one fsynced JSON line per event."""

    def __init__(self, path: str):
        self.path = path
        directory = os.path.dirname(os.path.abspath(path))
        os.makedirs(directory, exist_ok=True)
        self._fh = open(path, "a", encoding="utf-8")

    def append(self, record: Dict[str, Any]) -> None:
        """Durably append *record* (flush + fsync before returning)."""
        self._fh.write(json.dumps(record, sort_keys=True,
                                  separators=(",", ":")) + "\n")
        self._fh.flush()
        os.fsync(self._fh.fileno())

    def close(self) -> None:
        if not self._fh.closed:
            self._fh.flush()
            os.fsync(self._fh.fileno())
            self._fh.close()

    def __enter__(self) -> "Journal":
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()


def read_journal(path: str) -> Tuple[List[Dict[str, Any]], bool]:
    """Replay *path*; returns ``(records, torn_tail)``.

    A final line without a newline or that fails to parse is treated as
    a torn append (crash mid-write) and dropped — ``torn_tail`` is True
    then.  A malformed line anywhere *else* means real corruption and
    raises :class:`JournalError`.
    """
    try:
        with open(path, encoding="utf-8") as fh:
            raw = fh.read()
    except OSError as exc:
        raise JournalError(f"cannot read journal {path!r}: {exc}")
    records: List[Dict[str, Any]] = []
    lines = raw.split("\n")
    # a complete journal ends with "\n", so the final split element is
    # ""; anything else there is a torn tail
    torn = lines[-1] != ""
    body, tail = lines[:-1], lines[-1]
    for i, line in enumerate(body):
        try:
            rec = json.loads(line)
            if not isinstance(rec, dict):
                raise ValueError("record is not an object")
        except ValueError as exc:
            raise JournalError(
                f"journal {path!r} line {i + 1} is corrupt "
                f"(not a torn tail): {exc}")
        records.append(rec)
    if torn and tail:
        try:
            rec = json.loads(tail)
            if isinstance(rec, dict):
                # fully parseable: the write completed, only the
                # trailing newline is missing
                records.append(rec)
                torn = False
        except ValueError:
            pass
    return records, torn


def fold_jobs(records: List[Dict[str, Any]]) -> Dict[str, Dict[str, Any]]:
    """Fold journal *records* into per-job end states.

    Returns ``{job_id: {"key", "command", "status", "attempts",
    "result", "cached"}}`` where ``status`` is one of ``queued``,
    ``running`` (caught mid-flight by a crash), ``done`` or ``failed``.
    """
    jobs: Dict[str, Dict[str, Any]] = {}

    def slot(job_id: str) -> Dict[str, Any]:
        return jobs.setdefault(job_id, {
            "key": None, "command": None, "status": "queued",
            "attempts": 0, "result": None, "cached": False,
        })

    for rec in records:
        ev = rec.get("ev")
        job_id = rec.get("job")
        if not isinstance(job_id, str):
            continue
        state = slot(job_id)
        if ev == "queued":
            state["key"] = rec.get("key")
            state["command"] = rec.get("command")
        elif ev == "running":
            state["status"] = "running"
            state["attempts"] = max(state["attempts"],
                                    int(rec.get("attempt", 0)) + 1)
        elif ev in ("failed", "killed"):
            state["status"] = "failed"
        elif ev == "done":
            state["status"] = "done"
            state["result"] = rec.get("result")
            state["cached"] = bool(rec.get("cached", False))
            if rec.get("key"):
                state["key"] = rec["key"]
    return jobs


def recover(path: str) -> Tuple[Dict[str, Dict[str, Any]], bool]:
    """Convenience: replay + fold *path* for ``--resume``.

    Returns ``(job_states, torn_tail)``; a missing journal returns an
    empty fold.
    """
    if not os.path.exists(path):
        return {}, False
    records, torn = read_journal(path)
    return fold_jobs(records), torn


def compact(path: str, keep: List[Dict[str, Any]],
            header: Optional[Dict[str, Any]] = None) -> None:
    """Atomically rewrite *path* to *header* + *keep* records.

    Used by ``--resume``: completed jobs' ``done`` records survive,
    everything else is re-derived by the new run's appends.
    """
    lines = []
    if header is not None:
        lines.append(json.dumps(header, sort_keys=True, separators=(",", ":")))
    for rec in keep:
        lines.append(json.dumps(rec, sort_keys=True, separators=(",", ":")))
    atomic_write(path, "".join(line + "\n" for line in lines),
                 prefix=".journal-")


class CompactingJournal(Journal):
    """A :class:`Journal` for long-lived processes: folds itself in
    place every *every* appends.

    The owner provides *fold_keep*: a function from the full replayed
    record list to the minimal record list that reconstructs the same
    state (live jobs' submissions, terminal outcomes — whatever the
    owner's fold function needs).  Compaction is crash-safe end to end:
    the rewrite goes through :func:`compact` (atomic replace), so a
    kill at any instant leaves either the old journal or the compacted
    one, never a mix — and both replay to the same state by
    construction.

    The durability contract is unchanged from :class:`Journal`: every
    :meth:`append` is flushed and fsynced before it returns, so the
    record's state transition is on disk before its side effects run.
    """

    def __init__(self, path: str,
                 fold_keep: Callable[[List[Dict[str, Any]]],
                                     List[Dict[str, Any]]],
                 header: Optional[Callable[[], Dict[str, Any]]] = None,
                 every: int = 256):
        if every < 1:
            raise ValueError("compaction interval must be >= 1")
        super().__init__(path)
        self._fold_keep = fold_keep
        self._header = header
        self._every = every
        self._since_compact = 0

    def append(self, record: Dict[str, Any]) -> None:
        super().append(record)
        self._since_compact += 1
        if self._since_compact >= self._every:
            self.compact_now()

    def compact_now(self) -> int:
        """Fold and rewrite the journal in place; returns the number of
        records kept.  The append handle survives (it is reopened on
        the compacted file)."""
        if not self._fh.closed:
            self._fh.flush()
            os.fsync(self._fh.fileno())
            self._fh.close()
        records, _torn = read_journal(self.path)
        keep = self._fold_keep(records)
        compact(self.path, keep,
                header=self._header() if self._header is not None else None)
        self._fh = open(self.path, "a", encoding="utf-8")
        self._since_compact = 0
        return len(keep)
