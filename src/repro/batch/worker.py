"""The per-job worker process.

Each attempt of each job runs in its own freshly spawned process — the
crash-isolation boundary.  The worker:

* chdirs into the job's work directory (relative outputs like the
  ``trace`` command's default ``trace.json`` land there),
* redirects stdout/stderr to ``stdout.txt`` / ``stderr.txt`` (stdout
  is the job's *result* — published to the memo cache on success),
* injects ``--checkpoint-every/--checkpoint-dir`` into checkpointable
  drivers so every unit boundary leaves a resumable snapshot, and on a
  retry after a crash runs ``repro resume <snapshot>`` instead of the
  original command — finishing the job from its last snapshot with
  byte-identical stdout,
* hosts the chaos actions: via the :func:`repro.checkpoint.
  set_snapshot_hook` hook a sabotaged attempt SIGKILLs itself (or
  stalls) immediately *after* its first snapshot is durably on disk,
  which is precisely the window crash recovery must cover.

The worker exits with the wrapped command's exit code; the supervisor
reads it (or the signal that killed the process) off ``Process.
exitcode``.

This module is process management, not simulation — the
``wallclock-sleep`` determinism-lint suppressions below are the
documented escape hatch for exactly this code.
"""

from __future__ import annotations

import os
import signal
import sys
import time
import traceback
from typing import List, Optional

from repro.batch.chaos import KILL, STALL

#: drivers that accept --checkpoint-every/--checkpoint-dir
CHECKPOINTABLE = {"fig5", "fig6", "tlb", "faults", "trace"}
#: drivers that accept --trace-out (the trace command has its own)
TRACEABLE = {"fig5", "fig6", "tlb", "faults"}

#: file names inside a job's work directory
STDOUT_NAME = "stdout.txt"
STDERR_NAME = "stderr.txt"
CKPT_DIRNAME = "ckpt"
TRACE_NAME = "trace.json"


def snapshot_path(jobdir: str) -> str:
    """The job's resume point (written by ``--checkpoint-every 0``)."""
    return os.path.join(jobdir, CKPT_DIRNAME, "latest.snap")


def build_attempt_argv(command: str, args: List[str], jobdir: str,
                       use_resume: bool, checkpoint_every: int = 0,
                       trace: bool = False) -> List[str]:
    """The ``repro`` argv for one attempt of a job.

    A retry of a crashed checkpointable job resumes from its snapshot
    (*use_resume*); a fresh attempt runs the spec's own command with
    checkpoint (and optionally trace) flags injected.  The injected
    flags only add stderr chatter and side files — stdout stays
    byte-identical to the plain command, so memo keys ignore them.
    """
    if use_resume:
        return ["resume", snapshot_path(jobdir)]
    argv = [command, *args]
    if command in CHECKPOINTABLE and "--checkpoint-dir" not in args:
        argv += ["--checkpoint-every", str(checkpoint_every),
                 "--checkpoint-dir", os.path.join(jobdir, CKPT_DIRNAME)]
    if trace and command in TRACEABLE and "--trace-out" not in args:
        argv += ["--trace-out", os.path.join(jobdir, TRACE_NAME)]
    return argv


def _fire(action: str) -> None:
    """Execute a chaos action (never returns)."""
    if action == KILL:
        os.kill(os.getpid(), signal.SIGKILL)  # detlint: ignore[wallclock-sleep]
    while action == STALL:  # wedge until the supervisor's timeout kills us
        time.sleep(0.05)  # detlint: ignore[wallclock-sleep]


def _install_chaos(action: str, command: str) -> None:
    """Arrange for *action* to fire mid-job.

    Checkpointable drivers fire right after their first snapshot write
    (so recovery from that snapshot is what gets exercised); drivers
    without checkpoint support fire before the command runs and their
    retry simply re-runs from scratch.
    """
    from repro import checkpoint

    if command not in CHECKPOINTABLE:
        _fire(action)
        return

    def hook(path: str) -> None:
        checkpoint.set_snapshot_hook(None)
        _fire(action)

    checkpoint.set_snapshot_hook(hook)


def worker_entry(jobdir: str, argv: List[str],
                 chaos_action: Optional[str] = None,
                 command: str = "") -> None:
    """Process entry point: run one attempt, exit with its code."""
    signal.signal(signal.SIGINT, signal.SIG_IGN)  # the supervisor owns ^C
    os.chdir(jobdir)
    out = open(STDOUT_NAME, "w", encoding="utf-8")
    err = open(STDERR_NAME, "w", encoding="utf-8")
    sys.stdout = out
    sys.stderr = err
    code = 0
    try:
        if chaos_action is not None:
            _install_chaos(chaos_action, command)
        from repro.cli import main as cli_main

        code = int(cli_main(argv) or 0)
    except SystemExit as exc:
        if isinstance(exc.code, int):
            code = exc.code
        else:
            code = 0 if exc.code is None else 1
    except BaseException:
        traceback.print_exc(file=err)
        code = 1
    finally:
        for fh in (out, err):
            try:
                fh.flush()
                os.fsync(fh.fileno())
            except (OSError, ValueError):
                pass
    # skip interpreter teardown: inherited state (pytest plugins, the
    # parent's atexit hooks) must not run in the worker
    os._exit(code)
