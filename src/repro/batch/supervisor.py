"""Worker supervision: pool, timeouts, retry/backoff, crash recovery.

The supervision model is one process per attempt: every attempt of
every job runs in a freshly spawned worker
(:func:`repro.batch.worker.worker_entry`), so a SIGKILL, a segfault or
an OOM kill takes down exactly one attempt and nothing shared.  The
supervisor's loop is intentionally boring — reap finished workers,
SIGKILL overdue ones, launch eligible jobs, sleep a poll tick — with
all durable state in the write-ahead journal, so the supervisor itself
crashing loses at most one torn journal line (``--resume`` replays the
rest).

Robustness semantics:

* **Timeouts** — a per-job wall-clock budget (``--timeout``, or the
  spec's own ``timeout``).  Checkpointable drivers additionally run
  under the existing :class:`repro.checkpoint.HangWatchdog` with the
  same budget, so a wedged event *loop* self-reports with a forensic
  post-mortem in the job directory; the supervisor's SIGKILL is the
  backstop for stalls outside the loop.
* **Retry with exponential backoff** — a crashed/timed-out/transiently
  failed attempt is re-queued after ``backoff * 2**(attempt-1)``
  seconds, up to ``--retries`` retries; after that the job is failed
  and the batch exits 1 (completed jobs keep their results).  Failures
  are *classified* first (:func:`classify_exit`): a deterministic
  exit 2 — bad spec, failed preflight — can never succeed on a retry,
  so it fails fast after exactly one attempt.
* **Crash recovery** — if a dead worker left a checkpoint snapshot,
  the retry runs ``repro resume <snapshot>`` and finishes from the
  last unit boundary instead of restarting; determinism makes the
  recovered stdout byte-identical to an uninterrupted run.  A *clean*
  failure of a resume attempt (exit > 0: e.g. a corrupt snapshot)
  discards the snapshot and retries from scratch.
* **Memoization** — before launching, the sha256 result cache is
  consulted; duplicate configs wait for the in-flight twin instead of
  racing it.
* **Graceful SIGINT/SIGTERM** — stop launching, SIGTERM (then SIGKILL)
  the workers, journal the interruption, flush, exit 130 (SIGINT) or
  143 (SIGTERM — what CI and container runtimes send); ``repro batch
  --resume`` continues without re-running completed jobs.

This module is process management, not simulation — its
``wallclock-sleep`` lint suppressions are the documented escape hatch.
"""

from __future__ import annotations

import json
import multiprocessing
import os
import shutil
import signal
import sys
import time
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from repro.batch import journal as journal_mod
from repro.batch import worker
from repro.batch.chaos import ChaosPlan
from repro.batch.journal import Journal
from repro.batch.memo import MemoCache
from repro.batch.spec import JobSpec, job_key
from repro.util import atomic_write

#: scheduler poll tick (wall seconds)
POLL_S = 0.02

#: exit codes that classify as *permanent*: retrying cannot change the
#: outcome.  Exit 2 is the repo-wide "bad spec / failed preflight"
#: contract — deterministic by definition.
PERMANENT_EXITS = frozenset({2})


class BatchError(Exception):
    """Raised for batch-level preflight problems (CLI exit 2)."""


def classify_exit(code: Optional[int], timed_out: bool) -> Tuple[str, str]:
    """Classify one finished attempt as ``(kind, reason)``.

    *kind* drives the retry decision — the failure taxonomy shared by
    the batch runner and the ``repro serve`` experiment service:

    ``done``
        Exit 0; publish the result.
    ``timeout``
        Killed by the supervisor's wall-clock budget; retry (from a
        snapshot when one exists).
    ``crash``
        Killed by any other signal (SIGKILL, segfault, OOM); retry
        (from a snapshot when one exists).
    ``permanent``
        A deterministic failure (exit 2: bad spec / failed preflight);
        re-running the identical config must fail identically, so fail
        fast — no retry, the budget is not consumed.
    ``transient``
        Any other nonzero exit; retry from scratch (a clean failure
        while *resuming* additionally discards the suspect snapshot).
    """
    if code == 0:
        return "done", "exit 0"
    if code is not None and code < 0:
        if timed_out:
            return "timeout", "timeout"
        return "crash", f"killed by signal {-code}"
    if code in PERMANENT_EXITS:
        return "permanent", f"exit {code} (permanent)"
    return "transient", f"exit {code}"


@dataclass
class _Job:
    """Supervisor-side state of one job."""

    spec: JobSpec
    key: str
    jobdir: str
    status: str = "queued"  # queued | running | done | failed
    attempts: int = 0
    crashes: int = 0
    timeouts: int = 0
    failures: int = 0
    cached: bool = False
    outcome: str = ""
    eligible_at: float = 0.0
    resume_next: bool = False
    used_resume: bool = False
    timed_out: bool = False
    chaos_action: Optional[str] = None
    started_at: float = 0.0
    deadline: Optional[float] = None
    proc: Optional[Any] = field(default=None, repr=False)

    @property
    def terminal(self) -> bool:
        return self.status in ("done", "failed")


class BatchSupervisor:
    """Runs a batch of :class:`JobSpec` jobs to completion."""

    def __init__(
        self,
        specs: List[JobSpec],
        out_dir: str,
        workers: int = 2,
        timeout: Optional[float] = None,
        retries: int = 2,
        backoff: float = 0.25,
        chaos: Optional[ChaosPlan] = None,
        resume: bool = False,
        trace_out: Optional[str] = None,
        stream=None,
    ):
        if workers < 1:
            raise BatchError("worker pool size must be >= 1")
        if retries < 0:
            raise BatchError("retry budget must be >= 0")
        if chaos is not None and chaos.stall_p > 0 and timeout is None \
                and not all(s.timeout for s in specs):
            raise BatchError("--chaos stall needs a per-job --timeout "
                             "(a stalled worker is only recovered by the "
                             "timeout kill)")
        # absolute: workers chdir into their job directories, so every
        # injected path must survive a cwd change
        self.out_dir = os.path.abspath(out_dir)
        self.workers = workers
        self.timeout = timeout
        self.retries = retries
        self.backoff = backoff
        self.chaos = chaos
        self.resume = resume
        self.trace_out = trace_out
        self.stream = stream if stream is not None else sys.stderr
        self.journal_path = os.path.join(self.out_dir, "jobs.jsonl")
        from repro.analysis.counters import CounterSet

        self.counters = CounterSet()
        self.memo = MemoCache(self.out_dir, counters=self.counters)
        self.jobs: List[_Job] = [
            _Job(spec=spec, key=job_key(spec),
                 jobdir=os.path.join(self.out_dir, "jobs", spec.id))
            for spec in specs
        ]
        self.interrupted = False
        self._signal = signal.SIGINT
        self._journal: Optional[Journal] = None

    # -- logging ------------------------------------------------------------

    def _log(self, message: str) -> None:
        print(f"batch: {message}", file=self.stream)

    # -- resume -------------------------------------------------------------

    def _recover_journal(self) -> None:
        """Fold the existing journal, pre-complete still-valid done
        jobs, and compact the journal before the new run appends."""
        try:
            states, torn = journal_mod.recover(self.journal_path)
        except journal_mod.JournalError as exc:
            raise BatchError(f"--resume: {exc}")
        if torn:
            self._log("journal had a torn final record (crash mid-append); "
                      "dropped it")
        keep: List[Dict[str, Any]] = []
        for job in self.jobs:
            state = states.get(job.spec.id)
            if state is None:
                continue
            if state["key"] is not None and state["key"] != job.key:
                self._log(f"job {job.spec.id!r}: spec changed since the "
                          "journal was written; re-running")
                continue
            if state["status"] == "done" and state["result"] \
                    and self.memo.lookup(job.key) is not None:
                job.status = "done"
                job.cached = True
                job.outcome = "done (cached)"
                keep.append({"ev": "done", "job": job.spec.id,
                             "key": job.key, "attempt": 0, "cached": True,
                             "result": state["result"]})
            elif state["status"] == "running":
                self._log(f"job {job.spec.id!r} was running at the crash; "
                          "re-queued")
        journal_mod.compact(
            self.journal_path, keep,
            header={"ev": "batch-start", "schema": journal_mod.SCHEMA,
                    "resumed": True, "n_jobs": len(self.jobs)})

    # -- worker lifecycle ---------------------------------------------------

    def _spawn(self, job: _Job) -> None:
        os.makedirs(job.jobdir, exist_ok=True)
        use_resume = job.resume_next and os.path.exists(
            worker.snapshot_path(job.jobdir))
        spec = job.spec
        args = list(spec.args)
        timeout = spec.timeout if spec.timeout is not None else self.timeout
        if timeout is not None and spec.command in worker.CHECKPOINTABLE \
                and "--hang-timeout" not in args:
            # the existing watchdog backs the supervisor's kill: a
            # wedged event loop self-reports with a post-mortem first
            args += ["--hang-timeout", str(timeout)]
        argv = worker.build_attempt_argv(
            spec.command, args, job.jobdir, use_resume,
            trace=self.trace_out is not None)
        job.chaos_action = (self.chaos.decide(job.key, job.attempts)
                           if self.chaos is not None else None)
        assert self._journal is not None
        self._journal.append({"ev": "running", "job": spec.id,
                              "attempt": job.attempts,
                              "resume": use_resume,
                              "chaos": job.chaos_action})
        proc = multiprocessing.Process(
            target=worker.worker_entry,
            args=(job.jobdir, argv, job.chaos_action, spec.command),
            daemon=True, name=f"repro-batch-{spec.id}")
        proc.start()
        job.proc = proc
        job.status = "running"
        job.used_resume = use_resume
        job.timed_out = False
        job.started_at = time.monotonic()
        job.deadline = (job.started_at + timeout) if timeout else None
        job.attempts += 1
        how = "resumed from snapshot" if use_resume else "started"
        self._log(f"job {spec.id} attempt {job.attempts} {how} "
                  f"(pid {proc.pid})")

    def _kill(self, job: _Job, reason: str) -> None:
        proc = job.proc
        if proc is not None and proc.is_alive():
            proc.kill()  # detlint: ignore[wallclock-sleep]
            proc.join(timeout=5.0)
        if reason == "timeout":
            job.timed_out = True

    def _publish(self, job: _Job) -> None:
        stdout = os.path.join(job.jobdir, worker.STDOUT_NAME)
        result = self.memo.publish(job.key, stdout)
        job.status = "done"
        job.outcome = "done"
        assert self._journal is not None
        self._journal.append({"ev": "done", "job": job.spec.id,
                              "key": job.key, "attempt": job.attempts - 1,
                              "cached": False, "result": result})
        self._log(f"job {job.spec.id} done "
                  f"(attempt {job.attempts}, result {result})")

    def _handle_exit(self, job: _Job) -> None:
        """One attempt ended; record it and decide done/retry/fail."""
        proc = job.proc
        assert proc is not None
        proc.join()
        code = proc.exitcode
        job.proc = None
        assert self._journal is not None
        kind, reason = classify_exit(code, job.timed_out)
        if kind == "done":
            self._publish(job)
            return
        attempt = job.attempts - 1
        if kind in ("crash", "timeout"):
            if kind == "timeout":
                job.timeouts += 1
            else:
                job.crashes += 1
            self._journal.append({"ev": "killed", "job": job.spec.id,
                                  "attempt": attempt, "reason": reason})
        else:
            job.failures += 1
            self._journal.append({"ev": "failed", "job": job.spec.id,
                                  "attempt": attempt, "exit": code,
                                  "permanent": kind == "permanent"})
            if job.used_resume:
                # the snapshot itself is suspect (clean failure while
                # resuming); discard it and retry from scratch
                shutil.rmtree(os.path.join(job.jobdir, worker.CKPT_DIRNAME),
                              ignore_errors=True)
        if kind == "permanent":
            # a deterministic failure re-fails identically on every
            # retry; spending the backoff budget on it only delays the
            # batch's verdict
            job.status = "failed"
            job.outcome = f"failed ({reason})"
            self._log(f"job {job.spec.id} failed permanently ({reason}); "
                      "not retrying a deterministic failure")
            return
        snap_exists = os.path.exists(worker.snapshot_path(job.jobdir))
        if attempt < self.retries:
            delay = self.backoff * (2 ** attempt)
            job.eligible_at = time.monotonic() + delay
            job.resume_next = snap_exists
            job.status = "queued"
            self._journal.append({"ev": "retry", "job": job.spec.id,
                                  "attempt": attempt + 1,
                                  "backoff_s": round(delay, 6),
                                  "resume": snap_exists})
            self._log(f"job {job.spec.id} attempt {attempt + 1} failed "
                      f"({reason}); retrying in {delay:.2f}s"
                      + (" from snapshot" if snap_exists else ""))
        else:
            job.status = "failed"
            job.outcome = f"failed ({reason})"
            self._log(f"job {job.spec.id} failed permanently after "
                      f"{job.attempts} attempt(s): {reason}")

    # -- scheduling ---------------------------------------------------------

    def _running(self) -> List[_Job]:
        return [j for j in self.jobs if j.status == "running"]

    def _reap_and_enforce(self) -> None:
        now = time.monotonic()
        for job in self._running():
            proc = job.proc
            assert proc is not None
            if proc.exitcode is None and job.deadline is not None \
                    and now >= job.deadline:
                self._log(f"job {job.spec.id} exceeded its "
                          "wall-clock budget; killing worker")
                self._kill(job, "timeout")
            if proc.exitcode is not None:
                self._handle_exit(job)

    def _launch_eligible(self) -> None:
        free = self.workers - len(self._running())
        now = time.monotonic()
        running_keys = {j.key for j in self._running()}
        for job in self.jobs:
            if free <= 0:
                break
            if job.status != "queued" or now < job.eligible_at:
                continue
            cached = self.memo.lookup(job.key)
            if cached is not None:
                job.status = "done"
                job.cached = True
                job.outcome = "done (cached)"
                assert self._journal is not None
                self._journal.append({"ev": "done", "job": job.spec.id,
                                      "key": job.key, "attempt": job.attempts,
                                      "cached": True, "result": cached})
                self._log(f"job {job.spec.id} served from the memo cache")
                continue
            if job.key in running_keys:
                continue  # an identical config is in flight; wait for it
            self._spawn(job)
            running_keys.add(job.key)
            free -= 1

    # -- shutdown -----------------------------------------------------------

    def _shutdown(self) -> None:
        """SIGINT path: stop everything, flush the journal."""
        assert self._journal is not None
        for job in self._running():
            proc = job.proc
            if proc is not None and proc.is_alive():
                proc.terminate()  # detlint: ignore[wallclock-sleep]
        deadline = time.monotonic() + 2.0
        for job in self._running():
            proc = job.proc
            if proc is None:
                continue
            proc.join(timeout=max(0.0, deadline - time.monotonic()))
            if proc.is_alive():
                proc.kill()  # detlint: ignore[wallclock-sleep]
                proc.join(timeout=5.0)
            self._journal.append({"ev": "killed", "job": job.spec.id,
                                  "attempt": job.attempts - 1,
                                  "reason": "interrupted"})
            job.outcome = "interrupted"
        self._journal.append({"ev": "interrupted",
                              "signal": int(self._signal)})
        self._log("interrupted; journal flushed — continue with "
                  "`repro batch --resume`")

    # -- trace merging ------------------------------------------------------

    def _merge_traces(self) -> None:
        if self.trace_out is None:
            return
        from repro.trace import merge_chrome_traces

        slices = []
        for job in self.jobs:
            path = os.path.join(job.jobdir, worker.TRACE_NAME)
            if job.status == "done" and os.path.exists(path):
                with open(path, encoding="utf-8") as fh:
                    slices.append((job.spec.id, json.load(fh)))
        merged = merge_chrome_traces(slices)
        atomic_write(self.trace_out,
                     json.dumps(merged, sort_keys=True,
                                separators=(",", ":")) + "\n",
                     prefix=".trace-")
        self._log(f"merged {len(slices)} job trace(s) into {self.trace_out}")

    # -- reporting ----------------------------------------------------------

    def report_rows(self) -> List[Dict[str, Any]]:
        rows = []
        for job in self.jobs:
            rows.append({
                "job": job.spec.id,
                "command": job.spec.command,
                "attempts": job.attempts,
                "retries": max(0, job.attempts - 1),
                "crashes": job.crashes,
                "timeouts": job.timeouts,
                "outcome": job.outcome or job.status,
                "cached": job.cached,
            })
        return rows

    # -- the run ------------------------------------------------------------

    def run(self) -> int:
        """Run the batch; returns the process exit code (0 = all jobs
        done, 1 = permanent failures, 130 = SIGINT, 143 = SIGTERM)."""
        from repro.analysis.report import batch_report

        if os.path.exists(self.journal_path) and not self.resume:
            raise BatchError(
                f"journal {self.journal_path!r} already exists; pass "
                "--resume to continue that batch or choose a fresh "
                "--out-dir")
        os.makedirs(self.out_dir, exist_ok=True)
        if self.resume:
            self._recover_journal()
        self._journal = Journal(self.journal_path)
        try:
            if not self.resume:
                self._journal.append({"ev": "batch-start",
                                      "schema": journal_mod.SCHEMA,
                                      "resumed": False,
                                      "n_jobs": len(self.jobs)})
            for job in self.jobs:
                if not job.terminal:
                    self._journal.append({"ev": "queued", "job": job.spec.id,
                                          "key": job.key,
                                          "command": job.spec.command})
            self._run_loop()
            if self.interrupted:
                self._shutdown()
            else:
                self._merge_traces()
            done = sum(1 for j in self.jobs if j.status == "done")
            failed = sum(1 for j in self.jobs if j.status == "failed")
            self._journal.append({"ev": "batch-end", "done": done,
                                  "failed": failed,
                                  "interrupted": self.interrupted})
        finally:
            self._journal.close()
        report = batch_report(self.report_rows())
        print(report)
        atomic_write(os.path.join(self.out_dir, "report.txt"), report + "\n",
                     prefix=".report-")
        corrupt = self.counters.get("memo.corrupt")
        if corrupt:
            self._log(f"memo cache: {corrupt} corrupt result(s) detected, "
                      "treated as misses and re-run")
        if self.interrupted:
            return 143 if self._signal == signal.SIGTERM else 130
        return 0 if all(j.status == "done" for j in self.jobs) else 1

    def _run_loop(self) -> None:
        def on_signal(signum: int, frame: Any) -> None:
            self.interrupted = True
            self._signal = signum

        previous = {}
        # SIGTERM gets the same graceful shutdown as ^C: it is what CI
        # cancellations and container runtimes actually deliver, and an
        # unhandled one would kill the pool without flushing the journal
        for signum in (signal.SIGINT, signal.SIGTERM):
            try:
                previous[signum] = signal.signal(signum, on_signal)
            except ValueError:
                pass  # not the main thread (tests drive the loop directly)
        try:
            while not self.interrupted:
                self._reap_and_enforce()
                if all(j.terminal for j in self.jobs):
                    break
                self._launch_eligible()
                time.sleep(POLL_S)  # detlint: ignore[wallclock-sleep]
        finally:
            for signum, handler in previous.items():
                signal.signal(signum, handler)
