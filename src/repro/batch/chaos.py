"""Seeded chaos injection for the batch runner.

``repro batch --chaos kill-worker:p=0.1,stall:p=0.05 --chaos-seed 3``
kills (or stalls) workers mid-job so the crash-recovery path is
exercised *deterministically*: whether a given job's first attempt is
sabotaged depends only on the chaos seed and the job's sha256 memo key
— never on pool scheduling, pids or wall time.  Retries are always
clean (chaos fires on attempt 0 only), so a chaos batch with a retry
budget ≥ 1 must still complete, and — determinism again — its results
must be byte-identical to an uninterrupted run of the same specfile.
That is exactly what the ``batch-smoke`` CI job asserts.

Two directives:

``kill-worker:p=P``
    With probability *P* per job, the worker SIGKILLs itself mid-job —
    right after its first checkpoint snapshot lands (or at job start
    for drivers without checkpoint support).  Exercises crash
    isolation + resume-from-snapshot.
``stall:p=P``
    With probability *P* per job, the worker wedges (sleeps forever) at
    the same point.  Exercises the per-job wall-clock timeout; the
    supervisor must SIGKILL it, so ``--chaos`` with a stall directive
    requires ``--timeout``.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Optional

#: chaos actions, in decision order
KILL = "kill"
STALL = "stall"


@dataclass(frozen=True)
class ChaosPlan:
    """Parsed ``--chaos`` directives plus the decision seed."""

    kill_worker_p: float = 0.0
    stall_p: float = 0.0
    seed: int = 0

    def decide(self, key: str, attempt: int) -> Optional[str]:
        """The chaos action for (*key*, *attempt*), or None.

        Deterministic in (seed, key): the RNG is constructed from
        them, so the same specfile + seed sabotages the same jobs no
        matter how the pool interleaves.  Only a job's first attempt
        (``attempt == 0``) is ever sabotaged — retries must be able to
        finish the batch.
        """
        if attempt != 0:
            return None
        rng = random.Random(f"{self.seed}:{key}")
        if rng.random() < self.kill_worker_p:
            return KILL
        if rng.random() < self.stall_p:
            return STALL
        return None


def _parse_p(directive: str, body: str) -> float:
    if not body.startswith("p="):
        raise ValueError(f"chaos directive {directive!r}: expected "
                         f"'{directive}:p=PROB'")
    try:
        p = float(body[2:])
    except ValueError:
        raise ValueError(f"chaos directive {directive!r}: {body[2:]!r} is "
                         "not a probability")
    if not 0.0 <= p <= 1.0:
        raise ValueError(f"chaos directive {directive!r}: probability {p} "
                         "outside [0, 1]")
    return p


def parse_chaos(spec: str, seed: int = 0) -> ChaosPlan:
    """Parse a ``--chaos`` spec (comma-separated directives).

    Raises :class:`ValueError` with a friendly message on a bad spec
    (the CLI converts that to exit code 2).
    """
    kill_p = 0.0
    stall_p = 0.0
    for part in spec.split(","):
        part = part.strip()
        if not part:
            continue
        name, sep, body = part.partition(":")
        if not sep:
            raise ValueError(f"chaos directive {part!r}: missing ':p=PROB'")
        if name == "kill-worker":
            kill_p = _parse_p(name, body)
        elif name == "stall":
            stall_p = _parse_p(name, body)
        else:
            raise ValueError(f"unknown chaos directive {name!r} "
                             "(known: kill-worker, stall)")
    if kill_p == 0.0 and stall_p == 0.0:
        raise ValueError(f"chaos spec {spec!r} enables nothing")
    return ChaosPlan(kill_worker_p=kill_p, stall_p=stall_p, seed=seed)
