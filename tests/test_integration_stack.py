"""Cross-layer integration tests: placement decisions propagating through
allocators, registration, the MPI protocols and timing."""

import pytest

from repro.core import preload_hugepage_library
from repro.mpi import MPIConfig, MPIWorld
from repro.systems import Cluster, presets

KB = 1024
MB = 1024 * 1024


def make_world(ppn=1, n_nodes=2, **cfg):
    cluster = Cluster(presets.opteron_infinihost_pcie(), n_nodes=n_nodes)
    return cluster, MPIWorld(cluster, ppn=ppn, config=MPIConfig(**cfg))


class TestPreloadThroughMPI:
    def test_preloaded_ranks_register_hugepage_entries(self):
        """malloc -> hugepages -> registration uploads 2 MB entries."""
        cluster, world = make_world()

        def program(comm):
            preload_hugepage_library(comm.proc)
            buf = comm.proc.malloc(4 * MB)
            other = 1 - comm.rank
            yield from comm.sendrecv(other, 1, 2 * MB, source=other,
                                     recvtag=1, send_addr=buf,
                                     recv_addr=buf + 2 * MB)
            mrs = comm.endpoint.regcache._entries
            return [(mr.entry_page_size, mr.n_entries) for mr in mrs]

        results = world.run(program)
        for r in results:
            user_mrs = [e for e in r.value if e[0] == 2 * MB]
            assert user_mrs, "user buffer should register as 2 MB entries"
            assert all(n <= 2 for _, n in user_mrs)

    def test_library_frees_keep_cache_warm_libc_does_not(self):
        """The end-to-end churn mechanism behind the NAS comm gains."""

        def run(hugepages):
            cluster, world = make_world()

            def program(comm):
                if hugepages:
                    preload_hugepage_library(comm.proc)
                other = 1 - comm.rank
                for _ in range(4):
                    buf = comm.proc.malloc(2 * MB)
                    yield from comm.sendrecv(other, 2, 1 * MB, source=other,
                                             recvtag=2, send_addr=buf,
                                             recv_addr=buf + 1 * MB)
                    comm.proc.free(buf)
                return comm.endpoint.regcache.misses

            return max(r.value for r in world.run(program))

        assert run(hugepages=False) >= 4   # every iteration re-registers
        assert run(hugepages=True) <= 2    # warm after the first

    def test_hugepage_run_communicates_faster_without_cache(self):
        """Fig 5's headline, end to end through malloc + MPI."""

        def run(hugepages):
            cluster, world = make_world(lazy_dereg=False)
            out = {}

            def program(comm):
                if hugepages:
                    preload_hugepage_library(comm.proc)
                buf = comm.proc.malloc(8 * MB)
                other = 1 - comm.rank
                t0 = comm.kernel.now
                for _ in range(3):
                    yield from comm.sendrecv(other, 3, 4 * MB, source=other,
                                             recvtag=3, send_addr=buf,
                                             recv_addr=buf + 4 * MB)
                if comm.rank == 0:
                    out["ticks"] = comm.kernel.now - t0
                return None

            world.run(program)
            return out["ticks"]

        small, huge = run(False), run(True)
        assert huge < 0.92 * small


class TestProtocolBoundaries:
    def test_thresholds_choose_protocols(self):
        """Verify the paper's protocol map: eager <=8K, copy rendezvous
        to 16K, RDMA above — via the HCA message counters."""
        cluster, world = make_world()

        def program(comm):
            other = 1 - comm.rank
            buf = comm.proc.malloc(MB)
            if comm.rank == 0:
                yield from comm.send(other, 1, 4 * KB, addr=buf)       # eager
                yield from comm.send(other, 2, 12 * KB, addr=buf)      # copy rndv
                yield from comm.send(other, 3, 64 * KB, addr=buf)      # RDMA
            else:
                for tag in (1, 2, 3):
                    yield from comm.recv(0, tag, addr=buf)
            return None

        world.run(program)
        agg = cluster.aggregate_counters()
        # RDMA rendezvous generates exactly one rdma_write message; the
        # registration counters prove only the 64 KB message registered
        # user memory (2 acquires: send + recv side)
        assert agg.get("regcache.miss", 0) == 2

    def test_rendezvous_handshake_ordering(self):
        """Data cannot land before the CTS grants a target buffer."""
        cluster, world = make_world()
        events = []

        def program(comm):
            other = 1 - comm.rank
            buf = comm.proc.malloc(MB)
            if comm.rank == 0:
                yield from comm.send(other, 9, 256 * KB, addr=buf)
                events.append(("send_done", comm.kernel.now))
            else:
                yield from comm.compute_ticks(50_000)  # recv posted late
                events.append(("recv_posted", comm.kernel.now))
                yield from comm.recv(0, 9, addr=buf)
                events.append(("recv_done", comm.kernel.now))
            return None

        world.run(program)
        order = [name for name, _ in sorted(events, key=lambda e: e[1])]
        assert order.index("recv_posted") < order.index("send_done")


class TestCounterPlumbing:
    def test_papi_style_counters_aggregate(self):
        cluster, world = make_world(ppn=2)

        def program(comm):
            buf = comm.proc.malloc(8 * MB)
            cost = comm.proc.engine.stream(buf, 8 * MB)
            yield from comm.compute(cost)
            return None

        world.run(program)
        agg = cluster.aggregate_counters()
        assert agg.get("tlb.4k.miss", 0) >= 4 * 2048  # 4 ranks x 8 MB
        assert agg.get("prefetch.lines", 0) > 0

    def test_hca_counters(self):
        cluster, world = make_world()

        def program(comm):
            other = 1 - comm.rank
            buf = comm.proc.malloc(MB)
            yield from comm.sendrecv(other, 1, 100 * KB, source=other,
                                     recvtag=1, send_addr=buf,
                                     recv_addr=buf + 512 * KB)
            return None

        world.run(program)
        agg = cluster.aggregate_counters()
        assert agg.get("hca.tx_messages", 0) > 0
        assert agg.get("hca.rx_bytes", 0) >= 2 * 100 * KB
