"""Fine-grained tests of the eager/rendezvous protocol internals, plus a
property test on message-delivery invariants under random schedules."""

import hypothesis.strategies as st
import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings

from repro.mpi import MPIConfig, MPIWorld
from repro.systems import Cluster, presets

KB = 1024
MB = 1024 * 1024


def make_world(ppn=1, n_nodes=2, **cfg):
    cluster = Cluster(presets.opteron_infinihost_pcie(), n_nodes=n_nodes)
    return MPIWorld(cluster, ppn=ppn, config=MPIConfig(**cfg))


class TestEagerInternals:
    def test_bounce_pool_recycled(self):
        """Bounce buffers return to the pool after local completion —
        many more sends than buffers must not deadlock."""
        world = make_world(bounce_buffers=2)

        def program(comm):
            other = 1 - comm.rank
            if comm.rank == 0:
                for i in range(20):
                    yield from comm.send(other, i, 4 * KB, payload=i)
                return None
            got = []
            for i in range(20):
                payload, *_ = yield from comm.recv(0, i)
                got.append(payload)
            return got

        results = world.run(program)
        assert results[1].value == list(range(20))

    def test_eager_recvs_reposted(self):
        """Pre-posted receive buffers are recycled: message count far
        beyond the prepost depth works."""
        world = make_world(prepost_depth=2)

        def program(comm):
            other = 1 - comm.rank
            if comm.rank == 0:
                for i in range(30):
                    yield from comm.send(other, 7, 1 * KB, payload=i)
                return None
            got = []
            for _ in range(30):
                payload, *_ = yield from comm.recv(0, 7)
                got.append(payload)
            return got

        results = world.run(program)
        assert results[1].value == list(range(30))

    def test_fifo_per_source_tag(self):
        """Messages with the same (source, tag) arrive in send order."""
        world = make_world()

        def program(comm):
            other = 1 - comm.rank
            if comm.rank == 0:
                for i in range(10):
                    yield from comm.send(other, 5, 2 * KB, payload=i)
                return None
            got = []
            for _ in range(10):
                payload, *_ = yield from comm.recv(0, 5)
                got.append(payload)
            return got

        results = world.run(program)
        assert results[1].value == list(range(10))


class TestRendezvousInternals:
    def test_concurrent_rendezvous_to_distinct_buffers(self):
        """Several in-flight rendezvous between the same pair must not
        cross wires (distinct rndv ids, distinct RDMA targets)."""
        world = make_world()
        N = 4

        def program(comm):
            other = 1 - comm.rank
            bufs = [comm.proc.malloc(MB) for _ in range(N)]
            if comm.rank == 0:
                reqs = [
                    comm.isend(other, 100 + i, 256 * KB, addr=bufs[i],
                               payload=np.full(4, i))
                    for i in range(N)
                ]
                yield from comm.waitall(reqs)
                return None
            reqs = [comm.irecv(0, 100 + i, addr=bufs[i]) for i in range(N)]
            results = yield from comm.waitall(reqs)
            return [int(r[0][0]) for r in results]

        results = world.run(program)
        assert results[1].value == list(range(N))

    def test_rendezvous_payload_none_when_size_only(self):
        """Size-only messages (payload=None) still complete correctly."""
        world = make_world()

        def program(comm):
            other = 1 - comm.rank
            buf = comm.proc.malloc(MB)
            if comm.rank == 0:
                yield from comm.send(other, 1, 512 * KB, addr=buf)
                return None
            payload, size, *_ = yield from comm.recv(0, 1, addr=buf)
            return (payload, size)

        results = world.run(program)
        assert results[1].value == (None, 512 * KB)

    def test_copy_rendezvous_chunking(self):
        """12 KB messages travel as bounce chunks but reassemble."""
        world = make_world(eager_buf_bytes=16 * KB, eager_threshold=8 * KB)

        def program(comm):
            other = 1 - comm.rank
            buf = comm.proc.malloc(MB)
            if comm.rank == 0:
                data = np.arange(64)
                yield from comm.send(other, 2, 12 * KB, addr=buf, payload=data)
                return None
            payload, size, *_ = yield from comm.recv(0, 2, addr=buf)
            return (payload.sum(), size)

        results = world.run(program)
        assert results[1].value == (np.arange(64).sum(), 12 * KB)


class TestUnsafePrograms:
    def test_out_of_order_blocking_recv_deadlocks(self):
        """An MPI-unsafe program (blocking recv in an order incompatible
        with a blocking rendezvous send) must deadlock — and the runner
        must detect and report it rather than hang."""
        world = make_world()

        def program(comm):
            other = 1 - comm.rank
            buf = comm.proc.malloc(MB)
            if comm.rank == 0:
                yield from comm.send(other, 0, 256, payload="a")
                yield from comm.send(other, 1, 12 * KB, addr=buf, payload="b")
                yield from comm.send(other, 0, 256, payload="c")
                return None
            yield from comm.recv(0, 0)
            yield from comm.recv(0, 0)  # sender is stuck in tag-1 RTS
            yield from comm.recv(0, 1, addr=buf)
            return None

        with pytest.raises(RuntimeError, match="did not finish"):
            world.run(program)


class TestDeliveryProperty:
    @given(
        messages=st.lists(
            st.tuples(
                st.integers(min_value=0, max_value=3),     # tag bucket
                st.sampled_from([256, 4 * KB, 12 * KB, 64 * KB]),  # size
            ),
            min_size=1,
            max_size=12,
        )
    )
    @settings(max_examples=20, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    def test_every_message_delivered_exactly_once_in_order(self, messages):
        """Random mixes of eager/copy-rendezvous/RDMA messages across 4
        tags: each (tag) stream arrives complete and in order."""
        world = make_world()

        def program(comm):
            other = 1 - comm.rank
            if comm.rank == 0:
                buf = comm.proc.malloc(MB)
                for seq, (tag, size) in enumerate(messages):
                    yield from comm.send(other, tag, size, addr=buf,
                                         payload=(tag, seq))
                return None
            # receives are pre-posted (the safe-MPI pattern: a blocking
            # recv in the "wrong" tag order would legally deadlock
            # against a blocking rendezvous send); one buffer each so
            # concurrent RDMA targets stay distinct
            reqs = []
            for i, (tag, _size) in enumerate(messages):
                rbuf = comm.proc.malloc(MB)
                reqs.append((tag, comm.irecv(0, tag, addr=rbuf)))
            got = {}
            for tag, req in reqs:
                payload, *_ = yield from comm.wait(req)
                got.setdefault(tag, []).append(payload)
            return got

        results = world.run(program)
        got = results[1].value
        # exactly once, in global send order per tag
        for tag in got:
            expected = [(t, s) for s, (t, _sz) in enumerate(messages) if t == tag]
            assert got[tag] == expected
