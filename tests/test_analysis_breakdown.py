"""Tests for the communication-cost breakdown tool (§6 follow-up)."""

import pytest

from repro.analysis.breakdown import (
    MessageBreakdown,
    breakdown_rdma_message,
    placement_comparison,
)
from repro.mem.physical import PAGE_2M, PAGE_4K
from repro.systems import presets

MB = 1024 * 1024


class TestBreakdownStructure:
    def test_fractions_sum_to_one(self):
        b = breakdown_rdma_message(presets.opteron_infinihost_pcie(), 1 * MB)
        assert sum(b.fractions().values()) == pytest.approx(1.0)

    def test_critical_path_below_serial_total(self):
        b = breakdown_rdma_message(presets.opteron_infinihost_pcie(), 4 * MB)
        assert b.critical_path_ns < b.total_ns

    def test_validation(self):
        with pytest.raises(ValueError):
            breakdown_rdma_message(presets.opteron_infinihost_pcie(), 0)
        with pytest.raises(ValueError):
            breakdown_rdma_message(presets.opteron_infinihost_pcie(), 64,
                                   page_size=8192)


class TestBreakdownShapes:
    def test_registration_dominates_small_pages_uncached(self):
        """For a 4 MB uncached message, registration is the biggest
        non-transfer component on base pages."""
        b4k = breakdown_rdma_message(presets.opteron_infinihost_pcie(), 4 * MB,
                                     PAGE_4K)
        b2m = breakdown_rdma_message(presets.opteron_infinihost_pcie(), 4 * MB,
                                     PAGE_2M)
        assert b4k.registration_ns > 20 * b2m.registration_ns

    def test_cached_registration_vanishes(self):
        b = breakdown_rdma_message(presets.opteron_infinihost_pcie(), 4 * MB,
                                   registration_cached=True)
        assert b.registration_ns == 0.0

    def test_wire_dominates_large_cached_messages(self):
        b = breakdown_rdma_message(presets.opteron_infinihost_pcie(), 16 * MB,
                                   PAGE_2M, registration_cached=True,
                                   att_warm=True)
        assert b.dominant() in ("wire_ns", "gather_ns", "scatter_ns")

    def test_warm_att_only_helps_when_entries_fit(self):
        spec = presets.xeon_infinihost_pcix()
        cold = breakdown_rdma_message(spec, 4 * MB, PAGE_4K,
                                      registration_cached=True, att_warm=False)
        warm_4k = breakdown_rdma_message(spec, 4 * MB, PAGE_4K,
                                         registration_cached=True, att_warm=True)
        warm_2m = breakdown_rdma_message(
            presets.xeon_infinihost_pcix(hugepage_aware_driver=True),
            4 * MB, PAGE_2M, registration_cached=True, att_warm=True,
        )
        # 1024 entries never fit the 64-entry ATT: warm == cold on 4K
        assert warm_4k.gather_ns == cold.gather_ns
        # 2 entries (patched driver) do fit: warm 2M gather is cheaper
        assert warm_2m.gather_ns < warm_4k.gather_ns

    def test_breakdown_agrees_with_simulator(self):
        """The analytic critical path must land near the simulated
        steady-state bandwidth (<10 % off)."""
        b = breakdown_rdma_message(presets.opteron_infinihost_pcie(), 4 * MB,
                                   PAGE_2M, registration_cached=True,
                                   att_warm=True)
        predicted_mb_s = 4 * MB / (b.critical_path_ns / 1e9) / 1e6
        assert predicted_mb_s == pytest.approx(920, rel=0.10)

    def test_placement_comparison_keys(self):
        cmp = placement_comparison(presets.opteron_infinihost_pcie(), 1 * MB)
        assert set(cmp) == {"4k", "2m"}
        assert cmp["2m"].total_ns < cmp["4k"].total_ns

    def test_unaware_driver_expands_entries(self):
        spec = presets.xeon_infinihost_pcix(hugepage_aware_driver=False)
        b = breakdown_rdma_message(spec, 4 * MB, PAGE_2M)
        aware = breakdown_rdma_message(
            presets.xeon_infinihost_pcix(hugepage_aware_driver=True),
            4 * MB, PAGE_2M,
        )
        assert b.registration_ns > aware.registration_ns
        assert b.gather_ns > aware.gather_ns  # 512x the ATT traffic
