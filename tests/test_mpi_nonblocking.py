"""Tests for the nonblocking MPI operations (isend/irecv/wait/waitall)."""

import numpy as np
import pytest

from repro.mpi import MPIConfig, MPIWorld
from repro.systems import Cluster, presets

KB = 1024
MB = 1024 * 1024


def make_world(ppn=1, n_nodes=2, **cfg):
    cluster = Cluster(presets.opteron_infinihost_pcie(), n_nodes=n_nodes)
    return MPIWorld(cluster, ppn=ppn, config=MPIConfig(**cfg))


class TestNonblocking:
    def test_isend_irecv_roundtrip(self):
        world = make_world()

        def program(comm):
            other = 1 - comm.rank
            buf = comm.proc.malloc(MB)
            req_s = comm.isend(other, 1, 64 * KB, addr=buf,
                               payload=f"nb-{comm.rank}")
            req_r = comm.irecv(other, 1, addr=buf)
            yield from comm.wait(req_s)
            payload, size, src, tag = yield from comm.wait(req_r)
            return (payload, size, src, tag)

        results = world.run(program)
        assert results[0].value == ("nb-1", 64 * KB, 1, 1)
        assert results[1].value == ("nb-0", 64 * KB, 0, 1)

    def test_waitall_many_requests(self):
        world = make_world()

        def program(comm):
            other = 1 - comm.rank
            reqs = []
            for i in range(5):
                reqs.append(comm.isend(other, 100 + i, 2 * KB,
                                       payload=f"m{i}-from{comm.rank}"))
            for i in range(5):
                reqs.append(comm.irecv(other, 100 + i))
            results = yield from comm.waitall(reqs)
            return [r[0] for r in results[5:]]

        results = world.run(program)
        assert results[0].value == [f"m{i}-from1" for i in range(5)]
        assert results[1].value == [f"m{i}-from0" for i in range(5)]

    def test_overlap_hides_communication(self):
        """The point of nonblocking ops: compute while the wire works."""

        def run(overlapped):
            world = make_world()
            out = {}

            def program(comm):
                other = 1 - comm.rank
                buf = comm.proc.malloc(MB)
                t0 = comm.kernel.now
                if overlapped:
                    rr = comm.irecv(other, 1, addr=buf)
                    rs = comm.isend(other, 1, 512 * KB, addr=buf)
                    yield from comm.compute_ticks(400_000)
                    yield from comm.waitall([rr, rs])
                else:
                    rr = comm.irecv(other, 1, addr=buf)
                    rs = comm.isend(other, 1, 512 * KB, addr=buf)
                    yield from comm.waitall([rr, rs])
                    yield from comm.compute_ticks(400_000)
                if comm.rank == 0:
                    out["ticks"] = comm.kernel.now - t0
                return None

            world.run(program)
            return out["ticks"]

        assert run(overlapped=True) < run(overlapped=False)

    def test_wait_records_profiler_time(self):
        world = make_world()

        def program(comm):
            other = 1 - comm.rank
            rs = comm.isend(other, 1, 1 * KB, payload="x")
            rr = comm.irecv(other, 1)
            yield from comm.wait(rs)
            yield from comm.wait(rr)
            return ("MPI_Wait" in comm.profiler.summary())

        results = world.run(program)
        assert all(r.value for r in results)
