"""Unit tests for page tables (repro.mem.paging)."""

import pytest

from repro.mem.paging import PageTable, TranslationFault
from repro.mem.physical import PAGE_2M, PAGE_4K


@pytest.fixture
def pt():
    return PageTable()


class TestMapping:
    def test_map_and_translate_4k(self, pt):
        pt.map(0x1000, 0x20000, PAGE_4K)
        paddr, size = pt.translate(0x1234)
        assert paddr == 0x20234
        assert size == PAGE_4K

    def test_map_and_translate_2m(self, pt):
        pt.map(0, 0x200000, PAGE_2M)
        paddr, size = pt.translate(0x12345)
        assert paddr == 0x200000 + 0x12345
        assert size == PAGE_2M

    def test_unaligned_rejected(self, pt):
        with pytest.raises(ValueError):
            pt.map(0x1001, 0x2000, PAGE_4K)
        with pytest.raises(ValueError):
            pt.map(0x1000, 0x2001, PAGE_4K)

    def test_double_map_rejected(self, pt):
        pt.map(0x1000, 0x2000, PAGE_4K)
        with pytest.raises(ValueError):
            pt.map(0x1000, 0x3000, PAGE_4K)

    def test_bad_page_size_rejected(self, pt):
        with pytest.raises(ValueError):
            pt.map(0, 0, 8192)

    def test_huge_overlapping_small_rejected(self, pt):
        pt.map(0x1000, 0x2000, PAGE_4K)
        with pytest.raises(ValueError):
            pt.map(0, 0x200000, PAGE_2M)

    def test_counts(self, pt):
        pt.map(0x1000, 0x2000, PAGE_4K)
        pt.map(0x200000, 0x400000, PAGE_2M)
        assert pt.n_small == 1
        assert pt.n_huge == 1


class TestLookup:
    def test_fault_on_unmapped(self, pt):
        with pytest.raises(TranslationFault):
            pt.lookup(0xDEAD000)

    def test_try_lookup_returns_none(self, pt):
        assert pt.try_lookup(0xDEAD000) is None

    def test_is_mapped(self, pt):
        pt.map(0x1000, 0x2000, PAGE_4K)
        assert pt.is_mapped(0x1FFF)
        assert not pt.is_mapped(0x2000)

    def test_hugepage_wins_at_same_region(self, pt):
        pt.map(0x200000, 0x400000, PAGE_2M)
        entry = pt.lookup(0x200000 + 0x1000)
        assert entry.page_size == PAGE_2M

    def test_walk_levels(self, pt):
        pt.map(0x1000, 0x2000, PAGE_4K)
        pt.map(0x200000, 0x400000, PAGE_2M)
        assert pt.walk_levels(0x1000) == 4
        assert pt.walk_levels(0x200000) == 3


class TestUnmap:
    def test_unmap(self, pt):
        pt.map(0x1000, 0x2000, PAGE_4K)
        entry = pt.unmap(0x1000, PAGE_4K)
        assert entry.paddr == 0x2000
        assert not pt.is_mapped(0x1000)

    def test_unmap_missing_faults(self, pt):
        with pytest.raises(TranslationFault):
            pt.unmap(0x1000, PAGE_4K)

    def test_pinned_page_cannot_be_unmapped(self, pt):
        entry = pt.map(0x1000, 0x2000, PAGE_4K)
        entry.pin_count += 1
        with pytest.raises(ValueError):
            pt.unmap(0x1000, PAGE_4K)
        entry.pin_count -= 1
        pt.unmap(0x1000, PAGE_4K)


class TestRangeIteration:
    def test_pages_in_range_4k(self, pt):
        for i in range(4):
            pt.map(0x1000 + i * PAGE_4K, 0x10000 + i * PAGE_4K, PAGE_4K)
        entries = list(pt.pages_in_range(0x1800, 2 * PAGE_4K))
        assert [e.vaddr for e in entries] == [0x1000, 0x2000, 0x3000]

    def test_pages_in_range_mixed_fault(self, pt):
        pt.map(0x1000, 0x2000, PAGE_4K)
        with pytest.raises(TranslationFault):
            list(pt.pages_in_range(0x1000, 3 * PAGE_4K))

    def test_pages_in_range_huge(self, pt):
        pt.map(0x200000, 0x400000, PAGE_2M)
        pt.map(0x400000, 0x800000, PAGE_2M)
        entries = list(pt.pages_in_range(0x200000 + 5, PAGE_2M))
        assert [e.vaddr for e in entries] == [0x200000, 0x400000]

    def test_non_positive_length_rejected(self, pt):
        pt.map(0x1000, 0x2000, PAGE_4K)
        with pytest.raises(ValueError):
            list(pt.pages_in_range(0x1000, 0))
