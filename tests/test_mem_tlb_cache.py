"""Unit tests for the TLB, cache and prefetcher models."""

import pytest

from repro.analysis import CounterSet
from repro.mem.cache import CacheConfig, DataCache, Prefetcher
from repro.mem.physical import PAGE_2M, PAGE_4K
from repro.mem.tlb import SplitTLB, TLBConfig


class TestTLBConfig:
    def test_opteron_defaults(self):
        cfg = TLBConfig()
        assert cfg.entries_4k == 544
        assert cfg.entries_2m == 8

    def test_coverage(self):
        cfg = TLBConfig()
        assert cfg.coverage_4k == 544 * PAGE_4K
        assert cfg.coverage_2m == 8 * PAGE_2M
        # the asymmetry the paper exploits: tiny hugepage array but huge reach
        assert cfg.coverage_2m > cfg.coverage_4k

    def test_walk_cost_cheaper_for_hugepages(self):
        cfg = TLBConfig()
        assert cfg.walk_ns(PAGE_2M) < cfg.walk_ns(PAGE_4K)

    def test_bad_page_size(self):
        with pytest.raises(ValueError):
            TLBConfig().entries_for(8192)


class TestSplitTLBStateful:
    def test_miss_then_hit(self):
        tlb = SplitTLB(TLBConfig())
        hit, ns = tlb.access(0x1000, PAGE_4K)
        assert not hit and ns > 0
        hit, ns = tlb.access(0x1FFF, PAGE_4K)  # same page
        assert hit and ns == 0

    def test_arrays_are_independent(self):
        tlb = SplitTLB(TLBConfig(entries_4k=2, entries_2m=2))
        tlb.access(0x0, PAGE_4K)
        tlb.access(0x0, PAGE_2M)
        assert tlb.resident(PAGE_4K) == 1
        assert tlb.resident(PAGE_2M) == 1

    def test_lru_eviction(self):
        tlb = SplitTLB(TLBConfig(entries_4k=2, entries_2m=8))
        tlb.access(0 * PAGE_4K, PAGE_4K)
        tlb.access(1 * PAGE_4K, PAGE_4K)
        tlb.access(0 * PAGE_4K, PAGE_4K)  # refresh page 0
        tlb.access(2 * PAGE_4K, PAGE_4K)  # evicts page 1 (LRU)
        hit, _ = tlb.access(0 * PAGE_4K, PAGE_4K)
        assert hit
        hit, _ = tlb.access(1 * PAGE_4K, PAGE_4K)
        assert not hit

    def test_rotation_thrash_on_small_array(self):
        """>8 hugepage streams in round-robin never hit an 8-entry array."""
        tlb = SplitTLB(TLBConfig())
        pages = [i * PAGE_2M for i in range(9)]
        for p in pages:  # cold pass
            tlb.access(p, PAGE_2M)
        hits = sum(tlb.access(p, PAGE_2M)[0] for p in pages for _ in (0,))
        assert hits == 0

    def test_same_rotation_fits_4k_array(self):
        tlb = SplitTLB(TLBConfig())
        pages = [i * PAGE_4K for i in range(9)]
        for p in pages:
            tlb.access(p, PAGE_4K)
        hits = sum(tlb.access(p, PAGE_4K)[0] for p in pages)
        assert hits == 9

    def test_flush(self):
        tlb = SplitTLB(TLBConfig())
        tlb.access(0x1000, PAGE_4K)
        tlb.flush()
        hit, _ = tlb.access(0x1000, PAGE_4K)
        assert not hit

    def test_counters(self):
        counters = CounterSet()
        tlb = SplitTLB(TLBConfig(), counters)
        tlb.access(0x1000, PAGE_4K)
        tlb.access(0x1000, PAGE_4K)
        tlb.access(0x200000, PAGE_2M)
        assert counters["tlb.4k.miss"] == 1
        assert counters["tlb.4k.hit"] == 1
        assert counters["tlb.2m.miss"] == 1


class TestSplitTLBAnalytic:
    def test_stream_misses_per_page(self):
        tlb = SplitTLB(TLBConfig())
        assert tlb.analytic_stream_misses(10 * PAGE_4K, PAGE_4K) == 10
        assert tlb.analytic_stream_misses(10 * PAGE_4K, PAGE_2M) == 1

    def test_rotate_thrash_vs_resident(self):
        tlb = SplitTLB(TLBConfig())
        # 16 streams on hugepages (capacity 8): every switch misses
        huge = tlb.analytic_rotate_misses(16, 10_000, 0.0, PAGE_2M)
        # same on 4K pages (capacity 544): only the cold misses
        small = tlb.analytic_rotate_misses(16, 10_000, 0.0, PAGE_4K)
        assert huge == 10_000
        assert small == 16
        assert huge / small > 100

    def test_rotate_boundary_crossings_added(self):
        tlb = SplitTLB(TLBConfig())
        n = tlb.analytic_rotate_misses(4, 1000, 0.5, PAGE_4K)
        assert n == 4 + 500

    def test_random_coverage_model(self):
        tlb = SplitTLB(TLBConfig())
        # region exactly the 4K coverage: no misses at steady state
        n = tlb.analytic_random_misses(1000, TLBConfig().coverage_4k, PAGE_4K)
        assert n == 0
        # region 10x the coverage: 90% misses
        n = tlb.analytic_random_misses(1000, 10 * TLBConfig().coverage_4k, PAGE_4K)
        assert n == pytest.approx(900, abs=5)

    def test_validation(self):
        tlb = SplitTLB(TLBConfig())
        with pytest.raises(ValueError):
            tlb.analytic_stream_misses(0, PAGE_4K)
        with pytest.raises(ValueError):
            tlb.analytic_rotate_misses(0, 10, 0.0, PAGE_4K)
        with pytest.raises(ValueError):
            tlb.analytic_random_misses(10, 0, PAGE_4K)


class TestDataCache:
    def test_miss_then_hit(self):
        cache = DataCache(CacheConfig())
        hit, ns = cache.access(0x40)
        assert not hit and ns == CacheConfig().miss_ns
        hit, ns = cache.access(0x7F)  # same 64B line
        assert hit and ns == CacheConfig().hit_ns

    def test_capacity_eviction(self):
        cfg = CacheConfig(line_size=64, capacity_bytes=128)  # 2 lines
        cache = DataCache(cfg)
        cache.access(0)
        cache.access(64)
        cache.access(128)  # evicts line 0
        hit, _ = cache.access(0)
        assert not hit

    def test_flush(self):
        cache = DataCache(CacheConfig())
        cache.access(0)
        cache.flush()
        hit, _ = cache.access(0)
        assert not hit

    def test_counters(self):
        counters = CounterSet()
        cache = DataCache(CacheConfig(), counters)
        cache.access(0)
        cache.access(0)
        assert counters["cache.miss"] == 1
        assert counters["cache.hit"] == 1


class TestPrefetcher:
    def test_unbroken_stream_is_cheap(self):
        cfg = CacheConfig()
        pf = Prefetcher(cfg)
        broken = pf.stream_cost_ns(1000, 16)
        smooth = pf.stream_cost_ns(1000, 1)
        assert smooth < broken

    def test_restart_cost_formula(self):
        cfg = CacheConfig(stream_restart_lines=4, miss_ns=80.0, prefetch_hit_ns=10.0)
        pf = Prefetcher(cfg)
        cost = pf.stream_cost_ns(100, 2)
        assert cost == 8 * 80.0 + 92 * 10.0

    def test_restart_lines_capped_at_total(self):
        cfg = CacheConfig(stream_restart_lines=4, miss_ns=80.0)
        pf = Prefetcher(cfg)
        assert pf.stream_cost_ns(2, 100) == 2 * 80.0

    def test_lines_for(self):
        pf = Prefetcher(CacheConfig(line_size=64))
        assert pf.lines_for(0) == 0
        assert pf.lines_for(1) == 1
        assert pf.lines_for(64) == 1
        assert pf.lines_for(65) == 2

    def test_negative_rejected(self):
        pf = Prefetcher(CacheConfig())
        with pytest.raises(ValueError):
            pf.stream_cost_ns(-1, 0)
        with pytest.raises(ValueError):
            pf.lines_for(-1)
