"""Tests for repro.trace: span attribution, counter exactness, Chrome
export schema, and the byte-identity guarantees (fastpath on/off and
checkpoint resume) the observability docs promise."""

import io
import json

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import fastpath, trace
from repro.analysis.counters import CounterSet
from repro.checkpoint import RunCheckpointer
from repro.engine import SimKernel
from repro.systems import presets
from repro.trace import NULL_SPAN, Tracer
from repro.workloads.imb import SendRecvBenchmark

KB = 1024


class _Source:
    """A minimal counter/clock source standing in for a Cluster."""

    def __init__(self):
        self.kernel = SimKernel()
        self.counters = CounterSet()

    def aggregate_counters(self):
        return self.counters.snapshot()


class TestDisabledTracing:
    def test_no_tracer_installed_by_default(self):
        assert trace.active() is None

    def test_module_helpers_are_noops_when_disabled(self):
        assert trace.span("anything", bytes=3) is NULL_SPAN
        with trace.span("anything"):
            pass
        trace.instant("anything", bytes=3)  # must not raise
        trace.attach_cluster(object())  # must not even look at it

    def test_capturing_restores_prior_state(self):
        tracer = Tracer()
        with trace.capturing(tracer):
            assert trace.active() is tracer
        assert trace.active() is None


class TestSpanRecording:
    def test_span_becomes_complete_event_on_simulated_time(self):
        src = _Source()
        tracer = Tracer()
        tracer.attach_cluster(src)

        def scenario():
            with tracer.span("phase.a", track="t0", bytes=7):
                yield src.kernel.timeout(100)

        with trace.capturing(tracer):
            src.kernel.process(scenario())
            src.kernel.run()
            tracer.flush()

        (ev,) = [e for e in tracer.events if e["name"] == "phase.a"]
        assert ev["name"] == "phase.a"
        assert ev["ts"] == 0 and ev["dur"] == 100
        assert ev["track"] == "t0" and ev["args"] == {"bytes": 7}

    def test_counter_deltas_attribute_to_innermost_open_span(self):
        src = _Source()
        tracer = Tracer()
        tracer.attach_cluster(src)
        with trace.capturing(tracer):
            src.counters.add("x", 1)  # no span open: unattributed
            with tracer.span("outer"):
                src.counters.add("y", 2)
                with tracer.span("inner"):
                    src.counters.add("z", 3)
                src.counters.add("y", 4)
            tracer.flush()

        table = tracer.phase_table()
        assert table["(unattributed)"] == {"x": 1}
        assert table["outer"] == {"y": 6}
        assert table["inner"] == {"z": 3}
        assert tracer.counter_totals() == {"x": 1, "y": 6, "z": 3}

    def test_phase_table_rows_sum_to_counter_totals(self):
        src = _Source()
        tracer = Tracer()
        tracer.attach_cluster(src)
        with trace.capturing(tracer):
            for i in range(5):
                with tracer.span(f"s{i % 2}"):
                    src.counters.add("a", i)
                    src.counters.add("b", 2 * i)
            tracer.flush()
        summed = {}
        for row in tracer.phase_table().values():
            for k, v in row.items():
                summed[k] = summed.get(k, 0) + v
        assert summed == tracer.counter_totals()


class TestRealWorkloadTrace:
    def _traced_fig5(self):
        tracer = Tracer()
        bench = SendRecvBenchmark(presets.opteron_infinihost_pcie)
        with trace.capturing(tracer):
            bench.run([4 * KB, 64 * KB], hugepages=False, lazy_dereg=True,
                      iterations=2, warmup=1)
            tracer.flush()
        return tracer, bench.last_cluster

    def test_deltas_sum_exactly_to_final_cluster_counters(self):
        """The headline exactness guarantee: attributed deltas are a
        faithful decomposition of the run's aggregate counters — no
        increment lost, none double-counted."""
        tracer, cluster = self._traced_fig5()
        assert tracer.counter_totals() == dict(cluster.aggregate_counters())

    def test_spans_cover_every_layer(self):
        tracer, _ = self._traced_fig5()
        names = {e["name"] for e in tracer.events}
        for expected in ("engine.run", "ib.post_send", "ib.tx",
                         "mpi.eager.send", "mpi.regcache.miss"):
            assert expected in names, f"missing {expected}"

    def test_chrome_export_schema(self):
        tracer, _ = self._traced_fig5()
        doc = json.loads(tracer.dumps())
        assert doc["displayTimeUnit"] == "ns"
        assert doc["traceEvents"]
        for ev in doc["traceEvents"]:
            assert ev["ph"] in ("X", "i", "M")
            assert isinstance(ev["pid"], int) or ev["ph"] == "M"
            for key in ("name", "ts", "pid", "tid"):
                assert key in ev
            if ev["ph"] == "X":
                assert ev["dur"] >= 0
        totals = doc["otherData"]["counter_totals"]
        summed = {}
        for ev in doc["traceEvents"]:
            for k, v in ev.get("args", {}).get("counters", {}).items():
                summed[k] = summed.get(k, 0) + v
        assert summed == totals

    def test_span_attrs_hold_no_floats_or_global_ids(self):
        """Determinism rule: attributes are sizes/names/ranks/ticks —
        ints and strings only, so fast and slow costing paths (and a
        resumed run) serialize identically."""
        tracer, _ = self._traced_fig5()
        for ev in tracer.events:
            for key, value in ev["args"].items():
                assert isinstance(value, (int, str)), (ev["name"], key, value)
                assert not isinstance(value, bool) or True  # bools are ints

    def test_dumps_is_deterministic(self):
        a, _ = self._traced_fig5()
        b, _ = self._traced_fig5()
        assert a.dumps() == b.dumps()


class TestByteIdentity:
    """Satellite property: the trace stream must not depend on which
    costing path priced the run, nor on where a checkpoint cut it."""

    def _traced_run(self, size):
        tracer = Tracer()
        bench = SendRecvBenchmark(presets.opteron_infinihost_pcie)
        with trace.capturing(tracer):
            bench.run([size], hugepages=False, lazy_dereg=True,
                      iterations=2, warmup=1)
            tracer.flush()
        return tracer.dumps()

    @settings(max_examples=3, deadline=None)
    @given(size=st.sampled_from([4 * KB, 64 * KB, 256 * KB]))
    def test_trace_identical_with_and_without_fastpath(self, size):
        fast = self._traced_run(size)
        with fastpath.forced(False):
            slow = self._traced_run(size)
        assert fast == slow

    def _fig5_units(self):
        bench = SendRecvBenchmark(presets.opteron_infinihost_pcie)
        units = {}
        for label, hp in (("small", False), ("huge", True)):
            def fn(hp=hp):
                res = bench.run([4 * KB], hugepages=hp, lazy_dereg=True,
                                iterations=2, warmup=1)
                cluster = bench.last_cluster
                return res, cluster.kernel.now, cluster
            units[f"fig5:{label}"] = fn
        return units

    def test_trace_identical_across_checkpoint_resume(self):
        # uninterrupted traced run
        full = Tracer()
        with trace.capturing(full):
            ck = RunCheckpointer("fig5", [], stream=io.StringIO())
            for name, fn in self._fig5_units().items():
                ck.run_unit(name, fn)
            full.flush()

        # same run, interrupted after the first unit: the resumed
        # ledger replays unit 1 from its stored trace blob and
        # re-simulates unit 2
        first = Tracer()
        with trace.capturing(first):
            ck1 = RunCheckpointer("fig5", [], stream=io.StringIO())
            units = self._fig5_units()
            name0 = next(iter(units))
            ck1.run_unit(name0, units[name0])
        resumed = Tracer()
        with trace.capturing(resumed):
            ck2 = RunCheckpointer("fig5", [], preloaded_units=ck1.units,
                                  stream=io.StringIO())
            for name, fn in self._fig5_units().items():
                ck2.run_unit(name, fn)
            resumed.flush()

        assert resumed.dumps() == full.dumps()

    def test_resume_from_untraced_snapshot_omits_restored_units(self):
        """A snapshot written without tracing has no trace blobs; a
        traced resume must still work, just without the replayed
        spans."""
        ck1 = RunCheckpointer("fig5", [], stream=io.StringIO())
        units = self._fig5_units()
        name0 = next(iter(units))
        ck1.run_unit(name0, units[name0])

        resumed = Tracer()
        with trace.capturing(resumed):
            ck2 = RunCheckpointer("fig5", [], preloaded_units=ck1.units,
                                  stream=io.StringIO())
            for name, fn in self._fig5_units().items():
                ck2.run_unit(name, fn)
            resumed.flush()
        unit_names = {e["unit"] for e in resumed.events}
        assert name0 not in unit_names  # no blob to replay
        assert "fig5:huge" in unit_names  # re-simulated and traced
